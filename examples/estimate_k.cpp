// Choosing the number of clusters without labels — footnote 2 of the paper:
// "although the exact estimation of k is difficult without a gold standard,
// we can do so by varying k and evaluating clustering quality with criteria
// that capture information intrinsic to the data alone."
//
// This example generates a dataset whose true class count is hidden from the
// pipeline, sweeps k with k-Shape, scores each k by the mean silhouette under
// SBD, and reports the chosen k next to the (revealed) truth.

#include <iostream>

#include "cluster/kmedoids.h"
#include "cluster/validity.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "harness/table.h"
#include "tseries/normalization.h"

int main() {
  using namespace kshape;

  // Build a 4-class dataset (sines at 4 distinct frequencies, random phase).
  const int kTrueK = 4;
  common::Rng rng(20260704);
  std::vector<tseries::Series> series;
  for (int klass = 0; klass < kTrueK; ++klass) {
    for (int i = 0; i < 12; ++i) {
      series.push_back(tseries::ZNormalized(
          data::MakeShiftedSine(2 * klass, 96, &rng, 0.1)));
    }
  }

  const core::KShape kshape;
  const core::SbdDistance sbd;
  common::Rng sweep_rng(17);
  const cluster::KEstimate estimate =
      cluster::EstimateK(series, kshape, sbd, 2, 8, 3, &sweep_rng);

  harness::TablePrinter table({"k", "Mean silhouette (SBD)", "Chosen"});
  for (std::size_t i = 0; i < estimate.silhouettes.size(); ++i) {
    const int k = 2 + static_cast<int>(i);
    table.AddRow({std::to_string(k),
                  harness::FormatDouble(estimate.silhouettes[i]),
                  k == estimate.best_k ? "<==" : ""});
  }
  table.Print(std::cout);

  std::cout << "\nEstimated k = " << estimate.best_k << " (true k = " << kTrueK
            << ")\n";

  // Internal validity of the final clustering at the chosen k.
  common::Rng final_rng(3);
  const cluster::ClusteringResult result =
      kshape.Cluster(series, estimate.best_k, &final_rng);
  const linalg::Matrix d = cluster::PairwiseDistanceMatrix(series, sbd);
  std::cout << "Final clustering at k = " << estimate.best_k
            << ": silhouette = "
            << harness::FormatDouble(
                   cluster::MeanSilhouette(d, result.assignments,
                                           estimate.best_k))
            << ", Davies-Bouldin = "
            << harness::FormatDouble(
                   cluster::DaviesBouldinIndex(d, result.assignments,
                                               estimate.best_k))
            << "\n";
  return 0;
}
