// Command-line clustering tool over UCR-format files, exercising the I/O and
// algorithm-selection surface of the library:
//
//   ucr_file_tool <file> [k] [algorithm]
//
// <file>      UCR text layout: one series per line, label first, values
//             comma/space/tab separated.
// [k]         number of clusters (default: the number of distinct labels).
// [algorithm] one of: kshape (default), kavg-ed, kavg-sbd, pam-ed, pam-sbd,
//             pam-cdtw, hier-ed, spectral-sbd.
//
// With no arguments, the tool writes a demo CBF file next to the binary and
// clusters it, so it is runnable out of the box.

#include <iostream>
#include <memory>
#include <string>

#include "cluster/averaging.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/kmedoids.h"
#include "cluster/spectral.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "harness/table.h"
#include "tseries/io.h"
#include "tseries/normalization.h"

int main(int argc, char** argv) {
  using namespace kshape;

  std::string path;
  if (argc >= 2) {
    path = argv[1];
  } else {
    // Bootstrap a demo file so the tool runs without arguments.
    path = "cbf_demo.csv";
    common::Rng rng(1);
    const tseries::Dataset demo = data::MakeLabeledDataset(
        "CBF", 3, 12,
        [](int k, common::Rng* r) { return data::MakeCbf(k, 128, r); }, &rng);
    const common::Status st = tseries::WriteUcrFile(demo, path);
    if (!st.ok()) {
      std::cerr << "failed to write demo file: " << st.ToString() << "\n";
      return 1;
    }
    std::cout << "(no input given; wrote and clustering demo file " << path
              << ")\n";
  }

  auto loaded = tseries::ReadUcrFile(path, path);
  if (!loaded.ok()) {
    std::cerr << "error: " << loaded.status().ToString() << "\n";
    return 1;
  }
  tseries::Dataset dataset = std::move(loaded).value();
  tseries::ZNormalizeDataset(&dataset);

  const int k = argc >= 3 ? std::max(1, std::atoi(argv[2]))
                          : dataset.NumClasses();
  const std::string algorithm_name = argc >= 4 ? argv[3] : "kshape";

  // Algorithm roster. Measures/averagers must outlive the algorithms.
  const distance::EuclideanDistance ed;
  const core::SbdDistance sbd;
  const dtw::DtwMeasure cdtw5 = dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5");
  const cluster::ArithmeticMeanAveraging mean_avg;

  std::unique_ptr<cluster::ClusteringAlgorithm> algorithm;
  if (algorithm_name == "kshape") {
    algorithm = std::make_unique<core::KShape>();
  } else if (algorithm_name == "kavg-ed") {
    algorithm = std::make_unique<cluster::KMeans>(&ed, &mean_avg, "k-AVG+ED");
  } else if (algorithm_name == "kavg-sbd") {
    algorithm =
        std::make_unique<cluster::KMeans>(&sbd, &mean_avg, "k-AVG+SBD");
  } else if (algorithm_name == "pam-ed") {
    algorithm = std::make_unique<cluster::KMedoids>(&ed, "PAM+ED");
  } else if (algorithm_name == "pam-sbd") {
    algorithm = std::make_unique<cluster::KMedoids>(&sbd, "PAM+SBD");
  } else if (algorithm_name == "pam-cdtw") {
    algorithm = std::make_unique<cluster::KMedoids>(&cdtw5, "PAM+cDTW");
  } else if (algorithm_name == "hier-ed") {
    algorithm = std::make_unique<cluster::HierarchicalClustering>(
        &ed, cluster::Linkage::kComplete, "H-C+ED");
  } else if (algorithm_name == "spectral-sbd") {
    algorithm = std::make_unique<cluster::SpectralClustering>(&sbd, "S+SBD");
  } else {
    std::cerr << "unknown algorithm: " << algorithm_name << "\n";
    return 1;
  }

  std::cout << "Clustering " << dataset.size() << " series of length "
            << dataset.length() << " from " << path << " into " << k
            << " clusters with " << algorithm->Name() << "\n";

  common::Rng rng(12345);
  const cluster::ClusteringResult result =
      algorithm->Cluster(dataset.batch(), k, &rng);

  harness::TablePrinter table({"Metric", "Value"});
  table.AddRow({"Rand index",
                harness::FormatDouble(
                    eval::RandIndex(dataset.labels(), result.assignments))});
  table.AddRow({"Adjusted Rand",
                harness::FormatDouble(eval::AdjustedRandIndex(
                    dataset.labels(), result.assignments))});
  table.AddRow({"NMI",
                harness::FormatDouble(eval::NormalizedMutualInformation(
                    dataset.labels(), result.assignments))});
  table.AddRow({"Accuracy (Hungarian)",
                harness::FormatDouble(eval::HungarianAccuracy(
                    dataset.labels(), result.assignments))});
  table.AddRow({"Iterations", std::to_string(result.iterations)});
  table.Print(std::cout);

  // Cluster sizes.
  std::vector<int> sizes(k, 0);
  for (int a : result.assignments) ++sizes[a];
  std::cout << "Cluster sizes:";
  for (int s : sizes) std::cout << " " << s;
  std::cout << "\n";
  return 0;
}
