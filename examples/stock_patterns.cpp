// Domain example: grouping synthetic daily "price" histories by the shape of
// their trajectory, regardless of price level, volatility scale, or when in
// the window the pattern plays out — the scaling/translation/shift
// invariances of §2.2 applied to a finance-flavored workload (cf. the
// paper's motivation of clustering seasonal currency variations without
// inflation bias).
//
// Four regimes are simulated on top of a common random-walk microstructure:
//   0: rally         (sustained upward drift)
//   1: selloff       (sustained downward drift)
//   2: V-shaped      (drawdown then recovery; the turning point shifts)
//   3: range-bound   (mean-reverting around the open)

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/kshape.h"
#include "eval/metrics.h"
#include "harness/table.h"
#include "tseries/normalization.h"

namespace {

using kshape::tseries::Series;

Series SimulateRegime(int regime, std::size_t days, kshape::common::Rng* rng) {
  Series prices(days);
  double log_price = std::log(rng->Uniform(5.0, 500.0));  // Any price level.
  const double volatility = rng->Uniform(0.005, 0.02);    // Any vol scale.
  const double drift = rng->Uniform(0.002, 0.004);
  // The V-bottom lands anywhere in the middle half of the window.
  const double turn = rng->Uniform(0.35, 0.65);
  const double reversion = rng->Uniform(0.05, 0.15);
  double gap = 0.0;  // Cumulative deviation for the mean-reverting regime.

  for (std::size_t t = 0; t < days; ++t) {
    const double u = static_cast<double>(t) / static_cast<double>(days);
    double daily = volatility * rng->Gaussian();
    switch (regime) {
      case 0:
        daily += drift;
        break;
      case 1:
        daily -= drift;
        break;
      case 2:
        daily += (u < turn ? -1.8 * drift : 1.8 * drift);
        break;
      case 3:
        daily -= reversion * gap;
        break;
      default:
        break;
    }
    gap += daily;
    log_price += daily;
    prices[t] = std::exp(log_price);
  }
  return prices;
}

std::string Sparkline(const Series& x) {
  static const char* kLevels = " .:-=+*#";
  double lo = x[0], hi = x[0];
  for (double v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (std::size_t t = 0; t < x.size(); t += 4) {
    const double u = hi > lo ? (x[t] - lo) / (hi - lo) : 0.0;
    out += kLevels[static_cast<int>(u * 7.999)];
  }
  return out;
}

}  // namespace

int main() {
  using namespace kshape;

  const char* kRegimeNames[] = {"rally", "selloff", "V-shaped",
                                "range-bound"};
  const std::size_t kDays = 250;  // One trading year.
  const int kPerRegime = 12;

  common::Rng rng(20260704);
  std::vector<Series> series;
  std::vector<int> gold;
  for (int regime = 0; regime < 4; ++regime) {
    for (int i = 0; i < kPerRegime; ++i) {
      // z-normalize: removes the price level and the volatility scale, so
      // only the trajectory shape remains.
      series.push_back(tseries::ZNormalized(SimulateRegime(regime, kDays,
                                                           &rng)));
      gold.push_back(regime);
    }
  }

  const core::KShape kshape;
  common::Rng cluster_rng(11);
  const cluster::ClusteringResult result =
      kshape.Cluster(series, 4, &cluster_rng);

  std::cout << "k-Shape on " << series.size()
            << " synthetic one-year price histories (4 regimes, " << kDays
            << " days each)\n";
  std::cout << "Rand index vs simulated regimes: "
            << harness::FormatDouble(eval::RandIndex(gold, result.assignments))
            << ", cluster accuracy (Hungarian): "
            << harness::FormatDouble(
                   eval::HungarianAccuracy(gold, result.assignments))
            << "\n\n";

  // Show each cluster's centroid and its regime composition.
  for (int j = 0; j < 4; ++j) {
    std::vector<int> composition(4, 0);
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (result.assignments[i] == j) ++composition[gold[i]];
    }
    std::cout << "Cluster " << j << " centroid: "
              << Sparkline(result.centroids[j]) << "\n   members: ";
    for (int regime = 0; regime < 4; ++regime) {
      if (composition[regime] > 0) {
        std::cout << composition[regime] << " " << kRegimeNames[regime]
                  << "  ";
      }
    }
    std::cout << "\n";
  }
  std::cout << "\nNote the V-shaped cluster: its members bottom out at "
               "different dates, which\nis exactly the shift invariance SBD "
               "provides (a lock-step measure would\nsplit them by turning "
               "point).\n";
  return 0;
}
