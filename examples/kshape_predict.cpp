// kshape_predict: load a .kmodel artifact and score new series against it.
//
// The predict half of the fit/predict split: the model file is untrusted
// input, so it goes through the validating model::FittedModel::Load
// (StatusOr, never an abort), and scoring uses model::TryPredict — one
// Assigner pass against the frozen centroids, the exact scan the clustering
// assignment step runs.
//
// Usage:
//   kshape_predict <model.kmodel> [--per-class N] [--seed S]
//
// The scoring corpus is fresh synthetic CBF at the model's length (a new
// draw, not the training set), so fit + predict together demonstrate
// generalization: the printed ARI compares predicted centroid indices to the
// generator's class labels.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "model/fitted_model.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <model.kmodel> [--per-class N] [--seed S]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kshape;

  if (argc < 2) return Usage(argv[0]);
  const std::string model_path = argv[1];
  int per_class = 20;
  unsigned seed = 1234;
  for (int a = 2; a + 1 < argc; a += 2) {
    const std::string flag = argv[a];
    const long value = std::strtol(argv[a + 1], nullptr, 10);
    if (flag == "--per-class") {
      per_class = static_cast<int>(value);
    } else if (flag == "--seed") {
      seed = static_cast<unsigned>(value);
    } else {
      return Usage(argv[0]);
    }
  }
  if (per_class < 1) {
    std::cerr << "kshape_predict: --per-class must be >= 1\n";
    return 2;
  }

  common::StatusOr<model::FittedModel> loaded =
      model::FittedModel::Load(model_path);
  if (!loaded.ok()) {
    std::cerr << "kshape_predict: load failed: " << loaded.status().message()
              << "\n";
    return 1;
  }
  const model::FittedModel fitted = std::move(loaded).value();
  std::cout << "loaded " << model_path << ": k=" << fitted.k()
            << " m=" << fitted.m() << " method=" << fitted.method()
            << " (fit " << fitted.telemetry().iterations << " iterations"
            << (fitted.telemetry().converged ? ", converged" : "") << ")\n";
  const common::Status fingerprint = fitted.CheckFingerprint();
  if (!fingerprint.ok()) {
    std::cout << "note: " << fingerprint.message() << "\n";
  }

  // Fresh scoring draw at the model's length — never the training series.
  const int model_k = static_cast<int>(fitted.k());
  const int classes = std::min(model_k, 3);
  common::Rng rng(seed);
  tseries::Dataset test = data::MakeLabeledDataset(
      "cbf-test", classes, per_class,
      [&](int klass, common::Rng* r) {
        return data::MakeCbf(klass, fitted.m(), r);
      },
      &rng);
  tseries::ZNormalizeDataset(&test);

  common::StatusOr<model::PredictResult> predicted =
      model::TryPredict(fitted, test.batch());
  if (!predicted.ok()) {
    std::cerr << "kshape_predict: predict failed: "
              << predicted.status().message() << "\n";
    return 1;
  }
  const model::PredictResult& scored = predicted.value();

  std::vector<int> counts(model_k, 0);
  double mean_distance = 0.0;
  for (std::size_t i = 0; i < scored.labels.size(); ++i) {
    ++counts[scored.labels[i]];
    mean_distance += scored.distances[i];
  }
  mean_distance /= static_cast<double>(scored.labels.size());

  std::cout << "scored " << test.size() << " series: mean SBD to centroid = "
            << mean_distance << "\n";
  for (int j = 0; j < model_k; ++j) {
    std::cout << "  centroid " << j << ": " << counts[j] << " series\n";
  }
  std::cout << "predict: ARI vs generator classes = "
            << eval::AdjustedRandIndex(test.labels(), scored.labels)
            << "\npredict: distances computed=" << scored.stats.computed
            << " abandoned=" << scored.stats.abandoned_partial << "\n";
  return 0;
}
