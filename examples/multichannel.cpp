// Multivariate clustering example: multi-lead "ECG" recordings where every
// lead of an instance is delayed by the same unknown offset. Univariate
// k-Shape on a single lead ignores the other leads' evidence; multivariate
// k-Shape aligns all leads with one common shift (see core/multivariate.h,
// an extension beyond the SIGMOD'15 paper).

#include <cmath>
#include <iostream>

#include "common/random.h"
#include "core/kshape.h"
#include "core/multivariate.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "harness/table.h"
#include "tseries/normalization.h"

int main() {
  using namespace kshape;

  const std::size_t kLength = 136;
  const int kPerClass = 15;

  // Two classes; each instance is a 3-lead recording: one clean underlying
  // waveform (with a random onset offset shared by all leads) observed three
  // times under heavy independent sensor noise. Any single lead is barely
  // classifiable; pooling the leads through one common alignment recovers
  // the shape.
  common::Rng rng(20150531);
  std::vector<core::MultivariateSeries> series;
  std::vector<tseries::Series> lead_zero_only;
  std::vector<int> labels;
  const double kSensorNoise = 1.3;
  for (int klass = 0; klass < 2; ++klass) {
    for (int i = 0; i < kPerClass; ++i) {
      const tseries::Series base =
          data::MakeEcgLike(klass, kLength, &rng, 0.0);  // Clean waveform.
      core::MultivariateSeries instance;
      for (int lead = 0; lead < 3; ++lead) {
        tseries::Series channel = base;
        const double gain = rng.Uniform(0.6, 1.0);
        for (double& v : channel) {
          v = gain * v + rng.Gaussian(0.0, kSensorNoise);
        }
        instance.channels.push_back(std::move(channel));
      }
      core::ZNormalizeMultivariate(&instance);
      lead_zero_only.push_back(instance.channels[0]);
      series.push_back(std::move(instance));
      labels.push_back(klass);
    }
  }

  // Univariate k-Shape on lead 0 alone.
  const core::KShape kshape;
  common::Rng rng_uni(3);
  const double uni_rand = eval::RandIndex(
      labels, kshape.Cluster(lead_zero_only, 2, &rng_uni).assignments);

  // Multivariate k-Shape on all three leads.
  const core::MultivariateKShape mkshape;
  common::Rng rng_mv(3);
  const core::MultivariateClusteringResult mv_result =
      mkshape.Cluster(series, 2, &rng_mv);
  const double mv_rand = eval::RandIndex(labels, mv_result.assignments);

  harness::TablePrinter table({"Method", "Rand index"});
  table.AddRow({"k-Shape, lead 0 only", harness::FormatDouble(uni_rand)});
  table.AddRow({"multivariate k-Shape, 3 leads",
                harness::FormatDouble(mv_rand)});
  table.Print(std::cout);
  std::cout << "\nThe multivariate variant pools cross-correlation evidence "
               "from all leads into\none common alignment per instance, so "
               "noisy leads corroborate instead of\nvoting separately.\n";
  return 0;
}
