// The paper's motivating scenario (Figure 1): ECG heartbeats of two classes,
// recorded out of phase. Shows, end to end, why shape-based clustering needs
// both pieces of k-Shape:
//   - SBD vs ED/cDTW as the distance (1-NN accuracy comparison),
//   - shape extraction vs the arithmetic mean as the centroid,
//   - k-Shape vs k-AVG+ED and PAM+cDTW as the clustering algorithm.

#include <iostream>
#include <string>

#include "classify/nearest_neighbor.h"
#include "cluster/averaging.h"
#include "cluster/kmeans.h"
#include "cluster/kmedoids.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "core/shape_extraction.h"
#include "data/generators.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "harness/experiments.h"
#include "linalg/matrix.h"
#include "tseries/normalization.h"

namespace {

using kshape::tseries::Series;

std::string Sparkline(const Series& x) {
  static const char* kLevels = " .:-=+*#";
  double lo = x[0], hi = x[0];
  for (double v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (std::size_t t = 0; t < x.size(); t += 2) {
    const double u = hi > lo ? (x[t] - lo) / (hi - lo) : 0.0;
    out += kLevels[static_cast<int>(u * 7.999)];
  }
  return out;
}

}  // namespace

int main() {
  using namespace kshape;

  common::Rng rng(20150531);
  const data::GeneratorFn generator = [](int klass, common::Rng* r) {
    return data::MakeEcgLike(klass, 136, r, 0.15);
  };
  tseries::SplitDataset split =
      data::MakeSplitDataset("ECGLike", 2, 15, 40, generator, &rng);
  tseries::ZNormalizeDataset(&split.train);
  tseries::ZNormalizeDataset(&split.test);

  std::cout << "Two ECG-like classes, out of phase (cf. Figure 1):\n";
  for (int klass = 0; klass < 2; ++klass) {
    for (std::size_t i = 0; i < split.train.size(); ++i) {
      if (split.train.label(i) == klass) {
        std::cout << "  class " << (klass == 0 ? "A" : "B") << ": "
                  << Sparkline(split.train.series(i)) << "\n";
      }
    }
  }

  // --- Distance measures: 1-NN accuracy ---
  const core::SbdDistance sbd;
  const distance::EuclideanDistance ed;
  const dtw::DtwMeasure cdtw5 = dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5");
  std::cout << "\n1-NN accuracy:  SBD = "
            << classify::OneNnAccuracy(split.train, split.test, sbd)
            << ", cDTW5 = "
            << classify::OneNnAccuracy(split.train, split.test, cdtw5)
            << ", ED = "
            << classify::OneNnAccuracy(split.train, split.test, ed) << "\n";

  // --- Centroids: arithmetic mean vs shape extraction (cf. Figure 4) ---
  std::cout << "\nClass-A centroids (cf. Figure 4):\n";
  std::vector<Series> class_a;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    if (split.train.label(i) == 0) class_a.push_back(split.train.series(i));
  }
  Series mean(class_a[0].size(), 0.0);
  for (const Series& s : class_a) linalg::Axpy(1.0, s, &mean);
  linalg::Scale(&mean, 1.0 / static_cast<double>(class_a.size()));
  const Series extracted = core::ExtractShape(class_a, class_a[0], &rng);
  std::cout << "  arithmetic mean:  " << Sparkline(mean) << "\n"
            << "  shape extraction: " << Sparkline(extracted) << "\n";

  // --- Clustering: k-Shape vs baselines ---
  const tseries::Dataset fused = split.Fused();
  const core::KShape kshape;
  const cluster::ArithmeticMeanAveraging mean_avg;
  const cluster::KMeans k_avg_ed(&ed, &mean_avg, "k-AVG+ED");
  const cluster::KMedoids pam_cdtw(&cdtw5, "PAM+cDTW");
  std::cout << "\nClustering Rand index (average of 10 random restarts):\n";
  for (const cluster::ClusteringAlgorithm* algorithm :
       {static_cast<const cluster::ClusteringAlgorithm*>(&kshape),
        static_cast<const cluster::ClusteringAlgorithm*>(&k_avg_ed),
        static_cast<const cluster::ClusteringAlgorithm*>(&pam_cdtw)}) {
    std::cout << "  " << algorithm->Name() << ": "
              << harness::AverageRandIndex(*algorithm, fused.batch(),
                                           fused.labels(), 2, 10, 77)
              << "\n";
  }
  std::cout << "\n(Per the paper: k-Shape should dominate here because a "
               "global alignment\nexplains the data, while ED compares "
               "lock-step and cDTW warps locally.)\n";
  return 0;
}
