// Quickstart: cluster a small set of out-of-phase time series with k-Shape.
//
// Demonstrates the three core pieces of the public API:
//   1. core::Sbd          - the shape-based distance (Algorithm 1)
//   2. core::ExtractShape - the centroid computation (Algorithm 2)
//   3. core::KShape       - the clustering algorithm (Algorithm 3)

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "eval/metrics.h"
#include "tseries/normalization.h"

namespace {

constexpr double kPi = 3.14159265358979323846;

// Renders a series as a small ASCII sparkline.
std::string Sparkline(const kshape::tseries::Series& x) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  double lo = x[0];
  double hi = x[0];
  for (double v : x) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  for (std::size_t t = 0; t < x.size(); t += 2) {
    const double u = hi > lo ? (x[t] - lo) / (hi - lo) : 0.0;
    out += kLevels[static_cast<int>(u * 7.999)];
  }
  return out;
}

}  // namespace

int main() {
  using namespace kshape;

  // 1. Build a toy dataset: two shape classes (one- and three-cycle sines),
  //    each instance with its own random phase, amplitude, and noise.
  common::Rng rng(42);
  std::vector<tseries::Series> series;
  std::vector<int> gold;
  for (int klass = 0; klass < 2; ++klass) {
    for (int i = 0; i < 8; ++i) {
      tseries::Series s(64);
      const double phase = rng.Uniform(0.0, 2.0 * kPi);
      const double amplitude = rng.Uniform(0.5, 2.0);
      for (std::size_t t = 0; t < s.size(); ++t) {
        const double cycles = klass == 0 ? 1.0 : 3.0;
        s[t] = amplitude * std::sin(2.0 * kPi * cycles * t / 64.0 + phase) +
               rng.Gaussian(0.0, 0.1);
      }
      // k-Shape expects z-normalized input (scaling invariance, §2.2).
      series.push_back(tseries::ZNormalized(s));
      gold.push_back(klass);
    }
  }

  // 2. Compare two series with SBD: distance in [0, 2], plus the alignment.
  const core::SbdResult comparison = core::Sbd(series[0], series[1]);
  std::cout << "SBD between two class-0 series: " << comparison.distance
            << " (optimal shift " << comparison.shift << ")\n";
  std::cout << "SBD between class-0 and class-1 series: "
            << core::Sbd(series[0], series[8]).distance << "\n\n";

  // 3. Cluster with k-Shape.
  const core::KShape kshape;
  common::Rng cluster_rng(7);
  const cluster::ClusteringResult result = kshape.Cluster(series, 2,
                                                          &cluster_rng);

  std::cout << "k-Shape converged after " << result.iterations
            << " iteration(s)\n";
  std::cout << "Rand index vs ground truth: "
            << eval::RandIndex(gold, result.assignments) << "\n\n";

  for (int j = 0; j < 2; ++j) {
    std::cout << "Cluster " << j << " centroid: "
              << Sparkline(result.centroids[j]) << "\n";
    for (std::size_t i = 0; i < series.size(); ++i) {
      if (result.assignments[i] == j) {
        std::cout << "  series " << i << " (class " << gold[i]
                  << "): " << Sparkline(series[i]) << "\n";
      }
    }
  }
  return 0;
}
