// kshape_fit: fit a k-Shape model and save it as a .kmodel artifact.
//
// The fit half of the fit/predict split (src/model/fitted_model.h): cluster a
// training corpus, then persist the resulting FittedModel — centroids,
// options fingerprint, telemetry — for kshape_predict (or any embedding
// application calling model::FittedModel::Load) to score new series against
// without refitting.
//
// Usage:
//   kshape_fit <model.kmodel> [--classes N] [--per-class N] [--length M]
//              [--seed S]
//
// The training corpus is synthetic Cylinder-Bell-Funnel (the paper's
// scalability dataset, Appendix B) so the tool is self-contained and
// deterministic: same flags, same model file, byte for byte.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "core/kshape.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "model/fitted_model.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace {

int Usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <model.kmodel> [--classes N] [--per-class N] [--length M]"
               " [--seed S]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kshape;

  if (argc < 2) return Usage(argv[0]);
  const std::string model_path = argv[1];
  int classes = 3;
  int per_class = 40;
  std::size_t length = 128;
  unsigned seed = 42;
  for (int a = 2; a + 1 < argc; a += 2) {
    const std::string flag = argv[a];
    const long value = std::strtol(argv[a + 1], nullptr, 10);
    if (flag == "--classes") {
      classes = static_cast<int>(value);
    } else if (flag == "--per-class") {
      per_class = static_cast<int>(value);
    } else if (flag == "--length") {
      length = static_cast<std::size_t>(value);
    } else if (flag == "--seed") {
      seed = static_cast<unsigned>(value);
    } else {
      return Usage(argv[0]);
    }
  }
  if (classes < 1 || classes > 3 || per_class < 1 || length < 2) {
    std::cerr << "kshape_fit: --classes in [1,3] (CBF has three classes), "
                 "--per-class >= 1, --length >= 2\n";
    return 2;
  }

  // Training corpus: z-normalized CBF (k-Shape's input contract).
  common::Rng rng(seed);
  tseries::Dataset train = data::MakeLabeledDataset(
      "cbf-train", classes, per_class,
      [&](int klass, common::Rng* r) {
        return data::MakeCbf(klass, length, r);
      },
      &rng);
  tseries::ZNormalizeDataset(&train);

  const core::KShape kshape;
  common::Rng cluster_rng(seed + 1);
  const cluster::ClusteringResult result =
      kshape.Cluster(train.batch(), classes, &cluster_rng);

  std::cout << "fit: n=" << train.size() << " m=" << length
            << " k=" << classes << " iterations=" << result.iterations
            << (result.converged ? " (converged)" : "")
            << "\nfit: ARI vs generator classes = "
            << eval::AdjustedRandIndex(train.labels(), result.assignments)
            << "\nfit: distances computed=" << result.distances_computed
            << " pruned=" << result.distances_pruned_bounds
            << " abandoned=" << result.distances_abandoned_partial << "\n";

  const common::Status saved = result.model.Save(model_path);
  if (!saved.ok()) {
    std::cerr << "kshape_fit: save failed: " << saved.message() << "\n";
    return 1;
  }
  std::cout << "saved " << model_path << " (k=" << result.model.k()
            << ", m=" << result.model.m() << ", method="
            << result.model.method() << ")\n";
  return 0;
}
