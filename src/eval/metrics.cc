#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"

namespace kshape::eval {

namespace {

// Maps arbitrary integer ids to dense 0..k-1 indices in first-seen order.
std::vector<int> Densify(const std::vector<int>& ids, int* count) {
  std::map<int, int> mapping;
  std::vector<int> dense(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto [it, inserted] =
        mapping.emplace(ids[i], static_cast<int>(mapping.size()));
    (void)inserted;
    dense[i] = it->second;
  }
  *count = static_cast<int>(mapping.size());
  return dense;
}

double Choose2(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

linalg::Matrix ContingencyTable(const std::vector<int>& labels,
                                const std::vector<int>& clusters) {
  KSHAPE_CHECK_MSG(labels.size() == clusters.size(), "size mismatch");
  KSHAPE_CHECK(!labels.empty());
  int num_labels = 0;
  int num_clusters = 0;
  const std::vector<int> l = Densify(labels, &num_labels);
  const std::vector<int> c = Densify(clusters, &num_clusters);
  linalg::Matrix table(num_labels, num_clusters);
  for (std::size_t i = 0; i < l.size(); ++i) {
    table(l[i], c[i]) += 1.0;
  }
  return table;
}

double RandIndex(const std::vector<int>& labels,
                 const std::vector<int>& clusters) {
  const linalg::Matrix table = ContingencyTable(labels, clusters);
  const double n = static_cast<double>(labels.size());
  if (n < 2) return 1.0;

  double sum_cells = 0.0;  // sum over cells of C(n_ij, 2) = TP
  double sum_rows = 0.0;   // sum over label marginals of C(., 2) = TP + FN
  double sum_cols = 0.0;   // sum over cluster marginals of C(., 2) = TP + FP
  for (std::size_t i = 0; i < table.rows(); ++i) {
    double row_total = 0.0;
    for (std::size_t j = 0; j < table.cols(); ++j) {
      sum_cells += Choose2(table(i, j));
      row_total += table(i, j);
    }
    sum_rows += Choose2(row_total);
  }
  for (std::size_t j = 0; j < table.cols(); ++j) {
    double col_total = 0.0;
    for (std::size_t i = 0; i < table.rows(); ++i) col_total += table(i, j);
    sum_cols += Choose2(col_total);
  }
  const double total_pairs = Choose2(n);
  const double tp = sum_cells;
  const double fp = sum_cols - sum_cells;
  const double fn = sum_rows - sum_cells;
  const double tn = total_pairs - tp - fp - fn;
  return (tp + tn) / total_pairs;
}

double AdjustedRandIndex(const std::vector<int>& labels,
                         const std::vector<int>& clusters) {
  const linalg::Matrix table = ContingencyTable(labels, clusters);
  const double n = static_cast<double>(labels.size());
  if (n < 2) return 1.0;

  double sum_cells = 0.0;
  double sum_rows = 0.0;
  double sum_cols = 0.0;
  for (std::size_t i = 0; i < table.rows(); ++i) {
    double row_total = 0.0;
    for (std::size_t j = 0; j < table.cols(); ++j) {
      sum_cells += Choose2(table(i, j));
      row_total += table(i, j);
    }
    sum_rows += Choose2(row_total);
  }
  for (std::size_t j = 0; j < table.cols(); ++j) {
    double col_total = 0.0;
    for (std::size_t i = 0; i < table.rows(); ++i) col_total += table(i, j);
    sum_cols += Choose2(col_total);
  }
  const double expected = sum_rows * sum_cols / Choose2(n);
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // Degenerate: both trivial.
  return (sum_cells - expected) / (max_index - expected);
}

double NormalizedMutualInformation(const std::vector<int>& labels,
                                   const std::vector<int>& clusters) {
  const linalg::Matrix table = ContingencyTable(labels, clusters);
  const double n = static_cast<double>(labels.size());

  std::vector<double> row_totals(table.rows(), 0.0);
  std::vector<double> col_totals(table.cols(), 0.0);
  for (std::size_t i = 0; i < table.rows(); ++i) {
    for (std::size_t j = 0; j < table.cols(); ++j) {
      row_totals[i] += table(i, j);
      col_totals[j] += table(i, j);
    }
  }

  double mi = 0.0;
  for (std::size_t i = 0; i < table.rows(); ++i) {
    for (std::size_t j = 0; j < table.cols(); ++j) {
      const double nij = table(i, j);
      if (nij == 0.0) continue;
      mi += (nij / n) * std::log(nij * n / (row_totals[i] * col_totals[j]));
    }
  }
  double h_labels = 0.0;
  for (double r : row_totals) {
    if (r > 0.0) h_labels -= (r / n) * std::log(r / n);
  }
  double h_clusters = 0.0;
  for (double c : col_totals) {
    if (c > 0.0) h_clusters -= (c / n) * std::log(c / n);
  }
  if (h_labels == 0.0 && h_clusters == 0.0) return 1.0;
  if (h_labels == 0.0 || h_clusters == 0.0) return 0.0;
  return mi / std::sqrt(h_labels * h_clusters);
}

double Purity(const std::vector<int>& labels,
              const std::vector<int>& clusters) {
  const linalg::Matrix table = ContingencyTable(labels, clusters);
  double correct = 0.0;
  for (std::size_t j = 0; j < table.cols(); ++j) {
    double best = 0.0;
    for (std::size_t i = 0; i < table.rows(); ++i) {
      best = std::max(best, table(i, j));
    }
    correct += best;
  }
  return correct / static_cast<double>(labels.size());
}

std::vector<int> SolveMinCostAssignment(const linalg::Matrix& cost) {
  const int n = static_cast<int>(cost.rows());
  const int m = static_cast<int>(cost.cols());
  KSHAPE_CHECK_MSG(n <= m, "assignment requires rows <= cols");
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Shortest-augmenting-path Hungarian with potentials (1-indexed arrays).
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(m + 1, 0.0);
  std::vector<int> p(m + 1, 0);    // p[j]: row matched to column j.
  std::vector<int> way(m + 1, 0);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> row_to_col(n, -1);
  for (int j = 1; j <= m; ++j) {
    if (p[j] > 0) row_to_col[p[j] - 1] = j - 1;
  }
  return row_to_col;
}

double HungarianAccuracy(const std::vector<int>& labels,
                         const std::vector<int>& clusters) {
  linalg::Matrix table = ContingencyTable(labels, clusters);
  // The Hungarian solver needs rows <= cols; the matching is symmetric.
  if (table.rows() > table.cols()) table = table.Transposed();

  double max_count = 0.0;
  for (std::size_t i = 0; i < table.rows(); ++i) {
    for (std::size_t j = 0; j < table.cols(); ++j) {
      max_count = std::max(max_count, table(i, j));
    }
  }
  linalg::Matrix cost(table.rows(), table.cols());
  for (std::size_t i = 0; i < table.rows(); ++i) {
    for (std::size_t j = 0; j < table.cols(); ++j) {
      cost(i, j) = max_count - table(i, j);
    }
  }
  const std::vector<int> match = SolveMinCostAssignment(cost);
  double correct = 0.0;
  for (std::size_t i = 0; i < match.size(); ++i) {
    correct += table(i, match[i]);
  }
  return correct / static_cast<double>(labels.size());
}

}  // namespace kshape::eval
