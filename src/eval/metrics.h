#ifndef KSHAPE_EVAL_METRICS_H_
#define KSHAPE_EVAL_METRICS_H_

#include <vector>

#include "linalg/matrix.h"

namespace kshape::eval {

/// Contingency table between gold labels and predicted clusters:
/// entry (i, j) counts points with the i-th distinct label placed in the
/// j-th distinct cluster.
linalg::Matrix ContingencyTable(const std::vector<int>& labels,
                                const std::vector<int>& clusters);

/// Rand Index (Rand 1971), the clustering-accuracy metric of §4 of the
/// paper: (TP + TN) / (TP + TN + FP + FN) over all pairs of points. In
/// [0, 1]; 1 iff the partitions agree on every pair.
double RandIndex(const std::vector<int>& labels,
                 const std::vector<int>& clusters);

/// Adjusted Rand Index (Hubert & Arabie): Rand index corrected for chance;
/// ~0 for random partitions, 1 for perfect agreement.
double AdjustedRandIndex(const std::vector<int>& labels,
                         const std::vector<int>& clusters);

/// Normalized Mutual Information with sqrt(H(L) H(C)) normalization, in
/// [0, 1]. Defined as 1 when both partitions are single-cluster (zero
/// entropy on both sides) and 0 when exactly one side has zero entropy.
double NormalizedMutualInformation(const std::vector<int>& labels,
                                   const std::vector<int>& clusters);

/// Purity: fraction of points in the majority class of their cluster.
double Purity(const std::vector<int>& labels,
              const std::vector<int>& clusters);

/// Clustering accuracy under the best one-to-one matching of clusters to
/// classes (solved exactly with the Hungarian algorithm).
double HungarianAccuracy(const std::vector<int>& labels,
                         const std::vector<int>& clusters);

/// Exact minimum-cost assignment (Hungarian / Jonker-style shortest
/// augmenting paths, O(n^2 m)). `cost` may be rectangular with
/// rows <= cols; returns for each row the column assigned to it.
std::vector<int> SolveMinCostAssignment(const linalg::Matrix& cost);

}  // namespace kshape::eval

#endif  // KSHAPE_EVAL_METRICS_H_
