#ifndef KSHAPE_TSERIES_CONDITIONING_H_
#define KSHAPE_TSERIES_CONDITIONING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "tseries/time_series.h"

namespace kshape::tseries {

/// Input conditioning for hostile real-world archives.
///
/// The paper's pipeline assumes the clean UCR layout: equal-length,
/// fully-observed series. Real archives are messier — recordings of unequal
/// duration, sensor dropouts encoded as NaN, flat segments. This module turns
/// such input into the equal-length, fully-finite form every DistanceMeasure
/// and clustering algorithm requires, under explicit caller-chosen policies.
/// Conditioning is idempotent: re-conditioning an already conditioned batch
/// with the same options is an exact no-op.
///
/// Error taxonomy: malformed *data* (ragged lengths under kReject, all-missing
/// series, empty batches) yields a `common::Status` error; misuse of the API
/// (e.g. a zero target length for a non-empty batch) is a programmer error
/// and aborts via KSHAPE_CHECK.

/// How series whose length differs from the target length are handled.
enum class LengthPolicy {
  /// Any length mismatch is a Status error (the strict UCR contract).
  kReject,

  /// Shorter series are extended with trailing zeros (the same zero fill SBD
  /// uses for shifts, Equation 5 of the paper). Series longer than the target
  /// are a Status error. Default target: the maximum input length.
  kPadZeros,

  /// Longer series are cut to the target length (keeping the head). Series
  /// shorter than the target are a Status error. Default target: the minimum
  /// input length.
  kTruncate,

  /// Linear interpolation onto `target` equally spaced points; total for any
  /// input length. Default target: the maximum input length.
  kResample,
};

/// How missing observations (NaN or infinite values) are handled.
enum class MissingPolicy {
  /// Any non-finite value is a Status error (the strict UCR contract).
  kReject,

  /// Linear interpolation between the nearest finite neighbors; leading and
  /// trailing gaps are extended from the nearest finite value. An all-missing
  /// series is a Status error.
  kInterpolate,

  /// Every missing value is replaced by the mean of the finite values. An
  /// all-missing series is a Status error.
  kMeanFill,
};

/// Returns a short name, e.g. "pad", "interpolate".
const char* LengthPolicyName(LengthPolicy policy);
const char* MissingPolicyName(MissingPolicy policy);

/// A conditioning configuration: what to do about unequal lengths and missing
/// values, and which common length to aim for.
struct ConditioningOptions {
  LengthPolicy length_policy = LengthPolicy::kReject;
  MissingPolicy missing_policy = MissingPolicy::kReject;

  /// Target length all series are brought to. 0 means "derive from the
  /// batch": the maximum input length for kPadZeros/kResample, the minimum
  /// for kTruncate, and the (asserted common) input length for kReject.
  std::size_t target_length = 0;
};

/// True when the series contains any non-finite (NaN or infinite) value.
bool HasMissing(SeriesView x);

/// Number of non-finite values in the series.
std::size_t CountMissing(SeriesView x);

/// True when every finite value equals the first finite value (degenerate
/// under z-normalization: such a series maps to all zeros). An empty or
/// all-missing series counts as constant.
bool IsConstant(SeriesView x);

/// Replaces non-finite values in place under `policy`. Errors: empty input,
/// all values missing, or any missing value under kReject.
common::Status FillMissingInPlace(MutableSeriesView x, MissingPolicy policy);
inline common::Status FillMissingInPlace(Series* x, MissingPolicy policy) {
  return FillMissingInPlace(MutableSeriesView(*x), policy);
}

/// Linearly resamples `x` onto `target_length` equally spaced points over the
/// same time span. Exact no-op (returns a copy) when the length already
/// matches. Requires a non-empty input and target_length >= 1; a length-1
/// input is extended as a constant.
Series ResampleLinear(SeriesView x, std::size_t target_length);

/// The target length `options` resolves to for this batch (see
/// ConditioningOptions::target_length). Returns 0 for an empty batch.
std::size_t ResolveTargetLength(const std::vector<Series>& series,
                                const ConditioningOptions& options);

/// Conditions one series to `target_length` under `options`: missing values
/// are repaired first, then the length policy is applied. Errors follow the
/// policy contracts above.
common::StatusOr<Series> ConditionSeries(SeriesView x,
                                         std::size_t target_length,
                                         const ConditioningOptions& options);

/// Conditions a (possibly ragged, possibly NaN-bearing) batch of labeled
/// series into a Dataset satisfying the equal-length invariant. Errors: empty
/// batch, series/label count mismatch, an empty series, or any per-series
/// conditioning failure.
common::StatusOr<Dataset> ConditionToDataset(
    const std::vector<Series>& series, const std::vector<int>& labels,
    const std::string& name, const ConditioningOptions& options);

/// Conditions every series of an existing Dataset in place (missing-value
/// repair plus, when the resolved target length differs from the dataset
/// length, a uniform length change). On error the dataset is unchanged.
common::Status ConditionDatasetInPlace(Dataset* dataset,
                                       const ConditioningOptions& options);

}  // namespace kshape::tseries

#endif  // KSHAPE_TSERIES_CONDITIONING_H_
