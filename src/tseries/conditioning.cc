#include "tseries/conditioning.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace kshape::tseries {

const char* LengthPolicyName(LengthPolicy policy) {
  switch (policy) {
    case LengthPolicy::kReject:
      return "reject";
    case LengthPolicy::kPadZeros:
      return "pad";
    case LengthPolicy::kTruncate:
      return "truncate";
    case LengthPolicy::kResample:
      return "resample";
  }
  return "?";
}

const char* MissingPolicyName(MissingPolicy policy) {
  switch (policy) {
    case MissingPolicy::kReject:
      return "reject";
    case MissingPolicy::kInterpolate:
      return "interpolate";
    case MissingPolicy::kMeanFill:
      return "mean-fill";
  }
  return "?";
}

bool HasMissing(SeriesView x) {
  for (double v : x) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

std::size_t CountMissing(SeriesView x) {
  std::size_t count = 0;
  for (double v : x) {
    if (!std::isfinite(v)) ++count;
  }
  return count;
}

bool IsConstant(SeriesView x) {
  bool seen = false;
  double first = 0.0;
  for (double v : x) {
    if (!std::isfinite(v)) continue;
    if (!seen) {
      first = v;
      seen = true;
    } else if (v != first) {
      return false;
    }
  }
  return true;
}

common::Status FillMissingInPlace(MutableSeriesView x, MissingPolicy policy) {
  if (x.empty()) {
    return common::Status::InvalidArgument("cannot repair an empty series");
  }
  const std::size_t missing = CountMissing(x);
  if (missing == 0) return common::Status::OK();
  if (policy == MissingPolicy::kReject) {
    return common::Status::InvalidArgument(
        std::to_string(missing) + " missing value(s) under the reject policy");
  }
  if (missing == x.size()) {
    return common::Status::InvalidArgument(
        "all " + std::to_string(missing) + " values are missing");
  }
  const std::size_t m = x.size();

  if (policy == MissingPolicy::kMeanFill) {
    double sum = 0.0;
    for (double v : x) {
      if (std::isfinite(v)) sum += v;
    }
    const double mean = sum / static_cast<double>(m - missing);
    for (double& v : x) {
      if (!std::isfinite(v)) v = mean;
    }
    return common::Status::OK();
  }

  // kInterpolate: bridge each gap linearly between its finite neighbors;
  // extend boundary gaps from the nearest finite value.
  std::size_t i = 0;
  while (i < m) {
    if (std::isfinite(x[i])) {
      ++i;
      continue;
    }
    std::size_t gap_end = i;  // One past the last missing index of this gap.
    while (gap_end < m && !std::isfinite(x[gap_end])) ++gap_end;
    const bool has_left = i > 0;
    const bool has_right = gap_end < m;
    if (has_left && has_right) {
      const double left = x[i - 1];
      const double right = x[gap_end];
      const double span = static_cast<double>(gap_end - i + 1);
      for (std::size_t t = i; t < gap_end; ++t) {
        const double w = static_cast<double>(t - i + 1) / span;
        x[t] = left + w * (right - left);
      }
    } else {
      const double fill = has_left ? x[i - 1] : x[gap_end];
      for (std::size_t t = i; t < gap_end; ++t) x[t] = fill;
    }
    i = gap_end;
  }
  return common::Status::OK();
}

Series ResampleLinear(SeriesView x, std::size_t target_length) {
  KSHAPE_CHECK_MSG(!x.empty(), "cannot resample an empty series");
  KSHAPE_CHECK_MSG(target_length >= 1, "resample target must be >= 1");
  if (x.size() == target_length) return Series(x.begin(), x.end());
  const std::size_t m = x.size();
  Series out(target_length);
  if (m == 1 || target_length == 1) {
    std::fill(out.begin(), out.end(), x[0]);
    return out;
  }
  const double step = static_cast<double>(m - 1) /
                      static_cast<double>(target_length - 1);
  for (std::size_t t = 0; t < target_length; ++t) {
    const double pos = static_cast<double>(t) * step;
    const std::size_t lo = std::min(static_cast<std::size_t>(pos), m - 2);
    const double w = pos - static_cast<double>(lo);
    out[t] = x[lo] + w * (x[lo + 1] - x[lo]);
  }
  return out;
}

std::size_t ResolveTargetLength(const std::vector<Series>& series,
                                const ConditioningOptions& options) {
  if (options.target_length != 0) return options.target_length;
  if (series.empty()) return 0;
  std::size_t lo = series[0].size();
  std::size_t hi = series[0].size();
  for (const Series& s : series) {
    lo = std::min(lo, s.size());
    hi = std::max(hi, s.size());
  }
  return options.length_policy == LengthPolicy::kTruncate ? lo : hi;
}

common::StatusOr<Series> ConditionSeries(SeriesView x,
                                         std::size_t target_length,
                                         const ConditioningOptions& options) {
  if (x.empty()) {
    return common::Status::InvalidArgument("cannot condition an empty series");
  }
  KSHAPE_CHECK_MSG(target_length >= 1, "target length must be >= 1");
  Series out(x.begin(), x.end());
  common::Status status = FillMissingInPlace(&out, options.missing_policy);
  if (!status.ok()) return status;
  if (out.size() == target_length) return out;

  const std::string mismatch = "length " + std::to_string(out.size()) +
                               " != target " + std::to_string(target_length);
  switch (options.length_policy) {
    case LengthPolicy::kReject:
      return common::Status::InvalidArgument(mismatch +
                                             " under the reject policy");
    case LengthPolicy::kPadZeros:
      if (out.size() > target_length) {
        return common::Status::OutOfRange(
            mismatch + ": the pad policy cannot shorten a series");
      }
      out.resize(target_length, 0.0);
      return out;
    case LengthPolicy::kTruncate:
      if (out.size() < target_length) {
        return common::Status::OutOfRange(
            mismatch + ": the truncate policy cannot extend a series");
      }
      out.resize(target_length);
      return out;
    case LengthPolicy::kResample:
      return ResampleLinear(out, target_length);
  }
  return common::Status::Internal("unknown length policy");
}

common::StatusOr<Dataset> ConditionToDataset(
    const std::vector<Series>& series, const std::vector<int>& labels,
    const std::string& name, const ConditioningOptions& options) {
  if (series.empty()) {
    return common::Status::InvalidArgument("cannot condition an empty batch");
  }
  if (series.size() != labels.size()) {
    return common::Status::InvalidArgument(
        std::to_string(series.size()) + " series but " +
        std::to_string(labels.size()) + " labels");
  }
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].empty()) {
      return common::Status::InvalidArgument(
          "series " + std::to_string(i) + " is empty");
    }
  }
  const std::size_t target = ResolveTargetLength(series, options);
  Dataset dataset(name);
  for (std::size_t i = 0; i < series.size(); ++i) {
    common::StatusOr<Series> conditioned =
        ConditionSeries(series[i], target, options);
    if (!conditioned.ok()) {
      return common::Status(conditioned.status().code(),
                            "series " + std::to_string(i) + ": " +
                                conditioned.status().message());
    }
    dataset.Add(std::move(conditioned).value(), labels[i]);
  }
  return dataset;
}

common::Status ConditionDatasetInPlace(Dataset* dataset,
                                       const ConditioningOptions& options) {
  KSHAPE_CHECK(dataset != nullptr);
  if (dataset->empty()) {
    return common::Status::InvalidArgument("cannot condition an empty dataset");
  }
  std::vector<Series> rows;
  rows.reserve(dataset->size());
  for (std::size_t i = 0; i < dataset->size(); ++i) {
    rows.push_back(dataset->series(i));
  }
  common::StatusOr<Dataset> conditioned =
      ConditionToDataset(rows, dataset->labels(), dataset->name(), options);
  if (!conditioned.ok()) return conditioned.status();
  *dataset = std::move(conditioned).value();
  return common::Status::OK();
}

}  // namespace kshape::tseries
