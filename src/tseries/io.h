#ifndef KSHAPE_TSERIES_IO_H_
#define KSHAPE_TSERIES_IO_H_

#include <string>

#include "common/status.h"
#include "tseries/conditioning.h"
#include "tseries/time_series.h"

namespace kshape::tseries {

/// Reads a dataset in the UCR archive text layout: one series per line, the
/// first field is the integer class label, remaining fields are the values.
/// Fields may be separated by commas, spaces or tabs. All rows must have the
/// same number of values.
common::StatusOr<Dataset> ReadUcrFile(const std::string& path,
                                      const std::string& dataset_name);

/// Parses UCR-layout text from a string (same format as ReadUcrFile); useful
/// for tests and embedded data.
common::StatusOr<Dataset> ParseUcrText(const std::string& text,
                                       const std::string& dataset_name);

/// Lenient variants for hostile archives: rows may have differing lengths and
/// values may be missing — "nan" (any case), "inf"/"-inf", or "?" all parse
/// as a missing observation. The parsed batch is passed through the
/// conditioning policies of `options` (see tseries/conditioning.h) to produce
/// an equal-length, fully-finite Dataset. With both policies at kReject these
/// behave like the strict variants above.
common::StatusOr<Dataset> ReadUcrFile(const std::string& path,
                                      const std::string& dataset_name,
                                      const ConditioningOptions& options);

common::StatusOr<Dataset> ParseUcrText(const std::string& text,
                                       const std::string& dataset_name,
                                       const ConditioningOptions& options);

/// Writes a dataset in the UCR text layout (comma-separated).
common::Status WriteUcrFile(const Dataset& dataset, const std::string& path);

}  // namespace kshape::tseries

#endif  // KSHAPE_TSERIES_IO_H_
