#include "tseries/time_series.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace kshape::tseries {

void Dataset::Add(Series series, int label) {
  KSHAPE_CHECK_MSG(!series.empty(), "empty series");
  if (series_.empty()) {
    length_ = series.size();
  } else {
    KSHAPE_CHECK_MSG(series.size() == length_,
                     "all series in a dataset must share one length");
  }
  series_.push_back(std::move(series));
  labels_.push_back(label);
}

int Dataset::NumClasses() const {
  return static_cast<int>(DistinctLabels().size());
}

std::vector<int> Dataset::DistinctLabels() const {
  std::set<int> distinct(labels_.begin(), labels_.end());
  return std::vector<int>(distinct.begin(), distinct.end());
}

Dataset Dataset::Subset(const std::vector<std::size_t>& indices,
                        std::string name) const {
  Dataset out(std::move(name));
  for (std::size_t idx : indices) {
    KSHAPE_CHECK(idx < series_.size());
    out.Add(series_[idx], labels_[idx]);
  }
  return out;
}

void Dataset::Append(const Dataset& other) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    Add(other.series(i), other.label(i));
  }
}

Dataset SplitDataset::Fused() const {
  Dataset fused(train.name());
  fused.Append(train);
  fused.Append(test);
  return fused;
}

}  // namespace kshape::tseries
