#include "tseries/time_series.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace kshape::tseries {

void SeriesStore::Reserve(std::size_t rows, std::size_t length) {
  KSHAPE_CHECK_MSG(length > 0, "empty series");
  if (length_ == 0 && rows_ == 0) {
    length_ = length;
  } else {
    KSHAPE_CHECK_MSG(length == length_,
                     "all series in a store must share one length");
  }
  data_.reserve(data_.size() + rows * length);
}

void SeriesStore::Append(SeriesView row) {
  KSHAPE_CHECK_MSG(!row.empty(), "empty series");
  if (rows_ == 0 && length_ == 0) {
    length_ = row.size();
  } else {
    KSHAPE_CHECK_MSG(row.size() == length_,
                     "all series in a store must share one length");
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
}

SeriesBatch::SeriesBatch(const std::vector<Series>& rows) : nested_(&rows) {
  n_ = rows.size();
  m_ = rows.empty() ? 0 : rows[0].size();
  for (const Series& row : rows) {
    KSHAPE_CHECK_MSG(row.size() == m_,
                     "all series in a batch must share one length");
  }
}

void Dataset::Add(SeriesView series, int label) {
  store_.Append(series);
  labels_.push_back(label);
}

void Dataset::Reserve(std::size_t rows, std::size_t length) {
  store_.Reserve(rows, length);
  labels_.reserve(labels_.size() + rows);
}

int Dataset::NumClasses() const {
  return static_cast<int>(DistinctLabels().size());
}

std::vector<int> Dataset::DistinctLabels() const {
  std::set<int> distinct(labels_.begin(), labels_.end());
  return std::vector<int>(distinct.begin(), distinct.end());
}

Dataset Dataset::Subset(const std::vector<std::size_t>& indices,
                        std::string name) const {
  Dataset out(std::move(name));
  if (!indices.empty()) out.Reserve(indices.size(), length());
  for (std::size_t idx : indices) {
    KSHAPE_CHECK(idx < store_.size());
    out.Add(store_.view(idx), labels_[idx]);
  }
  return out;
}

void Dataset::Append(const Dataset& other) {
  if (other.empty()) return;
  Reserve(other.size(), other.length());
  for (std::size_t i = 0; i < other.size(); ++i) {
    Add(other.view(i), other.label(i));
  }
}

Dataset SplitDataset::Fused() const {
  Dataset fused(train.name());
  const std::size_t rows = train.size() + test.size();
  const std::size_t length = train.empty() ? test.length() : train.length();
  if (rows > 0) fused.Reserve(rows, length);
  fused.Append(train);
  fused.Append(test);
  return fused;
}

}  // namespace kshape::tseries
