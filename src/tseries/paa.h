#ifndef KSHAPE_TSERIES_PAA_H_
#define KSHAPE_TSERIES_PAA_H_

#include <cstddef>

#include "tseries/time_series.h"

namespace kshape::tseries {

/// Piecewise Aggregate Approximation (Keogh et al.): reduces a series of
/// length m to `segments` values, each the mean of an equal-width frame.
/// §3.3 of the paper suggests exactly this for the rare m >> n regime, where
/// k-Shape's O(m^2)/O(m^3) refinement terms dominate: reduce the length
/// first, cluster the sketches. Handles m not divisible by `segments` by
/// weighting boundary samples fractionally (the standard generalized PAA).
/// Requires 1 <= segments <= x.size().
Series Paa(SeriesView x, std::size_t segments);

/// Reconstructs a length-`length` series from a PAA sketch by holding each
/// segment value constant over its frame (the usual PAA inverse; useful for
/// visual checks and error measurement).
Series PaaReconstruct(SeriesView sketch, std::size_t length);

/// Applies Paa to every series of a dataset, preserving labels and name.
Dataset PaaDataset(const Dataset& dataset, std::size_t segments);

}  // namespace kshape::tseries

#endif  // KSHAPE_TSERIES_PAA_H_
