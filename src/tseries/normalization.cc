#include "tseries/normalization.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "simd/dispatch.h"

namespace kshape::tseries {

double Mean(SeriesView x) {
  KSHAPE_CHECK(!x.empty());
  return simd::Sum(x) / static_cast<double>(x.size());
}

double StdDev(SeriesView x) {
  KSHAPE_CHECK(!x.empty());
  return std::sqrt(simd::MeanVariance(x).variance);
}

void ZNormalizeInPlace(MutableSeriesView x) {
  KSHAPE_CHECK(!x.empty());
  // One fused statistics pass, then the vectorized apply pass. Dividing by
  // sigma is replaced by multiplying with 1/sigma (one extra rounding,
  // covered by the epsilon contract against the legacy loop) because packed
  // multiplies run an order of magnitude wider than packed divides.
  const simd::MeanVar mv = simd::MeanVariance(x);
  const double sigma = std::sqrt(mv.variance);
  if (sigma == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    return;
  }
  simd::ApplyZNorm(x, mv.mean, 1.0 / sigma);
}

Series ZNormalized(SeriesView x) {
  Series out(x.begin(), x.end());
  ZNormalizeInPlace(&out);
  return out;
}

void ZNormalizeDataset(Dataset* dataset) {
  dataset->ApplyInPlace([](MutableSeriesView row) { ZNormalizeInPlace(row); });
}

void MinMaxNormalizeInPlace(MutableSeriesView x) {
  KSHAPE_CHECK(!x.empty());
  const auto [lo_it, hi_it] = std::minmax_element(x.begin(), x.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  if (hi == lo) {
    std::fill(x.begin(), x.end(), 0.0);
    return;
  }
  for (double& v : x) v = (v - lo) / (hi - lo);
}

Series MinMaxNormalized(SeriesView x) {
  Series out(x.begin(), x.end());
  MinMaxNormalizeInPlace(&out);
  return out;
}

double OptimalScalingCoefficient(SeriesView x, SeriesView y) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "length mismatch");
  const double den = simd::SumSquares(y);
  if (den == 0.0) return 0.0;
  return simd::Dot(x, y) / den;
}

Series OptimallyScaled(SeriesView x, SeriesView y) {
  const double c = OptimalScalingCoefficient(x, y);
  Series out(y.begin(), y.end());
  simd::Scale(out, c);
  return out;
}

void RandomlyRescaleDataset(Dataset* dataset, common::Rng* rng, double lo,
                            double hi) {
  KSHAPE_CHECK(rng != nullptr);
  dataset->ApplyInPlace([&](MutableSeriesView row) {
    const double factor = rng->Uniform(lo, hi);
    for (double& v : row) v *= factor;
  });
}

Series ShiftWithZeroFill(SeriesView x, int shift) {
  const int m = static_cast<int>(x.size());
  KSHAPE_CHECK_MSG(shift > -m && shift < m, "shift out of range");
  Series out(x.size(), 0.0);
  if (shift >= 0) {
    for (int i = 0; i + shift < m; ++i) out[i + shift] = x[i];
  } else {
    for (int i = -shift; i < m; ++i) out[i + shift] = x[i];
  }
  return out;
}

Series DerivativeTransform(SeriesView x) {
  const std::size_t m = x.size();
  KSHAPE_CHECK_MSG(m >= 2, "derivative needs length >= 2");
  Series d(m);
  for (std::size_t i = 1; i + 1 < m; ++i) {
    d[i] = ((x[i] - x[i - 1]) + (x[i + 1] - x[i - 1]) / 2.0) / 2.0;
  }
  d[0] = d.size() > 2 ? d[1] : x[1] - x[0];
  d[m - 1] = m > 2 ? d[m - 2] : x[1] - x[0];
  return d;
}

}  // namespace kshape::tseries
