#ifndef KSHAPE_TSERIES_NORMALIZATION_H_
#define KSHAPE_TSERIES_NORMALIZATION_H_

#include "common/random.h"
#include "tseries/time_series.h"

namespace kshape::tseries {

/// Arithmetic mean of the series. Requires non-empty input.
double Mean(SeriesView x);

/// Population standard deviation (divides by m, matching MATLAB's std(x,1)
/// convention used by the reference k-Shape implementation).
double StdDev(SeriesView x);

/// Z-normalizes in place: (x - mean) / stddev, giving the scaling and
/// translation invariances of §2.2 of the paper. A constant series (stddev 0)
/// is mapped to all zeros. Takes a mutable view, so it applies equally to an
/// owned Series and to a SeriesStore row.
void ZNormalizeInPlace(MutableSeriesView x);
inline void ZNormalizeInPlace(Series* x) {
  ZNormalizeInPlace(MutableSeriesView(*x));
}

/// Returns a z-normalized copy.
Series ZNormalized(SeriesView x);

/// Z-normalizes every series of the dataset in place (§4: "our experiments
/// start with a z-normalization step for all datasets").
void ZNormalizeDataset(Dataset* dataset);

/// Min-max normalizes in place so values fall in [0, 1] (the
/// "ValuesBetween0-1" normalization of Appendix A). A constant series is
/// mapped to all zeros.
void MinMaxNormalizeInPlace(MutableSeriesView x);
inline void MinMaxNormalizeInPlace(Series* x) {
  MinMaxNormalizeInPlace(MutableSeriesView(*x));
}

/// Returns a min-max normalized copy.
Series MinMaxNormalized(SeriesView x);

/// Optimal scaling coefficient c = (x . y) / (y . y) of Appendix A: the least
/// squares amplitude match of y towards x. Returns 0 for an all-zero y.
double OptimalScalingCoefficient(SeriesView x, SeriesView y);

/// Returns c * y with c = OptimalScalingCoefficient(x, y).
Series OptimallyScaled(SeriesView x, SeriesView y);

/// Multiplies every series of the dataset by an independent random factor
/// drawn uniformly from [lo, hi] (Appendix A's construction of unnormalized
/// data: "we first multiply each sequence with a random number chosen
/// individually for that sequence").
void RandomlyRescaleDataset(Dataset* dataset, common::Rng* rng,
                            double lo = 0.5, double hi = 10.0);

/// Shifts the series circularly by `shift` positions with zero fill (the
/// paper's Equation 5): shift >= 0 delays the series (prepends zeros),
/// shift < 0 advances it (appends zeros).
Series ShiftWithZeroFill(SeriesView x, int shift);

/// Keogh-Pazzani derivative estimate, the transform behind derivative DTW:
/// d_i = ((x_i - x_{i-1}) + (x_{i+1} - x_{i-1}) / 2) / 2 for interior points,
/// with the boundary values replicated from their neighbors. Requires
/// length >= 2.
Series DerivativeTransform(SeriesView x);

}  // namespace kshape::tseries

#endif  // KSHAPE_TSERIES_NORMALIZATION_H_
