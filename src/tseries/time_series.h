#ifndef KSHAPE_TSERIES_TIME_SERIES_H_
#define KSHAPE_TSERIES_TIME_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace kshape::tseries {

/// A univariate time series of equally spaced observations.
///
/// Represented as a bare vector: every hot kernel in the library (FFT
/// cross-correlation, DTW dynamic programs) works on contiguous doubles, and a
/// wrapper class would only add friction at those boundaries.
using Series = std::vector<double>;

/// A collection of equal-length, class-labeled time series.
///
/// Mirrors a dataset of the UCR archive: `labels()[i]` is the (gold) class of
/// `series()[i]`, interpreted in clustering experiments as the cluster the
/// sequence belongs to. The class invariant is that all series share one
/// length and sizes agree, enforced on every mutation.
class Dataset {
 public:
  /// Creates an empty dataset with the given name.
  explicit Dataset(std::string name = "") : name_(std::move(name)) {}

  /// Appends a labeled series. The first Add fixes the series length; later
  /// calls must match it.
  void Add(Series series, int label);

  /// Dataset name (e.g. "CBF").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of series.
  std::size_t size() const { return series_.size(); }
  bool empty() const { return series_.empty(); }

  /// Length m shared by all series (0 when empty).
  std::size_t length() const { return length_; }

  const std::vector<Series>& series() const { return series_; }
  const std::vector<int>& labels() const { return labels_; }

  const Series& series(std::size_t i) const { return series_[i]; }
  int label(std::size_t i) const { return labels_[i]; }

  /// Mutable access to series i (length must be preserved by the caller;
  /// intended for in-place normalization).
  Series* mutable_series(std::size_t i) { return &series_[i]; }

  /// Number of distinct labels.
  int NumClasses() const;

  /// The distinct labels in sorted order.
  std::vector<int> DistinctLabels() const;

  /// Returns a new dataset holding the rows with the given indices.
  Dataset Subset(const std::vector<std::size_t>& indices,
                 std::string name) const;

  /// Concatenates `other` onto this dataset (used to fuse train + test for
  /// the clustering experiments, as in §4 of the paper). Lengths must match.
  void Append(const Dataset& other);

 private:
  std::string name_;
  std::size_t length_ = 0;
  std::vector<Series> series_;
  std::vector<int> labels_;
};

/// A dataset split into train and test parts, following the UCR layout used
/// for the 1-NN distance-measure evaluation (§4 of the paper).
struct SplitDataset {
  Dataset train;
  Dataset test;

  /// The train and test parts fused into one dataset (used for clustering).
  Dataset Fused() const;

  const std::string& name() const { return train.name(); }
};

}  // namespace kshape::tseries

#endif  // KSHAPE_TSERIES_TIME_SERIES_H_
