#ifndef KSHAPE_TSERIES_TIME_SERIES_H_
#define KSHAPE_TSERIES_TIME_SERIES_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>
#include <initializer_list>

#include "common/status.h"

namespace kshape::tseries {

/// A univariate time series of equally spaced observations.
///
/// Represented as a bare vector: every hot kernel in the library (FFT
/// cross-correlation, DTW dynamic programs) works on contiguous doubles, and a
/// wrapper class would only add friction at those boundaries. Owned values
/// (centroids, conditioned copies, test fixtures) stay `Series`; function
/// parameters take views.
using Series = std::vector<double>;

/// Read-only view of one series. Kernels take SeriesView instead of
/// `const Series&` so a series can live anywhere — inside a contiguous
/// SeriesStore row, an owned Series, or a scratch buffer — without a copy.
/// A `Series` converts implicitly, so call sites holding vectors are
/// unaffected. Views never own: the buffer behind a view must outlive it.
using SeriesView = std::span<const double>;

/// Mutable view of one series. The length is fixed by the owner; only the
/// sample values may change. Used by in-place transforms (z-normalization,
/// missing-value fill) that never resize.
using MutableSeriesView = std::span<double>;

/// A contiguous row-major pool owning all samples of an equal-length series
/// collection: row i occupies `data()[i*length() .. (i+1)*length())`. One
/// allocation for the whole dataset means pairwise kernels stream one buffer
/// instead of chasing a pointer per row — the layout production scan engines
/// use, and the prerequisite for SIMD kernels and zero-copy sharding.
///
/// Invariants: the first Append fixes the row length (length lock); every
/// later row must match it; rows are non-empty. Views returned by view() /
/// MutableView() are invalidated by Append/Reserve (the pool may reallocate),
/// never by reads.
class SeriesStore {
 public:
  SeriesStore() = default;

  /// Pre-allocates capacity for `rows` rows of length `length` and locks the
  /// row length (so a store fused from known parts allocates exactly once).
  /// Only the length of the first Reserve/Append sticks; later calls must
  /// agree with it.
  void Reserve(std::size_t rows, std::size_t length);

  /// Appends one row by copying its samples into the pool. The first
  /// Append/Reserve fixes the row length; later rows must match it.
  /// Invalidates all outstanding views into this store.
  void Append(SeriesView row);

  /// Number of rows.
  std::size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Row length m shared by all rows (0 until the first Reserve/Append).
  std::size_t length() const { return length_; }

  /// Read-only view of row i. Valid until the next Append/Reserve.
  SeriesView view(std::size_t i) const {
    return SeriesView(data_.data() + i * length_, length_);
  }
  SeriesView operator[](std::size_t i) const { return view(i); }

  /// Mutable view of row i (values only; the length is locked). Valid until
  /// the next Append/Reserve.
  MutableSeriesView MutableView(std::size_t i) {
    return MutableSeriesView(data_.data() + i * length_, length_);
  }

  /// The underlying row-major buffer (size() * length() doubles).
  const double* data() const { return data_.data(); }

 private:
  std::size_t length_ = 0;
  std::size_t rows_ = 0;
  std::vector<double> data_;
};

/// Non-owning view of n equal-length series — the batch analogue of
/// SeriesView, and the parameter type of every batch interface (clustering,
/// pairwise matrices, batch scanners, shape extraction).
///
/// Two representations share one type so both storage layouts flow through
/// the same interfaces without copying:
///  - contiguous: a row-major buffer (from a SeriesStore / Dataset) — the
///    hot path; kernels stream one allocation.
///  - nested: a `const std::vector<Series>*` fallback for ad-hoc
///    collections (centroid sets, test fixtures). Constructing this form
///    checks the equal-length invariant, so untrusted ragged input must go
///    through a Status boundary (ValidateClusteringInputs / conditioning)
///    first.
///
/// A batch is a trivially copyable view: pass it by value, and keep the
/// owner (store or vector) alive for the batch's lifetime. Mutating or
/// growing the owner invalidates the batch.
class SeriesBatch {
 public:
  /// Empty batch.
  SeriesBatch() = default;

  /// Views `n` rows of length `m` starting at `data` (row-major).
  SeriesBatch(const double* data, std::size_t n, std::size_t m)
      : data_(data), n_(n), m_(m) {}

  /// Views all rows of a contiguous store.
  SeriesBatch(const SeriesStore& store)  // NOLINT(runtime/explicit)
      : data_(store.data()), n_(store.size()), m_(store.length()) {}

  /// Views a nested vector-of-vectors. Checks that all rows share one
  /// length (the batch invariant); validate untrusted input before this.
  SeriesBatch(const std::vector<Series>& rows);  // NOLINT(runtime/explicit)

  /// Number of series.
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Length m shared by all series (0 when empty).
  std::size_t length() const { return m_; }

  /// View of series i.
  SeriesView operator[](std::size_t i) const {
    if (nested_ != nullptr) return SeriesView((*nested_)[i]);
    return SeriesView(data_ + i * m_, m_);
  }

  /// True when the batch views one contiguous row-major buffer.
  bool contiguous() const { return nested_ == nullptr; }

  /// Row-major buffer when contiguous() (nullptr otherwise).
  const double* data() const { return contiguous() ? data_ : nullptr; }

 private:
  const double* data_ = nullptr;
  const std::vector<Series>* nested_ = nullptr;
  std::size_t n_ = 0;
  std::size_t m_ = 0;
};

/// A collection of equal-length, class-labeled time series.
///
/// Mirrors a dataset of the UCR archive: `label(i)` is the (gold) class of
/// row i, interpreted in clustering experiments as the cluster the sequence
/// belongs to. Backed by a contiguous SeriesStore; the class invariant is
/// that all series share one length and sizes agree, enforced on every
/// mutation.
class Dataset {
 public:
  /// Creates an empty dataset with the given name.
  explicit Dataset(std::string name = "") : name_(std::move(name)) {}

  /// Appends a labeled series (copied into the contiguous store). The first
  /// Add fixes the series length; later calls must match it. Invalidates all
  /// outstanding views and batches over this dataset.
  void Add(SeriesView series, int label);
  void Add(std::initializer_list<double> series, int label) {
    Add(SeriesView(series.begin(), series.size()), label);
  }

  /// Pre-allocates the store for `rows` series of length `length` (one
  /// allocation up front instead of growth doubling).
  void Reserve(std::size_t rows, std::size_t length);

  /// Dataset name (e.g. "CBF").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Number of series.
  std::size_t size() const { return store_.size(); }
  bool empty() const { return store_.empty(); }

  /// Length m shared by all series (0 when empty).
  std::size_t length() const { return store_.length(); }

  /// The contiguous row-major pool backing this dataset.
  const SeriesStore& store() const { return store_; }

  /// Batch view over all rows — what clustering / pairwise / scanner
  /// interfaces take. Valid until the next Add/Append/Reserve.
  SeriesBatch batch() const { return SeriesBatch(store_); }

  const std::vector<int>& labels() const { return labels_; }

  /// Read-only view of series i. Valid until the next Add/Append/Reserve.
  SeriesView view(std::size_t i) const { return store_.view(i); }

  /// Compatibility shim: series i copied into an owned vector. Prefer
  /// view(i); use this only where an owned Series is genuinely needed.
  Series series(std::size_t i) const {
    const SeriesView v = store_.view(i);
    return Series(v.begin(), v.end());
  }

  int label(std::size_t i) const { return labels_[i]; }

  /// Mutable view of series i (values only; the length is locked; intended
  /// for in-place normalization). Valid until the next Add/Append/Reserve —
  /// unlike the raw pointer it replaces, a view's extent also documents that
  /// resizing is impossible.
  MutableSeriesView MutableView(std::size_t i) {
    return store_.MutableView(i);
  }

  /// Applies `fn(MutableSeriesView)` to every row in index order — the
  /// bulk in-place transform API (z-normalize a dataset, fill missing
  /// values) that replaces handing out raw pointers.
  template <typename Fn>
  void ApplyInPlace(Fn&& fn) {
    for (std::size_t i = 0; i < store_.size(); ++i) fn(store_.MutableView(i));
  }

  /// Number of distinct labels.
  int NumClasses() const;

  /// The distinct labels in sorted order.
  std::vector<int> DistinctLabels() const;

  /// Returns a new dataset holding the rows with the given indices.
  Dataset Subset(const std::vector<std::size_t>& indices,
                 std::string name) const;

  /// Concatenates `other` onto this dataset (used to fuse train + test for
  /// the clustering experiments, as in §4 of the paper). Lengths must match.
  void Append(const Dataset& other);

 private:
  std::string name_;
  SeriesStore store_;
  std::vector<int> labels_;
};

/// A dataset split into train and test parts, following the UCR layout used
/// for the 1-NN distance-measure evaluation (§4 of the paper).
struct SplitDataset {
  Dataset train;
  Dataset test;

  /// The train and test parts fused into one dataset (used for clustering).
  /// Reserves the fused store up front: one allocation, no per-series
  /// reallocation churn.
  Dataset Fused() const;

  const std::string& name() const { return train.name(); }
};

}  // namespace kshape::tseries

#endif  // KSHAPE_TSERIES_TIME_SERIES_H_
