#include "tseries/paa.h"

#include <algorithm>

#include "common/check.h"

namespace kshape::tseries {

Series Paa(SeriesView x, std::size_t segments) {
  const std::size_t m = x.size();
  KSHAPE_CHECK(segments >= 1 && segments <= m);
  if (segments == m) return Series(x.begin(), x.end());

  // Generalized PAA: segment s covers the real interval
  // [s * m / segments, (s + 1) * m / segments); samples straddling a
  // boundary contribute fractionally to both sides.
  Series sketch(segments, 0.0);
  const double frame = static_cast<double>(m) / static_cast<double>(segments);
  for (std::size_t s = 0; s < segments; ++s) {
    const double start = static_cast<double>(s) * frame;
    const double end = start + frame;
    double sum = 0.0;
    for (std::size_t t = static_cast<std::size_t>(start);
         t < m && static_cast<double>(t) < end; ++t) {
      const double lo = std::max(start, static_cast<double>(t));
      const double hi = std::min(end, static_cast<double>(t) + 1.0);
      if (hi > lo) sum += x[t] * (hi - lo);
    }
    sketch[s] = sum / frame;
  }
  return sketch;
}

Series PaaReconstruct(SeriesView sketch, std::size_t length) {
  const std::size_t segments = sketch.size();
  KSHAPE_CHECK(segments >= 1 && segments <= length);
  Series out(length);
  const double frame =
      static_cast<double>(length) / static_cast<double>(segments);
  for (std::size_t t = 0; t < length; ++t) {
    std::size_t s = static_cast<std::size_t>(static_cast<double>(t) / frame);
    if (s >= segments) s = segments - 1;
    out[t] = sketch[s];
  }
  return out;
}

Dataset PaaDataset(const Dataset& dataset, std::size_t segments) {
  Dataset out(dataset.name() + "-PAA" + std::to_string(segments));
  if (!dataset.empty()) out.Reserve(dataset.size(), segments);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    out.Add(Paa(dataset.view(i), segments), dataset.label(i));
  }
  return out;
}

}  // namespace kshape::tseries
