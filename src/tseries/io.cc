#include "tseries/io.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

namespace kshape::tseries {

namespace {

// Splits a line on commas, spaces, and tabs, skipping empty fields.
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',' || c == ' ' || c == '\t' || c == '\r') {
      if (!current.empty()) {
        fields.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) fields.push_back(current);
  return fields;
}

common::Status ParseDouble(const std::string& field, double* out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(value)) {
    return common::Status::InvalidArgument("bad numeric field: " + field);
  }
  *out = value;
  return common::Status::OK();
}

// Parses a value field for the lenient loader: "?" and any non-finite
// rendering ("nan", "inf", ...) become NaN missing markers.
common::Status ParseValueOrMissing(const std::string& field, double* out) {
  if (field == "?") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return common::Status::OK();
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return common::Status::InvalidArgument("bad numeric field: " + field);
  }
  *out = std::isfinite(value) && errno != ERANGE
             ? value
             : std::numeric_limits<double>::quiet_NaN();
  return common::Status::OK();
}

}  // namespace

common::StatusOr<Dataset> ParseUcrText(const std::string& text,
                                       const std::string& dataset_name) {
  Dataset dataset(dataset_name);
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::vector<std::string> fields = SplitFields(line);
    if (fields.empty()) continue;  // Skip blank lines.
    if (fields.size() < 2) {
      return common::Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": need a label and at least one value");
    }
    double label_value = 0.0;
    common::Status st = ParseDouble(fields[0], &label_value);
    if (!st.ok()) return st;
    const int label = static_cast<int>(std::lround(label_value));

    Series series;
    series.reserve(fields.size() - 1);
    for (std::size_t i = 1; i < fields.size(); ++i) {
      double value = 0.0;
      st = ParseDouble(fields[i], &value);
      if (!st.ok()) return st;
      series.push_back(value);
    }
    if (!dataset.empty() && series.size() != dataset.length()) {
      return common::Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": length " +
          std::to_string(series.size()) + " != dataset length " +
          std::to_string(dataset.length()));
    }
    dataset.Add(std::move(series), label);
  }
  if (dataset.empty()) {
    return common::Status::InvalidArgument("no series in input");
  }
  return dataset;
}

common::StatusOr<Dataset> ParseUcrText(const std::string& text,
                                       const std::string& dataset_name,
                                       const ConditioningOptions& options) {
  std::vector<Series> series;
  std::vector<int> labels;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const std::vector<std::string> fields = SplitFields(line);
    if (fields.empty()) continue;  // Skip blank lines.
    if (fields.size() < 2) {
      return common::Status::InvalidArgument(
          "line " + std::to_string(line_number) +
          ": need a label and at least one value");
    }
    double label_value = 0.0;
    common::Status st = ParseDouble(fields[0], &label_value);
    if (!st.ok()) {
      return common::Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": " + st.message());
    }
    Series row;
    row.reserve(fields.size() - 1);
    for (std::size_t i = 1; i < fields.size(); ++i) {
      double value = 0.0;
      st = ParseValueOrMissing(fields[i], &value);
      if (!st.ok()) {
        return common::Status::InvalidArgument(
            "line " + std::to_string(line_number) + ": " + st.message());
      }
      row.push_back(value);
    }
    series.push_back(std::move(row));
    labels.push_back(static_cast<int>(std::lround(label_value)));
  }
  if (series.empty()) {
    return common::Status::InvalidArgument("no series in input");
  }
  return ConditionToDataset(series, labels, dataset_name, options);
}

common::StatusOr<Dataset> ReadUcrFile(const std::string& path,
                                      const std::string& dataset_name) {
  std::ifstream file(path);
  if (!file) {
    return common::Status::IoError("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseUcrText(buffer.str(), dataset_name);
}

common::StatusOr<Dataset> ReadUcrFile(const std::string& path,
                                      const std::string& dataset_name,
                                      const ConditioningOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return common::Status::IoError("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseUcrText(buffer.str(), dataset_name, options);
}

common::Status WriteUcrFile(const Dataset& dataset, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return common::Status::IoError("cannot open " + path + " for writing: " +
                                   std::strerror(errno));
  }
  file.precision(17);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    file << dataset.label(i);
    for (double v : dataset.view(i)) file << ',' << v;
    file << '\n';
  }
  if (!file) {
    return common::Status::IoError("write failed for " + path);
  }
  return common::Status::OK();
}

}  // namespace kshape::tseries
