#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace kshape::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

void AddGaussianNoise(tseries::Series* x, double sigma, common::Rng* rng) {
  if (sigma <= 0.0) return;
  for (double& v : *x) v += rng->Gaussian(0.0, sigma);
}

// Samples a piecewise-linear template defined by (position, value) knots on
// [0, 1]; linear interpolation between knots.
double SampleTemplate(const std::vector<std::pair<double, double>>& knots,
                      double u) {
  KSHAPE_CHECK(knots.size() >= 2);
  if (u <= knots.front().first) return knots.front().second;
  for (std::size_t i = 1; i < knots.size(); ++i) {
    if (u <= knots[i].first) {
      const double u0 = knots[i - 1].first;
      const double u1 = knots[i].first;
      const double v0 = knots[i - 1].second;
      const double v1 = knots[i].second;
      const double w = (u - u0) / (u1 - u0);
      return v0 + w * (v1 - v0);
    }
  }
  return knots.back().second;
}

}  // namespace

tseries::Series MakeCbf(int klass, std::size_t m, common::Rng* rng) {
  KSHAPE_CHECK(klass >= 0 && klass < 3);
  KSHAPE_CHECK(rng != nullptr);
  const int mi = static_cast<int>(m);
  // Saito's parameters are defined for m = 128; scale the interval bounds.
  const double scale = static_cast<double>(mi) / 128.0;
  const double a = rng->Uniform(16.0 * scale, 32.0 * scale);
  const double b = a + rng->Uniform(32.0 * scale, 96.0 * scale);
  const double eta = rng->Gaussian();

  tseries::Series x(m, 0.0);
  for (int t = 0; t < mi; ++t) {
    const double td = static_cast<double>(t);
    double value = 0.0;
    if (td >= a && td <= b) {
      const double amplitude = 6.0 + eta;
      switch (klass) {
        case 0:  // Cylinder: flat top.
          value = amplitude;
          break;
        case 1:  // Bell: ramps up over [a, b].
          value = amplitude * (td - a) / (b - a);
          break;
        case 2:  // Funnel: ramps down over [a, b].
          value = amplitude * (b - td) / (b - a);
          break;
        default:
          break;
      }
    }
    x[t] = value + rng->Gaussian();
  }
  return x;
}

tseries::Series MakeEcgLike(int klass, std::size_t m, common::Rng* rng,
                            double noise_sigma) {
  KSHAPE_CHECK(klass >= 0 && klass < 2);
  KSHAPE_CHECK(rng != nullptr);
  // Class 0: sharp rise, drop, gradual increase (Figure 1, Class A).
  // Class 1: gradual increase, drop, gradual increase (Class B).
  // The pattern occupies 55% of the window and starts at a random offset in
  // the remaining 45% — heartbeats begin whenever the recording starts, so
  // instances are heavily out of phase (global misalignment) but a single
  // linear drift realigns them, exactly the regime of Figure 1.
  static const std::vector<std::pair<double, double>> kClassA = {
      {0.00, 0.0}, {0.10, 3.0}, {0.25, -2.0}, {0.85, 0.8}, {1.00, 0.0}};
  static const std::vector<std::pair<double, double>> kClassB = {
      {0.00, 0.0}, {0.50, 2.0}, {0.62, -2.0}, {0.85, 0.8}, {1.00, 0.0}};
  const auto& knots = klass == 0 ? kClassA : kClassB;

  const int mi = static_cast<int>(m);
  const int support = static_cast<int>(0.55 * mi);
  const int offset = rng->UniformInt(mi - support + 1);
  tseries::Series x(m, 0.0);
  const double amplitude = rng->Uniform(0.8, 1.2);
  for (int t = 0; t < support; ++t) {
    const double v = static_cast<double>(t) / static_cast<double>(support);
    x[offset + t] = amplitude * SampleTemplate(knots, v);
  }
  AddGaussianNoise(&x, noise_sigma, rng);
  return x;
}

tseries::Series MakeTwoPatterns(int klass, std::size_t m, common::Rng* rng) {
  KSHAPE_CHECK(klass >= 0 && klass < 4);
  KSHAPE_CHECK(rng != nullptr);
  const int mi = static_cast<int>(m);
  const int pattern_len = std::max(4, mi / 8);
  tseries::Series x(m);
  for (double& v : x) v = rng->Gaussian(0.0, 0.3);

  // Two disjoint pattern placements in the first and second half.
  const int max_start1 = mi / 2 - pattern_len;
  const int max_start2 = mi / 2 - pattern_len;
  const int start1 = rng->UniformInt(std::max(1, max_start1));
  const int start2 = mi / 2 + rng->UniformInt(std::max(1, max_start2));

  auto place_step = [&](int start, bool up) {
    // "Up" = low plateau then high plateau; "down" = the reverse.
    for (int t = 0; t < pattern_len; ++t) {
      const bool first_half = t < pattern_len / 2;
      const double level = (first_half == up) ? -2.0 : 2.0;
      x[start + t] = level + rng->Gaussian(0.0, 0.1);
    }
  };
  place_step(start1, klass / 2 == 0);
  place_step(start2, klass % 2 == 0);
  return x;
}

tseries::Series MakeSyntheticControl(int klass, std::size_t m,
                                     common::Rng* rng) {
  KSHAPE_CHECK(klass >= 0 && klass < 6);
  KSHAPE_CHECK(rng != nullptr);
  const int mi = static_cast<int>(m);
  tseries::Series x(m);
  const double base = 30.0;
  const double sigma = 2.0;
  const double trend = rng->Uniform(0.2, 0.5);
  const double cycle_amplitude = rng->Uniform(10.0, 15.0);
  const double cycle_period = rng->Uniform(10.0, 15.0);
  const double shift_magnitude = rng->Uniform(7.5, 20.0);
  const int shift_time = mi / 3 + rng->UniformInt(std::max(1, mi / 3));

  for (int t = 0; t < mi; ++t) {
    double v = base + sigma * rng->Gaussian();
    switch (klass) {
      case 0:  // Normal.
        break;
      case 1:  // Cyclic.
        v += cycle_amplitude * std::sin(2.0 * kPi * t / cycle_period);
        break;
      case 2:  // Increasing trend.
        v += trend * t;
        break;
      case 3:  // Decreasing trend.
        v -= trend * t;
        break;
      case 4:  // Upward shift.
        if (t >= shift_time) v += shift_magnitude;
        break;
      case 5:  // Downward shift.
        if (t >= shift_time) v -= shift_magnitude;
        break;
      default:
        break;
    }
    x[t] = v;
  }
  return x;
}

tseries::Series MakeShiftedSine(int klass, std::size_t m, common::Rng* rng,
                                double noise_sigma) {
  KSHAPE_CHECK(klass >= 0);
  KSHAPE_CHECK(rng != nullptr);
  const int mi = static_cast<int>(m);
  const double frequency = static_cast<double>(klass + 1);
  const double phase = rng->Uniform(0.0, 2.0 * kPi);
  const double amplitude = rng->Uniform(0.7, 1.3);
  tseries::Series x(m);
  for (int t = 0; t < mi; ++t) {
    const double u = static_cast<double>(t) / static_cast<double>(mi);
    x[t] = amplitude * std::sin(2.0 * kPi * frequency * u + phase);
  }
  AddGaussianNoise(&x, noise_sigma, rng);
  return x;
}

tseries::Series MakeHarmonic(int klass, std::size_t m, common::Rng* rng,
                             double noise_sigma) {
  KSHAPE_CHECK(klass >= 0 && klass < 3);
  KSHAPE_CHECK(rng != nullptr);
  const int mi = static_cast<int>(m);
  const double phase = rng->Uniform(0.0, 2.0 * kPi);
  tseries::Series x(m);
  for (int t = 0; t < mi; ++t) {
    const double u = 2.0 * kPi * 2.0 * t / static_cast<double>(mi) + phase;
    double v = std::sin(u);
    if (klass == 1) {
      v += 0.7 * std::sin(3.0 * u);
    } else if (klass == 2) {
      v = std::clamp(1.6 * v, -1.0, 1.0);  // Clipped sine.
    }
    x[t] = v;
  }
  AddGaussianNoise(&x, noise_sigma, rng);
  return x;
}

tseries::Series MakeBump(int klass, std::size_t m, common::Rng* rng,
                         double noise_sigma) {
  KSHAPE_CHECK(klass >= 0 && klass < 3);
  KSHAPE_CHECK(rng != nullptr);
  const int mi = static_cast<int>(m);
  const double center = rng->Uniform(0.25, 0.75) * mi;
  const double width = rng->Uniform(0.05, 0.08) * mi;
  tseries::Series x(m, 0.0);
  for (int t = 0; t < mi; ++t) {
    const double z = (t - center) / width;
    double v = 0.0;
    switch (klass) {
      case 0:  // Single Gaussian bump.
        v = std::exp(-0.5 * z * z);
        break;
      case 1: {  // Flat-topped plateau (saturated bump).
        v = std::min(1.0, 1.6 * std::exp(-0.5 * z * z / 4.0));
        break;
      }
      case 2: {  // Double bump.
        const double z1 = (t - (center - 1.5 * width)) / width;
        const double z2 = (t - (center + 1.5 * width)) / width;
        v = std::exp(-0.5 * z1 * z1) + std::exp(-0.5 * z2 * z2);
        break;
      }
      default:
        break;
    }
    x[t] = v;
  }
  AddGaussianNoise(&x, noise_sigma, rng);
  return x;
}

tseries::Series MakeTrendSeasonal(int klass, std::size_t m,
                                  common::Rng* rng) {
  KSHAPE_CHECK(klass >= 0 && klass < 4);
  KSHAPE_CHECK(rng != nullptr);
  const int mi = static_cast<int>(m);
  const double slope = (klass / 2 == 0 ? 1.0 : -1.0) * rng->Uniform(1.5, 2.5);
  const double cycles = klass % 2 == 0 ? 6.0 : 2.0;
  const double phase = rng->Uniform(0.0, 2.0 * kPi);
  tseries::Series x(m);
  for (int t = 0; t < mi; ++t) {
    const double u = static_cast<double>(t) / static_cast<double>(mi);
    x[t] = slope * u + 0.6 * std::sin(2.0 * kPi * cycles * u + phase) +
           rng->Gaussian(0.0, 0.15);
  }
  return x;
}

tseries::Series MakeWave(int klass, std::size_t m, common::Rng* rng,
                         double noise_sigma) {
  KSHAPE_CHECK(klass >= 0 && klass < 3);
  KSHAPE_CHECK(rng != nullptr);
  const int mi = static_cast<int>(m);
  const double cycles = 3.0;
  const double phase = rng->Uniform(0.0, 1.0);
  tseries::Series x(m);
  for (int t = 0; t < mi; ++t) {
    // Position within the cycle, in [0, 1).
    double u = cycles * t / static_cast<double>(mi) + phase;
    u -= std::floor(u);
    double v = 0.0;
    switch (klass) {
      case 0:  // Square.
        v = u < 0.5 ? 1.0 : -1.0;
        break;
      case 1:  // Triangle.
        v = u < 0.5 ? 4.0 * u - 1.0 : 3.0 - 4.0 * u;
        break;
      case 2:  // Sawtooth.
        v = 2.0 * u - 1.0;
        break;
      default:
        break;
    }
    x[t] = v;
  }
  AddGaussianNoise(&x, noise_sigma, rng);
  return x;
}

tseries::Series MakeWarpedPattern(int klass, std::size_t m, common::Rng* rng,
                                  double noise_sigma) {
  KSHAPE_CHECK(klass >= 0 && klass < 2);
  KSHAPE_CHECK(rng != nullptr);
  const int mi = static_cast<int>(m);

  // Base templates: two multi-bump profiles with distinct bump orderings.
  auto base = [&](double u) {
    const double b1 = std::exp(-0.5 * std::pow((u - 0.25) / 0.06, 2));
    const double b2 = std::exp(-0.5 * std::pow((u - 0.55) / 0.10, 2));
    const double b3 = std::exp(-0.5 * std::pow((u - 0.80) / 0.05, 2));
    return klass == 0 ? (2.0 * b1 + 1.0 * b2 - 1.5 * b3)
                      : (-1.5 * b1 + 2.0 * b2 + 1.0 * b3);
  };

  // Smooth monotone random warp: u' = u + a * sin(pi * u) keeps endpoints
  // fixed and is monotone for |a| < 1/pi.
  const double warp = rng->Uniform(-0.25, 0.25) / kPi;
  tseries::Series x(m);
  for (int t = 0; t < mi; ++t) {
    const double u = static_cast<double>(t) / static_cast<double>(mi - 1);
    const double warped = u + warp * std::sin(kPi * u);
    x[t] = base(warped);
  }
  AddGaussianNoise(&x, noise_sigma, rng);
  return x;
}

tseries::Series MakeRandomWalk(std::size_t m, common::Rng* rng) {
  KSHAPE_CHECK(rng != nullptr);
  tseries::Series x(m);
  double value = 0.0;
  for (std::size_t t = 0; t < m; ++t) {
    value += rng->Gaussian();
    x[t] = value;
  }
  return x;
}

tseries::Dataset MakeLabeledDataset(const std::string& name, int num_classes,
                                    int per_class,
                                    const GeneratorFn& generator,
                                    common::Rng* rng) {
  KSHAPE_CHECK(num_classes >= 1 && per_class >= 1);
  KSHAPE_CHECK(rng != nullptr);
  tseries::Dataset dataset(name);
  for (int klass = 0; klass < num_classes; ++klass) {
    for (int i = 0; i < per_class; ++i) {
      dataset.Add(generator(klass, rng), klass);
    }
  }
  return dataset;
}

tseries::SplitDataset MakeSplitDataset(const std::string& name,
                                       int num_classes, int train_per_class,
                                       int test_per_class,
                                       const GeneratorFn& generator,
                                       common::Rng* rng) {
  tseries::SplitDataset split;
  split.train = MakeLabeledDataset(name, num_classes, train_per_class,
                                   generator, rng);
  split.test = MakeLabeledDataset(name, num_classes, test_per_class,
                                  generator, rng);
  return split;
}

void InjectFaults(tseries::Series* series,
                  const FaultInjectionOptions& options, common::Rng* rng) {
  KSHAPE_CHECK(series != nullptr);
  KSHAPE_CHECK(rng != nullptr);
  if (series->empty()) return;

  // Fault order is part of the determinism contract: NaN run, constant
  // segment, spike, then truncation. Each fault consumes one gating draw plus
  // its parameter draws only when it fires, so a fixed (seed, options) pair
  // reproduces the exact corruption.
  const std::size_t m = series->size();

  if (rng->Uniform() < options.nan_probability && options.max_nan_run >= 1) {
    const std::size_t run = 1 + static_cast<std::size_t>(rng->UniformInt(
        static_cast<int>(std::min(options.max_nan_run, m))));
    const std::size_t start = static_cast<std::size_t>(
        rng->UniformInt(static_cast<int>(m - std::min(run, m) + 1)));
    for (std::size_t t = start; t < std::min(start + run, m); ++t) {
      (*series)[t] = std::numeric_limits<double>::quiet_NaN();
    }
  }

  if (rng->Uniform() < options.constant_probability &&
      options.max_constant_run >= 1) {
    const std::size_t run = 1 + static_cast<std::size_t>(rng->UniformInt(
        static_cast<int>(std::min(options.max_constant_run, m))));
    const std::size_t start = static_cast<std::size_t>(
        rng->UniformInt(static_cast<int>(m - std::min(run, m) + 1)));
    const double stuck = (*series)[start];
    for (std::size_t t = start; t < std::min(start + run, m); ++t) {
      (*series)[t] = stuck;
    }
  }

  if (rng->Uniform() < options.spike_probability) {
    const std::size_t pos =
        static_cast<std::size_t>(rng->UniformInt(static_cast<int>(m)));
    const double factor =
        rng->Uniform(options.min_spike_factor, options.max_spike_factor);
    (*series)[pos] *= factor;
  }

  if (rng->Uniform() < options.truncate_probability) {
    const double keep_fraction =
        rng->Uniform(std::clamp(options.min_keep_fraction, 0.0, 1.0), 1.0);
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(keep_fraction * static_cast<double>(m)));
    if (keep < m) series->resize(keep);
  }
}

CorruptedData MakeCorruptedData(const std::string& name, int num_classes,
                                int per_class, const GeneratorFn& generator,
                                const FaultInjectionOptions& options,
                                common::Rng* rng) {
  KSHAPE_CHECK(num_classes >= 1 && per_class >= 1);
  KSHAPE_CHECK(rng != nullptr);
  CorruptedData data;
  data.name = name;
  for (int klass = 0; klass < num_classes; ++klass) {
    for (int i = 0; i < per_class; ++i) {
      tseries::Series s = generator(klass, rng);
      InjectFaults(&s, options, rng);
      data.series.push_back(std::move(s));
      data.labels.push_back(klass);
    }
  }
  return data;
}

}  // namespace kshape::data
