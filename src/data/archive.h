#ifndef KSHAPE_DATA_ARCHIVE_H_
#define KSHAPE_DATA_ARCHIVE_H_

#include <cstdint>
#include <vector>

#include "tseries/time_series.h"

namespace kshape::data {

/// Options scaling the synthetic archive.
struct ArchiveOptions {
  /// Master seed; every dataset derives an independent stream from it, so
  /// one seed reproduces the entire archive bit-for-bit.
  uint64_t seed = 20150531;  // SIGMOD'15 opening day.

  /// Global multiplier on per-class instance counts (1.0 = default sizes,
  /// which keep the full Table 2-4 experiment suite laptop-scale).
  double size_factor = 1.0;

  /// When true (default), z-normalize every series, mirroring the paper's
  /// "our experiments start with a z-normalization step for all datasets".
  bool z_normalize = true;
};

/// Builds the 18-dataset synthetic archive standing in for the UCR
/// collection (see DESIGN.md). Each dataset has a train/test split; class
/// counts range from 2 to 6, lengths from 60 to 512, and the families cover
/// phase shift, amplitude scaling, local warping, trends, steps and noise.
std::vector<tseries::SplitDataset> MakeSyntheticArchive(
    const ArchiveOptions& options = {});

}  // namespace kshape::data

#endif  // KSHAPE_DATA_ARCHIVE_H_
