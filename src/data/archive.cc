#include "data/archive.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "data/generators.h"
#include "tseries/normalization.h"

namespace kshape::data {

namespace {

int Scaled(int count, double factor) {
  return std::max(2, static_cast<int>(std::lround(count * factor)));
}

}  // namespace

std::vector<tseries::SplitDataset> MakeSyntheticArchive(
    const ArchiveOptions& options) {
  KSHAPE_CHECK(options.size_factor > 0.0);
  common::Rng master(options.seed);

  struct Spec {
    const char* name;
    int num_classes;
    int train_per_class;
    int test_per_class;
    std::size_t length;
    GeneratorFn generator;
  };

  const double f = options.size_factor;
  std::vector<Spec> specs;

  specs.push_back({"CBF", 3, Scaled(10, f), Scaled(30, f), 128,
                   [](int k, common::Rng* r) { return MakeCbf(k, 128, r); }});
  specs.push_back({"CBF-Long", 3, Scaled(8, f), Scaled(16, f), 256,
                   [](int k, common::Rng* r) { return MakeCbf(k, 256, r); }});
  specs.push_back(
      {"ECGLike", 2, Scaled(12, f), Scaled(30, f), 136,
       [](int k, common::Rng* r) { return MakeEcgLike(k, 136, r, 0.20); }});
  specs.push_back(
      {"ECGLike-Noisy", 2, Scaled(12, f), Scaled(24, f), 136,
       [](int k, common::Rng* r) { return MakeEcgLike(k, 136, r, 0.50); }});
  specs.push_back({"TwoPatterns", 4, Scaled(10, f), Scaled(20, f), 128,
                   [](int k, common::Rng* r) {
                     return MakeTwoPatterns(k, 128, r);
                   }});
  specs.push_back({"SynthControl", 6, Scaled(8, f), Scaled(12, f), 60,
                   [](int k, common::Rng* r) {
                     return MakeSyntheticControl(k, 60, r);
                   }});
  specs.push_back(
      {"ShiftedSines", 3, Scaled(10, f), Scaled(20, f), 128,
       [](int k, common::Rng* r) { return MakeShiftedSine(k, 128, r, 0.10); }});
  specs.push_back(
      {"ShiftedSines-Noisy", 3, Scaled(10, f), Scaled(16, f), 128,
       [](int k, common::Rng* r) { return MakeShiftedSine(k, 128, r, 0.40); }});
  specs.push_back(
      {"Harmonics", 3, Scaled(10, f), Scaled(18, f), 128,
       [](int k, common::Rng* r) { return MakeHarmonic(k, 128, r, 0.10); }});
  specs.push_back(
      {"Bumps", 3, Scaled(10, f), Scaled(18, f), 150,
       [](int k, common::Rng* r) { return MakeBump(k, 150, r, 0.10); }});
  specs.push_back(
      {"Bumps-Noisy", 3, Scaled(10, f), Scaled(14, f), 150,
       [](int k, common::Rng* r) { return MakeBump(k, 150, r, 0.35); }});
  specs.push_back({"TrendSeasonal", 4, Scaled(8, f), Scaled(14, f), 100,
                   [](int k, common::Rng* r) {
                     return MakeTrendSeasonal(k, 100, r);
                   }});
  specs.push_back(
      {"Waves", 3, Scaled(10, f), Scaled(16, f), 128,
       [](int k, common::Rng* r) { return MakeWave(k, 128, r, 0.10); }});
  specs.push_back(
      {"Waves-Noisy", 3, Scaled(10, f), Scaled(12, f), 128,
       [](int k, common::Rng* r) { return MakeWave(k, 128, r, 0.45); }});
  specs.push_back({"WarpedPatterns", 2, Scaled(12, f), Scaled(20, f), 128,
                   [](int k, common::Rng* r) {
                     return MakeWarpedPattern(k, 128, r, 0.10);
                   }});
  specs.push_back({"WarpedPatterns-Noisy", 2, Scaled(12, f), Scaled(16, f),
                   128, [](int k, common::Rng* r) {
                     return MakeWarpedPattern(k, 128, r, 0.30);
                   }});
  specs.push_back({"SynthControl-Long", 6, Scaled(6, f), Scaled(8, f), 120,
                   [](int k, common::Rng* r) {
                     return MakeSyntheticControl(k, 120, r);
                   }});
  // Short-length family: exercises the small-m corner (UCR has m down to 24).
  specs.push_back(
      {"ShortSines", 4, Scaled(10, f), Scaled(14, f), 64,
       [](int k, common::Rng* r) { return MakeShiftedSine(k, 64, r, 0.15); }});

  std::vector<tseries::SplitDataset> archive;
  archive.reserve(specs.size());
  for (const Spec& spec : specs) {
    common::Rng rng = master.Fork();
    tseries::SplitDataset split =
        MakeSplitDataset(spec.name, spec.num_classes, spec.train_per_class,
                         spec.test_per_class, spec.generator, &rng);
    if (options.z_normalize) {
      tseries::ZNormalizeDataset(&split.train);
      tseries::ZNormalizeDataset(&split.test);
    }
    archive.push_back(std::move(split));
  }
  return archive;
}

}  // namespace kshape::data
