#include "store/sharded_store.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <system_error>

#include "common/check.h"
#include "common/env_gate.h"

namespace kshape::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMetaFile = "meta.txt";
constexpr const char* kMagic = "kshape-sharded-store v1";

common::EnvGate g_sharding{"KSHAPE_SHARDS"};

std::string FileSizeError(const std::string& path, std::uintmax_t expected,
                          std::uintmax_t actual) {
  std::ostringstream oss;
  oss << "shard file " << path << " holds " << actual << " bytes, expected "
      << expected << " (ragged or truncated store)";
  return oss.str();
}

}  // namespace

bool ShardingEnabled() { return g_sharding.enabled(); }

void SetShardingEnabledForTesting(bool enabled) {
  g_sharding.SetForTesting(enabled);
}

tseries::SeriesBatch ShardView::batch() const {
  KSHAPE_CHECK_MSG(store_ != nullptr, "batch() on a default ShardView");
  const ShardedSeriesStore::Shard& shard = store_->shards_[shard_];
  KSHAPE_CHECK_MSG(shard.resident && shard.generation == generation_,
                   "ShardView used after its shard was evicted");
  return tseries::SeriesBatch(shard.data.data(), rows_, store_->length_);
}

std::string ShardedSeriesStore::ShardPath(std::size_t s) const {
  char name[32];
  std::snprintf(name, sizeof(name), "shard_%05zu.bin", s);
  return (fs::path(directory_) / name).string();
}

common::StatusOr<ShardedSeriesStore> ShardedSeriesStore::Create(
    const std::string& directory, const ShardedStoreOptions& options) {
  KSHAPE_CHECK_MSG(options.shard_rows >= 1,
                   "ShardedStoreOptions::shard_rows must be >= 1");
  KSHAPE_CHECK_MSG(options.max_resident_shards >= 1,
                   "ShardedStoreOptions::max_resident_shards must be >= 1");
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return common::Status::IoError("cannot create store directory " +
                                   directory + ": " + ec.message());
  }
  if (!fs::is_directory(directory, ec) || ec) {
    return common::Status::IoError(directory + " is not a directory");
  }
  ShardedSeriesStore store;
  store.directory_ = directory;
  store.options_ = options;
  return store;
}

void ShardedSeriesStore::Append(tseries::SeriesView row) {
  KSHAPE_CHECK_MSG(!sealed_, "Append on a sealed ShardedSeriesStore");
  KSHAPE_CHECK_MSG(!directory_.empty(),
                   "Append on a default-constructed ShardedSeriesStore");
  KSHAPE_CHECK_MSG(!row.empty(), "cannot append an empty series");
  if (length_ == 0) {
    length_ = row.size();
    pending_.reserve(options_.shard_rows * length_);
  }
  KSHAPE_CHECK_MSG(row.size() == length_,
                   "row length mismatch: the first Append locks the length "
                   "for every shard of the store");
  pending_.insert(pending_.end(), row.begin(), row.end());
  ++pending_rows_;
  ++rows_;
  if (pending_rows_ == options_.shard_rows) SpillPending();
}

void ShardedSeriesStore::SpillPending() {
  const std::string path = ShardPath(spilled_shards_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  KSHAPE_CHECK_MSG(out.good(), "cannot open shard file for writing");
  out.write(reinterpret_cast<const char*>(pending_.data()),
            static_cast<std::streamsize>(pending_.size() * sizeof(double)));
  out.close();
  KSHAPE_CHECK_MSG(out.good(), "short write spilling shard");
  ++spilled_shards_;
  pending_.clear();
  pending_rows_ = 0;
}

common::Status ShardedSeriesStore::Seal() {
  if (sealed_) return common::Status::OK();
  if (directory_.empty()) {
    return common::Status::FailedPrecondition(
        "Seal on a default-constructed ShardedSeriesStore");
  }
  if (rows_ == 0) {
    return common::Status::FailedPrecondition(
        "cannot seal an empty ShardedSeriesStore");
  }
  if (pending_rows_ > 0) SpillPending();
  shard_count_ = spilled_shards_;

  const std::string meta_path =
      (fs::path(directory_) / kMetaFile).string();
  std::ofstream meta(meta_path, std::ios::trunc);
  if (!meta.good()) {
    return common::Status::IoError("cannot write " + meta_path);
  }
  meta << kMagic << "\n"
       << "length " << length_ << "\n"
       << "shard_rows " << options_.shard_rows << "\n"
       << "rows " << rows_ << "\n";
  meta.close();
  if (!meta.good()) {
    return common::Status::IoError("short write on " + meta_path);
  }

  shards_.assign(shard_count_, Shard{});
  sealed_ = true;
  return common::Status::OK();
}

common::StatusOr<ShardedSeriesStore> ShardedSeriesStore::Open(
    const std::string& directory, std::size_t max_resident_shards) {
  KSHAPE_CHECK_MSG(max_resident_shards >= 1,
                   "max_resident_shards must be >= 1");
  const std::string meta_path = (fs::path(directory) / kMetaFile).string();
  std::ifstream meta(meta_path);
  if (!meta.good()) {
    return common::Status::NotFound("no sealed store at " + directory +
                                    " (missing " + std::string(kMetaFile) +
                                    ")");
  }
  std::string magic;
  std::getline(meta, magic);
  if (magic != kMagic) {
    return common::Status::InvalidArgument(
        meta_path + ": unrecognized magic line '" + magic + "'");
  }
  std::size_t length = 0, shard_rows = 0, rows = 0;
  std::string key;
  if (!(meta >> key >> length) || key != "length" || length == 0 ||
      !(meta >> key >> shard_rows) || key != "shard_rows" || shard_rows == 0 ||
      !(meta >> key >> rows) || key != "rows" || rows == 0) {
    return common::Status::InvalidArgument(meta_path +
                                           ": malformed metadata");
  }

  ShardedSeriesStore store;
  store.directory_ = directory;
  store.options_.shard_rows = shard_rows;
  store.options_.max_resident_shards = max_resident_shards;
  store.length_ = length;
  store.rows_ = rows;
  store.shard_count_ = (rows + shard_rows - 1) / shard_rows;
  store.spilled_shards_ = store.shard_count_;
  store.shards_.assign(store.shard_count_, Shard{});
  store.sealed_ = true;

  common::Status valid = store.Validate();
  if (!valid.ok()) return valid;
  return store;
}

common::Status ShardedSeriesStore::Validate() const {
  if (!sealed_) {
    return common::Status::FailedPrecondition(
        "Validate on an unsealed ShardedSeriesStore");
  }
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const std::string path = ShardPath(s);
    std::error_code ec;
    const std::uintmax_t actual = fs::file_size(path, ec);
    if (ec) {
      return common::Status::NotFound("missing shard file " + path + ": " +
                                      ec.message());
    }
    const std::uintmax_t expected = static_cast<std::uintmax_t>(
        ShardRowCount(s) * length_ * sizeof(double));
    if (actual != expected) {
      return common::Status::InvalidArgument(
          FileSizeError(path, expected, actual));
    }
  }
  return common::Status::OK();
}

std::size_t ShardedSeriesStore::ShardRowCount(std::size_t s) const {
  KSHAPE_CHECK(s < shard_count_);
  if (s + 1 < shard_count_) return options_.shard_rows;
  const std::size_t tail = rows_ % options_.shard_rows;
  return tail == 0 ? options_.shard_rows : tail;
}

std::size_t ShardedSeriesStore::ShardBegin(std::size_t s) const {
  KSHAPE_CHECK(s < shard_count_);
  return s * options_.shard_rows;
}

std::size_t ShardedSeriesStore::ShardOfRow(std::size_t i) const {
  KSHAPE_CHECK(i < rows_);
  return i / options_.shard_rows;
}

ShardView ShardedSeriesStore::Acquire(std::size_t s) {
  KSHAPE_CHECK_MSG(sealed_, "Acquire on an unsealed ShardedSeriesStore");
  KSHAPE_CHECK(s < shard_count_);
  Shard& shard = shards_[s];
  if (!shard.resident) {
    if (resident_ == options_.max_resident_shards) {
      // Evict the least-recently-used resident shard. The scan is O(#shards)
      // but eviction already pays a disk read, so a heap would be noise.
      std::size_t victim = shard_count_;
      std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
      for (std::size_t c = 0; c < shard_count_; ++c) {
        if (shards_[c].resident && shards_[c].last_used < oldest) {
          oldest = shards_[c].last_used;
          victim = c;
        }
      }
      KSHAPE_CHECK(victim < shard_count_);
      Evict(victim);
    }
    const std::size_t rows = ShardRowCount(s);
    shard.data.resize(rows * length_);
    std::ifstream in(ShardPath(s), std::ios::binary);
    KSHAPE_CHECK_MSG(in.good(), "cannot open shard file (Validate first?)");
    in.read(reinterpret_cast<char*>(shard.data.data()),
            static_cast<std::streamsize>(shard.data.size() * sizeof(double)));
    KSHAPE_CHECK_MSG(
        in.good() && static_cast<std::size_t>(in.gcount()) ==
                         shard.data.size() * sizeof(double),
        "short read loading shard (Validate first?)");
    shard.resident = true;
    ++shard.generation;
    ++resident_;
    ++loaded_;
  }
  shard.last_used = ++tick_;
  return ShardView(this, s, shard.generation, ShardRowCount(s),
                   ShardBegin(s));
}

void ShardedSeriesStore::Evict(std::size_t s) {
  Shard& shard = shards_[s];
  KSHAPE_CHECK(shard.resident);
  shard.data.clear();
  shard.data.shrink_to_fit();
  shard.resident = false;
  ++shard.generation;
  --resident_;
  ++evictions_;
}

void ShardedSeriesStore::EvictAll() {
  KSHAPE_CHECK_MSG(sealed_, "EvictAll on an unsealed ShardedSeriesStore");
  for (std::size_t s = 0; s < shard_count_; ++s) {
    if (shards_[s].resident) Evict(s);
  }
}

}  // namespace kshape::store
