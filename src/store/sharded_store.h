#ifndef KSHAPE_STORE_SHARDED_STORE_H_
#define KSHAPE_STORE_SHARDED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "tseries/time_series.h"

namespace kshape::store {

/// Process-wide sharding gate, resolved once on first use from the
/// KSHAPE_SHARDS environment variable: "off" disables the mini-batch
/// sampling path of the sharded clustering driver (every iteration runs a
/// full exact assignment pass — the sharded runs then reproduce the
/// in-memory KShape bit for bit), "on" or unset enables it, anything else
/// aborts. Same layering as KSHAPE_PRUNE / KSHAPE_HALF_SPECTRUM: sampling
/// runs only when both KShapeOptions::minibatch_size and this gate say yes,
/// so one environment variable can force the exact behavior for A/B runs
/// without touching call sites.
bool ShardingEnabled();

/// Replaces the gate for the rest of the process (tests comparing sampled
/// and exact paths in one run). Call from a single thread, between parallel
/// regions.
void SetShardingEnabledForTesting(bool enabled);

/// Geometry and residency budget of a sharded store.
struct ShardedStoreOptions {
  /// Rows per shard file (the last shard may hold fewer). Must be >= 1.
  std::size_t shard_rows = 4096;

  /// Maximum number of shards resident in memory at once. Acquire() evicts
  /// the least-recently-used resident shard when the budget is full, so peak
  /// resident sample memory is bounded by
  /// max_resident_shards * shard_rows * length * sizeof(double). Must be
  /// >= 1.
  std::size_t max_resident_shards = 4;
};

class ShardedSeriesStore;

/// A handle to one resident shard: the out-of-core analogue of a
/// SeriesBatch over a SeriesStore slice. The view is invalidated the moment
/// its shard is evicted (or reloaded) — batch() checks a per-shard
/// generation stamp and aborts on a stale view, so use-after-eviction is a
/// loud programmer error instead of a silent read of freed memory.
///
/// A ShardView is a trivially copyable value; the store must outlive it and
/// must not be moved while views exist.
class ShardView {
 public:
  ShardView() = default;

  /// Batch view over the shard's rows. Row r of the batch is global row
  /// `global_begin() + r` of the store. Aborts if the shard has been evicted
  /// or reloaded since this view was acquired.
  tseries::SeriesBatch batch() const;

  /// Number of rows in this shard.
  std::size_t rows() const { return rows_; }

  /// Global index of the shard's first row.
  std::size_t global_begin() const { return global_begin_; }

  /// The shard index.
  std::size_t shard() const { return shard_; }

  /// The shard generation this view was acquired at. Two views of one shard
  /// with equal generations see the same loaded bytes; callers caching
  /// derived per-shard state (e.g. an SbdEngine over the shard) key it by
  /// this stamp to detect reloads.
  std::uint64_t generation() const { return generation_; }

 private:
  friend class ShardedSeriesStore;
  ShardView(const ShardedSeriesStore* store, std::size_t shard,
            std::uint64_t generation, std::size_t rows,
            std::size_t global_begin)
      : store_(store), shard_(shard), generation_(generation), rows_(rows),
        global_begin_(global_begin) {}

  const ShardedSeriesStore* store_ = nullptr;
  std::size_t shard_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t rows_ = 0;
  std::size_t global_begin_ = 0;
};

/// An out-of-core extension of SeriesStore: the same contiguous row-major
/// pool semantics (length lock, non-empty rows), but the pool is split into
/// fixed-size shards persisted as raw files in a directory, and only a
/// bounded number of shards is resident in memory at a time.
///
/// Layout on disk: `meta.txt` (magic, row length, shard size, row count in
/// plain text) plus `shard_NNNNN.bin` files holding shard rows as row-major
/// native-endian doubles. The format is a cache/exchange format for one
/// machine, not an archival one.
///
/// Life cycle: Create() an empty store in a directory, Append() rows (full
/// shards spill to disk as they fill), Seal() to flush the trailing partial
/// shard and write the metadata — only a sealed store can be read. Open()
/// attaches to an existing sealed directory, Status-validating the metadata
/// against the shard files on disk (a ragged or truncated store is an error,
/// never an abort).
///
/// Residency: Acquire(s) loads shard s (if absent) and returns a ShardView;
/// when the resident count is at max_resident_shards the least-recently-used
/// shard is evicted first. Eviction invalidates that shard's outstanding
/// views (their batch() calls abort — see ShardView). Telemetry counters
/// (shards_loaded / shard_evictions) are cumulative over the store's
/// lifetime; clustering drivers report deltas per run.
///
/// Thread-safety: Append/Seal/Acquire/EvictAll mutate the store and must be
/// called from one coordinating thread at a time. Concurrent *reads* through
/// already-acquired batches (e.g. a ParallelFor over a shard's rows) are
/// safe as long as no Acquire/evict runs concurrently — the streaming
/// drivers acquire on the coordinating thread, fan out reads, and only then
/// acquire the next shard.
class ShardedSeriesStore {
 public:
  /// An empty, unusable store (so StatusOr and containers can hold one).
  ShardedSeriesStore() = default;

  ShardedSeriesStore(ShardedSeriesStore&&) = default;
  ShardedSeriesStore& operator=(ShardedSeriesStore&&) = default;
  ShardedSeriesStore(const ShardedSeriesStore&) = delete;
  ShardedSeriesStore& operator=(const ShardedSeriesStore&) = delete;

  /// Creates an empty store writing into `directory` (created if missing).
  /// Returns IoError when the directory cannot be created or is not
  /// writable. Aborts on a zero shard_rows / max_resident_shards budget
  /// (programmer error, like an empty SeriesStore row).
  static common::StatusOr<ShardedSeriesStore> Create(
      const std::string& directory, const ShardedStoreOptions& options);

  /// Attaches to a sealed store on disk. Validates the metadata and the
  /// shard files (existence and exact byte size) and returns
  /// InvalidArgument/NotFound/IoError on any mismatch — corrupt input is a
  /// Status, not an abort. `max_resident_shards` must be >= 1.
  static common::StatusOr<ShardedSeriesStore> Open(
      const std::string& directory, std::size_t max_resident_shards);

  /// Appends one row, copying it into the in-progress shard; a filled shard
  /// spills to disk immediately. The first Append fixes the row length
  /// (the length lock spans shard boundaries: a mismatched row aborts no
  /// matter how many shards were already spilled). Requires an unsealed
  /// store and a non-empty row.
  void Append(tseries::SeriesView row);

  /// Flushes the trailing partial shard and writes the metadata; the store
  /// becomes readable and further Appends abort. Sealing an empty store is
  /// an error. Idempotent on success.
  common::Status Seal();

  /// Re-validates the shard files on disk against the sealed metadata
  /// (existence and exact byte size). The Status-boundary guard for
  /// untrusted stores: TryCluster runs this before streaming so a store
  /// truncated or swapped behind a sealed handle is an error, not an abort
  /// mid-scan.
  common::Status Validate() const;

  bool sealed() const { return sealed_; }

  /// Total rows across all shards.
  std::size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  /// Row length m shared by all rows (0 until the first Append).
  std::size_t length() const { return length_; }

  /// Number of shards (sealed stores only).
  std::size_t num_shards() const { return shard_count_; }

  /// Nominal rows per shard (the last shard may hold fewer).
  std::size_t shard_rows() const { return options_.shard_rows; }

  /// Rows in shard s.
  std::size_t ShardRowCount(std::size_t s) const;

  /// Global index of the first row of shard s.
  std::size_t ShardBegin(std::size_t s) const;

  /// The shard containing global row i.
  std::size_t ShardOfRow(std::size_t i) const;

  /// Loads shard s if not resident (evicting the least-recently-used shard
  /// when the budget is full), marks it most-recently-used, and returns a
  /// view. Requires a sealed store and s < num_shards().
  ShardView Acquire(std::size_t s);

  /// Evicts every resident shard (invalidating all views). Frees the
  /// residency budget without destroying the store.
  void EvictAll();

  /// Number of currently resident shards (always <= max_resident_shards).
  std::size_t resident_count() const { return resident_; }

  /// True when shard s is currently resident.
  bool ShardResident(std::size_t s) const {
    return s < shards_.size() && shards_[s].resident;
  }

  std::size_t max_resident_shards() const {
    return options_.max_resident_shards;
  }

  /// Cumulative telemetry: shard files read from disk / shards evicted.
  long long shards_loaded() const { return loaded_; }
  long long shard_evictions() const { return evictions_; }

  const std::string& directory() const { return directory_; }

 private:
  friend class ShardView;

  struct Shard {
    std::vector<double> data;       // resident samples; empty when evicted
    std::uint64_t generation = 0;   // bumped on every load and every evict
    std::uint64_t last_used = 0;    // LRU tick
    bool resident = false;
  };

  std::string ShardPath(std::size_t s) const;
  void SpillPending();
  void Evict(std::size_t s);

  std::string directory_;
  ShardedStoreOptions options_;
  std::size_t length_ = 0;
  std::size_t rows_ = 0;
  std::size_t shard_count_ = 0;
  bool sealed_ = false;

  std::vector<double> pending_;    // in-progress shard during Append
  std::size_t pending_rows_ = 0;
  std::size_t spilled_shards_ = 0;

  std::vector<Shard> shards_;      // sealed stores: one entry per shard
  std::size_t resident_ = 0;
  std::uint64_t tick_ = 0;
  long long loaded_ = 0;
  long long evictions_ = 0;
};

}  // namespace kshape::store

#endif  // KSHAPE_STORE_SHARDED_STORE_H_
