#include "distance/euclidean.h"

#include <cmath>

#include "common/check.h"

namespace kshape::distance {

double SquaredEuclideanDistance(tseries::SeriesView x, tseries::SeriesView y) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "ED requires equal lengths");
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    sum += d * d;
  }
  return sum;
}

double EuclideanDistanceValue(tseries::SeriesView x, tseries::SeriesView y) {
  return std::sqrt(SquaredEuclideanDistance(x, y));
}

}  // namespace kshape::distance
