#include "distance/euclidean.h"

#include <cmath>

#include "common/check.h"
#include "simd/dispatch.h"

namespace kshape::distance {

double SquaredEuclideanDistance(tseries::SeriesView x, tseries::SeriesView y) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "ED requires equal lengths");
  return simd::SquaredEd(x, y);
}

double EuclideanDistanceValue(tseries::SeriesView x, tseries::SeriesView y) {
  return std::sqrt(SquaredEuclideanDistance(x, y));
}

}  // namespace kshape::distance
