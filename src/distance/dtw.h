#ifndef KSHAPE_DISTANCE_DTW_H_
#define KSHAPE_DISTANCE_DTW_H_

#include <string>
#include <utility>
#include <vector>

#include "distance/measure.h"

namespace kshape::dtw {

/// Dynamic Time Warping distance (Equation 4 of the paper): the square root
/// of the minimum sum of squared point differences over all warping paths.
/// O(m^2) time, O(m) memory.
double DtwDistance(tseries::SeriesView x, tseries::SeriesView y);

/// DTW constrained to the Sakoe-Chiba band: cells (i, j) with |i - j| <=
/// window are reachable. `window` is an absolute cell count; window >= m - 1
/// reproduces the unconstrained distance, window == 0 degenerates to ED.
/// O(m * window) time.
double ConstrainedDtwDistance(tseries::SeriesView x,
                              tseries::SeriesView y, int window);

/// Converts the paper's "w% of the time-series length" warping-window
/// convention to an absolute cell count (ceil, clamped to [0, m-1]).
int WindowFromFraction(double fraction, std::size_t length);

/// A full warping path: the matched index pairs in order, plus the DTW
/// distance. Needed by DBA averaging (§2.5), which updates each centroid
/// coordinate from the coordinates DTW associates with it.
struct WarpingPath {
  std::vector<std::pair<int, int>> pairs;  // (index in x, index in y)
  double distance = 0.0;
};

/// Computes the optimal warping path under a Sakoe-Chiba window (window < 0
/// means unconstrained). O(m^2) time and memory.
WarpingPath DtwWarpingPath(tseries::SeriesView x, tseries::SeriesView y,
                           int window = -1);

/// Computes the running min/max envelope of `x` with half-width `window`
/// using Lemire's streaming min-max algorithm: O(m) total. On exit,
/// (*lower)[i] = min(x[i-window .. i+window]) and (*upper)[i] the max.
void LowerUpperEnvelope(tseries::SeriesView x, int window,
                        tseries::Series* lower, tseries::Series* upper);

/// LB_Keogh lower bound on cDTW(query, candidate) with the given window:
/// the distance from `candidate` to the envelope of `query`. Never exceeds
/// the true constrained DTW distance, so 1-NN search can skip candidates
/// whose bound already exceeds the best distance found (§4 of the paper).
double LbKeogh(tseries::SeriesView candidate,
               tseries::SeriesView query_lower,
               tseries::SeriesView query_upper);

/// DistanceMeasure wrapper for DTW / cDTW.
class DtwMeasure : public distance::DistanceMeasure {
 public:
  /// Unconstrained DTW.
  static DtwMeasure Unconstrained() { return DtwMeasure(-1.0, -1, "DTW"); }

  /// cDTW with a Sakoe-Chiba band of the given fraction of the length
  /// (e.g. 0.05 for the paper's cDTW5).
  static DtwMeasure SakoeChiba(double fraction, std::string name) {
    return DtwMeasure(fraction, -1, std::move(name));
  }

  /// cDTW with a fixed band width in cells, independent of the length (used
  /// for the tuned cDTW_opt of the paper, whose window comes from
  /// leave-one-out search). Requires cells >= 0.
  static DtwMeasure FixedWindow(int cells, std::string name) {
    return DtwMeasure(-1.0, cells, std::move(name));
  }

  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override;
  std::string Name() const override { return name_; }

  /// The band fraction (negative when unconstrained or fixed-window).
  double fraction() const { return fraction_; }

 private:
  DtwMeasure(double fraction, int absolute_window, std::string name)
      : fraction_(fraction),
        absolute_window_(absolute_window),
        name_(std::move(name)) {}

  double fraction_;
  int absolute_window_;  // >= 0 overrides fraction_.
  std::string name_;
};

/// Derivative DTW (Keogh & Pazzani 2001): DTW computed on the Keogh-Pazzani
/// derivative estimates of the inputs instead of the raw values, so the
/// alignment follows local slopes rather than levels. `fraction` constrains
/// the band as in DtwMeasure (negative = unconstrained).
class DdtwMeasure : public distance::DistanceMeasure {
 public:
  explicit DdtwMeasure(double fraction = -1.0) : fraction_(fraction) {}

  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override;
  std::string Name() const override { return "DDTW"; }

 private:
  double fraction_;
};

}  // namespace kshape::dtw

#endif  // KSHAPE_DISTANCE_DTW_H_
