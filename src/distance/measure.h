#ifndef KSHAPE_DISTANCE_MEASURE_H_
#define KSHAPE_DISTANCE_MEASURE_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "tseries/time_series.h"

namespace kshape::distance {

/// A distance evaluator bound to a fixed candidate set, produced by
/// DistanceMeasure::NewBatchScanner. Measures with per-candidate
/// precomputation (e.g. SBD's cached spectra and norms) pay it once at
/// construction and amortize it over every subsequent query — the pattern
/// the 1-NN accuracy loops use, where each test query scans the whole
/// training set.
///
/// Implementations must be immutable after construction: DistancesToAll is
/// invoked concurrently from ParallelFor workers (one query per worker).
class BatchScanner {
 public:
  virtual ~BatchScanner() = default;

  /// Fills out[i] = Distance(query, candidate_i) for every candidate, in
  /// candidate order. Resizes `out` as needed.
  virtual void DistancesToAll(tseries::SeriesView query,
                              std::vector<double>* out) const = 0;

  /// Result of a Nearest() scan. `computed`/`abandoned` partition the
  /// candidate set: exact distances evaluated vs candidates dropped by a
  /// bound before their exact distance was finished. Scanners without
  /// early abandoning report computed == candidate count, abandoned == 0.
  struct NearestResult {
    std::size_t index = 0;
    double distance = 0.0;
    long long computed = 0;
    long long abandoned = 0;
  };

  /// Index and distance of the closest candidate, with the same
  /// first-strict-minimum tie-break as scanning a DistancesToAll row in
  /// candidate order — overrides may skip candidates a sound bound proves
  /// cannot win (SBD's spectral early abandoning), but must return the
  /// identical index. The default runs the exhaustive row.
  virtual NearestResult Nearest(tseries::SeriesView query) const {
    std::vector<double> dists;
    DistancesToAll(query, &dists);
    NearestResult r;
    r.distance = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < dists.size(); ++i) {
      if (dists[i] < r.distance) {
        r.distance = dists[i];
        r.index = i;
      }
    }
    r.computed = static_cast<long long>(dists.size());
    return r;
  }
};

/// Abstract distance measure between two equal-length time series.
///
/// All clustering algorithms, the 1-NN classifier, and the experiment
/// harnesses are written against this interface, so any measure (ED, DTW,
/// cDTW, SBD, NCC variants, KSC's scale/shift distance) plugs into any
/// algorithm — exactly the combination grid of Tables 1-4 in the paper.
///
/// Implementations must be stateless with respect to Distance() calls (safe
/// to call repeatedly in any order) and must return a non-negative value
/// where smaller means more similar. Statelessness is load-bearing: the
/// pairwise-matrix, clustering-assignment, and 1-NN hot paths invoke
/// Distance() concurrently from ParallelFor workers (see common/parallel.h),
/// so Distance() must also be safe to call from multiple threads at once.
/// Every measure in this library is; custom measures with mutable caches
/// must synchronize or use thread_local scratch.
class DistanceMeasure {
 public:
  virtual ~DistanceMeasure() = default;

  /// Dissimilarity between x and y. Requires x.size() == y.size().
  /// Views may point into a contiguous SeriesStore row or an owned Series;
  /// implementations must not retain them past the call.
  virtual double Distance(tseries::SeriesView x,
                          tseries::SeriesView y) const = 0;

  /// Short display name, e.g. "ED", "cDTW5", "SBD".
  virtual std::string Name() const = 0;

  /// Optional batched pairwise path. A measure that can amortize per-series
  /// precomputation across pairs (SBD's spectrum cache) fills `flat` with the
  /// full symmetric n x n matrix, row-major with a zero diagonal, and returns
  /// true; the default returns false and callers fall back to per-pair
  /// Distance() calls. cluster::PairwiseDistanceMatrix consults this hook, so
  /// k-medoids, hierarchical, spectral, validity metrics and EstimateK all
  /// inherit the accelerated path automatically. Batched results must agree
  /// with Distance() within a tight tolerance but need not be bitwise equal
  /// (the cached SBD pipeline rounds differently); they must themselves be
  /// bit-identical at every thread count.
  virtual bool BatchedPairwise(const tseries::SeriesBatch& series,
                               std::vector<double>* flat) const {
    (void)series;
    (void)flat;
    return false;
  }

  /// Optional factory for a scanner bound to `candidates` (see BatchScanner).
  /// Returns nullptr when the measure has no accelerated scan; callers fall
  /// back to per-pair Distance() calls. The scanner may reference the storage
  /// behind `candidates`, which must outlive it.
  virtual std::unique_ptr<BatchScanner> NewBatchScanner(
      const tseries::SeriesBatch& candidates) const {
    (void)candidates;
    return nullptr;
  }
};

}  // namespace kshape::distance

#endif  // KSHAPE_DISTANCE_MEASURE_H_
