#ifndef KSHAPE_DISTANCE_MEASURE_H_
#define KSHAPE_DISTANCE_MEASURE_H_

#include <string>

#include "tseries/time_series.h"

namespace kshape::distance {

/// Abstract distance measure between two equal-length time series.
///
/// All clustering algorithms, the 1-NN classifier, and the experiment
/// harnesses are written against this interface, so any measure (ED, DTW,
/// cDTW, SBD, NCC variants, KSC's scale/shift distance) plugs into any
/// algorithm — exactly the combination grid of Tables 1-4 in the paper.
///
/// Implementations must be stateless with respect to Distance() calls (safe
/// to call repeatedly in any order) and must return a non-negative value
/// where smaller means more similar. Statelessness is load-bearing: the
/// pairwise-matrix, clustering-assignment, and 1-NN hot paths invoke
/// Distance() concurrently from ParallelFor workers (see common/parallel.h),
/// so Distance() must also be safe to call from multiple threads at once.
/// Every measure in this library is; custom measures with mutable caches
/// must synchronize or use thread_local scratch.
class DistanceMeasure {
 public:
  virtual ~DistanceMeasure() = default;

  /// Dissimilarity between x and y. Requires x.size() == y.size().
  virtual double Distance(const tseries::Series& x,
                          const tseries::Series& y) const = 0;

  /// Short display name, e.g. "ED", "cDTW5", "SBD".
  virtual std::string Name() const = 0;
};

}  // namespace kshape::distance

#endif  // KSHAPE_DISTANCE_MEASURE_H_
