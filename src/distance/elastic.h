#ifndef KSHAPE_DISTANCE_ELASTIC_H_
#define KSHAPE_DISTANCE_ELASTIC_H_

#include <string>

#include "distance/measure.h"

namespace kshape::distance {

/// Additional elastic distance measures from the literature the paper builds
/// on (§2.3 and its references [11, 12, 55, 75]; the Wang et al. / Ding et
/// al. evaluations the paper cites cover all of them). They serve as extra
/// baselines in the extended distance-measure comparison bench.

/// Edit distance with Real Penalty (Chen & Ng, VLDB 2004) with gap value g:
/// an edit distance whose insert/delete operations are charged the distance
/// to the constant g (default 0). A metric; handles local time shifting.
/// O(m^2) time, O(m) memory.
double ErpDistance(tseries::SeriesView x, tseries::SeriesView y,
                   double gap_value = 0.0);

/// Edit Distance on Real sequences (Chen, Ozsu & Oria, SIGMOD 2005) with
/// matching threshold epsilon: points within epsilon match for free,
/// everything else (substitute/insert/delete) costs 1. Robust to noise and
/// outliers; not a metric. For z-normalized data the customary threshold is
/// 0.25 (a quarter standard deviation). O(m^2) time, O(m) memory.
double EdrDistance(tseries::SeriesView x, tseries::SeriesView y,
                   double epsilon = 0.25);

/// Move-Split-Merge (Stefan, Athitsos & Das, TKDE 2013) with split/merge
/// cost c: a metric whose edit operations are value moves (cost = value
/// difference) and splits/merges (cost c, plus the overshoot when the new
/// value is not between its neighbors). O(m^2) time, O(m) memory.
double MsmDistance(tseries::SeriesView x, tseries::SeriesView y,
                   double cost = 0.5);

/// Complexity-Invariant Distance (Batista et al., DMKD 2013, the paper's
/// reference [7]): ED scaled by the ratio of the series' complexity
/// estimates CE(x) = sqrt(sum (x_t+1 - x_t)^2), penalizing pairs of very
/// different complexity (§2.2, complexity invariance).
double CidDistance(tseries::SeriesView x, tseries::SeriesView y);

/// The complexity estimate used by CID.
double ComplexityEstimate(tseries::SeriesView x);

/// Minkowski (L_p) distance; p = 1 Manhattan, p = 2 Euclidean, and
/// p = infinity is available as ChebyshevDistance.
double MinkowskiDistance(tseries::SeriesView x, tseries::SeriesView y,
                         double p);

/// L_infinity (maximum coordinate difference).
double ChebyshevDistance(tseries::SeriesView x, tseries::SeriesView y);

/// DistanceMeasure adapters.
class ErpMeasure : public DistanceMeasure {
 public:
  explicit ErpMeasure(double gap_value = 0.0) : gap_value_(gap_value) {}
  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override {
    return ErpDistance(x, y, gap_value_);
  }
  std::string Name() const override { return "ERP"; }

 private:
  double gap_value_;
};

class EdrMeasure : public DistanceMeasure {
 public:
  explicit EdrMeasure(double epsilon = 0.25) : epsilon_(epsilon) {}
  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override {
    return EdrDistance(x, y, epsilon_);
  }
  std::string Name() const override { return "EDR"; }

 private:
  double epsilon_;
};

class MsmMeasure : public DistanceMeasure {
 public:
  explicit MsmMeasure(double cost = 0.5) : cost_(cost) {}
  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override {
    return MsmDistance(x, y, cost_);
  }
  std::string Name() const override { return "MSM"; }

 private:
  double cost_;
};

class CidMeasure : public DistanceMeasure {
 public:
  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override {
    return CidDistance(x, y);
  }
  std::string Name() const override { return "CID"; }
};

}  // namespace kshape::distance

#endif  // KSHAPE_DISTANCE_ELASTIC_H_
