#include "distance/elastic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace kshape::distance {

double ErpDistance(tseries::SeriesView x, tseries::SeriesView y,
                   double gap_value) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  KSHAPE_CHECK(m >= 1 && n >= 1);

  std::vector<double> prev(n + 1, 0.0);
  std::vector<double> cur(n + 1, 0.0);
  // First row: delete the whole prefix of y against the gap value.
  for (std::size_t j = 1; j <= n; ++j) {
    prev[j] = prev[j - 1] + std::fabs(y[j - 1] - gap_value);
  }
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = prev[0] + std::fabs(x[i - 1] - gap_value);
    for (std::size_t j = 1; j <= n; ++j) {
      const double match = prev[j - 1] + std::fabs(x[i - 1] - y[j - 1]);
      const double delete_x = prev[j] + std::fabs(x[i - 1] - gap_value);
      const double delete_y = cur[j - 1] + std::fabs(y[j - 1] - gap_value);
      cur[j] = std::min(match, std::min(delete_x, delete_y));
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double EdrDistance(tseries::SeriesView x, tseries::SeriesView y,
                   double epsilon) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  KSHAPE_CHECK(m >= 1 && n >= 1);
  KSHAPE_CHECK(epsilon >= 0.0);

  std::vector<double> prev(n + 1, 0.0);
  std::vector<double> cur(n + 1, 0.0);
  for (std::size_t j = 0; j <= n; ++j) prev[j] = static_cast<double>(j);
  for (std::size_t i = 1; i <= m; ++i) {
    cur[0] = static_cast<double>(i);
    for (std::size_t j = 1; j <= n; ++j) {
      const double sub_cost =
          std::fabs(x[i - 1] - y[j - 1]) <= epsilon ? 0.0 : 1.0;
      cur[j] = std::min(prev[j - 1] + sub_cost,
                        std::min(prev[j] + 1.0, cur[j - 1] + 1.0));
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

namespace {

// MSM split/merge cost: c when the inserted value lies between its two
// anchors, c plus the distance to the nearer anchor otherwise.
double MsmCost(double inserted, double anchor_a, double anchor_b,
               double cost) {
  if ((anchor_a <= inserted && inserted <= anchor_b) ||
      (anchor_b <= inserted && inserted <= anchor_a)) {
    return cost;
  }
  return cost + std::min(std::fabs(inserted - anchor_a),
                         std::fabs(inserted - anchor_b));
}

}  // namespace

double MsmDistance(tseries::SeriesView x, tseries::SeriesView y,
                   double cost) {
  const std::size_t m = x.size();
  const std::size_t n = y.size();
  KSHAPE_CHECK(m >= 1 && n >= 1);
  KSHAPE_CHECK(cost >= 0.0);

  std::vector<double> prev(n, 0.0);
  std::vector<double> cur(n, 0.0);

  prev[0] = std::fabs(x[0] - y[0]);
  for (std::size_t j = 1; j < n; ++j) {
    prev[j] = prev[j - 1] + MsmCost(y[j], y[j - 1], x[0], cost);
  }
  for (std::size_t i = 1; i < m; ++i) {
    cur[0] = prev[0] + MsmCost(x[i], x[i - 1], y[0], cost);
    for (std::size_t j = 1; j < n; ++j) {
      const double move = prev[j - 1] + std::fabs(x[i] - y[j]);
      const double split_x = prev[j] + MsmCost(x[i], x[i - 1], y[j], cost);
      const double split_y = cur[j - 1] + MsmCost(y[j], y[j - 1], x[i], cost);
      cur[j] = std::min(move, std::min(split_x, split_y));
    }
    std::swap(prev, cur);
  }
  return prev[n - 1];
}

double ComplexityEstimate(tseries::SeriesView x) {
  KSHAPE_CHECK(x.size() >= 1);
  double sum = 0.0;
  for (std::size_t t = 1; t < x.size(); ++t) {
    const double d = x[t] - x[t - 1];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double CidDistance(tseries::SeriesView x, tseries::SeriesView y) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "CID requires equal lengths");
  double ed = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    ed += d * d;
  }
  ed = std::sqrt(ed);
  const double ce_x = ComplexityEstimate(x);
  const double ce_y = ComplexityEstimate(y);
  const double lo = std::min(ce_x, ce_y);
  const double hi = std::max(ce_x, ce_y);
  // Flat series have zero complexity; the correction factor defaults to 1
  // when either complexity estimate vanishes.
  const double factor = lo > 0.0 ? hi / lo : 1.0;
  return ed * factor;
}

double MinkowskiDistance(tseries::SeriesView x, tseries::SeriesView y,
                         double p) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "Minkowski requires equal lengths");
  KSHAPE_CHECK(p >= 1.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum += std::pow(std::fabs(x[i] - y[i]), p);
  }
  return std::pow(sum, 1.0 / p);
}

double ChebyshevDistance(tseries::SeriesView x, tseries::SeriesView y) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "Chebyshev requires equal lengths");
  double best = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    best = std::max(best, std::fabs(x[i] - y[i]));
  }
  return best;
}

}  // namespace kshape::distance
