#include "distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/check.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"

namespace kshape::dtw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shared banded dynamic program over squared point costs. Returns the total
// squared cost of the optimal path.
//
// Scratch rows are thread_local (concurrent DTW evaluations on the pool never
// share them) and reused across calls; per row, only the band plus its two
// boundary guards are reset instead of the whole row. Row i+1 reads prev at
// [j_lo(i+1)-1, j_hi(i+1)], and since j_lo advances by at most one per row
// and j_hi by at most one, that window is covered by row i's written band
// [j_lo(i), j_hi(i)] plus guards at j_lo(i)-1 and j_hi(i)+1 — everything
// else in the scratch rows is stale and provably never read.
double BandedDtwSquared(tseries::SeriesView x, tseries::SeriesView y,
                        int window) {
  const int m = static_cast<int>(x.size());
  const int n = static_cast<int>(y.size());
  KSHAPE_CHECK(m >= 1 && n >= 1);
  // A band narrower than the length difference admits no path at all.
  int w = window;
  if (w < std::abs(m - n)) w = std::abs(m - n);

  static thread_local std::vector<double> prev_scratch;
  static thread_local std::vector<double> cur_scratch;
  prev_scratch.assign(static_cast<std::size_t>(n) + 1, kInf);
  cur_scratch.resize(static_cast<std::size_t>(n) + 1);
  double* prev = prev_scratch.data();
  double* cur = cur_scratch.data();
  prev[0] = 0.0;

  for (int i = 1; i <= m; ++i) {
    const int j_lo = std::max(1, i - w);
    const int j_hi = std::min(n, i + w);
    // Boundary guards: the only cells outside the written band the next row
    // (or this row's own cur[j_lo - 1] read) can see.
    cur[j_lo - 1] = kInf;
    if (j_hi < n) cur[j_hi + 1] = kInf;
    simd::DtwRow(prev + j_lo - 1, y.data() + j_lo - 1, x[i - 1],
                 /*left_seed=*/kInf, cur + j_lo,
                 static_cast<std::size_t>(j_hi - j_lo + 1));
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace

double DtwDistance(tseries::SeriesView x, tseries::SeriesView y) {
  const int full = static_cast<int>(std::max(x.size(), y.size()));
  return std::sqrt(BandedDtwSquared(x, y, full));
}

double ConstrainedDtwDistance(tseries::SeriesView x,
                              tseries::SeriesView y, int window) {
  KSHAPE_CHECK_MSG(window >= 0, "window must be non-negative");
  return std::sqrt(BandedDtwSquared(x, y, window));
}

int WindowFromFraction(double fraction, std::size_t length) {
  KSHAPE_CHECK(fraction >= 0.0);
  const int m = static_cast<int>(length);
  const int w = static_cast<int>(std::ceil(fraction * m));
  return std::clamp(w, 0, std::max(0, m - 1));
}

WarpingPath DtwWarpingPath(tseries::SeriesView x, tseries::SeriesView y,
                           int window) {
  const int m = static_cast<int>(x.size());
  const int n = static_cast<int>(y.size());
  KSHAPE_CHECK(m >= 1 && n >= 1);
  int w = window < 0 ? std::max(m, n) : window;
  if (w < std::abs(m - n)) w = std::abs(m - n);

  // Full (m+1) x (n+1) table — the path needs global backtracking — stored as
  // one row-major buffer (the PR 4 storage convention) instead of a vector of
  // per-row allocations. Cells outside the band stay kInf and lose every
  // backtrack comparison, exactly as before.
  const std::size_t stride = static_cast<std::size_t>(n) + 1;
  std::vector<double> dp(static_cast<std::size_t>(m + 1) * stride, kInf);
  dp[0] = 0.0;
  for (int i = 1; i <= m; ++i) {
    const int j_lo = std::max(1, i - w);
    const int j_hi = std::min(n, i + w);
    double* cur_row = dp.data() + static_cast<std::size_t>(i) * stride;
    const double* prev_row =
        dp.data() + static_cast<std::size_t>(i - 1) * stride;
    // cur_row[j_lo - 1] is kInf from initialization, matching the legacy
    // nested table's untouched cells; the same banded row kernel as
    // BandedDtwSquared fills the band.
    simd::DtwRow(prev_row + j_lo - 1, y.data() + j_lo - 1, x[i - 1],
                 /*left_seed=*/cur_row[j_lo - 1], cur_row + j_lo,
                 static_cast<std::size_t>(j_hi - j_lo + 1));
  }

  const auto cell = [&](int i, int j) -> double {
    return dp[static_cast<std::size_t>(i) * stride +
              static_cast<std::size_t>(j)];
  };

  WarpingPath path;
  path.distance = std::sqrt(cell(m, n));
  int i = m;
  int j = n;
  while (i > 0 && j > 0) {
    path.pairs.emplace_back(i - 1, j - 1);
    const double diag = cell(i - 1, j - 1);
    const double up = cell(i - 1, j);
    const double left = cell(i, j - 1);
    if (diag <= up && diag <= left) {
      --i;
      --j;
    } else if (up <= left) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(path.pairs.begin(), path.pairs.end());
  return path;
}

void LowerUpperEnvelope(tseries::SeriesView x, int window,
                        tseries::Series* lower, tseries::Series* upper) {
  const int m = static_cast<int>(x.size());
  KSHAPE_CHECK(m >= 1);
  const int w = std::clamp(window, 0, m - 1);
  lower->resize(m);
  upper->resize(m);

  // Lemire streaming min/max: each index enters and leaves each deque once.
  std::deque<int> max_deque;
  std::deque<int> min_deque;
  for (int i = 0; i < m + w; ++i) {
    if (i < m) {
      while (!max_deque.empty() && x[max_deque.back()] <= x[i]) {
        max_deque.pop_back();
      }
      max_deque.push_back(i);
      while (!min_deque.empty() && x[min_deque.back()] >= x[i]) {
        min_deque.pop_back();
      }
      min_deque.push_back(i);
    }
    const int center = i - w;
    if (center >= 0) {
      while (max_deque.front() < center - w) max_deque.pop_front();
      while (min_deque.front() < center - w) min_deque.pop_front();
      (*upper)[center] = x[max_deque.front()];
      (*lower)[center] = x[min_deque.front()];
    }
  }
}

double LbKeogh(tseries::SeriesView candidate,
               tseries::SeriesView query_lower,
               tseries::SeriesView query_upper) {
  KSHAPE_CHECK_MSG(candidate.size() == query_lower.size() &&
                       candidate.size() == query_upper.size(),
                   "LB_Keogh length mismatch");
  return std::sqrt(simd::LbKeoghSquared(candidate, query_lower, query_upper));
}

double DtwMeasure::Distance(tseries::SeriesView x,
                            tseries::SeriesView y) const {
  if (absolute_window_ >= 0) {
    return ConstrainedDtwDistance(x, y, absolute_window_);
  }
  if (fraction_ < 0.0) return DtwDistance(x, y);
  return ConstrainedDtwDistance(x, y, WindowFromFraction(fraction_, x.size()));
}

double DdtwMeasure::Distance(tseries::SeriesView x,
                             tseries::SeriesView y) const {
  const tseries::Series dx = tseries::DerivativeTransform(x);
  const tseries::Series dy = tseries::DerivativeTransform(y);
  if (fraction_ < 0.0) return DtwDistance(dx, dy);
  return ConstrainedDtwDistance(dx, dy,
                                WindowFromFraction(fraction_, dx.size()));
}

}  // namespace kshape::dtw
