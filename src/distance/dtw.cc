#include "distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/check.h"
#include "tseries/normalization.h"

namespace kshape::dtw {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shared banded dynamic program over squared point costs. Returns the total
// squared cost of the optimal path.
double BandedDtwSquared(tseries::SeriesView x, tseries::SeriesView y,
                        int window) {
  const int m = static_cast<int>(x.size());
  const int n = static_cast<int>(y.size());
  KSHAPE_CHECK(m >= 1 && n >= 1);
  // A band narrower than the length difference admits no path at all.
  int w = window;
  if (w < std::abs(m - n)) w = std::abs(m - n);

  std::vector<double> prev(static_cast<std::size_t>(n) + 1, kInf);
  std::vector<double> cur(static_cast<std::size_t>(n) + 1, kInf);
  prev[0] = 0.0;

  for (int i = 1; i <= m; ++i) {
    std::fill(cur.begin(), cur.end(), kInf);
    const int j_lo = std::max(1, i - w);
    const int j_hi = std::min(n, i + w);
    for (int j = j_lo; j <= j_hi; ++j) {
      const double d = x[i - 1] - y[j - 1];
      const double cost = d * d;
      const double best =
          std::min(prev[j - 1], std::min(prev[j], cur[j - 1]));
      cur[j] = cost + best;
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

}  // namespace

double DtwDistance(tseries::SeriesView x, tseries::SeriesView y) {
  const int full = static_cast<int>(std::max(x.size(), y.size()));
  return std::sqrt(BandedDtwSquared(x, y, full));
}

double ConstrainedDtwDistance(tseries::SeriesView x,
                              tseries::SeriesView y, int window) {
  KSHAPE_CHECK_MSG(window >= 0, "window must be non-negative");
  return std::sqrt(BandedDtwSquared(x, y, window));
}

int WindowFromFraction(double fraction, std::size_t length) {
  KSHAPE_CHECK(fraction >= 0.0);
  const int m = static_cast<int>(length);
  const int w = static_cast<int>(std::ceil(fraction * m));
  return std::clamp(w, 0, std::max(0, m - 1));
}

WarpingPath DtwWarpingPath(tseries::SeriesView x, tseries::SeriesView y,
                           int window) {
  const int m = static_cast<int>(x.size());
  const int n = static_cast<int>(y.size());
  KSHAPE_CHECK(m >= 1 && n >= 1);
  int w = window < 0 ? std::max(m, n) : window;
  if (w < std::abs(m - n)) w = std::abs(m - n);

  // Full (m+1) x (n+1) table; the path itself needs global backtracking.
  std::vector<std::vector<double>> dp(
      m + 1, std::vector<double>(static_cast<std::size_t>(n) + 1, kInf));
  dp[0][0] = 0.0;
  for (int i = 1; i <= m; ++i) {
    const int j_lo = std::max(1, i - w);
    const int j_hi = std::min(n, i + w);
    for (int j = j_lo; j <= j_hi; ++j) {
      const double d = x[i - 1] - y[j - 1];
      dp[i][j] = d * d + std::min(dp[i - 1][j - 1],
                                  std::min(dp[i - 1][j], dp[i][j - 1]));
    }
  }

  WarpingPath path;
  path.distance = std::sqrt(dp[m][n]);
  int i = m;
  int j = n;
  while (i > 0 && j > 0) {
    path.pairs.emplace_back(i - 1, j - 1);
    const double diag = dp[i - 1][j - 1];
    const double up = dp[i - 1][j];
    const double left = dp[i][j - 1];
    if (diag <= up && diag <= left) {
      --i;
      --j;
    } else if (up <= left) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(path.pairs.begin(), path.pairs.end());
  return path;
}

void LowerUpperEnvelope(tseries::SeriesView x, int window,
                        tseries::Series* lower, tseries::Series* upper) {
  const int m = static_cast<int>(x.size());
  KSHAPE_CHECK(m >= 1);
  const int w = std::clamp(window, 0, m - 1);
  lower->resize(m);
  upper->resize(m);

  // Lemire streaming min/max: each index enters and leaves each deque once.
  std::deque<int> max_deque;
  std::deque<int> min_deque;
  for (int i = 0; i < m + w; ++i) {
    if (i < m) {
      while (!max_deque.empty() && x[max_deque.back()] <= x[i]) {
        max_deque.pop_back();
      }
      max_deque.push_back(i);
      while (!min_deque.empty() && x[min_deque.back()] >= x[i]) {
        min_deque.pop_back();
      }
      min_deque.push_back(i);
    }
    const int center = i - w;
    if (center >= 0) {
      while (max_deque.front() < center - w) max_deque.pop_front();
      while (min_deque.front() < center - w) min_deque.pop_front();
      (*upper)[center] = x[max_deque.front()];
      (*lower)[center] = x[min_deque.front()];
    }
  }
}

double LbKeogh(tseries::SeriesView candidate,
               tseries::SeriesView query_lower,
               tseries::SeriesView query_upper) {
  KSHAPE_CHECK_MSG(candidate.size() == query_lower.size() &&
                       candidate.size() == query_upper.size(),
                   "LB_Keogh length mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < candidate.size(); ++i) {
    const double c = candidate[i];
    if (c > query_upper[i]) {
      const double d = c - query_upper[i];
      sum += d * d;
    } else if (c < query_lower[i]) {
      const double d = query_lower[i] - c;
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

double DtwMeasure::Distance(tseries::SeriesView x,
                            tseries::SeriesView y) const {
  if (absolute_window_ >= 0) {
    return ConstrainedDtwDistance(x, y, absolute_window_);
  }
  if (fraction_ < 0.0) return DtwDistance(x, y);
  return ConstrainedDtwDistance(x, y, WindowFromFraction(fraction_, x.size()));
}

double DdtwMeasure::Distance(tseries::SeriesView x,
                             tseries::SeriesView y) const {
  const tseries::Series dx = tseries::DerivativeTransform(x);
  const tseries::Series dy = tseries::DerivativeTransform(y);
  if (fraction_ < 0.0) return DtwDistance(dx, dy);
  return ConstrainedDtwDistance(dx, dy,
                                WindowFromFraction(fraction_, dx.size()));
}

}  // namespace kshape::dtw
