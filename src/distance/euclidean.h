#ifndef KSHAPE_DISTANCE_EUCLIDEAN_H_
#define KSHAPE_DISTANCE_EUCLIDEAN_H_

#include <string>

#include "distance/measure.h"

namespace kshape::distance {

/// Euclidean distance between two equal-length series (Equation 3 of the
/// paper). Free function for hot paths.
double EuclideanDistanceValue(tseries::SeriesView x, tseries::SeriesView y);

/// Squared Euclidean distance (avoids the sqrt when only comparisons are
/// needed, e.g. inside k-means assignment).
double SquaredEuclideanDistance(tseries::SeriesView x, tseries::SeriesView y);

/// DistanceMeasure wrapper around ED.
class EuclideanDistance : public DistanceMeasure {
 public:
  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override {
    return EuclideanDistanceValue(x, y);
  }
  std::string Name() const override { return "ED"; }
};

}  // namespace kshape::distance

#endif  // KSHAPE_DISTANCE_EUCLIDEAN_H_
