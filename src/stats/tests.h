#ifndef KSHAPE_STATS_TESTS_H_
#define KSHAPE_STATS_TESTS_H_

#include <vector>

#include "linalg/matrix.h"

namespace kshape::stats {

/// Result of a Wilcoxon signed-rank test.
struct WilcoxonResult {
  /// Sum of ranks of the positive differences (W+).
  double w_plus = 0.0;
  /// Normal-approximation z statistic with tie correction.
  double z = 0.0;
  /// Two-sided p-value (normal approximation, continuity-corrected).
  double p_value = 1.0;
  /// Non-zero differences used.
  int n_effective = 0;
};

/// Paired two-sided Wilcoxon signed-rank test of a vs b (§4 of the paper:
/// used for every pairwise comparison of methods over datasets, at a 99%
/// confidence level). Zero differences are dropped; ties share mid-ranks.
WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Result of a Friedman test over methods x datasets scores.
struct FriedmanResult {
  /// Average rank of each method (rank 1 = best); ties share mid-ranks.
  std::vector<double> average_ranks;
  /// Friedman chi-square statistic with k-1 degrees of freedom.
  double chi_square = 0.0;
  /// P-value from the chi-square approximation.
  double p_value = 1.0;
};

/// Friedman test on a datasets x methods score matrix where LARGER scores
/// are better (accuracy, Rand index); used before the Nemenyi post-hoc test
/// as in Figures 6, 8 and 9 of the paper.
FriedmanResult FriedmanTest(const linalg::Matrix& scores);

/// Nemenyi critical difference for comparing k methods over n datasets at
/// significance level alpha (0.05 or 0.01): two methods differ significantly
/// iff their average ranks differ by at least CD = q_alpha sqrt(k(k+1)/(6n)).
double NemenyiCriticalDifference(int k_methods, int n_datasets,
                                 double alpha = 0.05);

/// Mid-rank ranking of one score row: rank 1 for the largest score; ties
/// share the average of the tied ranks. Exposed for tests and harnesses.
std::vector<double> RankDescending(const std::vector<double>& scores);

/// Win/tie/loss tally of method `a` against baseline `b` over datasets, with
/// scores compared at the given tolerance (the ">", "=", "<" columns of
/// Tables 2-4).
struct WinTieLoss {
  int wins = 0;
  int ties = 0;
  int losses = 0;
};
WinTieLoss CompareScores(const std::vector<double>& a,
                         const std::vector<double>& b, double tol = 1e-9);

}  // namespace kshape::stats

#endif  // KSHAPE_STATS_TESTS_H_
