#include "stats/special_functions.h"

#include <cmath>

#include "common/check.h"

namespace kshape::stats {

double NormalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double TwoSidedNormalPValue(double z) {
  const double p = 2.0 * (1.0 - NormalCdf(std::fabs(z)));
  return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
}

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;

// Series expansion for P(a, x), best for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a, x), best for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  KSHAPE_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  KSHAPE_CHECK(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSurvival(double x, double df) {
  KSHAPE_CHECK(df > 0.0);
  if (x <= 0.0) return 1.0;
  return RegularizedGammaQ(df / 2.0, x / 2.0);
}

}  // namespace kshape::stats
