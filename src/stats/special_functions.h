#ifndef KSHAPE_STATS_SPECIAL_FUNCTIONS_H_
#define KSHAPE_STATS_SPECIAL_FUNCTIONS_H_

namespace kshape::stats {

/// Standard normal cumulative distribution function.
double NormalCdf(double z);

/// Two-sided p-value for a standard-normal statistic: 2 * (1 - Phi(|z|)).
double TwoSidedNormalPValue(double z);

/// Regularized lower incomplete gamma P(a, x) (series / continued fraction,
/// Numerical Recipes style). Requires a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-square distribution with `df` degrees of
/// freedom: P(X > x) = Q(df/2, x/2).
double ChiSquareSurvival(double x, double df);

}  // namespace kshape::stats

#endif  // KSHAPE_STATS_SPECIAL_FUNCTIONS_H_
