#include "stats/tests.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/special_functions.h"

namespace kshape::stats {

namespace {

// Mid-rank ranking of |values| ascending; returns ranks aligned with input.
std::vector<double> MidRanksAscending(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mid = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                       + 1.0;
    for (std::size_t t = i; t <= j; ++t) ranks[order[t]] = mid;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  KSHAPE_CHECK_MSG(a.size() == b.size(), "paired test requires equal sizes");
  std::vector<double> abs_diffs;
  std::vector<int> signs;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d == 0.0) continue;  // Standard practice: drop zero differences.
    abs_diffs.push_back(std::fabs(d));
    signs.push_back(d > 0.0 ? 1 : -1);
  }
  WilcoxonResult result;
  result.n_effective = static_cast<int>(abs_diffs.size());
  if (result.n_effective == 0) return result;

  const std::vector<double> ranks = MidRanksAscending(abs_diffs);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (signs[i] > 0) result.w_plus += ranks[i];
  }

  const double n = static_cast<double>(result.n_effective);
  const double mean = n * (n + 1.0) / 4.0;

  // Variance with tie correction: sum over tie groups of (t^3 - t) / 48.
  double tie_correction = 0.0;
  {
    std::vector<double> sorted = abs_diffs;
    std::sort(sorted.begin(), sorted.end());
    std::size_t i = 0;
    while (i < sorted.size()) {
      std::size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      tie_correction += (t * t * t - t) / 48.0;
      i = j + 1;
    }
  }
  const double variance =
      n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie_correction;
  if (variance <= 0.0) {
    result.z = 0.0;
    result.p_value = 1.0;
    return result;
  }

  // Continuity-corrected normal approximation.
  const double numerator = result.w_plus - mean;
  const double corrected =
      numerator > 0.5 ? numerator - 0.5 : (numerator < -0.5 ? numerator + 0.5
                                                            : 0.0);
  result.z = corrected / std::sqrt(variance);
  result.p_value = TwoSidedNormalPValue(result.z);
  return result;
}

std::vector<double> RankDescending(const std::vector<double>& scores) {
  std::vector<double> negated(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) negated[i] = -scores[i];
  return MidRanksAscending(negated);
}

FriedmanResult FriedmanTest(const linalg::Matrix& scores) {
  const std::size_t n = scores.rows();  // datasets
  const std::size_t k = scores.cols();  // methods
  KSHAPE_CHECK_MSG(n >= 2 && k >= 2, "Friedman needs >= 2 rows and columns");

  FriedmanResult result;
  result.average_ranks.assign(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<double> ranks = RankDescending(scores.RowVector(i));
    for (std::size_t j = 0; j < k; ++j) result.average_ranks[j] += ranks[j];
  }
  for (double& r : result.average_ranks) r /= static_cast<double>(n);

  const double kd = static_cast<double>(k);
  const double nd = static_cast<double>(n);
  double sum_sq = 0.0;
  for (double r : result.average_ranks) sum_sq += r * r;
  result.chi_square = 12.0 * nd / (kd * (kd + 1.0)) *
                      (sum_sq - kd * (kd + 1.0) * (kd + 1.0) / 4.0);
  if (result.chi_square < 0.0) result.chi_square = 0.0;
  result.p_value = ChiSquareSurvival(result.chi_square, kd - 1.0);
  return result;
}

double NemenyiCriticalDifference(int k_methods, int n_datasets, double alpha) {
  KSHAPE_CHECK_MSG(k_methods >= 2 && k_methods <= 20,
                   "Nemenyi table covers k in [2, 20]");
  KSHAPE_CHECK(n_datasets >= 2);
  // Critical values q_alpha of the studentized range statistic divided by
  // sqrt(2) (Demsar 2006, Table 5), for k = 2..20.
  static constexpr double kQ005[] = {
      1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031, 3.102, 3.164,
      3.219, 3.268, 3.313, 3.354, 3.391, 3.426, 3.458, 3.489, 3.517,
      3.544};
  static constexpr double kQ001[] = {
      2.576, 2.913, 3.113, 3.255, 3.364, 3.452, 3.526, 3.590, 3.646,
      3.696, 3.741, 3.781, 3.818, 3.853, 3.884, 3.914, 3.941, 3.967,
      3.992};
  double q = 0.0;
  if (alpha == 0.05) {
    q = kQ005[k_methods - 2];
  } else if (alpha == 0.01) {
    q = kQ001[k_methods - 2];
  } else {
    KSHAPE_CHECK_MSG(false, "Nemenyi table has alpha = 0.05 and 0.01 only");
  }
  const double kd = static_cast<double>(k_methods);
  const double nd = static_cast<double>(n_datasets);
  return q * std::sqrt(kd * (kd + 1.0) / (6.0 * nd));
}

WinTieLoss CompareScores(const std::vector<double>& a,
                         const std::vector<double>& b, double tol) {
  KSHAPE_CHECK_MSG(a.size() == b.size(), "size mismatch");
  WinTieLoss result;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i] + tol) {
      ++result.wins;
    } else if (a[i] < b[i] - tol) {
      ++result.losses;
    } else {
      ++result.ties;
    }
  }
  return result;
}

}  // namespace kshape::stats
