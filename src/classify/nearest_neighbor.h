#ifndef KSHAPE_CLASSIFY_NEAREST_NEIGHBOR_H_
#define KSHAPE_CLASSIFY_NEAREST_NEIGHBOR_H_

#include <vector>

#include "distance/measure.h"
#include "model/fitted_model.h"
#include "tseries/time_series.h"

namespace kshape::classify {

/// Predicts the label of `query` as the label of its nearest training series
/// under `measure` (ties broken by the first minimum).
int OneNnClassify(const tseries::Dataset& train, tseries::SeriesView query,
                  const distance::DistanceMeasure& measure);

/// 1-NN classification accuracy of `measure` on a train/test split — the
/// deterministic, parameter-free evaluation protocol the paper uses for all
/// distance-measure comparisons (§4, following Ding et al.). Queries are
/// evaluated in parallel on the global thread pool (KSHAPE_THREADS); the
/// accuracy is bit-identical at every thread count, as is that of every
/// other accuracy function below.
double OneNnAccuracy(const tseries::Dataset& train,
                     const tseries::Dataset& test,
                     const distance::DistanceMeasure& measure);

/// 1-NN accuracy for cDTW with the given Sakoe-Chiba window, accelerated by
/// LB_Keogh pruning: candidates whose lower bound already exceeds the best
/// distance so far skip the O(m*w) dynamic program. Produces exactly the same
/// predictions as the exhaustive search (the bound is admissible); this is
/// the cDTW_LB row of Table 2.
double OneNnAccuracyCdtwLb(const tseries::Dataset& train,
                           const tseries::Dataset& test, int window);

/// Leave-one-out 1-NN accuracy of cDTW with the given window on a single
/// dataset (used for window tuning).
double LeaveOneOutCdtwAccuracy(const tseries::Dataset& data, int window);

/// Picks the cDTW warping window by maximizing leave-one-out 1-NN accuracy
/// over the training set — the paper's cDTW_opt protocol (§4 "Parameter
/// settings"). `window_fractions` are candidate band widths as fractions of
/// the series length (e.g. 0.00, 0.01, ..., 0.20); ties prefer the smaller
/// window. Returns the chosen window in cells.
int TuneCdtwWindowLoo(const tseries::Dataset& train,
                      const std::vector<double>& window_fractions);

/// The candidate grid 0%, 1%, ..., 20% used by the cDTW_opt experiments.
std::vector<double> DefaultWindowFractions();

/// k-nearest-neighbor majority-vote classification (generalizes the paper's
/// 1-NN protocol; k = 1 reproduces OneNnClassify exactly). Ties between
/// classes are broken toward the class whose nearest member is closest.
int KnnClassify(const tseries::Dataset& train, tseries::SeriesView query,
                const distance::DistanceMeasure& measure, int k);

/// k-NN classification accuracy over a train/test split.
double KnnAccuracy(const tseries::Dataset& train, const tseries::Dataset& test,
                   const distance::DistanceMeasure& measure, int k);

/// 1-NN under ED with early abandoning: the running squared sum is compared
/// against the best candidate so far after every coordinate, so clearly-far
/// candidates cost O(1) instead of O(m). Identical predictions to the
/// exhaustive search.
double OneNnAccuracyEdEarlyAbandon(const tseries::Dataset& train,
                                   const tseries::Dataset& test);

/// Nearest-centroid classification against a fitted model: the label of each
/// query is the index of its nearest centroid under SBD — the model::Predict
/// path, i.e. the same Assigner scan the clustering assignment step runs
/// (spectral early abandoning included). Fit the model so centroid indices
/// carry class meaning — e.g. k-Shape with k = the number of classes, or one
/// shape extraction per class — and the returned labels are class ids.
/// Queries must be equal-length series of the model's length m.
std::vector<int> NearestCentroidClassify(const model::FittedModel& model,
                                         const tseries::SeriesBatch& queries);

}  // namespace kshape::classify

#endif  // KSHAPE_CLASSIFY_NEAREST_NEIGHBOR_H_
