#include "classify/nearest_neighbor.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "distance/dtw.h"
#include "simd/dispatch.h"

namespace kshape::classify {

namespace {

// Accuracy loops parallelize over queries: each query writes one flag into a
// pre-sized buffer and the count is reduced sequentially afterwards, so the
// result cannot depend on thread scheduling. Grain 1: a single query already
// costs a full scan of the training set.
double ParallelQueryAccuracy(
    std::size_t num_queries,
    const std::function<bool(std::size_t)>& query_is_correct) {
  std::vector<unsigned char> correct(num_queries, 0);
  common::ParallelFor(0, num_queries, 1,
                      [&](std::size_t begin, std::size_t end) {
    for (std::size_t q = begin; q < end; ++q) {
      correct[q] = query_is_correct(q) ? 1 : 0;
    }
  });
  std::size_t total = 0;
  for (unsigned char c : correct) total += c;
  return static_cast<double>(total) / static_cast<double>(num_queries);
}

// Majority vote over the k nearest (distance, label) pairs; ties go to the
// class with the closest member. Shared by the per-pair and batched k-NN
// paths so the two agree prediction for prediction.
int KnnVote(std::vector<std::pair<double, int>>* neighbors, int effective_k) {
  std::partial_sort(neighbors->begin(), neighbors->begin() + effective_k,
                    neighbors->end());
  std::map<int, int> votes;
  for (int i = 0; i < effective_k; ++i) ++votes[(*neighbors)[i].second];
  int best_label = (*neighbors)[0].second;
  int best_votes = 0;
  for (int i = 0; i < effective_k; ++i) {
    const int label = (*neighbors)[i].second;
    const int count = votes[label];
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace

int OneNnClassify(const tseries::Dataset& train, tseries::SeriesView query,
                  const distance::DistanceMeasure& measure) {
  KSHAPE_CHECK(!train.empty());
  double best = std::numeric_limits<double>::infinity();
  int label = train.label(0);
  for (std::size_t i = 0; i < train.size(); ++i) {
    const double d = measure.Distance(query, train.view(i));
    if (d < best) {
      best = d;
      label = train.label(i);
    }
  }
  return label;
}

double OneNnAccuracy(const tseries::Dataset& train,
                     const tseries::Dataset& test,
                     const distance::DistanceMeasure& measure) {
  KSHAPE_CHECK(!train.empty() && !test.empty());
  // Measures with per-candidate precomputation (SBD's spectrum cache) scan
  // the training set through a batch scanner built once: the training spectra
  // are transformed here and every query afterwards costs one forward plus
  // |train| inverse transforms instead of |train| full SBD evaluations.
  const std::unique_ptr<distance::BatchScanner> scanner =
      measure.NewBatchScanner(train.batch());
  if (scanner != nullptr) {
    // Nearest() lets bounding scanners (SBD's spectral early abandon) skip
    // candidates that provably cannot win; its tie-break contract matches
    // NearestLabel over the exhaustive row, so accuracy is unchanged.
    return ParallelQueryAccuracy(test.size(), [&](std::size_t q) {
      const distance::BatchScanner::NearestResult nearest =
          scanner->Nearest(test.view(q));
      return train.label(nearest.index) == test.label(q);
    });
  }
  return ParallelQueryAccuracy(test.size(), [&](std::size_t i) {
    return OneNnClassify(train, test.view(i), measure) == test.label(i);
  });
}

double OneNnAccuracyCdtwLb(const tseries::Dataset& train,
                           const tseries::Dataset& test, int window) {
  KSHAPE_CHECK(!train.empty() && !test.empty());
  KSHAPE_CHECK(window >= 0);
  // The LB_Keogh prune threshold is query-local state, so queries stay
  // independent and the prune decisions match the sequential run exactly.
  return ParallelQueryAccuracy(test.size(), [&](std::size_t q) {
    const tseries::SeriesView query = test.view(q);
    tseries::Series lower;
    tseries::Series upper;
    dtw::LowerUpperEnvelope(query, window, &lower, &upper);

    double best = std::numeric_limits<double>::infinity();
    int label = train.label(0);
    for (std::size_t i = 0; i < train.size(); ++i) {
      const double bound = dtw::LbKeogh(train.view(i), lower, upper);
      if (bound >= best) continue;  // Admissible prune.
      const double d =
          dtw::ConstrainedDtwDistance(query, train.view(i), window);
      if (d < best) {
        best = d;
        label = train.label(i);
      }
    }
    return label == test.label(q);
  });
}

double LeaveOneOutCdtwAccuracy(const tseries::Dataset& data, int window) {
  KSHAPE_CHECK(data.size() >= 2);
  return ParallelQueryAccuracy(data.size(), [&](std::size_t q) {
    const tseries::SeriesView query = data.view(q);
    tseries::Series lower;
    tseries::Series upper;
    dtw::LowerUpperEnvelope(query, window, &lower, &upper);

    double best = std::numeric_limits<double>::infinity();
    int label = 0;
    bool have_label = false;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (i == q) continue;
      const double bound = dtw::LbKeogh(data.view(i), lower, upper);
      if (have_label && bound >= best) continue;
      const double d =
          dtw::ConstrainedDtwDistance(query, data.view(i), window);
      if (!have_label || d < best) {
        best = d;
        label = data.label(i);
        have_label = true;
      }
    }
    return label == data.label(q);
  });
}

int TuneCdtwWindowLoo(const tseries::Dataset& train,
                      const std::vector<double>& window_fractions) {
  KSHAPE_CHECK(!window_fractions.empty());
  int best_window = dtw::WindowFromFraction(window_fractions[0],
                                            train.length());
  double best_accuracy = -1.0;
  int previous_window = -1;
  for (double fraction : window_fractions) {
    const int window = dtw::WindowFromFraction(fraction, train.length());
    if (window == previous_window) continue;  // Grid collapsed for short m.
    previous_window = window;
    const double accuracy = LeaveOneOutCdtwAccuracy(train, window);
    if (accuracy > best_accuracy) {
      best_accuracy = accuracy;
      best_window = window;
    }
  }
  return best_window;
}

int KnnClassify(const tseries::Dataset& train, tseries::SeriesView query,
                const distance::DistanceMeasure& measure, int k) {
  KSHAPE_CHECK(!train.empty());
  KSHAPE_CHECK(k >= 1);
  const int effective_k = std::min<int>(k, static_cast<int>(train.size()));

  // Collect the k smallest (distance, label) pairs.
  std::vector<std::pair<double, int>> neighbors;
  neighbors.reserve(train.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    neighbors.emplace_back(measure.Distance(query, train.view(i)),
                           train.label(i));
  }
  return KnnVote(&neighbors, effective_k);
}

double KnnAccuracy(const tseries::Dataset& train, const tseries::Dataset& test,
                   const distance::DistanceMeasure& measure, int k) {
  KSHAPE_CHECK(!train.empty() && !test.empty());
  KSHAPE_CHECK(k >= 1);
  const int effective_k = std::min<int>(k, static_cast<int>(train.size()));
  // Same batched-scan routing as OneNnAccuracy.
  const std::unique_ptr<distance::BatchScanner> scanner =
      measure.NewBatchScanner(train.batch());
  if (scanner != nullptr) {
    return ParallelQueryAccuracy(test.size(), [&](std::size_t q) {
      std::vector<double> dists;
      scanner->DistancesToAll(test.view(q), &dists);
      std::vector<std::pair<double, int>> neighbors;
      neighbors.reserve(train.size());
      for (std::size_t i = 0; i < train.size(); ++i) {
        neighbors.emplace_back(dists[i], train.label(i));
      }
      return KnnVote(&neighbors, effective_k) == test.label(q);
    });
  }
  return ParallelQueryAccuracy(test.size(), [&](std::size_t i) {
    return KnnClassify(train, test.view(i), measure, k) == test.label(i);
  });
}

double OneNnAccuracyEdEarlyAbandon(const tseries::Dataset& train,
                                   const tseries::Dataset& test) {
  KSHAPE_CHECK(!train.empty() && !test.empty());
  // The abandon threshold, like the LB_Keogh prune, is query-local.
  return ParallelQueryAccuracy(test.size(), [&](std::size_t q) {
    const tseries::SeriesView query = test.view(q);
    double best_sq = std::numeric_limits<double>::infinity();
    int label = train.label(0);
    for (std::size_t i = 0; i < train.size(); ++i) {
      // The kernel checks the running sum against the threshold on a fixed
      // 16-element cadence and returns a partial sum >= best_sq when it
      // abandons, so "sum < best_sq" below is exactly the not-abandoned,
      // strictly-better update.
      const double sum =
          simd::SquaredEdAbandon(query, train.view(i), best_sq);
      if (sum < best_sq) {
        best_sq = sum;
        label = train.label(i);
      }
    }
    return label == test.label(q);
  });
}

std::vector<double> DefaultWindowFractions() {
  std::vector<double> fractions;
  for (int pct = 0; pct <= 20; ++pct) {
    fractions.push_back(static_cast<double>(pct) / 100.0);
  }
  return fractions;
}

std::vector<int> NearestCentroidClassify(const model::FittedModel& model,
                                         const tseries::SeriesBatch& queries) {
  return model::Predict(model, queries).labels;
}

}  // namespace kshape::classify
