#ifndef KSHAPE_CLUSTER_KSC_H_
#define KSHAPE_CLUSTER_KSC_H_

#include <string>

#include "cluster/algorithm.h"
#include "distance/measure.h"

namespace kshape::cluster {

/// The K-Spectral Centroid scale/shift distance (Yang & Leskovec 2011;
/// §2.5 of the paper): d(x, y) = min over integer shifts q and scales a of
/// ||x - a * y(q)|| / ||x||, with y(q) the zero-filled shift of Equation 5
/// and a chosen optimally in closed form per shift. Zero-norm x is defined
/// to be at distance 0 from a zero-norm y and 1 from anything else.
double KscDistanceValue(tseries::SeriesView x, tseries::SeriesView y);

/// The optimal alignment behind KscDistanceValue.
struct KscAlignment {
  double distance = 0.0;
  int shift = 0;      // Applied to y.
  double alpha = 0.0; // Optimal scale applied to the shifted y.
};

/// Returns the optimal (shift, scale) of y toward x and the resulting
/// distance. Evaluates every shift with time-domain kernel calls: O(m^2).
KscAlignment KscAlign(tseries::SeriesView x, tseries::SeriesView y);

/// Same alignment in O(m log m): all per-shift dot products x . y(q) come
/// from ONE half-spectrum FFT cross-correlation (xy(q) = cc[m-1+q] in the
/// shared lag layout of fft::CrossCorrelationFft), and the per-shift
/// ||y(q)||^2 from prefix sums of y^2. The scan order and strict-less
/// tie-break match KscAlign exactly, so the two agree to FFT rounding (a
/// tight epsilon on distance/alpha; the argmin shift can differ only on
/// numerical near-ties).
KscAlignment KscAlignFft(tseries::SeriesView x, tseries::SeriesView y);

/// DistanceMeasure adapter for the KSC distance.
class KscDistance : public distance::DistanceMeasure {
 public:
  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override {
    return KscDistanceValue(x, y);
  }
  std::string Name() const override { return "KSC-dist"; }
};

/// Options for the KSC algorithm.
struct KscOptions {
  int max_iterations = 100;

  /// When true (default), centroid alignment and assignment distances run
  /// through KscAlignFft — O(m log m) per pair instead of O(m^2) — on the
  /// half-spectrum transform path. Combined with the process-wide
  /// KSHAPE_HALF_SPECTRUM gate (fft/rfft.h): KSHAPE_HALF_SPECTRUM=off
  /// restores the time-domain evaluation everywhere without touching call
  /// sites. False forces the time-domain path, kept for ablation.
  bool use_fft_alignment = true;

  /// When true (default) — and the process-wide KSHAPE_MATFREE gate
  /// (linalg/row_pool.h) agrees — the centroid eigenproblem runs
  /// matrix-free: P = Σ bᵢbᵢᵀ/||bᵢ||² is never formed; power iteration
  /// applies P·v = Σ ŝᵢ(ŝᵢ·v) over the unit-scaled aligned members
  /// ŝᵢ = bᵢ/||bᵢ|| in O(n_c·m) per step — the same structure as matrix-free
  /// shape extraction, minus the centering. Epsilon-equal to the dense path
  /// (different summation order), with the identical RNG draw sequence;
  /// KSHAPE_MATFREE=off restores the dense path bit-identically.
  bool use_matrix_free = true;
};

/// K-Spectral Centroid clustering: a k-means iteration whose assignment uses
/// the scale/shift-invariant KSC distance and whose centroid is the
/// eigenvector minimizing the summed normalized residuals — the smallest
/// eigenvector of M = sum_i (I - b_i b_i^T / (b_i^T b_i)) over the members
/// aligned to the previous centroid. One of the paper's scalable baselines
/// (Table 3).
class Ksc : public ClusteringAlgorithm {
 public:
  explicit Ksc(KscOptions options = {});

  ClusteringResult Cluster(const tseries::SeriesBatch& series, int k,
                           common::Rng* rng) const override;

  std::string Name() const override { return "KSC"; }

 private:
  KscOptions options_;
};

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_KSC_H_
