#ifndef KSHAPE_CLUSTER_KMEANS_H_
#define KSHAPE_CLUSTER_KMEANS_H_

#include <string>

#include "cluster/algorithm.h"
#include "cluster/averaging.h"
#include "distance/measure.h"

namespace kshape::cluster {

/// Options for the generic k-means loop.
struct KMeansOptions {
  /// Iteration cap (the paper uses 100 for all iterative methods).
  int max_iterations = 100;
};

/// Generic k-means (MacQueen / Lloyd) parameterized by a distance measure and
/// an averaging method (§2.1 of the paper).
///
/// Instantiations reproduce the paper's scalable baselines of Table 3:
///   KMeans(ED, ArithmeticMean)   -> "k-AVG+ED"
///   KMeans(SBD, ArithmeticMean)  -> "k-AVG+SBD"
///   KMeans(DTW, ArithmeticMean)  -> "k-AVG+DTW"
///   KMeans(DTW, DBA)             -> "k-DBA"
/// The distance and averaging objects must outlive the KMeans instance.
class KMeans : public ClusteringAlgorithm {
 public:
  KMeans(const distance::DistanceMeasure* measure,
         const AveragingMethod* averaging, std::string name,
         KMeansOptions options = {});

  ClusteringResult Cluster(const tseries::SeriesBatch& series, int k,
                           common::Rng* rng) const override;

  std::string Name() const override { return name_; }

 private:
  const distance::DistanceMeasure* measure_;
  const AveragingMethod* averaging_;
  std::string name_;
  KMeansOptions options_;
};

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_KMEANS_H_
