#include "cluster/minibatch_kshape.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/sbd.h"
#include "core/sbd_engine.h"
#include "core/shape_extraction.h"
#include "fft/fft.h"
#include "fft/rfft.h"
#include "model/assigner.h"

namespace kshape::cluster {

namespace {

// Same grain as the in-memory assignment/seeding scans — the per-index work
// is identical, only the [begin, end) range is per-shard here. Chunking does
// not affect results (disjoint writes of pure per-index values), so per-shard
// chunks and global chunks land on the same bits.
constexpr std::size_t kScanGrain = 16;

// Per-shard SbdEngine cache riding the store's residency layer: Get()
// acquires the shard (possibly evicting another), drops engines whose shards
// were evicted, and (re)builds the engine when the shard was (re)loaded —
// keyed by the shard's generation stamp. With the whole store resident the
// engines persist across iterations; under pressure they rebuild with the
// shard, so engine memory is bounded by the same residency budget as the
// samples. Coordinator-thread only (like Acquire itself).
class ShardEngines {
 public:
  ShardEngines(store::ShardedSeriesStore* store, bool use_half_spectrum,
               bool build_bound_planes)
      : store_(store), half_(use_half_spectrum), planes_(build_bound_planes),
        engines_(store->num_shards()),
        built_generation_(store->num_shards(), 0) {}

  struct Slot {
    store::ShardView view;
    const core::SbdEngine* engine;
  };

  Slot Get(std::size_t s) {
    const store::ShardView view = store_->Acquire(s);
    for (std::size_t c = 0; c < engines_.size(); ++c) {
      if (engines_[c].has_value() && !store_->ShardResident(c)) {
        engines_[c].reset();
      }
    }
    if (!engines_[s].has_value() || built_generation_[s] != view.generation()) {
      engines_[s].emplace(view.batch(), core::CrossCorrelationImpl::kFft,
                          half_, planes_);
      built_generation_[s] = view.generation();
    }
    return Slot{view, &*engines_[s]};
  }

 private:
  store::ShardedSeriesStore* store_;
  bool half_;
  bool planes_;
  std::vector<std::optional<core::SbdEngine>> engines_;
  std::vector<std::uint64_t> built_generation_;
};

// Copies global row i out of the store (one Acquire; the copy owns its
// samples, so later evictions cannot invalidate it).
tseries::Series CopyRow(store::ShardedSeriesStore* store, std::size_t i) {
  const store::ShardView view = store->Acquire(store->ShardOfRow(i));
  const tseries::SeriesView v = view.batch()[i - view.global_begin()];
  return tseries::Series(v.begin(), v.end());
}

// Floyd's uniform sample of `b` distinct indices from [0, n), returned
// sorted ascending. Consumes exactly b UniformInt draws on the calling
// (coordinating) thread, so the sample — and everything downstream of it —
// is a pure function of the rng state, independent of thread count.
std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                  std::size_t b,
                                                  common::Rng* rng) {
  KSHAPE_CHECK(b <= n);
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(b * 2);
  for (std::size_t t = n - b; t < n; ++t) {
    const std::size_t r = static_cast<std::size_t>(
        rng->UniformInt(static_cast<int>(t + 1)));
    chosen.insert(chosen.count(r) ? t : r);
  }
  std::vector<std::size_t> sample(chosen.begin(), chosen.end());
  std::sort(sample.begin(), sample.end());
  return sample;
}

// ++-seeding over the sharded store: the exact D^2-sampling scan of the
// in-memory PlusPlusAssignments, with each seed's spectrum minted once
// (MakeQueryFor) and streamed against every shard. Distance(q, i) with the
// seed in the query/x role reproduces the in-set Distance(seed, i) bit for
// bit — same spectra, same norm product order — so the seeding consumes the
// same rng stream and picks the same seeds as the in-memory path.
std::vector<int> ShardedPlusPlus(store::ShardedSeriesStore* store, int k,
                                 common::Rng* rng, ShardEngines* cache,
                                 std::size_t fft_len, bool half) {
  const std::size_t n = store->size();
  const std::size_t m = store->length();
  std::vector<std::size_t> seeds;
  seeds.push_back(static_cast<std::size_t>(rng->UniformInt(
      static_cast<int>(n))));

  std::vector<double> d2(n);
  std::vector<int> nearest(n, 0);

  const auto scan = [&](std::size_t seed, int seed_index, bool first) {
    const tseries::Series seed_row = CopyRow(store, seed);
    const core::SbdEngine::Query q = core::SbdEngine::MakeQueryFor(
        seed_row, m, fft_len, half, /*build_bound_planes=*/false);
    for (std::size_t s = 0; s < store->num_shards(); ++s) {
      const ShardEngines::Slot slot = cache->Get(s);
      const std::size_t base = slot.view.global_begin();
      common::ParallelFor(0, slot.view.rows(), kScanGrain,
                          [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const double d = slot.engine->Distance(q, r);
          const std::size_t i = base + r;
          if (first) {
            d2[i] = d * d;
          } else if (d * d < d2[i]) {
            d2[i] = d * d;
            nearest[i] = seed_index;
          }
        }
      });
    }
  };

  scan(seeds[0], 0, /*first=*/true);
  while (static_cast<int>(seeds.size()) < k) {
    double total = 0.0;
    for (double v : d2) total += v;
    std::size_t pick = 0;
    if (total <= 0.0) {
      // All series coincide with a seed; any unused index works.
      pick = static_cast<std::size_t>(rng->UniformInt(static_cast<int>(n)));
    } else {
      double threshold = rng->Uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        threshold -= d2[i];
        if (threshold <= 0.0) {
          pick = i;
          break;
        }
      }
    }
    seeds.push_back(pick);
    scan(pick, static_cast<int>(seeds.size()) - 1, /*first=*/false);
  }
  return nearest;
}

}  // namespace

MiniBatchKShape::MiniBatchKShape(core::KShapeOptions options)
    : options_(options), name_("k-Shape-sharded") {
  KSHAPE_CHECK(options_.max_iterations >= 1);
  KSHAPE_CHECK(options_.refresh_period >= 1);
  KSHAPE_CHECK_MSG(options_.use_spectrum_cache,
                   "the sharded driver IS the spectrum-cache path; "
                   "use_spectrum_cache = false has no sharded analogue");
  KSHAPE_CHECK_MSG(options_.assignment_distance == nullptr,
                   "custom assignment distances are not streamable; "
                   "use the in-memory KShape");
}

ClusteringResult MiniBatchKShape::Cluster(store::ShardedSeriesStore* store,
                                          int k, common::Rng* rng) const {
  KSHAPE_CHECK(store != nullptr);
  KSHAPE_CHECK_MSG(store->sealed(), "Cluster requires a sealed store");
  KSHAPE_CHECK(!store->empty());
  KSHAPE_CHECK(k >= 1 && static_cast<std::size_t>(k) <= store->size());
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t n = store->size();
  const std::size_t m = store->length();
  const std::size_t num_shards = store->num_shards();
  const std::size_t fft_len = fft::NextPowerOfTwo(2 * m - 1);
  const bool half = options_.use_half_spectrum && fft::HalfSpectrumEnabled();
  const bool pruning = options_.use_pruning && core::PruningEnabled();
  const bool minibatch = options_.minibatch_size > 0 &&
                         options_.minibatch_size < n &&
                         store::ShardingEnabled();
  const std::size_t batch_size = options_.minibatch_size;
  const long long loaded_before = store->shards_loaded();
  const long long evicted_before = store->shard_evictions();

  ShardEngines cache(store, half, /*build_bound_planes=*/pruning);

  ClusteringResult result;
  result.assignments =
      options_.init == core::KShapeInit::kPlusPlusSeeding
          ? ShardedPlusPlus(store, k, rng, &cache, fft_len, half)
          : RandomAssignments(n, k, rng);
  result.centroids.assign(k, tseries::Series(m, 0.0));

  // Hamerly movement bounds run only in exact mode: their per-series state
  // assumes every series sees every centroid update, which sampled
  // iterations violate. The stateless spectral early-abandon layer stays on
  // in both modes whenever pruning is on. Both layers, the telemetry cells,
  // and the per-iteration centroid queries now live in the shared Assigner;
  // per-shard engines are presented block by block (ascending shard order =
  // ascending global base order, the Assigner's reduction discipline), all
  // sharing one configuration so the minted queries are valid everywhere.
  const bool bounds_mode = pruning && !minibatch;
  model::AssignerOptions assigner_options;
  assigner_options.k = k;
  assigner_options.num_series = n;
  assigner_options.m = m;
  assigner_options.fft_len = fft_len;
  assigner_options.use_half_spectrum = half;
  assigner_options.use_pruning = pruning;
  assigner_options.use_movement_bounds = bounds_mode;
  assigner_options.prune_margin = options_.prune_margin;
  assigner_options.verify = bounds_mode && options_.verify_pruning;
  model::Assigner assigner(assigner_options);

  // Empty-cluster repair streams the same ascending-index scan as the
  // in-memory path, acquiring each row's shard as it goes (ascending order
  // means one load per shard per empty cluster, worst case).
  const auto repair_distance = [&](int j, std::size_t i) {
    const ShardEngines::Slot slot = cache.Get(store->ShardOfRow(i));
    return slot.engine->Distance(assigner.queries()[j],
                                 i - slot.view.global_begin());
  };

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const std::vector<int> previous = result.assignments;
    const bool full_pass = !minibatch ||
                           (iter + 1) % options_.refresh_period == 0 ||
                           iter + 1 == options_.max_iterations;

    // Sample draw (coordinating thread, before any parallel work).
    std::vector<std::size_t> sample;
    if (!full_pass) {
      sample = SampleWithoutReplacement(n, batch_size, rng);
      result.sampled_series += static_cast<long long>(sample.size());
    }

    assigner.SnapshotCentroids(result.centroids);

    // Refinement: one ShapeAccumulator per cluster, fed in global index
    // order (a single streaming pass over the shards routes each member to
    // its cluster's accumulator — the same per-cluster member sequence the
    // in-memory GroupByCluster walk produces), then Finish in cluster order
    // so any cold-start rng draws replay identically. The accumulators take
    // the caller's shape options verbatim — including the matrix-free mode
    // and its pool cap: an uncapped pool can reach O(members·m) per cluster
    // on a full pass, so out-of-core runs that must bound extraction memory
    // set matrix_free_max_members (shape extraction then spills those
    // clusters to the O(m²) Gram, bit-identical to the Gram path). No cap is
    // derived from the shard geometry here, because the exact mode's
    // bit-identity with the in-memory KShape holds across shard geometry —
    // a geometry-dependent spill would break it.
    common::Stopwatch phase_clock;
    {
      std::vector<core::ShapeAccumulator> accumulators;
      accumulators.reserve(k);
      for (int j = 0; j < k; ++j) {
        accumulators.emplace_back(result.centroids[j],
                                  options_.shape_options);
      }
      if (full_pass) {
        for (std::size_t s = 0; s < num_shards; ++s) {
          const ShardEngines::Slot slot = cache.Get(s);
          const tseries::SeriesBatch batch = slot.view.batch();
          const std::size_t base = slot.view.global_begin();
          for (std::size_t r = 0; r < slot.view.rows(); ++r) {
            accumulators[result.assignments[base + r]].Add(batch[r]);
          }
        }
      } else {
        // `sample` is sorted, so this visits shards in ascending order too.
        std::size_t pos = 0;
        while (pos < sample.size()) {
          const std::size_t s = store->ShardOfRow(sample[pos]);
          const ShardEngines::Slot slot = cache.Get(s);
          const tseries::SeriesBatch batch = slot.view.batch();
          const std::size_t base = slot.view.global_begin();
          const std::size_t shard_end = base + slot.view.rows();
          for (; pos < sample.size() && sample[pos] < shard_end; ++pos) {
            const std::size_t i = sample[pos];
            accumulators[result.assignments[i]].Add(batch[i - base]);
          }
        }
      }
      result.degenerate_centroids = 0;
      for (int j = 0; j < k; ++j) {
        if (!full_pass && accumulators[j].members_added() == 0) {
          // No sampled member is not evidence the cluster is empty: keep
          // the previous centroid instead of degenerate-zeroing it.
          continue;
        }
        const bool had_members = accumulators[j].members_added() > 0;
        core::ExtractedShape extracted =
            accumulators[j].Finish(rng, options_.shape_options);
        result.centroids[j] = std::move(extracted.centroid);
        if (extracted.degenerate && had_members) {
          ++result.degenerate_centroids;
        }
      }
    }
    result.extraction_seconds += phase_clock.ElapsedSeconds();
    phase_clock.Reset();

    // Assignment, delegated to the Assigner. BeginIteration mints this
    // iteration's centroid queries once (MakeQueryFor — shared by every
    // shard engine) and derives the movement-bound shifts; shards stream on
    // the coordinating thread in ascending order, rows fan out on the pool
    // inside AssignBlock/AssignSample with disjoint writes.
    assigner.BeginIteration(result.centroids);
    if (full_pass) {
      for (std::size_t s = 0; s < num_shards; ++s) {
        const ShardEngines::Slot slot = cache.Get(s);
        assigner.AssignBlock(*slot.engine, slot.view.global_begin(),
                             &result.assignments);
      }
    } else {
      // Sampled assignment: only the mini-batch is reassigned, grouped by
      // shard (the sample is sorted, so shard groups ascend too).
      std::size_t pos = 0;
      while (pos < sample.size()) {
        const std::size_t s = store->ShardOfRow(sample[pos]);
        const ShardEngines::Slot slot = cache.Get(s);
        const std::size_t base = slot.view.global_begin();
        const std::size_t shard_end = base + slot.view.rows();
        std::size_t stop = pos;
        while (stop < sample.size() && sample[stop] < shard_end) ++stop;
        assigner.AssignSample(*slot.engine, base, sample, pos, stop,
                              &result.assignments);
        pos = stop;
      }
    }
    const AssignmentIterationStats stats = assigner.iteration_stats();
    result.pruned_label_mismatches += assigner.iteration_verify_mismatches();
    result.assignment_stats.push_back(stats);
    result.distances_computed += stats.computed;
    result.distances_pruned_bounds += stats.pruned_bounds;
    result.distances_abandoned_partial += stats.abandoned_partial;

    // Empty-cluster repair: the shared deterministic policy, streaming the
    // ascending-index scan through the shards. Sizes are counted first (in
    // RepairEmptyClusters itself), so a run with no empty cluster costs no
    // shard traffic here.
    const int reseeds =
        RepairEmptyClusters(k, &result.assignments, repair_distance);
    result.empty_cluster_reseeds += reseeds;
    assigner.FinishIteration(reseeds);
    result.assignment_seconds += phase_clock.ElapsedSeconds();

    result.iterations = iter + 1;
    // Convergence is declared on full passes only: a sampled iteration
    // leaves most assignments untouched, so assignment equality there says
    // nothing about a corpus-wide fixed point.
    if (full_pass && result.assignments == previous) {
      result.converged = true;
      break;
    }
  }

  result.shards_loaded = store->shards_loaded() - loaded_before;
  result.shard_evictions = store->shard_evictions() - evicted_before;
  AttachFittedModel(&result, name_);
  return result;
}

common::StatusOr<ClusteringResult> MiniBatchKShape::TryCluster(
    store::ShardedSeriesStore* store, int k, common::Rng* rng) const {
  if (store == nullptr) {
    return common::Status::InvalidArgument("null store");
  }
  if (rng == nullptr) {
    return common::Status::InvalidArgument("null rng");
  }
  if (!store->sealed()) {
    return common::Status::FailedPrecondition(
        "TryCluster requires a sealed store");
  }
  if (store->empty()) {
    return common::Status::InvalidArgument("empty store");
  }
  if (k < 1) {
    return common::Status::OutOfRange("k must be >= 1");
  }
  if (static_cast<std::size_t>(k) > store->size()) {
    return common::Status::OutOfRange("k exceeds the number of series");
  }
  // Re-check the files on disk before streaming: a store truncated or
  // swapped behind the sealed handle becomes an error here instead of an
  // abort mid-scan.
  common::Status valid = store->Validate();
  if (!valid.ok()) return valid;
  // Streaming finiteness check (the sharded analogue of
  // ValidateClusteringInputs's finite scan), one shard resident at a time.
  for (std::size_t s = 0; s < store->num_shards(); ++s) {
    const store::ShardView view = store->Acquire(s);
    const tseries::SeriesBatch batch = view.batch();
    for (std::size_t r = 0; r < view.rows(); ++r) {
      for (const double v : batch[r]) {
        if (!std::isfinite(v)) {
          return common::Status::InvalidArgument(
              "series " + std::to_string(view.global_begin() + r) +
              " contains a non-finite value");
        }
      }
    }
  }
  return Cluster(store, k, rng);
}

common::StatusOr<store::ShardedSeriesStore> MiniBatchKShape::ShardBatch(
    const tseries::SeriesBatch& batch, const std::string& directory,
    const core::KShapeOptions& options) {
  if (batch.empty()) {
    return common::Status::InvalidArgument("cannot shard an empty batch");
  }
  store::ShardedStoreOptions store_options;
  store_options.shard_rows = options.shard_rows;
  store_options.max_resident_shards = options.max_resident_shards;
  common::StatusOr<store::ShardedSeriesStore> created =
      store::ShardedSeriesStore::Create(directory, store_options);
  if (!created.ok()) return created.status();
  store::ShardedSeriesStore store = std::move(created).value();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    store.Append(batch[i]);
  }
  common::Status sealed = store.Seal();
  if (!sealed.ok()) return sealed;
  return store;
}

}  // namespace kshape::cluster
