#include "cluster/hierarchical.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "cluster/kmedoids.h"

namespace kshape::cluster {

const char* LinkageName(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kAverage:
      return "average";
    case Linkage::kComplete:
      return "complete";
  }
  return "?";
}

std::vector<DendrogramMerge> AgglomerativeDendrogram(
    const linalg::Matrix& dissimilarity, Linkage linkage) {
  const std::size_t n = dissimilarity.rows();
  KSHAPE_CHECK(n >= 1 && dissimilarity.cols() == n);

  // Working copy with Lance-Williams updates; `active[i]`, `sizes[i]` and
  // `ids[i]` track the live clusters (ids follow the scipy convention).
  linalg::Matrix d = dissimilarity;
  std::vector<bool> active(n, true);
  std::vector<std::size_t> sizes(n, 1);
  std::vector<int> ids(n);
  std::iota(ids.begin(), ids.end(), 0);

  std::vector<DendrogramMerge> merges;
  merges.reserve(n - 1);
  int next_id = static_cast<int>(n);

  for (std::size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0;
    std::size_t bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d(i, j) < best) {
          best = d(i, j);
          bi = i;
          bj = j;
        }
      }
    }

    merges.push_back({ids[bi], ids[bj], best});

    // Merge bj into bi; update distances by the linkage rule.
    for (std::size_t w = 0; w < n; ++w) {
      if (!active[w] || w == bi || w == bj) continue;
      double merged;
      switch (linkage) {
        case Linkage::kSingle:
          merged = std::min(d(bi, w), d(bj, w));
          break;
        case Linkage::kComplete:
          merged = std::max(d(bi, w), d(bj, w));
          break;
        case Linkage::kAverage:
          merged = (static_cast<double>(sizes[bi]) * d(bi, w) +
                    static_cast<double>(sizes[bj]) * d(bj, w)) /
                   static_cast<double>(sizes[bi] + sizes[bj]);
          break;
        default:
          merged = 0.0;
          KSHAPE_CHECK_MSG(false, "unknown linkage");
      }
      d(bi, w) = merged;
      d(w, bi) = merged;
    }
    sizes[bi] += sizes[bj];
    ids[bi] = next_id++;
    active[bj] = false;
  }
  return merges;
}

namespace {

// Minimal union-find for dendrogram cutting.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<int> CutDendrogram(const std::vector<DendrogramMerge>& merges,
                               std::size_t n, int k) {
  KSHAPE_CHECK(k >= 1 && static_cast<std::size_t>(k) <= n);
  KSHAPE_CHECK(merges.size() == n - 1);

  // Cluster ids >= n refer to earlier merges; map each merge id to one of
  // its leaves so union-find can operate on leaves only.
  std::vector<std::size_t> representative(2 * n - 1);
  std::iota(representative.begin(), representative.begin() + n, 0);

  UnionFind uf(n);
  const std::size_t merges_to_apply = n - static_cast<std::size_t>(k);
  for (std::size_t i = 0; i < merges.size(); ++i) {
    const std::size_t left = representative[merges[i].left];
    const std::size_t right = representative[merges[i].right];
    representative[n + i] = left;
    if (i < merges_to_apply) uf.Union(left, right);
  }

  // Relabel roots densely as 0..k-1.
  std::vector<int> assignments(n, -1);
  std::vector<int> root_label(n, -1);
  int next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = uf.Find(i);
    if (root_label[root] < 0) root_label[root] = next++;
    assignments[i] = root_label[root];
  }
  KSHAPE_CHECK_MSG(next == k, "dendrogram cut produced wrong cluster count");
  return assignments;
}

HierarchicalClustering::HierarchicalClustering(
    const distance::DistanceMeasure* measure, Linkage linkage,
    std::string name)
    : measure_(measure), linkage_(linkage), name_(std::move(name)) {
  KSHAPE_CHECK(measure_ != nullptr);
}

ClusteringResult HierarchicalClustering::Cluster(
    const tseries::SeriesBatch& series, int k,
    common::Rng* rng) const {
  (void)rng;  // Deterministic method.
  KSHAPE_CHECK(!series.empty());
  const linalg::Matrix d = PairwiseDistanceMatrix(series, *measure_);
  const std::vector<DendrogramMerge> merges =
      AgglomerativeDendrogram(d, linkage_);
  ClusteringResult result;
  result.assignments = CutDendrogram(merges, series.size(), k);
  result.converged = true;
  return result;
}

}  // namespace kshape::cluster
