#include "cluster/kmeans.h"

#include <limits>

#include "common/check.h"

namespace kshape::cluster {

KMeans::KMeans(const distance::DistanceMeasure* measure,
               const AveragingMethod* averaging, std::string name,
               KMeansOptions options)
    : measure_(measure),
      averaging_(averaging),
      name_(std::move(name)),
      options_(options) {
  KSHAPE_CHECK(measure_ != nullptr);
  KSHAPE_CHECK(averaging_ != nullptr);
  KSHAPE_CHECK(options_.max_iterations >= 1);
}

ClusteringResult KMeans::Cluster(const tseries::SeriesBatch& series,
                                 int k, common::Rng* rng) const {
  KSHAPE_CHECK(!series.empty());
  KSHAPE_CHECK(k >= 1 && static_cast<std::size_t>(k) <= series.size());
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t n = series.size();
  const std::size_t m = series.length();

  ClusteringResult result;
  result.assignments = RandomAssignments(n, k, rng);
  result.centroids.assign(k, tseries::Series(m, 0.0));

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const std::vector<int> previous = result.assignments;

    // Refinement: recompute centroids from current memberships.
    const auto groups = GroupByCluster(result.assignments, k);
    for (int j = 0; j < k; ++j) {
      result.centroids[j] =
          averaging_->Average(series, groups[j], result.centroids[j], rng);
    }

    // Assignment: nearest centroid under the configured measure.
    for (std::size_t i = 0; i < n; ++i) {
      double min_dist = std::numeric_limits<double>::infinity();
      int best = result.assignments[i];
      for (int j = 0; j < k; ++j) {
        const double d = measure_->Distance(result.centroids[j], series[i]);
        if (d < min_dist) {
          min_dist = d;
          best = j;
        }
      }
      result.assignments[i] = best;
    }

    // Re-seed empty clusters with the series farthest from its centroid
    // (shared policy — see RepairEmptyClusters for the tie-break contract).
    result.empty_cluster_reseeds += RepairEmptyClusters(
        k, &result.assignments, [&](int j, std::size_t i) {
          return measure_->Distance(result.centroids[j], series[i]);
        });

    result.iterations = iter + 1;
    if (result.assignments == previous) {
      result.converged = true;
      break;
    }
  }
  result.degenerate_centroids = CountDegenerateCentroids(result);
  AttachFittedModel(&result, Name());
  return result;
}

}  // namespace kshape::cluster
