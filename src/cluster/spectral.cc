#include "cluster/spectral.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "cluster/kmedoids.h"
#include "linalg/eigen.h"

namespace kshape::cluster {

namespace {

double MedianNonzeroDistance(const linalg::Matrix& d) {
  std::vector<double> values;
  const std::size_t n = d.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (d(i, j) > 0.0) values.push_back(d(i, j));
    }
  }
  if (values.empty()) return 1.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace

std::vector<int> KMeansOnRows(const linalg::Matrix& points, int k,
                              common::Rng* rng, int max_iterations) {
  const std::size_t n = points.rows();
  const std::size_t dim = points.cols();
  std::vector<int> assignments = RandomAssignments(n, k, rng);
  linalg::Matrix centroids(k, dim);

  for (int iter = 0; iter < max_iterations; ++iter) {
    const std::vector<int> previous = assignments;

    // Refinement.
    std::vector<std::size_t> counts(k, 0);
    centroids = linalg::Matrix(k, dim);
    for (std::size_t i = 0; i < n; ++i) {
      const int c = assignments[i];
      ++counts[c];
      for (std::size_t t = 0; t < dim; ++t) centroids(c, t) += points(i, t);
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      const double inv = 1.0 / static_cast<double>(counts[c]);
      for (std::size_t t = 0; t < dim; ++t) centroids(c, t) *= inv;
    }

    // Assignment.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = assignments[i];
      for (int c = 0; c < k; ++c) {
        if (counts[c] == 0) continue;
        double dist = 0.0;
        for (std::size_t t = 0; t < dim; ++t) {
          const double diff = points(i, t) - centroids(c, t);
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      assignments[i] = best_c;
    }
    if (assignments == previous) break;
  }
  return assignments;
}

linalg::Matrix SpectralEmbedding(const linalg::Matrix& dissimilarity, int k,
                                 double sigma) {
  const std::size_t n = dissimilarity.rows();
  KSHAPE_CHECK(k >= 1 && static_cast<std::size_t>(k) <= n);
  if (sigma <= 0.0) sigma = MedianNonzeroDistance(dissimilarity);
  KSHAPE_CHECK(sigma > 0.0);

  // Gaussian affinity with zero diagonal (NJW step 1).
  linalg::Matrix affinity(n, n);
  const double inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d = dissimilarity(i, j);
      affinity(i, j) = std::exp(-d * d * inv_two_sigma_sq);
    }
  }

  // Normalized affinity L = D^{-1/2} A D^{-1/2} (NJW step 2).
  std::vector<double> inv_sqrt_degree(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t j = 0; j < n; ++j) degree += affinity(i, j);
    inv_sqrt_degree[i] = degree > 0.0 ? 1.0 / std::sqrt(degree) : 0.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      affinity(i, j) *= inv_sqrt_degree[i] * inv_sqrt_degree[j];
    }
  }

  // Top-k eigenvectors as columns (NJW step 3); eigenvalues are ascending.
  const linalg::EigenDecomposition decomp = linalg::SymmetricEigen(affinity);
  linalg::Matrix embedding(n, k);
  for (int c = 0; c < k; ++c) {
    const std::size_t col = n - 1 - static_cast<std::size_t>(c);
    for (std::size_t i = 0; i < n; ++i) {
      embedding(i, c) = decomp.eigenvectors(i, col);
    }
  }

  // Row normalization (NJW step 4).
  for (std::size_t i = 0; i < n; ++i) {
    double norm = 0.0;
    for (int c = 0; c < k; ++c) norm += embedding(i, c) * embedding(i, c);
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (int c = 0; c < k; ++c) embedding(i, c) /= norm;
    }
  }
  return embedding;
}

SpectralClustering::SpectralClustering(const distance::DistanceMeasure* measure,
                                       std::string name,
                                       SpectralOptions options)
    : measure_(measure), name_(std::move(name)), options_(options) {
  KSHAPE_CHECK(measure_ != nullptr);
}

ClusteringResult SpectralClustering::Cluster(
    const tseries::SeriesBatch& series, int k,
    common::Rng* rng) const {
  KSHAPE_CHECK(!series.empty());
  KSHAPE_CHECK(rng != nullptr);
  const linalg::Matrix d = PairwiseDistanceMatrix(series, *measure_);
  return SpectralClusterOnMatrix(d, k, rng, options_);
}

ClusteringResult SpectralClusterOnMatrix(const linalg::Matrix& dissimilarity,
                                         int k, common::Rng* rng,
                                         const SpectralOptions& options) {
  const linalg::Matrix embedding =
      SpectralEmbedding(dissimilarity, k, options.sigma);
  ClusteringResult result;
  result.assignments =
      KMeansOnRows(embedding, k, rng, options.kmeans_max_iterations);
  result.converged = true;
  return result;
}

}  // namespace kshape::cluster
