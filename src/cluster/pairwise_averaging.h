#ifndef KSHAPE_CLUSTER_PAIRWISE_AVERAGING_H_
#define KSHAPE_CLUSTER_PAIRWISE_AVERAGING_H_

#include "cluster/averaging.h"

namespace kshape::cluster {

/// The pre-DBA averaging techniques of §2.5 of the paper, implemented as
/// AveragingMethod strategies so they can be plugged into the generic
/// k-means loop exactly like DBA.

/// Averages two sequences along their DTW warping path: each path pair
/// (i, j) contributes the weighted midpoint (w_x x_i + w_y y_j)/(w_x + w_y),
/// and the resulting path-length sequence is resampled back to length m by
/// linear interpolation. The building block of NLAAF and PSA.
tseries::Series DtwPairAverage(tseries::SeriesView x,
                               tseries::SeriesView y, double weight_x,
                               double weight_y, int window = -1);

/// Nonlinear Alignment and Averaging Filters (Gupta et al. 1996): averages
/// sequences pairwise in tournament rounds — pair up, average each pair,
/// repeat on the halved set until one sequence remains. Sensitive to the
/// pairing order, which is the drawback DBA was built to fix (§2.5).
class NlaafAveraging : public AveragingMethod {
 public:
  tseries::Series Average(const tseries::SeriesBatch& pool,
                          const std::vector<std::size_t>& member_indices,
                          tseries::SeriesView previous,
                          common::Rng* rng) const override;
  std::string Name() const override { return "NLAAF"; }
};

/// Prioritized Shape Averaging (Niennattrakul & Ratanamahatana 2009):
/// hierarchically merges the two most-similar (DTW-closest) sequences first,
/// weighting each average by the number of sequences it already represents,
/// until one remains. More robust to pairing order than NLAAF; still
/// superseded by DBA (§2.5).
class PsaAveraging : public AveragingMethod {
 public:
  tseries::Series Average(const tseries::SeriesBatch& pool,
                          const std::vector<std::size_t>& member_indices,
                          tseries::SeriesView previous,
                          common::Rng* rng) const override;
  std::string Name() const override { return "PSA"; }
};

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_PAIRWISE_AVERAGING_H_
