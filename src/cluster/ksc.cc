#include "cluster/ksc.h"

#include <cmath>
#include <limits>

#include <span>

#include "common/check.h"
#include "common/stopwatch.h"
#include "fft/rfft.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/row_pool.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"

namespace kshape::cluster {

KscAlignment KscAlign(tseries::SeriesView x, tseries::SeriesView y) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "KSC requires equal lengths");
  const int m = static_cast<int>(x.size());
  const double x_norm_sq = linalg::Dot(x, x);

  KscAlignment best;
  if (x_norm_sq == 0.0) {
    best.distance = linalg::Dot(y, y) == 0.0 ? 0.0 : 1.0;
    return best;
  }

  best.distance = std::numeric_limits<double>::infinity();
  const simd::KernelTable& kt = simd::Active();
  for (int q = -(m - 1); q <= m - 1; ++q) {
    // Zero-filled shift of y by q: overlap of y[0..m-1-|q|] against x. The
    // overlap windows are contiguous in both inputs, so each shift is one
    // dot plus one sum-of-squares kernel call over the overlap.
    const std::size_t overlap = static_cast<std::size_t>(m - std::abs(q));
    double xy;
    double yy;
    if (q >= 0) {
      xy = kt.dot(x.data() + q, y.data(), overlap);
      yy = kt.sum_squares(y.data(), overlap);
    } else {
      xy = kt.dot(x.data(), y.data() - q, overlap);
      yy = kt.sum_squares(y.data() - q, overlap);
    }
    double alpha = 0.0;
    double residual_sq = x_norm_sq;
    if (yy > 0.0) {
      alpha = xy / yy;
      residual_sq = x_norm_sq - alpha * xy;  // ||x||^2 - (x.yq)^2/||yq||^2
    }
    const double dist = std::sqrt(std::max(0.0, residual_sq) / x_norm_sq);
    if (dist < best.distance) {
      best.distance = dist;
      best.shift = q;
      best.alpha = alpha;
    }
  }
  return best;
}

KscAlignment KscAlignFft(tseries::SeriesView x, tseries::SeriesView y) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "KSC requires equal lengths");
  const int m = static_cast<int>(x.size());
  const double x_norm_sq = linalg::Dot(x, x);

  KscAlignment best;
  if (x_norm_sq == 0.0) {
    best.distance = linalg::Dot(y, y) == 0.0 ? 0.0 : 1.0;
    return best;
  }

  // Every shifted dot product in one transform: the overlap window of shift
  // q is exactly the lag-q cross-correlation, so xy(q) = cc[m-1+q] in the
  // shared lag layout (cc[i] = R_{i-(m-1)}).
  const std::vector<double> cc = fft::RfftCrossCorrelation(x, y);
  // ||y(q)||^2 over the overlap from prefix sums of y^2: window y[0..m-1-q]
  // for q >= 0, y[-q..m-1] for q < 0. Prefix sums of squares are monotone in
  // exact and floating-point arithmetic alike, so the differences below are
  // nonnegative.
  std::vector<double> prefix(static_cast<std::size_t>(m) + 1, 0.0);
  for (int i = 0; i < m; ++i) prefix[i + 1] = prefix[i] + y[i] * y[i];

  best.distance = std::numeric_limits<double>::infinity();
  // Identical scan order and strict-less tie-break as KscAlign.
  for (int q = -(m - 1); q <= m - 1; ++q) {
    const double xy = cc[static_cast<std::size_t>(m - 1 + q)];
    const double yy = q >= 0 ? prefix[m - q] : prefix[m] - prefix[-q];
    double alpha = 0.0;
    double residual_sq = x_norm_sq;
    if (yy > 0.0) {
      alpha = xy / yy;
      residual_sq = x_norm_sq - alpha * xy;  // ||x||^2 - (x.yq)^2/||yq||^2
    }
    const double dist = std::sqrt(std::max(0.0, residual_sq) / x_norm_sq);
    if (dist < best.distance) {
      best.distance = dist;
      best.shift = q;
      best.alpha = alpha;
    }
  }
  return best;
}

double KscDistanceValue(tseries::SeriesView x, tseries::SeriesView y) {
  return KscAlign(x, y).distance;
}

Ksc::Ksc(KscOptions options) : options_(options) {
  KSHAPE_CHECK(options_.max_iterations >= 1);
}

namespace {

// KSC centroid: the unit vector mu minimizing
//   sum_i || b_i - (b_i . mu) mu ||^2 / ||b_i||^2
// over the aligned members b_i, i.e. the smallest eigenvector of
// M = sum_i (I - b_i b_i^T / (b_i^T b_i)). Equivalently the *dominant*
// eigenvector of P = sum_i b_i b_i^T / (b_i^T b_i), which power iteration
// finds in O(m^2) per step.
tseries::Series KscCentroid(const tseries::SeriesBatch& pool,
                            const std::vector<std::size_t>& member_indices,
                            tseries::SeriesView previous,
                            common::Rng* rng, bool fft_align,
                            bool matrix_free) {
  const std::size_t m = previous.size();
  if (member_indices.empty()) return tseries::Series(m, 0.0);

  const bool align = linalg::Norm(previous) > 0.0;
  linalg::Matrix p;                 // Dense path: P accumulated directly.
  std::vector<double> scaled_rows;  // Matrix-free path: rows b_i/||b_i||.
  if (matrix_free) {
    scaled_rows.reserve(member_indices.size() * m);
  } else {
    p = linalg::Matrix(m, m);
  }
  std::vector<double> mean(m, 0.0);
  std::size_t used = 0;
  for (std::size_t idx : member_indices) {
    const tseries::SeriesView member = pool[idx];
    tseries::Series b =
        align ? tseries::ShiftWithZeroFill(
                    member, fft_align ? KscAlignFft(previous, member).shift
                                      : KscAlign(previous, member).shift)
              : tseries::Series(member.begin(), member.end());
    const double norm_sq = linalg::Dot(b, b);
    if (norm_sq == 0.0) continue;
    if (matrix_free) {
      // Pool the unit-scaled row: Σ ŝŝᵀ = Σ bbᵀ/||b||² exactly in real
      // arithmetic, to rounding in floating point — inside the epsilon
      // contract of the matrix-free mode.
      const double inv_norm = 1.0 / std::sqrt(norm_sq);
      for (const double x : b) scaled_rows.push_back(x * inv_norm);
    } else {
      p.AddOuterProduct(b, 1.0 / norm_sq);
    }
    linalg::Axpy(1.0 / std::sqrt(norm_sq), b, &mean);
    ++used;
  }
  if (used == 0) return tseries::Series(m, 0.0);

  std::vector<double> centroid;
  if (matrix_free) {
    // P·v = Σ ŝᵢ(ŝᵢ·v): the matrix-free shape-extraction structure minus
    // the centering, O(n_c·m) per power step with P never formed. The dense
    // fallback (stalls only) materializes from the same scaled rows.
    linalg::RowPoolMatVec op(scaled_rows.data(), used, m);
    const linalg::MatVecFn matvec = [&](const std::vector<double>& v,
                                        std::vector<double>* out) {
      op.Apply(v, *out);
    };
    const linalg::MaterializeFn materialize = [&]() {
      linalg::Matrix dense(m, m);
      for (std::size_t r = 0; r < used; ++r) {
        dense.AddOuterProduct(
            std::span<const double>(scaled_rows.data() + r * m, m));
      }
      return dense;
    };
    centroid = linalg::DominantEigenvectorOp(m, matvec, materialize, rng);
  } else {
    centroid = linalg::DominantEigenvector(p, rng);
  }
  if (linalg::Dot(centroid, mean) < 0.0) linalg::Scale(&centroid, -1.0);
  return centroid;
}

}  // namespace

ClusteringResult Ksc::Cluster(const tseries::SeriesBatch& series,
                              int k, common::Rng* rng) const {
  KSHAPE_CHECK(!series.empty());
  KSHAPE_CHECK(k >= 1 && static_cast<std::size_t>(k) <= series.size());
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t n = series.size();
  const std::size_t m = series.length();

  // FFT alignment only when both the option and the process-wide gate say
  // yes, so KSHAPE_HALF_SPECTRUM=off restores the time-domain path globally.
  const bool fft_align =
      options_.use_fft_alignment && fft::HalfSpectrumEnabled();
  const auto distance = [&](tseries::SeriesView x, tseries::SeriesView y) {
    return fft_align ? KscAlignFft(x, y).distance : KscAlign(x, y).distance;
  };

  // Same gate composition as the FFT path: the per-algorithm option AND the
  // process-wide KSHAPE_MATFREE gate, so one environment variable restores
  // the dense eigensolver everywhere bit-identically.
  const bool matrix_free =
      options_.use_matrix_free && linalg::MatrixFreeEnabled();

  ClusteringResult result;
  result.assignments = RandomAssignments(n, k, rng);
  result.centroids.assign(k, tseries::Series(m, 0.0));

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const std::vector<int> previous = result.assignments;

    common::Stopwatch phase_clock;
    const auto groups = GroupByCluster(result.assignments, k);
    for (int j = 0; j < k; ++j) {
      result.centroids[j] = KscCentroid(series, groups[j], result.centroids[j],
                                        rng, fft_align, matrix_free);
    }
    result.extraction_seconds += phase_clock.ElapsedSeconds();
    phase_clock.Reset();

    for (std::size_t i = 0; i < n; ++i) {
      double min_dist = std::numeric_limits<double>::infinity();
      int best = result.assignments[i];
      for (int j = 0; j < k; ++j) {
        const double d = distance(series[i], result.centroids[j]);
        if (d < min_dist) {
          min_dist = d;
          best = j;
        }
      }
      result.assignments[i] = best;
    }

    // Re-seed empty clusters with the series farthest from its centroid —
    // the same policy as k-means and k-Shape (KSC previously let requested
    // clusters die silently). See RepairEmptyClusters for the tie-break
    // contract.
    result.empty_cluster_reseeds += RepairEmptyClusters(
        k, &result.assignments, [&](int j, std::size_t i) {
          return distance(series[i], result.centroids[j]);
        });
    result.assignment_seconds += phase_clock.ElapsedSeconds();

    result.iterations = iter + 1;
    if (result.assignments == previous) {
      result.converged = true;
      break;
    }
  }
  result.degenerate_centroids = CountDegenerateCentroids(result);
  AttachFittedModel(&result, Name());
  return result;
}

}  // namespace kshape::cluster
