#include "cluster/dba.h"

#include "common/check.h"
#include "distance/dtw.h"
#include "linalg/matrix.h"

namespace kshape::cluster {

tseries::Series DbaRefineOnce(const tseries::SeriesBatch& pool,
                              const std::vector<std::size_t>& member_indices,
                              tseries::SeriesView average, int window) {
  const std::size_t m = average.size();
  std::vector<double> sums(m, 0.0);
  std::vector<int> counts(m, 0);
  for (std::size_t idx : member_indices) {
    KSHAPE_CHECK(idx < pool.size());
    const tseries::SeriesView member = pool[idx];
    const dtw::WarpingPath path =
        dtw::DtwWarpingPath(average, member, window);
    for (const auto& [ai, mi] : path.pairs) {
      sums[ai] += member[mi];
      counts[ai] += 1;
    }
  }
  tseries::Series refined(m, 0.0);
  for (std::size_t t = 0; t < m; ++t) {
    // Every average coordinate lies on at least one warping path, but guard
    // the division anyway and keep the previous value if unmapped.
    refined[t] = counts[t] > 0 ? sums[t] / counts[t] : average[t];
  }
  return refined;
}

tseries::Series DbaAveraging::Average(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView previous, common::Rng* rng) const {
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t m = previous.size();
  if (member_indices.empty()) return tseries::Series(m, 0.0);

  // DBA needs a concrete starting sequence: the previous centroid if one
  // exists, otherwise a member picked at random (Petitjean et al. initialize
  // from a sequence of the data).
  tseries::Series average(previous.begin(), previous.end());
  if (linalg::Norm(average) == 0.0) {
    const std::size_t pick =
        member_indices[rng->UniformInt(static_cast<int>(member_indices.size()))];
    const tseries::SeriesView seed = pool[pick];
    average.assign(seed.begin(), seed.end());
  }
  for (int pass = 0; pass < options_.refinements; ++pass) {
    average = DbaRefineOnce(pool, member_indices, average, options_.window);
  }
  return average;
}

}  // namespace kshape::cluster
