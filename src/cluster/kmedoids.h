#ifndef KSHAPE_CLUSTER_KMEDOIDS_H_
#define KSHAPE_CLUSTER_KMEDOIDS_H_

#include <string>

#include "cluster/algorithm.h"
#include "distance/measure.h"
#include "linalg/matrix.h"

namespace kshape::cluster {

/// Options for PAM.
struct PamOptions {
  /// Cap on SWAP passes (the paper caps all iterative methods at 100).
  int max_iterations = 100;

  /// When true, initialize with the deterministic greedy BUILD phase; when
  /// false (default), start from k random medoids, matching the paper's
  /// protocol of averaging partitional methods over runs with different
  /// random initializations.
  bool use_build_init = false;
};

/// Partitioning Around Medoids (Kaufman & Rousseeuw), the k-medoids
/// implementation the paper evaluates as PAM+ED / PAM+cDTW / PAM+SBD.
///
/// Requires the full n x n dissimilarity matrix — this is precisely the
/// scalability drawback the paper holds against it (§5.3): the matrix alone
/// costs O(n^2) distance evaluations. The SWAP phase greedily applies the
/// best improving (medoid, non-medoid) exchange until a local optimum.
class KMedoids : public ClusteringAlgorithm {
 public:
  KMedoids(const distance::DistanceMeasure* measure, std::string name,
           PamOptions options = {});

  ClusteringResult Cluster(const tseries::SeriesBatch& series, int k,
                           common::Rng* rng) const override;

  std::string Name() const override { return name_; }

 private:
  const distance::DistanceMeasure* measure_;
  std::string name_;
  PamOptions options_;
};

/// Computes the full symmetric pairwise dissimilarity matrix (shared with
/// hierarchical and spectral clustering, validity metrics, and EstimateK).
/// Rows are computed in parallel on the global thread pool (KSHAPE_THREADS);
/// the result is bit-identical at every thread count. Measures that implement
/// the batched DistanceMeasure::BatchedPairwise hook (SBD's spectrum cache)
/// are routed through it; their entries agree with per-pair Distance() calls
/// within a tight tolerance rather than bitwise.
linalg::Matrix PairwiseDistanceMatrix(
    const tseries::SeriesBatch& series,
    const distance::DistanceMeasure& measure);

/// Runs PAM directly on a precomputed dissimilarity matrix. Exposed so
/// experiments can share one matrix across restarts (the matrix dominates
/// runtime for expensive measures, as the paper emphasizes).
ClusteringResult PamOnMatrix(const linalg::Matrix& dissimilarity, int k,
                             common::Rng* rng, const PamOptions& options);

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_KMEDOIDS_H_
