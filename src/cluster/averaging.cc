#include "cluster/averaging.h"

#include "common/check.h"
#include "simd/dispatch.h"

namespace kshape::cluster {

tseries::Series ArithmeticMeanAveraging::Average(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView previous, common::Rng* rng) const {
  (void)rng;
  const std::size_t m = previous.size();
  tseries::Series mean(m, 0.0);
  if (member_indices.empty()) return mean;
  for (std::size_t idx : member_indices) {
    KSHAPE_CHECK(idx < pool.size());
    const tseries::SeriesView x = pool[idx];
    KSHAPE_CHECK_MSG(x.size() == m, "member length mismatch");
    simd::Axpy(1.0, x, mean);
  }
  simd::Scale(mean, 1.0 / static_cast<double>(member_indices.size()));
  return mean;
}

}  // namespace kshape::cluster
