#include "cluster/averaging.h"

#include "common/check.h"

namespace kshape::cluster {

tseries::Series ArithmeticMeanAveraging::Average(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView previous, common::Rng* rng) const {
  (void)rng;
  const std::size_t m = previous.size();
  tseries::Series mean(m, 0.0);
  if (member_indices.empty()) return mean;
  for (std::size_t idx : member_indices) {
    KSHAPE_CHECK(idx < pool.size());
    const tseries::SeriesView x = pool[idx];
    KSHAPE_CHECK_MSG(x.size() == m, "member length mismatch");
    for (std::size_t t = 0; t < m; ++t) mean[t] += x[t];
  }
  const double inv = 1.0 / static_cast<double>(member_indices.size());
  for (double& v : mean) v *= inv;
  return mean;
}

}  // namespace kshape::cluster
