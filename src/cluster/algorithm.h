#ifndef KSHAPE_CLUSTER_ALGORITHM_H_
#define KSHAPE_CLUSTER_ALGORITHM_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "model/fitted_model.h"
#include "tseries/time_series.h"

namespace kshape::cluster {

/// Per-iteration telemetry of one assignment step under bound-driven pruning
/// (k-Shape with KShapeOptions::use_pruning). The three counters partition
/// the n·k centroid-to-series candidate pairs of the iteration:
///   computed          — exact distances evaluated (inverse transforms spent)
///   pruned_bounds     — pairs skipped by the Hamerly-style movement bounds
///                       (no spectral work at all)
///   abandoned_partial — pairs dropped mid-scan by the partial-sum spectral
///                       NCC bound (bin products spent, no inverse transform)
/// Invariant: computed + pruned_bounds + abandoned_partial == n·k. Seeding,
/// empty-cluster repair, centroid-shift, and verification distances are
/// outside these counters. Defined with the Assigner (the one assignment
/// implementation); aliased here for the result consumers.
using AssignmentIterationStats = model::AssignmentIterationStats;

/// The output of a clustering run.
struct ClusteringResult {
  /// assignments[i] in [0, k) is the cluster of series i.
  std::vector<int> assignments;

  /// Cluster representatives, one per cluster. Centroid-based methods fill
  /// these with computed sequences, medoid-based methods with the selected
  /// medoids; hierarchical and spectral methods leave the vector empty.
  std::vector<tseries::Series> centroids;

  /// Number of refinement iterations executed (0 for non-iterative methods).
  int iterations = 0;

  /// True when the method reached a fixed point before its iteration cap.
  bool converged = false;

  /// Repair telemetry: how many empty-cluster re-seeds ran across all
  /// iterations, and how many final centroids were degenerate (zero-norm with
  /// a non-empty member set — every member z-normalizes to the zero series).
  /// Methods without centroids or repair leave these at zero.
  int empty_cluster_reseeds = 0;
  int degenerate_centroids = 0;

  /// Pruning telemetry (k-Shape assignment steps; see
  /// AssignmentIterationStats for the partition semantics). The totals sum
  /// the per-iteration entries; an exact (non-pruned) run reports
  /// distances_computed == iterations·n·k with the other two at zero.
  /// Methods without an assignment step leave everything empty/zero.
  long long distances_computed = 0;
  long long distances_pruned_bounds = 0;
  long long distances_abandoned_partial = 0;
  std::vector<AssignmentIterationStats> assignment_stats;

  /// Verification-mode counter (KShapeOptions::verify_pruning): series whose
  /// pruned assignment disagreed with an exact recomputation. The pruned
  /// decisions are KEPT — verification observes, it does not correct — so
  /// this measures bound validity without changing the clustering.
  long long pruned_label_mismatches = 0;

  /// Out-of-core telemetry (the sharded MiniBatchKShape driver; in-memory
  /// methods leave all three at zero): shard files read from disk and shards
  /// evicted under the residency budget over this run (deltas against the
  /// store's cumulative counters), and the total number of series sampled
  /// into mini-batches across all sampled iterations (0 when mini-batching
  /// is off — i.e. for every exact sharded run).
  long long shards_loaded = 0;
  long long shard_evictions = 0;
  long long sampled_series = 0;

  /// Per-phase wall-clock telemetry (monotonic clock), summed across all
  /// refinement iterations: extraction_seconds covers the centroid
  /// recomputation (shape extraction / KSC eigenproblem, including member
  /// alignment), assignment_seconds the assignment step plus empty-cluster
  /// repair. These make phase dominance visible in every bench/CLI run —
  /// e.g. that extraction dominates once assignment is pruned, and what the
  /// matrix-free extraction path buys back. Wall-clock, so not part of any
  /// determinism contract; methods without an iterative refinement loop
  /// leave both at zero.
  double assignment_seconds = 0.0;
  double extraction_seconds = 0.0;

  /// The fitted model: frozen centroids + fingerprint + telemetry snapshot,
  /// ready for Save / Predict / OnlineScorer. Filled by every
  /// centroid-producing method (via AttachFittedModel); methods without
  /// centroids leave it empty().
  model::FittedModel model;
};

/// Builds result->model from the result's centroids and telemetry under the
/// current process gates, stamping `method` as the producing algorithm.
/// No-op when the method produced no centroids. Called by every
/// ClusteringAlgorithm::Cluster on its way out.
void AttachFittedModel(ClusteringResult* result, const std::string& method);

/// Abstract partitional/hierarchical/spectral clustering algorithm.
///
/// Every method evaluated in Tables 3 and 4 of the paper implements this
/// interface, so the experiment harness can run the full combination grid
/// uniformly. `rng` drives random initialization; deterministic methods
/// (hierarchical clustering) ignore it. Implementations must not mutate the
/// input series.
class ClusteringAlgorithm {
 public:
  virtual ~ClusteringAlgorithm() = default;

  /// Partitions `series` (equal-length, z-normalized by the caller when the
  /// measure requires it) into k clusters. The batch is a non-owning view —
  /// pass Dataset::batch() for the contiguous hot path, or a
  /// std::vector<Series> (implicit conversion) for ad-hoc collections.
  /// Inputs violating the data contract (see ValidateClusteringInputs) are
  /// programmer errors here and abort; untrusted data must go through
  /// TryCluster instead.
  virtual ClusteringResult Cluster(const tseries::SeriesBatch& series,
                                   int k, common::Rng* rng) const = 0;

  /// Library-boundary entry point for untrusted data: validates the inputs
  /// (non-empty, equal lengths, fully finite, 1 <= k <= n) and returns a
  /// Status error instead of aborting when they are malformed. Malformed
  /// input should be repaired first with tseries/conditioning.h. The nested
  /// overload exists because ragged input cannot even form a SeriesBatch
  /// (the batch type carries the equal-length invariant): raw untrusted
  /// vectors are validated *before* a batch view is built over them.
  common::StatusOr<ClusteringResult> TryCluster(
      const std::vector<tseries::Series>& series, int k,
      common::Rng* rng) const;
  common::StatusOr<ClusteringResult> TryCluster(
      const tseries::SeriesBatch& series, int k, common::Rng* rng) const;

  /// Display name, e.g. "k-AVG+ED", "PAM+cDTW", "k-Shape".
  virtual std::string Name() const = 0;
};

/// The data contract every Cluster() implementation assumes: a non-empty set
/// of equal-length, non-empty, fully-finite series and 1 <= k <= n. Returns
/// InvalidArgument/OutOfRange describing the first violation. All-constant
/// series are *not* an error: they z-normalize to the zero series, every
/// shape distance treats zero-norm inputs by a documented fallback
/// (SBD/mSBD = 1, KSC = 1, ED = 0), and degenerate centroids are surfaced
/// via ClusteringResult::degenerate_centroids.
common::Status ValidateClusteringInputs(
    const std::vector<tseries::Series>& series, int k);
common::Status ValidateClusteringInputs(const tseries::SeriesBatch& series,
                                        int k);

/// Returns per-cluster member indices for an assignment vector.
std::vector<std::vector<std::size_t>> GroupByCluster(
    const std::vector<int>& assignments, int k);

/// Re-seeds every empty cluster with the series farthest from its current
/// centroid, drawn from clusters that keep at least one member — the uniform
/// repair policy shared by k-means, k-Shape (uni- and multivariate), and KSC.
/// `distance(j, i)` must return the assignment distance of series i to the
/// centroid of cluster j. Deterministic tie-break contract: candidates are
/// scanned in ascending series index and only a strictly larger distance
/// replaces the incumbent, so among tied candidates the lowest index wins
/// (making repair invariant to thread count and platform). Returns the
/// number of re-seeded clusters.
int RepairEmptyClusters(
    int k, std::vector<int>* assignments,
    const std::function<double(int, std::size_t)>& distance);

/// Counts final centroids that are zero-norm while their cluster holds at
/// least one member — the flagged repair signal for all-degenerate (constant)
/// clusters, which shape extraction represents by the zero series on purpose
/// (see core/shape_extraction.h). Returns 0 for methods without centroids.
int CountDegenerateCentroids(const ClusteringResult& result);

/// Random initial assignment of n series to k clusters, guaranteeing no
/// cluster starts empty when n >= k (matches Algorithm 3's random IDX
/// initialization).
std::vector<int> RandomAssignments(std::size_t n, int k, common::Rng* rng);

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_ALGORITHM_H_
