#ifndef KSHAPE_CLUSTER_ALGORITHM_H_
#define KSHAPE_CLUSTER_ALGORITHM_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "tseries/time_series.h"

namespace kshape::cluster {

/// The output of a clustering run.
struct ClusteringResult {
  /// assignments[i] in [0, k) is the cluster of series i.
  std::vector<int> assignments;

  /// Cluster representatives, one per cluster. Centroid-based methods fill
  /// these with computed sequences, medoid-based methods with the selected
  /// medoids; hierarchical and spectral methods leave the vector empty.
  std::vector<tseries::Series> centroids;

  /// Number of refinement iterations executed (0 for non-iterative methods).
  int iterations = 0;

  /// True when the method reached a fixed point before its iteration cap.
  bool converged = false;
};

/// Abstract partitional/hierarchical/spectral clustering algorithm.
///
/// Every method evaluated in Tables 3 and 4 of the paper implements this
/// interface, so the experiment harness can run the full combination grid
/// uniformly. `rng` drives random initialization; deterministic methods
/// (hierarchical clustering) ignore it. Implementations must not mutate the
/// input series.
class ClusteringAlgorithm {
 public:
  virtual ~ClusteringAlgorithm() = default;

  /// Partitions `series` (equal-length, z-normalized by the caller when the
  /// measure requires it) into k clusters.
  virtual ClusteringResult Cluster(const std::vector<tseries::Series>& series,
                                   int k, common::Rng* rng) const = 0;

  /// Display name, e.g. "k-AVG+ED", "PAM+cDTW", "k-Shape".
  virtual std::string Name() const = 0;
};

/// Returns per-cluster member indices for an assignment vector.
std::vector<std::vector<std::size_t>> GroupByCluster(
    const std::vector<int>& assignments, int k);

/// Random initial assignment of n series to k clusters, guaranteeing no
/// cluster starts empty when n >= k (matches Algorithm 3's random IDX
/// initialization).
std::vector<int> RandomAssignments(std::size_t n, int k, common::Rng* rng);

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_ALGORITHM_H_
