#ifndef KSHAPE_CLUSTER_SPECTRAL_H_
#define KSHAPE_CLUSTER_SPECTRAL_H_

#include <string>

#include "cluster/algorithm.h"
#include "distance/measure.h"
#include "linalg/matrix.h"

namespace kshape::cluster {

/// Options for normalized spectral clustering.
struct SpectralOptions {
  /// Gaussian affinity bandwidth sigma. Non-positive (default) selects the
  /// median of the nonzero pairwise distances, a standard self-tuning
  /// heuristic (the paper does not specify a bandwidth).
  double sigma = -1.0;

  /// Iteration cap for the embedded k-means step.
  int kmeans_max_iterations = 100;
};

/// Normalized spectral clustering (Ng, Jordan & Weiss 2002), the paper's
/// S+ED / S+cDTW / S+SBD baselines.
///
/// Builds the Gaussian affinity A_ij = exp(-d_ij^2 / (2 sigma^2)), forms the
/// normalized affinity D^{-1/2} A D^{-1/2}, embeds each series as the
/// row-normalized top-k eigenvector coordinates, and k-means-clusters the
/// embedding. Randomness enters only through the embedded k-means
/// initialization, matching the paper's 100-run averaging protocol.
class SpectralClustering : public ClusteringAlgorithm {
 public:
  SpectralClustering(const distance::DistanceMeasure* measure,
                     std::string name, SpectralOptions options = {});

  ClusteringResult Cluster(const tseries::SeriesBatch& series, int k,
                           common::Rng* rng) const override;

  std::string Name() const override { return name_; }

 private:
  const distance::DistanceMeasure* measure_;
  std::string name_;
  SpectralOptions options_;
};

/// The spectral embedding alone (rows of the row-normalized top-k
/// eigenvector matrix); exposed for tests and for experiments that share one
/// dissimilarity matrix across restarts.
linalg::Matrix SpectralEmbedding(const linalg::Matrix& dissimilarity, int k,
                                 double sigma);

/// Lloyd k-means on the rows of `points` (Euclidean), randomly initialized —
/// the final step of NJW. Exposed so multi-run experiments can reuse one
/// embedding: the embedding is deterministic, only this step is random.
std::vector<int> KMeansOnRows(const linalg::Matrix& points, int k,
                              common::Rng* rng, int max_iterations = 100);

/// Full NJW pipeline on a precomputed dissimilarity matrix.
ClusteringResult SpectralClusterOnMatrix(const linalg::Matrix& dissimilarity,
                                         int k, common::Rng* rng,
                                         const SpectralOptions& options = {});

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_SPECTRAL_H_
