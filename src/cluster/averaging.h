#ifndef KSHAPE_CLUSTER_AVERAGING_H_
#define KSHAPE_CLUSTER_AVERAGING_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/random.h"
#include "tseries/time_series.h"

namespace kshape::cluster {

/// Strategy for computing a cluster centroid from its members (the Steiner
/// sequence of §2.1 of the paper, approximated differently per distance
/// measure).
///
/// The generic k-means loop (KMeans) is parameterized by one of these plus a
/// DistanceMeasure; the combinations reproduce the paper's k-means variants:
/// arithmetic mean + ED = k-AVG+ED, arithmetic mean + SBD = k-AVG+SBD,
/// arithmetic mean + DTW = k-AVG+DTW, DBA + DTW = k-DBA.
class AveragingMethod {
 public:
  virtual ~AveragingMethod() = default;

  /// Computes the centroid of the members of `pool` selected by
  /// `member_indices`. `previous` is the centroid from the prior iteration
  /// (used as the refinement starting point by iterative methods like DBA);
  /// it is all-zero on the first iteration. Must return a series of the same
  /// length; conventionally all-zero when `member_indices` is empty.
  virtual tseries::Series Average(const tseries::SeriesBatch& pool,
                                  const std::vector<std::size_t>& member_indices,
                                  tseries::SeriesView previous,
                                  common::Rng* rng) const = 0;

  /// Display name, e.g. "AVG", "DBA".
  virtual std::string Name() const = 0;
};

/// Coordinate-wise arithmetic mean (the k-means default, §2.5).
class ArithmeticMeanAveraging : public AveragingMethod {
 public:
  tseries::Series Average(const tseries::SeriesBatch& pool,
                          const std::vector<std::size_t>& member_indices,
                          tseries::SeriesView previous,
                          common::Rng* rng) const override;
  std::string Name() const override { return "AVG"; }
};

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_AVERAGING_H_
