#include "cluster/pairwise_averaging.h"


#include <algorithm>
#include <limits>

#include "common/check.h"
#include "distance/dtw.h"

namespace kshape::cluster {

namespace {

// Linearly resamples `values` to `target` points over the same support.
tseries::Series ResampleLinear(const tseries::Series& values,
                               std::size_t target) {
  const std::size_t n = values.size();
  KSHAPE_CHECK(n >= 1 && target >= 1);
  if (n == target) return values;
  tseries::Series out(target);
  if (n == 1) {
    std::fill(out.begin(), out.end(), values[0]);
    return out;
  }
  for (std::size_t t = 0; t < target; ++t) {
    const double pos = static_cast<double>(t) *
                       static_cast<double>(n - 1) /
                       static_cast<double>(target - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = pos - static_cast<double>(lo);
    out[t] = values[lo] * (1.0 - frac) + values[hi] * frac;
  }
  return out;
}

}  // namespace

tseries::Series DtwPairAverage(tseries::SeriesView x,
                               tseries::SeriesView y, double weight_x,
                               double weight_y, int window) {
  KSHAPE_CHECK(weight_x > 0.0 && weight_y > 0.0);
  const dtw::WarpingPath path = dtw::DtwWarpingPath(x, y, window);
  tseries::Series along_path;
  along_path.reserve(path.pairs.size());
  const double total = weight_x + weight_y;
  for (const auto& [i, j] : path.pairs) {
    along_path.push_back((weight_x * x[i] + weight_y * y[j]) / total);
  }
  return ResampleLinear(along_path, x.size());
}

tseries::Series NlaafAveraging::Average(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView previous, common::Rng* rng) const {
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t m = previous.size();
  if (member_indices.empty()) return tseries::Series(m, 0.0);

  // Tournament rounds over a randomly shuffled order (the method's known
  // order sensitivity is part of what it models).
  std::vector<std::size_t> order = member_indices;
  rng->Shuffle(&order);
  std::vector<tseries::Series> round;
  round.reserve(order.size());
  for (std::size_t idx : order) {
    KSHAPE_CHECK(idx < pool.size());
    const tseries::SeriesView member = pool[idx];
    round.emplace_back(member.begin(), member.end());
  }
  while (round.size() > 1) {
    std::vector<tseries::Series> next;
    next.reserve((round.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < round.size(); i += 2) {
      next.push_back(DtwPairAverage(round[i], round[i + 1], 1.0, 1.0));
    }
    if (round.size() % 2 == 1) next.push_back(round.back());
    round = std::move(next);
  }
  return round[0];
}

tseries::Series PsaAveraging::Average(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView previous, common::Rng* rng) const {
  (void)rng;
  const std::size_t m = previous.size();
  if (member_indices.empty()) return tseries::Series(m, 0.0);

  struct Node {
    tseries::Series sequence;
    double weight;
  };
  std::vector<Node> nodes;
  nodes.reserve(member_indices.size());
  for (std::size_t idx : member_indices) {
    KSHAPE_CHECK(idx < pool.size());
    const tseries::SeriesView member = pool[idx];
    nodes.push_back({tseries::Series(member.begin(), member.end()), 1.0});
  }

  // Greedy agglomeration: always merge the DTW-closest pair, weighting by
  // how many sequences each side already represents.
  while (nodes.size() > 1) {
    std::size_t best_a = 0;
    std::size_t best_b = 1;
    double best_distance = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < nodes.size(); ++a) {
      for (std::size_t b = a + 1; b < nodes.size(); ++b) {
        const double d =
            dtw::DtwDistance(nodes[a].sequence, nodes[b].sequence);
        if (d < best_distance) {
          best_distance = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    Node merged;
    merged.sequence =
        DtwPairAverage(nodes[best_a].sequence, nodes[best_b].sequence,
                       nodes[best_a].weight, nodes[best_b].weight);
    merged.weight = nodes[best_a].weight + nodes[best_b].weight;
    nodes[best_a] = std::move(merged);
    nodes.erase(nodes.begin() + static_cast<long>(best_b));
  }
  return nodes[0].sequence;
}

}  // namespace kshape::cluster
