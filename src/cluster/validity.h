#ifndef KSHAPE_CLUSTER_VALIDITY_H_
#define KSHAPE_CLUSTER_VALIDITY_H_

#include <vector>

#include "cluster/algorithm.h"
#include "distance/measure.h"
#include "linalg/matrix.h"

namespace kshape::cluster {

/// Internal cluster-validity criteria — quality measures that use only the
/// data, no gold labels. Footnote 2 of the paper: "although the exact
/// estimation of k is difficult without a gold standard, we can do so by
/// varying k and evaluating clustering quality with criteria that capture
/// information intrinsic to the data alone." These are those criteria, plus
/// the k-sweep that uses them.

/// Mean silhouette coefficient of an assignment over a precomputed
/// dissimilarity matrix: s(i) = (b(i) - a(i)) / max(a(i), b(i)) with a(i)
/// the mean distance to own-cluster members and b(i) the smallest mean
/// distance to another cluster. In [-1, 1]; larger is better. Singleton
/// clusters score 0 for their point, the standard convention.
double MeanSilhouette(const linalg::Matrix& dissimilarity,
                      const std::vector<int>& assignments, int k);

/// Davies-Bouldin index over a dissimilarity matrix, in the medoid form:
/// each cluster's scatter is the mean distance to its medoid, and the index
/// averages the worst (scatter_i + scatter_j) / d(medoid_i, medoid_j) ratio
/// per cluster. Smaller is better. Requires k >= 2 populated clusters.
double DaviesBouldinIndex(const linalg::Matrix& dissimilarity,
                          const std::vector<int>& assignments, int k);

/// The paper's clustering objective (Equation 1): the within-cluster sum of
/// squared distances of each series to its centroid under `measure`.
/// Clusters without a centroid (empty) contribute nothing.
double WithinClusterSsd(const tseries::SeriesBatch& series,
                        const ClusteringResult& result,
                        const distance::DistanceMeasure& measure);

/// Result of a cluster-count sweep.
struct KEstimate {
  int best_k = 0;
  /// silhouettes[i] is the mean silhouette at k = k_min + i.
  std::vector<double> silhouettes;
};

/// Estimates the number of clusters by running `algorithm` for every k in
/// [k_min, k_max] (with `runs` random restarts each, keeping each k's best
/// assignment by silhouette) and picking the k with the highest mean
/// silhouette over the `measure`-induced dissimilarity matrix.
KEstimate EstimateK(const tseries::SeriesBatch& series,
                    const ClusteringAlgorithm& algorithm,
                    const distance::DistanceMeasure& measure, int k_min,
                    int k_max, int runs, common::Rng* rng);

/// Runs a centroid-producing algorithm `restarts` times and returns the run
/// minimizing the paper's Equation-1 objective (WithinClusterSsd under
/// `measure`). This is the standard unsupervised way to consume a
/// k-means-family method: restarts are cheap insurance against the local
/// optima the iterative refinement converges to.
ClusteringResult BestOfRestarts(const tseries::SeriesBatch& series,
                                const ClusteringAlgorithm& algorithm,
                                const distance::DistanceMeasure& measure,
                                int k, int restarts, common::Rng* rng);

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_VALIDITY_H_
