#include "cluster/algorithm.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "core/sbd_engine.h"
#include "fft/rfft.h"

namespace kshape::cluster {

void AttachFittedModel(ClusteringResult* result, const std::string& method) {
  KSHAPE_CHECK(result != nullptr);
  if (result->centroids.empty()) return;  // no centroids, nothing to freeze
  model::ModelFingerprint fp;
  fp.half_spectrum = fft::HalfSpectrumEnabled();
  fp.pruning = core::PruningEnabled();
  model::FitTelemetry telemetry;
  telemetry.iterations = result->iterations;
  telemetry.converged = result->converged;
  telemetry.empty_cluster_reseeds = result->empty_cluster_reseeds;
  telemetry.degenerate_centroids = result->degenerate_centroids;
  telemetry.distances_computed = result->distances_computed;
  telemetry.distances_pruned_bounds = result->distances_pruned_bounds;
  telemetry.distances_abandoned_partial = result->distances_abandoned_partial;
  telemetry.sampled_series = result->sampled_series;
  result->model =
      model::FittedModel(result->centroids, fp, telemetry, method);
}

common::Status ValidateClusteringInputs(
    const std::vector<tseries::Series>& series, int k) {
  if (series.empty()) {
    return common::Status::InvalidArgument("empty dataset");
  }
  const std::size_t n = series.size();
  const std::size_t m = series[0].size();
  for (std::size_t i = 0; i < n; ++i) {
    if (series[i].empty()) {
      return common::Status::InvalidArgument("series " + std::to_string(i) +
                                             " is empty");
    }
    if (series[i].size() != m) {
      return common::Status::InvalidArgument(
          "series " + std::to_string(i) + " has length " +
          std::to_string(series[i].size()) + " but series 0 has length " +
          std::to_string(m) + "; condition the input first"
          " (tseries/conditioning.h)");
    }
    for (double v : series[i]) {
      if (!std::isfinite(v)) {
        return common::Status::InvalidArgument(
            "series " + std::to_string(i) + " contains a non-finite value;"
            " condition the input first (tseries/conditioning.h)");
      }
    }
  }
  if (k < 1 || static_cast<std::size_t>(k) > n) {
    return common::Status::OutOfRange(
        "k = " + std::to_string(k) + " outside [1, n = " + std::to_string(n) +
        "]");
  }
  return common::Status::OK();
}

common::Status ValidateClusteringInputs(const tseries::SeriesBatch& series,
                                        int k) {
  // A batch already carries the equal-length, non-empty-rows invariant, so
  // only emptiness, finiteness, and the k range remain to check.
  if (series.empty()) {
    return common::Status::InvalidArgument("empty dataset");
  }
  const std::size_t n = series.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (double v : series[i]) {
      if (!std::isfinite(v)) {
        return common::Status::InvalidArgument(
            "series " + std::to_string(i) + " contains a non-finite value;"
            " condition the input first (tseries/conditioning.h)");
      }
    }
  }
  if (k < 1 || static_cast<std::size_t>(k) > n) {
    return common::Status::OutOfRange(
        "k = " + std::to_string(k) + " outside [1, n = " + std::to_string(n) +
        "]");
  }
  return common::Status::OK();
}

common::StatusOr<ClusteringResult> ClusteringAlgorithm::TryCluster(
    const std::vector<tseries::Series>& series, int k,
    common::Rng* rng) const {
  common::Status status = ValidateClusteringInputs(series, k);
  if (!status.ok()) return status;
  // Validation passed, so the rows are equal-length and the batch view over
  // the vector is safe to form.
  return Cluster(tseries::SeriesBatch(series), k, rng);
}

common::StatusOr<ClusteringResult> ClusteringAlgorithm::TryCluster(
    const tseries::SeriesBatch& series, int k, common::Rng* rng) const {
  common::Status status = ValidateClusteringInputs(series, k);
  if (!status.ok()) return status;
  return Cluster(series, k, rng);
}

int RepairEmptyClusters(
    int k, std::vector<int>* assignments,
    const std::function<double(int, std::size_t)>& distance) {
  KSHAPE_CHECK(assignments != nullptr);
  const std::size_t n = assignments->size();
  std::vector<std::size_t> sizes(k, 0);
  for (int a : *assignments) ++sizes[a];
  int reseeds = 0;
  for (int j = 0; j < k; ++j) {
    if (sizes[j] != 0) continue;
    double worst_dist = -1.0;
    std::size_t worst_idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (sizes[(*assignments)[i]] <= 1) continue;
      const double d = distance((*assignments)[i], i);
      if (d > worst_dist) {
        worst_dist = d;
        worst_idx = i;
      }
    }
    if (worst_dist >= 0.0) {
      --sizes[(*assignments)[worst_idx]];
      (*assignments)[worst_idx] = j;
      ++sizes[j];
      ++reseeds;
    }
  }
  return reseeds;
}

int CountDegenerateCentroids(const ClusteringResult& result) {
  if (result.centroids.empty()) return 0;
  const int k = static_cast<int>(result.centroids.size());
  std::vector<std::size_t> sizes(k, 0);
  for (int a : result.assignments) {
    if (a >= 0 && a < k) ++sizes[a];
  }
  int degenerate = 0;
  for (int j = 0; j < k; ++j) {
    if (sizes[j] == 0) continue;
    double sum_sq = 0.0;
    for (double v : result.centroids[j]) sum_sq += v * v;
    if (sum_sq == 0.0) ++degenerate;
  }
  return degenerate;
}

std::vector<std::vector<std::size_t>> GroupByCluster(
    const std::vector<int>& assignments, int k) {
  KSHAPE_CHECK(k >= 1);
  std::vector<std::vector<std::size_t>> groups(k);
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const int c = assignments[i];
    KSHAPE_CHECK_MSG(c >= 0 && c < k, "assignment out of range");
    groups[c].push_back(i);
  }
  return groups;
}

std::vector<int> RandomAssignments(std::size_t n, int k, common::Rng* rng) {
  KSHAPE_CHECK(k >= 1);
  KSHAPE_CHECK(rng != nullptr);
  std::vector<int> assignments(n);
  if (n >= static_cast<std::size_t>(k)) {
    // Seed each cluster with one series, then assign the rest uniformly.
    const std::vector<int> perm = rng->Permutation(static_cast<int>(n));
    for (int c = 0; c < k; ++c) assignments[perm[c]] = c;
    for (std::size_t i = k; i < n; ++i) {
      assignments[perm[i]] = rng->UniformInt(k);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      assignments[i] = rng->UniformInt(k);
    }
  }
  return assignments;
}

}  // namespace kshape::cluster
