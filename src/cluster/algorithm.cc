#include "cluster/algorithm.h"

#include "common/check.h"

namespace kshape::cluster {

std::vector<std::vector<std::size_t>> GroupByCluster(
    const std::vector<int>& assignments, int k) {
  KSHAPE_CHECK(k >= 1);
  std::vector<std::vector<std::size_t>> groups(k);
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    const int c = assignments[i];
    KSHAPE_CHECK_MSG(c >= 0 && c < k, "assignment out of range");
    groups[c].push_back(i);
  }
  return groups;
}

std::vector<int> RandomAssignments(std::size_t n, int k, common::Rng* rng) {
  KSHAPE_CHECK(k >= 1);
  KSHAPE_CHECK(rng != nullptr);
  std::vector<int> assignments(n);
  if (n >= static_cast<std::size_t>(k)) {
    // Seed each cluster with one series, then assign the rest uniformly.
    const std::vector<int> perm = rng->Permutation(static_cast<int>(n));
    for (int c = 0; c < k; ++c) assignments[perm[c]] = c;
    for (std::size_t i = k; i < n; ++i) {
      assignments[perm[i]] = rng->UniformInt(k);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      assignments[i] = rng->UniformInt(k);
    }
  }
  return assignments;
}

}  // namespace kshape::cluster
