#include "cluster/kmedoids.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"

namespace kshape::cluster {

linalg::Matrix PairwiseDistanceMatrix(
    const tseries::SeriesBatch& series,
    const distance::DistanceMeasure& measure) {
  const std::size_t n = series.size();
  linalg::Matrix d(n, n);
  // Measures with per-series precomputation (SBD's spectrum cache) fill the
  // whole matrix in one batched call — for SBD that turns the two forward
  // transforms of every pair into n cached forwards plus one inverse per
  // pair. Everything else takes the generic per-pair loop below.
  std::vector<double> flat;
  if (measure.BatchedPairwise(series, &flat)) {
    KSHAPE_CHECK(flat.size() == n * n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) d(i, j) = flat[i * n + j];
    }
    return d;
  }
  // Rows are independent: row i computes d(i, j) for j > i and mirrors each
  // value into d(j, i). Two rows never write the same cell, so the matrix is
  // bit-identical at any thread count. Grain 1 because row cost shrinks with
  // i (n-i-1 distances); the pool's dynamic chunk claiming load-balances.
  common::ParallelFor(0, n, 1, [&](std::size_t row_begin,
                                   std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dist = measure.Distance(series[i], series[j]);
        d(i, j) = dist;
        d(j, i) = dist;
      }
    }
  });
  return d;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Caches each point's nearest and second-nearest medoid distances; the SWAP
// phase needs both to price an exchange in O(1) per point.
struct NearestCache {
  std::vector<int> nearest;        // medoid index (into medoids vector)
  std::vector<double> d_nearest;   // distance to nearest medoid
  std::vector<double> d_second;    // distance to second-nearest medoid
};

NearestCache BuildCache(const linalg::Matrix& d,
                        const std::vector<std::size_t>& medoids) {
  const std::size_t n = d.rows();
  NearestCache cache;
  cache.nearest.assign(n, 0);
  cache.d_nearest.assign(n, kInf);
  cache.d_second.assign(n, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t mi = 0; mi < medoids.size(); ++mi) {
      const double dist = d(i, medoids[mi]);
      if (dist < cache.d_nearest[i]) {
        cache.d_second[i] = cache.d_nearest[i];
        cache.d_nearest[i] = dist;
        cache.nearest[i] = static_cast<int>(mi);
      } else if (dist < cache.d_second[i]) {
        cache.d_second[i] = dist;
      }
    }
  }
  return cache;
}

std::vector<std::size_t> GreedyBuild(const linalg::Matrix& d, int k) {
  const std::size_t n = d.rows();
  std::vector<std::size_t> medoids;
  // First medoid: point minimizing the total distance to all others.
  std::size_t best = 0;
  double best_total = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < n; ++j) total += d(i, j);
    if (total < best_total) {
      best_total = total;
      best = i;
    }
  }
  medoids.push_back(best);

  std::vector<double> d_nearest(n);
  for (std::size_t i = 0; i < n; ++i) d_nearest[i] = d(i, best);

  while (static_cast<int>(medoids.size()) < k) {
    std::size_t pick = 0;
    double best_gain = -kInf;
    for (std::size_t c = 0; c < n; ++c) {
      if (std::find(medoids.begin(), medoids.end(), c) != medoids.end()) {
        continue;
      }
      double gain = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        gain += std::max(0.0, d_nearest[i] - d(i, c));
      }
      if (gain > best_gain) {
        best_gain = gain;
        pick = c;
      }
    }
    medoids.push_back(pick);
    for (std::size_t i = 0; i < n; ++i) {
      d_nearest[i] = std::min(d_nearest[i], d(i, pick));
    }
  }
  return medoids;
}

}  // namespace

ClusteringResult PamOnMatrix(const linalg::Matrix& d, int k, common::Rng* rng,
                             const PamOptions& options) {
  const std::size_t n = d.rows();
  KSHAPE_CHECK(n >= 1 && d.cols() == n);
  KSHAPE_CHECK(k >= 1 && static_cast<std::size_t>(k) <= n);
  KSHAPE_CHECK(rng != nullptr);

  std::vector<std::size_t> medoids;
  if (options.use_build_init) {
    medoids = GreedyBuild(d, k);
  } else {
    const std::vector<int> perm = rng->Permutation(static_cast<int>(n));
    for (int j = 0; j < k; ++j) {
      medoids.push_back(static_cast<std::size_t>(perm[j]));
    }
  }

  ClusteringResult result;
  int iter = 0;
  for (; iter < options.max_iterations; ++iter) {
    const NearestCache cache = BuildCache(d, medoids);

    // Find the single best improving swap (remove medoids[r], add h).
    double best_delta = -1e-12;  // Require strict improvement.
    int best_r = -1;
    std::size_t best_h = 0;
    for (int r = 0; r < k; ++r) {
      for (std::size_t h = 0; h < n; ++h) {
        if (std::find(medoids.begin(), medoids.end(), h) != medoids.end()) {
          continue;
        }
        double delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double current = cache.d_nearest[i];
          const double with_h = d(i, h);
          double after;
          if (cache.nearest[i] == r) {
            after = std::min(cache.d_second[i], with_h);
          } else {
            after = std::min(current, with_h);
          }
          delta += after - current;
        }
        if (delta < best_delta) {
          best_delta = delta;
          best_r = r;
          best_h = h;
        }
      }
    }
    if (best_r < 0) {
      result.converged = true;
      break;
    }
    medoids[best_r] = best_h;
  }
  result.iterations = iter;

  const NearestCache final_cache = BuildCache(d, medoids);
  result.assignments.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    result.assignments[i] = final_cache.nearest[i];
  }
  return result;
}

KMedoids::KMedoids(const distance::DistanceMeasure* measure, std::string name,
                   PamOptions options)
    : measure_(measure), name_(std::move(name)), options_(options) {
  KSHAPE_CHECK(measure_ != nullptr);
}

ClusteringResult KMedoids::Cluster(const tseries::SeriesBatch& series,
                                   int k, common::Rng* rng) const {
  const linalg::Matrix d = PairwiseDistanceMatrix(series, *measure_);
  ClusteringResult result = PamOnMatrix(d, k, rng, options_);
  // Medoid series double as centroids for downstream consumers.
  const auto groups = GroupByCluster(result.assignments, k);
  result.centroids.clear();
  for (int j = 0; j < k; ++j) {
    if (groups[j].empty()) {
      result.centroids.push_back(tseries::Series(series.length(), 0.0));
      continue;
    }
    // Recover the medoid as the member with the least total distance.
    std::size_t best = groups[j][0];
    double best_total = std::numeric_limits<double>::infinity();
    for (std::size_t i : groups[j]) {
      double total = 0.0;
      for (std::size_t other : groups[j]) total += d(i, other);
      if (total < best_total) {
        best_total = total;
        best = i;
      }
    }
    const tseries::SeriesView medoid = series[best];
    result.centroids.emplace_back(medoid.begin(), medoid.end());
  }
  AttachFittedModel(&result, Name());
  return result;
}

}  // namespace kshape::cluster
