#ifndef KSHAPE_CLUSTER_HIERARCHICAL_H_
#define KSHAPE_CLUSTER_HIERARCHICAL_H_

#include <string>
#include <vector>

#include "cluster/algorithm.h"
#include "distance/measure.h"
#include "linalg/matrix.h"

namespace kshape::cluster {

/// Linkage criteria for agglomerative clustering (§2.4 of the paper).
enum class Linkage {
  kSingle,    // d(A u B, C) = min(d(A,C), d(B,C))
  kAverage,   // size-weighted mean (UPGMA)
  kComplete,  // max
};

/// Returns "single" / "average" / "complete".
const char* LinkageName(Linkage linkage);

/// One merge step of the dendrogram: clusters `left` and `right` (ids in the
/// scipy convention: 0..n-1 are leaves, n+i is the cluster made by merge i)
/// joined at the given height.
struct DendrogramMerge {
  int left = 0;
  int right = 0;
  double height = 0.0;
};

/// Full agglomerative dendrogram over a dissimilarity matrix (n-1 merges).
std::vector<DendrogramMerge> AgglomerativeDendrogram(
    const linalg::Matrix& dissimilarity, Linkage linkage);

/// Cuts a dendrogram at the minimum height producing exactly k clusters
/// (equivalently: undoes the last k-1 merges), returning flat assignments.
std::vector<int> CutDendrogram(const std::vector<DendrogramMerge>& merges,
                               std::size_t n, int k);

/// Agglomerative hierarchical clustering; deterministic (ignores the rng).
/// The paper's H-S/H-A/H-C x {ED, cDTW, SBD} grid of Table 4.
class HierarchicalClustering : public ClusteringAlgorithm {
 public:
  HierarchicalClustering(const distance::DistanceMeasure* measure,
                         Linkage linkage, std::string name);

  ClusteringResult Cluster(const tseries::SeriesBatch& series, int k,
                           common::Rng* rng) const override;

  std::string Name() const override { return name_; }

 private:
  const distance::DistanceMeasure* measure_;
  Linkage linkage_;
  std::string name_;
};

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_HIERARCHICAL_H_
