#include "cluster/validity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "cluster/kmedoids.h"

namespace kshape::cluster {

double MeanSilhouette(const linalg::Matrix& dissimilarity,
                      const std::vector<int>& assignments, int k) {
  const std::size_t n = assignments.size();
  KSHAPE_CHECK(dissimilarity.rows() == n && dissimilarity.cols() == n);
  KSHAPE_CHECK(k >= 1);
  const auto groups = GroupByCluster(assignments, k);

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int own = assignments[i];
    if (groups[own].size() <= 1) continue;  // Silhouette 0 by convention.

    // a(i): mean distance to the other members of the own cluster.
    double a = 0.0;
    for (std::size_t j : groups[own]) {
      if (j != i) a += dissimilarity(i, j);
    }
    a /= static_cast<double>(groups[own].size() - 1);

    // b(i): smallest mean distance to any other populated cluster.
    double b = std::numeric_limits<double>::infinity();
    for (int c = 0; c < k; ++c) {
      if (c == own || groups[c].empty()) continue;
      double mean = 0.0;
      for (std::size_t j : groups[c]) mean += dissimilarity(i, j);
      mean /= static_cast<double>(groups[c].size());
      b = std::min(b, mean);
    }
    if (!std::isfinite(b)) continue;  // Only one populated cluster.

    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

namespace {

// Medoid of a group: the member minimizing the total within-group distance.
std::size_t GroupMedoid(const linalg::Matrix& d,
                        const std::vector<std::size_t>& group) {
  std::size_t best = group[0];
  double best_total = std::numeric_limits<double>::infinity();
  for (std::size_t candidate : group) {
    double total = 0.0;
    for (std::size_t member : group) total += d(candidate, member);
    if (total < best_total) {
      best_total = total;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

double DaviesBouldinIndex(const linalg::Matrix& dissimilarity,
                          const std::vector<int>& assignments, int k) {
  const std::size_t n = assignments.size();
  KSHAPE_CHECK(dissimilarity.rows() == n && dissimilarity.cols() == n);
  const auto groups = GroupByCluster(assignments, k);

  std::vector<std::size_t> medoids;
  std::vector<double> scatters;
  for (int c = 0; c < k; ++c) {
    if (groups[c].empty()) continue;
    const std::size_t medoid = GroupMedoid(dissimilarity, groups[c]);
    double scatter = 0.0;
    for (std::size_t member : groups[c]) {
      scatter += dissimilarity(medoid, member);
    }
    scatter /= static_cast<double>(groups[c].size());
    medoids.push_back(medoid);
    scatters.push_back(scatter);
  }
  KSHAPE_CHECK_MSG(medoids.size() >= 2,
                   "Davies-Bouldin needs >= 2 populated clusters");

  double total = 0.0;
  for (std::size_t i = 0; i < medoids.size(); ++i) {
    double worst = 0.0;
    for (std::size_t j = 0; j < medoids.size(); ++j) {
      if (i == j) continue;
      const double separation = dissimilarity(medoids[i], medoids[j]);
      if (separation > 0.0) {
        worst = std::max(worst, (scatters[i] + scatters[j]) / separation);
      }
    }
    total += worst;
  }
  return total / static_cast<double>(medoids.size());
}

double WithinClusterSsd(const tseries::SeriesBatch& series,
                        const ClusteringResult& result,
                        const distance::DistanceMeasure& measure) {
  KSHAPE_CHECK(result.assignments.size() == series.size());
  KSHAPE_CHECK(!result.centroids.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    const int c = result.assignments[i];
    KSHAPE_CHECK(c >= 0 && c < static_cast<int>(result.centroids.size()));
    const double d = measure.Distance(result.centroids[c], series[i]);
    total += d * d;
  }
  return total;
}

KEstimate EstimateK(const tseries::SeriesBatch& series,
                    const ClusteringAlgorithm& algorithm,
                    const distance::DistanceMeasure& measure, int k_min,
                    int k_max, int runs, common::Rng* rng) {
  KSHAPE_CHECK(k_min >= 2 && k_min <= k_max);
  KSHAPE_CHECK(runs >= 1);
  KSHAPE_CHECK(rng != nullptr);

  const linalg::Matrix d = PairwiseDistanceMatrix(series, measure);
  KEstimate estimate;
  double best_score = -2.0;
  for (int k = k_min; k <= k_max; ++k) {
    double best_for_k = -2.0;
    for (int run = 0; run < runs; ++run) {
      common::Rng run_rng = rng->Fork();
      const ClusteringResult result = algorithm.Cluster(series, k, &run_rng);
      best_for_k =
          std::max(best_for_k, MeanSilhouette(d, result.assignments, k));
    }
    estimate.silhouettes.push_back(best_for_k);
    if (best_for_k > best_score) {
      best_score = best_for_k;
      estimate.best_k = k;
    }
  }
  return estimate;
}

ClusteringResult BestOfRestarts(const tseries::SeriesBatch& series,
                                const ClusteringAlgorithm& algorithm,
                                const distance::DistanceMeasure& measure,
                                int k, int restarts, common::Rng* rng) {
  KSHAPE_CHECK(restarts >= 1);
  KSHAPE_CHECK(rng != nullptr);
  ClusteringResult best;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int run = 0; run < restarts; ++run) {
    common::Rng run_rng = rng->Fork();
    ClusteringResult result = algorithm.Cluster(series, k, &run_rng);
    KSHAPE_CHECK_MSG(!result.centroids.empty(),
                     "BestOfRestarts needs a centroid-producing algorithm");
    const double cost = WithinClusterSsd(series, result, measure);
    if (cost < best_cost) {
      best_cost = cost;
      best = std::move(result);
    }
  }
  return best;
}

}  // namespace kshape::cluster
