#ifndef KSHAPE_CLUSTER_MINIBATCH_KSHAPE_H_
#define KSHAPE_CLUSTER_MINIBATCH_KSHAPE_H_

#include <string>

#include "cluster/algorithm.h"
#include "common/random.h"
#include "common/status.h"
#include "core/kshape.h"
#include "store/sharded_store.h"
#include "tseries/time_series.h"

namespace kshape::cluster {

/// Out-of-core k-Shape over a ShardedSeriesStore: the block-partitioned
/// driver for the 10^5-10^6 series regime, where the corpus does not fit
/// (or should not sit) in memory.
///
/// Every pass streams shards in order through a per-shard SbdEngine — the
/// residency budget bounds both the raw samples and the engine spectra, so
/// peak memory is O(max_resident_shards * shard_rows * m), independent of n.
/// Centroid spectra are minted once per iteration (SbdEngine::MakeQueryFor)
/// and reused against every shard engine; shape extraction streams members
/// through one ShapeAccumulator per cluster in global index order.
///
/// Two operating modes, selected by KShapeOptions::minibatch_size and the
/// process-wide KSHAPE_SHARDS gate:
///
///  - Exact (minibatch_size == 0, or KSHAPE_SHARDS=off): every iteration is
///    a full pass. The run is bit-identical to the in-memory KShape on the
///    same series — same labels, same centroids, same iteration count, same
///    distance telemetry — at every thread count, SIMD backend, spectrum
///    layout, pruning setting, and shard geometry. The per-shard engines
///    produce bitwise the same spectra and norms as one big engine (the FFT
///    of a series depends on nothing but the series and fft_len, which is a
///    function of m alone), and every reduction that is order-sensitive
///    (telemetry, ++-seeding totals, shape accumulation, empty-cluster
///    repair) runs in global index order. The equivalence suite in
///    tests/minibatch_kshape_test.cc pins this contract.
///
///  - Mini-batch (minibatch_size B > 0 and the gate on): most iterations
///    draw a seeded uniform sample of B series (Floyd's algorithm on the
///    coordinating thread, so the draw is thread-count-invariant), refine
///    centroids from the sampled members only, and reassign only the
///    sample. Every `refresh_period`-th iteration (and the last) runs a
///    full exact pass — which is also the only place convergence is
///    declared, so a converged mini-batch run ends on a corpus-wide fixed
///    point. A cluster with no sampled members keeps its previous centroid
///    (it is not degenerate-zeroed; a sample miss is not evidence the
///    cluster is empty). Hamerly movement bounds are disabled in this mode
///    (their per-series state assumes every series sees every centroid
///    update), but the stateless spectral early-abandon layer still prunes
///    inside each scan.
///
/// Telemetry: ClusteringResult gains shards_loaded / shard_evictions (deltas
/// of the store's counters over the run) and sampled_series (total sample
/// draws; 0 in exact mode). AssignmentIterationStats entries for sampled
/// iterations partition B*k candidates instead of n*k.
///
/// The driver requires the cached-SBD configuration: use_spectrum_cache on
/// and no custom assignment_distance (both are KSHAPE_CHECKed — streaming
/// shards IS the spectrum-cache path).
class MiniBatchKShape {
 public:
  explicit MiniBatchKShape(core::KShapeOptions options = {});

  /// Clusters the sealed store into k clusters. The store is mutated only
  /// through its residency layer (Acquire/evict); the samples on disk are
  /// never written. Malformed inputs (null/unsealed store, k out of range)
  /// are programmer errors and abort; untrusted stores go through
  /// TryCluster.
  ClusteringResult Cluster(store::ShardedSeriesStore* store, int k,
                           common::Rng* rng) const;

  /// Status boundary for untrusted stores: re-validates the shard files on
  /// disk (Validate — a truncated or swapped store is an error, not an
  /// abort mid-scan), streams a finiteness check over every shard, checks
  /// the k range, then clusters.
  common::StatusOr<ClusteringResult> TryCluster(
      store::ShardedSeriesStore* store, int k, common::Rng* rng) const;

  std::string Name() const { return name_; }

  /// Convenience: spills an in-memory batch into a new sharded store at
  /// `directory`, using the geometry in options (shard_rows /
  /// max_resident_shards), and seals it. The bridge the benches and tests
  /// use to compare sharded runs against in-memory ones.
  static common::StatusOr<store::ShardedSeriesStore> ShardBatch(
      const tseries::SeriesBatch& batch, const std::string& directory,
      const core::KShapeOptions& options);

 private:
  core::KShapeOptions options_;
  std::string name_;
};

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_MINIBATCH_KSHAPE_H_
