#ifndef KSHAPE_CLUSTER_DBA_H_
#define KSHAPE_CLUSTER_DBA_H_

#include "cluster/averaging.h"

namespace kshape::cluster {

/// DTW Barycenter Averaging (Petitjean et al. 2011, §2.5 of the paper).
///
/// Iteratively refines an average sequence: each refinement pass computes the
/// DTW warping path from the current average to every member and replaces
/// each average coordinate with the barycenter of all member coordinates
/// mapped onto it.
struct DbaOptions {
  /// Refinement passes per Average() call. The paper's k-DBA refines the
  /// centroid once per k-means iteration (§4, "we use the centroids of the
  /// previous run as reference sequences to refine the centroids of the
  /// current run once").
  int refinements = 1;

  /// Sakoe-Chiba window for the warping paths; negative = unconstrained.
  int window = -1;
};

/// One DBA refinement pass: returns the barycenter update of `average`
/// against the selected members.
tseries::Series DbaRefineOnce(const tseries::SeriesBatch& pool,
                              const std::vector<std::size_t>& member_indices,
                              tseries::SeriesView average, int window);

/// AveragingMethod adapter; combined with DTW in the generic k-means this is
/// the paper's k-DBA baseline. When the previous centroid is all-zero (first
/// iteration), the refinement starts from a random member instead.
class DbaAveraging : public AveragingMethod {
 public:
  explicit DbaAveraging(DbaOptions options = {}) : options_(options) {}

  tseries::Series Average(const tseries::SeriesBatch& pool,
                          const std::vector<std::size_t>& member_indices,
                          tseries::SeriesView previous,
                          common::Rng* rng) const override;
  std::string Name() const override { return "DBA"; }

 private:
  DbaOptions options_;
};

}  // namespace kshape::cluster

#endif  // KSHAPE_CLUSTER_DBA_H_
