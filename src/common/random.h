#ifndef KSHAPE_COMMON_RANDOM_H_
#define KSHAPE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace kshape::common {

/// SplitMix64 pseudo-random generator.
///
/// Used to expand a single 64-bit seed into the larger state required by
/// Xoshiro256**. Deterministic across platforms (unlike std::mt19937 paired
/// with std:: distributions, whose outputs are implementation-defined).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// Xoshiro256** pseudo-random generator (Blackman & Vigna).
///
/// The single source of randomness for the whole library: every stochastic
/// component (initial cluster assignments, dataset generators, restarts)
/// receives an explicitly seeded `Rng` so all experiments are reproducible.
class Rng {
 public:
  /// Seeds the generator state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform();

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  int UniformInt(int n);

  /// Returns a standard-normal variate (Marsaglia polar method, deterministic
  /// given the seed).
  double Gaussian();

  /// Returns a normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int i = static_cast<int>(values->size()) - 1; i > 0; --i) {
      const int j = UniformInt(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Derives an independent child generator; useful for giving each of many
  /// parallel workloads its own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace kshape::common

#endif  // KSHAPE_COMMON_RANDOM_H_
