#ifndef KSHAPE_COMMON_CHECK_H_
#define KSHAPE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

/// Invariant-checking macros for programmer errors.
///
/// These are active in all build types: clustering experiments run in Release
/// and silent memory corruption would invalidate every measured number. The
/// cost of the checks is negligible next to the O(m log m) / O(m^2) kernels.

/// Aborts with a file:line message when `cond` is false.
#define KSHAPE_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "KSHAPE_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Aborts with a file:line message and `msg` when `cond` is false.
#define KSHAPE_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "KSHAPE_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                       \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Aborts when a Status-returning expression is not OK.
#define KSHAPE_CHECK_OK(expr)                                               \
  do {                                                                      \
    const ::kshape::common::Status _kshape_check_status = (expr);           \
    if (!_kshape_check_status.ok()) {                                       \
      std::fprintf(stderr, "KSHAPE_CHECK_OK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__,                                      \
                   _kshape_check_status.ToString().c_str());                \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // KSHAPE_COMMON_CHECK_H_
