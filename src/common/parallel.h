#ifndef KSHAPE_COMMON_PARALLEL_H_
#define KSHAPE_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kshape::common {

/// A task-parallel runtime for the library's embarrassingly-parallel hot
/// paths (pairwise distance matrices, the k-Shape assignment step, k-means++
/// D^2 scans, 1-NN searches).
///
/// Determinism contract: ParallelFor splits [begin, end) into the same
/// chunks regardless of the thread count — only *which* thread runs a chunk
/// varies. A body that writes exclusively to indices inside its chunk (no
/// shared accumulator, no reduction-order dependence) therefore produces
/// bit-identical results at every thread count, including 1. All call sites
/// in this library follow that pattern: they pre-size output buffers and make
/// each chunk write a disjoint slice, then reduce sequentially if needed.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` worker threads (the caller participates in
  /// every region, so 1 means fully inline execution). Requires >= 1.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Must not be called while a ParallelFor is running.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The configured degree of parallelism (including the calling thread).
  int num_threads() const { return num_threads_; }

  /// Invokes `body(chunk_begin, chunk_end)` over disjoint chunks of
  /// [begin, end), each at most `grain` indices long (grain 0 is treated
  /// as 1). Blocks until every chunk has finished. The set of chunks is a
  /// pure function of (begin, end, grain) — see the determinism contract
  /// above. Exceptions thrown by `body` cancel the remaining chunks and the
  /// first one is rethrown on the calling thread.
  ///
  /// Nested calls are safe: a body that itself calls ParallelFor (on any
  /// pool) runs the inner region inline on its own thread, so the pool can
  /// never deadlock on itself. Concurrent top-level calls from distinct
  /// non-worker threads are serialized.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body);

 private:
  // One ParallelFor invocation. Chunk c covers
  // [begin + c*grain, min(end, begin + (c+1)*grain)).
  struct Region {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t grain = 1;
    std::size_t num_chunks = 0;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t next_chunk = 0;    // guarded by ThreadPool::mu_
    int active_workers = 0;        // guarded by ThreadPool::mu_
    std::exception_ptr error;      // guarded by ThreadPool::mu_
  };

  void WorkerLoop();
  // Claims and runs chunks of `region` until none remain (or an error
  // cancels the region).
  void RunChunks(Region* region);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a region was posted / shutdown
  std::condition_variable done_cv_;  // caller: all participants drained
  Region* region_ = nullptr;         // active region, nullptr when idle
  std::uint64_t region_seq_ = 0;     // bumped per region so workers never
                                     // re-join one they already finished
  bool shutdown_ = false;

  // Serializes top-level ParallelFor calls (the pool runs one region at a
  // time); nested calls bypass it by running inline.
  std::mutex submit_mu_;
};

/// The process-wide pool used by all library hot paths. Created lazily with
/// the thread count from the `KSHAPE_THREADS` environment variable (values
/// < 1 or unset fall back to std::thread::hardware_concurrency()).
ThreadPool& GlobalThreadPool();

/// Replaces the global pool with one of `num_threads` threads; 0 re-reads
/// `KSHAPE_THREADS` / the hardware default. Must not be called while any
/// ParallelFor on the global pool is in flight (configure at startup or
/// between runs, as the tests do).
void SetThreadCount(int num_threads);

/// The global pool's thread count (creates the pool if needed).
int ThreadCount();

/// The thread count `KSHAPE_THREADS` / hardware concurrency would yield for
/// a fresh pool; exposed for tools that report their configuration.
int DefaultThreadCount();

/// ParallelFor on the global pool. This is the call sites' entry point.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace kshape::common

#endif  // KSHAPE_COMMON_PARALLEL_H_
