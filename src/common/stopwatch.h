#ifndef KSHAPE_COMMON_STOPWATCH_H_
#define KSHAPE_COMMON_STOPWATCH_H_

#include <chrono>

namespace kshape::common {

/// Simple wall-clock stopwatch for experiment timing.
///
/// The paper reports CPU-time *ratios* between methods; on the single-threaded
/// kernels in this library wall time of a dedicated process is an adequate
/// proxy and steady_clock avoids NTP jumps.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kshape::common

#endif  // KSHAPE_COMMON_STOPWATCH_H_
