#ifndef KSHAPE_COMMON_STATUS_H_
#define KSHAPE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace kshape::common {

/// Error categories for fallible library operations.
///
/// Styled after the Status idiom used by Arrow and RocksDB: library code never
/// throws across its public boundary; instead, operations that may fail return
/// a `Status` (or a `StatusOr<T>` when they also produce a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIoError = 6,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result for fallible operations.
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// free-form message. `Status` is cheap to copy in the OK case (empty string)
/// and is always movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors for the common error categories.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`.
///
/// Accessing `value()` on an error-holding `StatusOr` aborts the process (see
/// KSHAPE_CHECK); callers must test `ok()` first.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit on purpose, mirroring absl::StatusOr).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error status. Must not be OK.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is held).
  const Status& status() const { return status_; }

  /// The held value. Requires `ok()`.
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace kshape::common

#endif  // KSHAPE_COMMON_STATUS_H_
