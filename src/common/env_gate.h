// Process-wide feature gates resolved from environment variables.
//
// Several subsystems ship an on/off kill switch (KSHAPE_HALF_SPECTRUM,
// KSHAPE_PRUNE, KSHAPE_SHARDS, ...) with identical semantics: the variable is
// read once, lazily, on first use; "on" or unset enables the feature, "off"
// disables it, and anything else aborts (a silently ignored typo in a CI leg
// would void the equivalence contract that leg exists to check). EnvGate is
// that logic in one place. EnvIntOverride is the sibling for integer-valued
// overrides (e.g. KSHAPE_MODEL_V forcing a model-format version stamp).
//
// Resolution uses the same lazy atomic idiom as the SIMD dispatch table: a
// racing first use resolves the same value on every thread, so no lock is
// needed. Set*ForTesting stores an explicit value, which also short-circuits
// any later environment lookup.

#ifndef KSHAPE_COMMON_ENV_GATE_H_
#define KSHAPE_COMMON_ENV_GATE_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"

namespace kshape::common {

// On/off/unset boolean gate. Default (unset or empty) is enabled.
class EnvGate {
 public:
  constexpr explicit EnvGate(const char* variable) : variable_(variable) {}

  EnvGate(const EnvGate&) = delete;
  EnvGate& operator=(const EnvGate&) = delete;

  bool enabled() {
    int v = state_.load(std::memory_order_acquire);
    if (v < 0) {
      v = Resolve();
      state_.store(v, std::memory_order_release);
    }
    return v != 0;
  }

  void SetForTesting(bool enabled) {
    state_.store(enabled ? 1 : 0, std::memory_order_release);
  }

 private:
  int Resolve() const {
    const char* env = std::getenv(variable_);
    if (env == nullptr || *env == '\0') return 1;
    if (std::strcmp(env, "on") == 0) return 1;
    if (std::strcmp(env, "off") == 0) return 0;
    KSHAPE_CHECK_MSG(
        false, (std::string(variable_) + " must be 'on' or 'off'").c_str());
    return 1;
  }

  const char* variable_;
  // -1 unresolved, 0 off, 1 on.
  std::atomic<int> state_{-1};
};

// Non-negative integer override with a compiled-in fallback. Unset or empty
// yields the fallback; a decimal integer in [0, 2^31) yields that value;
// anything else aborts.
class EnvIntOverride {
 public:
  constexpr EnvIntOverride(const char* variable, std::int64_t fallback)
      : variable_(variable), fallback_(fallback) {}

  EnvIntOverride(const EnvIntOverride&) = delete;
  EnvIntOverride& operator=(const EnvIntOverride&) = delete;

  std::int64_t value() {
    std::int64_t v = state_.load(std::memory_order_acquire);
    if (v == kUnresolved) {
      v = Resolve();
      state_.store(v, std::memory_order_release);
    }
    return v;
  }

  void SetForTesting(std::int64_t value) {
    KSHAPE_CHECK(value >= 0 && value != kUnresolved);
    state_.store(value, std::memory_order_release);
  }

  // Reverts to the compiled-in fallback (not the environment: tests that
  // override must restore a known state, not whatever the CI leg exported).
  void ResetForTesting() {
    state_.store(fallback_, std::memory_order_release);
  }

 private:
  static constexpr std::int64_t kUnresolved = -1;

  std::int64_t Resolve() const {
    const char* env = std::getenv(variable_);
    if (env == nullptr || *env == '\0') return fallback_;
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    KSHAPE_CHECK_MSG(
        end != env && *end == '\0' && parsed >= 0 && parsed < (1LL << 31),
        (std::string(variable_) + " must be a non-negative decimal integer")
            .c_str());
    return parsed;
  }

  const char* variable_;
  std::int64_t fallback_;
  std::atomic<std::int64_t> state_{kUnresolved};
};

}  // namespace kshape::common

#endif  // KSHAPE_COMMON_ENV_GATE_H_
