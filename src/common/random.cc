#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace kshape::common {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

int Rng::UniformInt(int n) {
  KSHAPE_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t bound = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t r = NextUint64();
  while (r >= limit) r = NextUint64();
  return static_cast<int>(r % bound);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  Shuffle(&perm);
  return perm;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace kshape::common
