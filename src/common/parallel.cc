#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/check.h"

namespace kshape::common {

namespace {

// True while the current thread is executing chunks of some region — on pool
// workers *and* on the calling thread, which participates in its own region.
// A ParallelFor issued from such a thread is a nested call and runs inline
// (a caller-thread nested call would otherwise self-deadlock on submit_mu_).
thread_local bool t_in_region = false;

// Sets t_in_region for a scope; exception-safe via RAII.
struct InRegionScope {
  bool saved = t_in_region;
  InRegionScope() { t_in_region = true; }
  ~InRegionScope() { t_in_region = saved; }
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  KSHAPE_CHECK_MSG(num_threads >= 1, "ThreadPool requires >= 1 thread");
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Region* region) {
  const InRegionScope scope;
  for (;;) {
    std::size_t chunk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (region->next_chunk >= region->num_chunks) return;
      chunk = region->next_chunk++;
    }
    const std::size_t chunk_begin = region->begin + chunk * region->grain;
    const std::size_t chunk_end =
        std::min(region->end, chunk_begin + region->grain);
    try {
      (*region->body)(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!region->error) region->error = std::current_exception();
      region->next_chunk = region->num_chunks;  // Cancel remaining chunks.
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t last_seq = 0;
  for (;;) {
    Region* region = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (region_ != nullptr && region_seq_ != last_seq);
      });
      if (shutdown_) return;
      last_seq = region_seq_;
      region = region_;
      ++region->active_workers;
    }
    RunChunks(region);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --region->active_workers;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t count = end - begin;
  const std::size_t num_chunks = (count + grain - 1) / grain;

  // Inline paths: a single-thread pool, a nested call from a worker (running
  // it inline avoids self-deadlock), or a range that is one chunk anyway.
  // The chunk decomposition is identical to the parallel path, so results
  // cannot depend on which path ran.
  if (num_threads_ == 1 || t_in_region || num_chunks == 1) {
    for (std::size_t s = begin; s < end; s += grain) {
      body(s, std::min(end, s + grain));
    }
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  Region region;
  region.begin = begin;
  region.end = end;
  region.grain = grain;
  region.num_chunks = num_chunks;
  region.body = &body;
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_ = &region;
    ++region_seq_;
  }
  work_cv_.notify_all();

  RunChunks(&region);  // The caller is a full participant.

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return region.active_workers == 0; });
    region_ = nullptr;
    error = region.error;
  }
  if (error) std::rethrow_exception(error);
}

namespace {

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Global-pool state. The pool is heap-allocated and guarded by a mutex only
// for creation/replacement; steady-state access is a pointer read.
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu

ThreadPool& GetOrCreatePool(int num_threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr || num_threads > 0) {
    const int n = num_threads > 0 ? num_threads : DefaultThreadCount();
    g_pool.reset();  // Join the old workers before spawning replacements.
    g_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_pool;
}

}  // namespace

int DefaultThreadCount() {
  const char* env = std::getenv("KSHAPE_THREADS");
  if (env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  return HardwareThreads();
}

ThreadPool& GlobalThreadPool() { return GetOrCreatePool(0); }

void SetThreadCount(int num_threads) {
  KSHAPE_CHECK_MSG(num_threads >= 0, "SetThreadCount requires >= 0");
  GetOrCreatePool(num_threads == 0 ? DefaultThreadCount() : num_threads);
}

int ThreadCount() { return GlobalThreadPool().num_threads(); }

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  GlobalThreadPool().ParallelFor(begin, end, grain, body);
}

}  // namespace kshape::common
