// x86 AVX2 backend. One 256-bit register holds exactly the four lanes of the
// fixed virtual-accumulator contract (kernels.h), so a vertical vector add
// per 4-element block walks the identical arithmetic sequence the scalar
// backend walks lane by lane; tails fold into the extracted lane array at
// index i mod 4, and the final combine is the shared (l0+l1)+(l2+l3). No
// fused multiply-adds anywhere — multiplies and adds round separately, and
// this translation unit compiles with -ffp-contract=off so the compiler
// cannot fuse them either. The FMA CPUID bit still gates dispatch (every
// AVX2-era part has it; keeping the gate makes the backend set predictable).
//
// Compiled with -mavx2 -mfma on x86 only; elsewhere this file provides the
// nullptr stub and the dispatcher falls back to the scalar backend.

#include "simd/kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstdint>
#include <limits>
#include <vector>

namespace kshape::simd {

namespace {

inline double Reduce4(__m256d acc) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double SumAvx2(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) lanes[i & 3] += x[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double SumSquaresAvx2(const double* x, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) lanes[i & 3] += x[i] * x[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

MeanVar MeanVarAvx2(const double* x, std::size_t n) {
  MeanVar mv;
  mv.mean = SumAvx2(x, n) / static_cast<double>(n);
  const __m256d vmu = _mm256_set1_pd(mv.mean);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(x + i), vmu);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    const double d = x[i] - mv.mean;
    lanes[i & 3] += d * d;
  }
  mv.variance =
      ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) / static_cast<double>(n);
  return mv;
}

double DotAvx2(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) lanes[i & 3] += x[i] * y[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double SquaredEdAvx2(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    lanes[i & 3] += d * d;
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double SquaredEdAbandonAvx2(const double* x, const double* y, std::size_t n,
                            double threshold) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  // Same 16-element checkpoint cadence as the scalar backend; the horizontal
  // reduce is compared against the threshold, never accumulated back.
  while (i + 16 <= n) {
    const std::size_t stop = i + 16;
    for (; i < stop; i += 4) {
      const __m256d d =
          _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    const double total = Reduce4(acc);
    if (total >= threshold) return total;
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    lanes[i & 3] += d * d;
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

double LbKeoghSquaredAvx2(const double* c, const double* lower,
                          const double* upper, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vc = _mm256_loadu_pd(c + i);
    // max(v, 0) with the zero as the second operand matches the scalar
    // `v > 0 ? v : 0` for -0.0 and NaN inputs (vmaxpd returns src2 then).
    const __m256d du =
        _mm256_max_pd(_mm256_sub_pd(vc, _mm256_loadu_pd(upper + i)), zero);
    const __m256d dl =
        _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(lower + i), vc), zero);
    acc = _mm256_add_pd(
        acc, _mm256_add_pd(_mm256_mul_pd(du, du), _mm256_mul_pd(dl, dl)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) {
    double du = c[i] - upper[i];
    du = du > 0.0 ? du : 0.0;
    double dl = lower[i] - c[i];
    dl = dl > 0.0 ? dl : 0.0;
    lanes[i & 3] += du * du + dl * dl;
  }
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void ComplexMulConjAvx2(const double* a, const double* b, double* out,
                        std::size_t n) {
  // -0.0 on the odd (imaginary) lanes only: set_pd takes lanes high-to-low.
  const __m256d odd_flip = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
  std::size_t k = 0;
  // Two interleaved complexes per iteration:
  //   re = ar*br + ai*bi,  im = ai*br - ar*bi
  // via t1 = [ar*br, ai*br], t2 = [ai*bi, ar*bi], then t1 + (t2 with the odd
  // lanes sign-flipped). A plain add (not _mm256_addsub_pd) on purpose: GCC
  // folds mul feeding addsub into vfmsubadd132pd even at -ffp-contract=off,
  // which fuses a rounding away and breaks bit-identity with scalar.
  for (; k + 2 <= n; k += 2) {
    const __m256d va = _mm256_loadu_pd(a + 2 * k);
    const __m256d vb = _mm256_loadu_pd(b + 2 * k);
    const __m256d b_re = _mm256_movedup_pd(vb);          // [br, br, ...]
    const __m256d b_im = _mm256_permute_pd(vb, 0xF);     // [bi, bi, ...]
    const __m256d a_sw = _mm256_permute_pd(va, 0x5);     // [ai, ar, ...]
    const __m256d t1 = _mm256_mul_pd(va, b_re);
    const __m256d t2 = _mm256_mul_pd(a_sw, b_im);
    _mm256_storeu_pd(out + 2 * k,
                     _mm256_add_pd(t1, _mm256_xor_pd(t2, odd_flip)));
  }
  for (; k < n; ++k) {
    const double ar = a[2 * k];
    const double ai = a[2 * k + 1];
    const double br = b[2 * k];
    const double bi = b[2 * k + 1];
    out[2 * k] = ar * br + ai * bi;
    out[2 * k + 1] = ai * br - ar * bi;
  }
}

void ComplexMulConjSoaAvx2(const double* a_re, const double* a_im,
                           const double* b_re, const double* b_im,
                           double* out_re, double* out_im, std::size_t n) {
  // Split planes make this pure vertical arithmetic — four complexes per
  // iteration with zero shuffles. Separate mul/add/sub (no FMA) keeps each
  // product rounded exactly as the scalar backend rounds it.
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d ar = _mm256_loadu_pd(a_re + k);
    const __m256d ai = _mm256_loadu_pd(a_im + k);
    const __m256d br = _mm256_loadu_pd(b_re + k);
    const __m256d bi = _mm256_loadu_pd(b_im + k);
    _mm256_storeu_pd(
        out_re + k,
        _mm256_add_pd(_mm256_mul_pd(ar, br), _mm256_mul_pd(ai, bi)));
    _mm256_storeu_pd(
        out_im + k,
        _mm256_sub_pd(_mm256_mul_pd(ai, br), _mm256_mul_pd(ar, bi)));
  }
  for (; k < n; ++k) {
    const double ar = a_re[k];
    const double ai = a_im[k];
    const double br = b_re[k];
    const double bi = b_im[k];
    out_re[k] = ar * br + ai * bi;
    out_im[k] = ai * br - ar * bi;
  }
}

Peak PeakScanAvx2(const double* x, std::size_t n) {
  // The peak is a max/argmax, not a rounded reduction: comparisons are exact,
  // so ANY index partition yields the sequential scan's result as long as
  // each partition keeps the lowest index of its own maximum (strict-greater
  // updates) and the final combine prefers the lowest index among equal
  // maxima — the globally-first maximum is necessarily its partition's
  // winner. That freedom lets this backend run TWO independent
  // (best, index) register pairs (eight candidates per iteration) to hide
  // the cmp->blend dependency latency that made a single 4-lane chain slower
  // than the branchy scalar scan.
  if (n < 8) {
    Peak peak;
    peak.value = x[0];
    peak.index = 0;
    for (std::size_t i = 1; i < n; ++i) {
      if (x[i] > peak.value) {
        peak.value = x[i];
        peak.index = i;
      }
    }
    return peak;
  }

  __m256d vbest0 = _mm256_loadu_pd(x);
  __m256d vbest1 = _mm256_loadu_pd(x + 4);
  __m256i vidx0 = _mm256_set_epi64x(3, 2, 1, 0);
  __m256i vidx1 = _mm256_set_epi64x(7, 6, 5, 4);
  __m256i viter0 = _mm256_set_epi64x(11, 10, 9, 8);
  __m256i viter1 = _mm256_set_epi64x(15, 14, 13, 12);
  const __m256i vstep = _mm256_set1_epi64x(8);
  std::size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(x + i);
    const __m256d v1 = _mm256_loadu_pd(x + i + 4);
    const __m256d gt0 = _mm256_cmp_pd(v0, vbest0, _CMP_GT_OQ);
    const __m256d gt1 = _mm256_cmp_pd(v1, vbest1, _CMP_GT_OQ);
    vbest0 = _mm256_blendv_pd(vbest0, v0, gt0);
    vbest1 = _mm256_blendv_pd(vbest1, v1, gt1);
    vidx0 = _mm256_castpd_si256(_mm256_blendv_pd(
        _mm256_castsi256_pd(vidx0), _mm256_castsi256_pd(viter0), gt0));
    vidx1 = _mm256_castpd_si256(_mm256_blendv_pd(
        _mm256_castsi256_pd(vidx1), _mm256_castsi256_pd(viter1), gt1));
    viter0 = _mm256_add_epi64(viter0, vstep);
    viter1 = _mm256_add_epi64(viter1, vstep);
  }
  alignas(32) double bv[8];
  alignas(32) std::int64_t bi[8];
  _mm256_store_pd(bv, vbest0);
  _mm256_store_pd(bv + 4, vbest1);
  _mm256_store_si256(reinterpret_cast<__m256i*>(bi), vidx0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(bi + 4), vidx1);
  for (; i < n; ++i) {
    const std::size_t l = i & 7;
    if (x[i] > bv[l]) {
      bv[l] = x[i];
      bi[l] = static_cast<std::int64_t>(i);
    }
  }
  Peak peak;
  peak.value = bv[0];
  peak.index = static_cast<std::size_t>(bi[0]);
  for (std::size_t l = 1; l < 8; ++l) {
    const std::size_t idx = static_cast<std::size_t>(bi[l]);
    if (bv[l] > peak.value || (bv[l] == peak.value && idx < peak.index)) {
      peak.value = bv[l];
      peak.index = idx;
    }
  }
  return peak;
}

void AxpyAvx2(double a, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), t));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void ScaleAvx2(double* x, double s, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), vs));
  }
  for (; i < n; ++i) x[i] *= s;
}

void ApplyZNormAvx2(double* x, std::size_t n, double mean,
                    double inv_stddev) {
  const __m256d vmu = _mm256_set1_pd(mean);
  const __m256d vinv = _mm256_set1_pd(inv_stddev);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        x + i,
        _mm256_mul_pd(_mm256_sub_pd(_mm256_loadu_pd(x + i), vmu), vinv));
  }
  for (; i < n; ++i) x[i] = (x[i] - mean) * inv_stddev;
}

void DtwRowAvx2(const double* prev_jm1, const double* y_jm1, double xi,
                double left_seed, double* cur, std::size_t count) {
  // The cur[t-1] recurrence is serial, and a measured split (vector
  // precompute of cost/e into scratch + serial combine) ran SLOWER than the
  // fused loop — the extra stores and scratch traffic cost more than the
  // vector squares save. So this backend runs the identical fused loop as
  // the scalar backend (same source, -ffp-contract=off here too), which is
  // also what makes bit-identity trivial for this kernel.
  double left = left_seed;
  for (std::size_t t = 0; t < count; ++t) {
    const double d = xi - y_jm1[t];
    const double e =
        prev_jm1[t] < prev_jm1[t + 1] ? prev_jm1[t] : prev_jm1[t + 1];
    const double best = e < left ? e : left;
    left = d * d + best;
    cur[t] = left;
  }
}

double AbsProductPartialSumsAvx2(const double* a_mag, const double* b_mag,
                                 const double* a_tail, const double* b_tail,
                                 std::size_t n, double threshold) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  // Same 16-element cadence and exit order as the scalar backend: reduce,
  // cannot-abandon check, then the Cauchy–Schwarz tail bound (one scalar mul
  // + add, rounded separately — identical arithmetic to the scalar kernel).
  while (i + 16 <= n) {
    const std::size_t stop = i + 16;
    for (; i < stop; i += 4) {
      acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a_mag + i),
                                             _mm256_loadu_pd(b_mag + i)));
    }
    const double total = Reduce4(acc);
    if (total >= threshold) return total;
    const double bound = total + a_tail[i / 16] * b_tail[i / 16];
    if (bound < threshold) return bound;
  }
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(a_mag + i),
                                           _mm256_loadu_pd(b_mag + i)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  for (; i < n; ++i) lanes[i & 3] += a_mag[i] * b_mag[i];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void Radix2PassAvx2(double* data, const double* twiddles, std::size_t n,
                    std::size_t len, std::size_t step, bool inverse) {
  const std::size_t half = len / 2;
  if (half < 2) {
    // len == 2: w = 1, adjacent complexes — the shuffle-heavy vector form
    // buys nothing, so run the scalar butterflies (identical source to the
    // scalar backend, same TU flags, trivially bit-identical).
    for (std::size_t base = 0; base < n; base += 2) {
      const std::size_t lo = 2 * base;
      const std::size_t hi = lo + 2;
      const double ur = data[lo];
      const double ui = data[lo + 1];
      const double vr = data[hi];
      const double vi = data[hi + 1];
      data[lo] = ur + vr;
      data[lo + 1] = ui + vi;
      data[hi] = ur - vr;
      data[hi + 1] = ui - vi;
    }
    return;
  }
  // -0.0 on the even (real) lanes only: v_re = xr*wr - xi*wi needs the first
  // product of each pair sign-flipped before the plain add (the non-conjugate
  // mirror of ComplexMulConjAvx2; same no-addsub rationale — GCC would fuse
  // mul+addsub into vfmsubadd and break bit-identity with scalar).
  const __m256d even_flip = _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
  for (std::size_t base = 0; base < n; base += len) {
    // half is a power of two >= 2, so the j-loop pairs up with no tail; u and
    // x loads are contiguous complex pairs, only the twiddles are strided.
    for (std::size_t j = 0; j < half; j += 2) {
      const std::size_t tw0 = 2 * (j * step);
      const std::size_t tw1 = 2 * ((j + 1) * step);
      const double wi0 = inverse ? -twiddles[tw0 + 1] : twiddles[tw0 + 1];
      const double wi1 = inverse ? -twiddles[tw1 + 1] : twiddles[tw1 + 1];
      const __m256d w =
          _mm256_set_pd(wi1, twiddles[tw1], wi0, twiddles[tw0]);
      const __m256d u = _mm256_loadu_pd(data + 2 * (base + j));
      const __m256d x = _mm256_loadu_pd(data + 2 * (base + j + half));
      const __m256d w_re = _mm256_movedup_pd(w);        // [wr, wr, ...]
      const __m256d w_im = _mm256_permute_pd(w, 0xF);   // [wi, wi, ...]
      const __m256d x_sw = _mm256_permute_pd(x, 0x5);   // [xi, xr, ...]
      const __m256d t1 = _mm256_mul_pd(x, w_re);        // [xr*wr, xi*wr]
      const __m256d t2 = _mm256_mul_pd(x_sw, w_im);     // [xi*wi, xr*wi]
      const __m256d v = _mm256_add_pd(t1, _mm256_xor_pd(t2, even_flip));
      _mm256_storeu_pd(data + 2 * (base + j), _mm256_add_pd(u, v));
      _mm256_storeu_pd(data + 2 * (base + j + half), _mm256_sub_pd(u, v));
    }
  }
}

void DotAxpyRowsAvx2(const double* rows, std::size_t num_rows,
                     std::size_t m, const double* u, double* out) {
  // Same row-order composition as the scalar backend: per-row 4-lane dot
  // (one AVX2 register = the four virtual lanes) followed by the elementwise
  // axpy while the row is hot in cache. No FMA anywhere.
  for (std::size_t r = 0; r < num_rows; ++r) {
    const double* x = rows + r * m;
    const double d = DotAvx2(x, u, m);
    AxpyAvx2(d, x, out, m);
  }
}

}  // namespace

const KernelTable* Avx2Kernels() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (!supported) return nullptr;
  static const KernelTable table = {
      "avx2",
      SumAvx2,
      SumSquaresAvx2,
      MeanVarAvx2,
      DotAvx2,
      SquaredEdAvx2,
      SquaredEdAbandonAvx2,
      LbKeoghSquaredAvx2,
      ComplexMulConjAvx2,
      ComplexMulConjSoaAvx2,
      PeakScanAvx2,
      AxpyAvx2,
      ScaleAvx2,
      ApplyZNormAvx2,
      DtwRowAvx2,
      AbsProductPartialSumsAvx2,
      Radix2PassAvx2,
      DotAxpyRowsAvx2,
  };
  return &table;
}

}  // namespace kshape::simd

#else  // !(__AVX2__ && __FMA__)

namespace kshape::simd {

const KernelTable* Avx2Kernels() { return nullptr; }

}  // namespace kshape::simd

#endif
