#ifndef KSHAPE_SIMD_KERNELS_H_
#define KSHAPE_SIMD_KERNELS_H_

#include <cstddef>

namespace kshape::simd {

/// Fused mean + population variance of one pass pair over a buffer.
struct MeanVar {
  double mean = 0.0;
  double variance = 0.0;
};

/// Maximum value and the lowest index attaining it (strict-greater scan).
struct Peak {
  double value = 0.0;
  std::size_t index = 0;
};

/// One vectorized-kernel backend. Every reduction kernel accumulates into a
/// **fixed 4-lane virtual accumulator**: lane `l` sums the terms at indices
/// `i ≡ l (mod 4)` in increasing order, tail elements land in lane `i mod 4`,
/// and the final reduction is always `(lane0 + lane1) + (lane2 + lane3)`.
/// One AVX2 register holds exactly four doubles, so the vector backend
/// realizes the same arithmetic sequence the scalar backend walks explicitly —
/// which is what makes results **bit-identical** across backends (and, with
/// the disjoint-write parallel patterns, across thread counts). Fused
/// multiply-add is never used: every product and sum is rounded separately in
/// every backend (the kernel translation units compile with
/// `-ffp-contract=off` so the compiler cannot fuse behind our back).
///
/// Elementwise kernels (axpy, scale, apply_znorm, complex_mul_conj,
/// complex_mul_conj_soa, dtw_row) have no cross-element reduction, so their
/// per-element rounding sequence is identical by construction.
struct KernelTable {
  /// Backend name for logs/benchmarks ("scalar", "avx2").
  const char* name;

  /// Σ x[i].
  double (*sum)(const double* x, std::size_t n);

  /// Σ x[i]^2.
  double (*sum_squares)(const double* x, std::size_t n);

  /// Fused z-normalization statistics: mean = Σx/n in one pass, then
  /// variance = Σ(x-mean)^2/n in a second pass over the same buffer.
  /// Requires n >= 1.
  MeanVar (*mean_var)(const double* x, std::size_t n);

  /// Σ x[i]*y[i].
  double (*dot)(const double* x, const double* y, std::size_t n);

  /// Σ (x[i]-y[i])^2.
  double (*squared_ed)(const double* x, const double* y, std::size_t n);

  /// Early-abandoning squared ED: accumulates like squared_ed but checks the
  /// running total against `threshold` every 16 elements (the same fixed
  /// cadence in every backend). Returns the full sum if it stayed below the
  /// threshold at every checkpoint, otherwise the partial sum at the
  /// abandoning checkpoint (which is >= threshold). Callers must treat any
  /// return >= threshold as "abandoned".
  double (*squared_ed_abandon)(const double* x, const double* y,
                               std::size_t n, double threshold);

  /// Σ of squared envelope violations: (c[i]-upper[i])^2 where c > upper,
  /// (lower[i]-c[i])^2 where c < lower, 0 inside the envelope. The square of
  /// LB_Keogh.
  double (*lb_keogh_squared)(const double* c, const double* lower,
                             const double* upper, std::size_t n);

  /// out[k] = a[k] * conj(b[k]) over n interleaved (re, im) complex doubles:
  /// re = a_re*b_re + a_im*b_im, im = a_im*b_re - a_re*b_im, each product
  /// rounded separately. `out` may not alias `a` or `b`.
  void (*complex_mul_conj)(const double* a, const double* b, double* out,
                           std::size_t n);

  /// SoA (split-plane) variant of complex_mul_conj over n complex values laid
  /// out as separate real and imaginary planes:
  ///   out_re[k] = a_re[k]*b_re[k] + a_im[k]*b_im[k]
  ///   out_im[k] = a_im[k]*b_re[k] - a_re[k]*b_im[k]
  /// The same per-element arithmetic as the interleaved kernel (each product
  /// rounded separately, no FMA), but every load/store is a plain contiguous
  /// vector op — no shuffles — which is what makes the half-spectrum product
  /// vectorize cleanly. Output planes may not alias the input planes.
  void (*complex_mul_conj_soa)(const double* a_re, const double* a_im,
                               const double* b_re, const double* b_im,
                               double* out_re, double* out_im, std::size_t n);

  /// Max + lowest-index argmax under a strict-greater scan (ties keep the
  /// earliest index, matching a sequential `if (x[i] > best)` loop exactly).
  /// Requires n >= 1.
  Peak (*peak_scan)(const double* x, std::size_t n);

  /// y[i] += a * x[i].
  void (*axpy)(double a, const double* x, double* y, std::size_t n);

  /// x[i] *= s.
  void (*scale)(double* x, double s, std::size_t n);

  /// x[i] = (x[i] - mean) * inv_stddev (the z-normalization apply pass).
  void (*apply_znorm)(double* x, std::size_t n, double mean,
                      double inv_stddev);

  /// One banded-DTW row combine. For t in [0, count):
  ///   cost   = (xi - y_jm1[t])^2
  ///   e      = min(prev_jm1[t], prev_jm1[t+1])
  ///   cur[t] = cost + min(e, cur[t-1])   with cur[-1] = left_seed.
  /// `prev_jm1`/`y_jm1` point at the j_lo-1 positions of the previous DP row
  /// and the y series; `cur` points at the j_lo position of the current row.
  /// The cur[t-1] recurrence is inherently serial; backends vectorize the
  /// cost/e precomputation and share the identical serial combine.
  void (*dtw_row)(const double* prev_jm1, const double* y_jm1, double xi,
                  double left_seed, double* cur, std::size_t count);

  /// Early-abandoning Σ a_mag[k]*b_mag[k] over nonnegative magnitude planes,
  /// with Cauchy–Schwarz tail bounds at the squared_ed_abandon checkpoint
  /// cadence. `a_tail`/`b_tail` hold per-checkpoint suffix norms:
  /// tail[c] >= sqrt(Σ_{k >= 16c} mag[k]^2), arrays of length
  /// floor(n/16) + 1. After each completed 16-element block (i = 16c
  /// elements consumed, c >= 1) the running 4-lane total S is reduced and,
  /// in this fixed order in every backend:
  ///   1. if S >= threshold, return S   (the true sum is >= S — terms are
  ///      nonnegative — so the caller can never abandon this candidate);
  ///   2. bound = S + a_tail[c]*b_tail[c] (one mul, one add, each rounded
  ///      separately); if bound < threshold, return bound (the true sum is
  ///      <= bound by Cauchy–Schwarz on the remaining suffix — abandon).
  /// If neither exit fires the kernel runs to completion and returns the
  /// exact dot product. Contract for callers: the candidate may be
  /// abandoned iff the returned value is < threshold; any return >=
  /// threshold proves nothing beyond "not abandonable at this threshold".
  double (*abs_product_partial_sums)(const double* a_mag, const double* b_mag,
                                     const double* a_tail,
                                     const double* b_tail, std::size_t n,
                                     double threshold);

  /// One radix-2 Cooley–Tukey butterfly stage over `n` interleaved (re, im)
  /// complex doubles, for block length `len` (a power of two, 2 <= len <= n)
  /// and twiddle stride `step` = n / len. `twiddles` is the interleaved
  /// forward table w[k] = exp(-2πik/n), k in [0, n/2). For every block base
  /// (multiples of len) and j in [0, len/2):
  ///   w = twiddles[j*step], conjugated when `inverse`
  ///   v = data[base+j+len/2] * w   (re = xr*wr - xi*wi, im = xr*wi + xi*wr,
  ///                                 every product rounded separately, no FMA)
  ///   data[base+j]       = u + v
  ///   data[base+j+len/2] = u - v
  /// Backends vectorize across adjacent j (u/v loads are contiguous complex
  /// pairs once len >= 4) and share the identical per-butterfly rounding
  /// sequence, so transforms are bit-identical across backends.
  void (*radix2_pass)(double* data, const double* twiddles, std::size_t n,
                      std::size_t len, std::size_t step, bool inverse);

  /// Fused member pass of the matrix-free shape-extraction matvec. For each
  /// row r in [0, num_rows) of the contiguous row-major pool `rows` (row r
  /// at rows + r*m), in increasing r:
  ///   d      = Σ_j rows[r*m+j] * u[j]   (the fixed 4-lane dot contract)
  ///   out[j] += d * rows[r*m+j]          (the elementwise axpy contract)
  /// Each row's axpy completes before the next row's dot, so the per-element
  /// accumulation order over rows is the plain sequential row order — one
  /// rounding per (row, element) pair, identical in every backend. `out` is
  /// accumulated into, not overwritten; `out` and `u` may not alias `rows`.
  void (*dot_axpy_rows)(const double* rows, std::size_t num_rows,
                        std::size_t m, const double* u, double* out);
};

/// The portable reference backend (plain C++, compiled without
/// auto-vectorization so benchmarks measure a true scalar baseline).
const KernelTable& ScalarKernels();

/// The x86 AVX2+FMA backend, or nullptr when the binary was built without it
/// or the CPU lacks AVX2/FMA. (FMA presence is part of the dispatch gate even
/// though the kernels never fuse — it keeps the backend set predictable on
/// every AVX2-era machine.)
const KernelTable* Avx2Kernels();

}  // namespace kshape::simd

#endif  // KSHAPE_SIMD_KERNELS_H_
