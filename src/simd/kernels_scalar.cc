// Portable reference backend. Every reduction walks the fixed 4-lane virtual
// accumulator explicitly (see KernelTable in kernels.h): lane l sums indices
// i ≡ l (mod 4), tails land in lane i mod 4, and the final combine is always
// (lane0 + lane1) + (lane2 + lane3). The vector backends realize the same
// arithmetic sequence with one register, which is what makes the backends
// bit-identical. This translation unit compiles with -ffp-contract=off and
// -fno-tree-vectorize (see src/simd/CMakeLists.txt): no fused multiply-adds,
// and benchmarks against it measure a true scalar baseline.

#include "simd/kernels.h"

#include <cstdint>
#include <limits>
#include <vector>

namespace kshape::simd {

namespace {

inline double Reduce4(const double acc[4]) {
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

double SumScalar(const double* x, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[0] += x[i];
    acc[1] += x[i + 1];
    acc[2] += x[i + 2];
    acc[3] += x[i + 3];
  }
  for (; i < n; ++i) acc[i & 3] += x[i];
  return Reduce4(acc);
}

double SumSquaresScalar(const double* x, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[0] += x[i] * x[i];
    acc[1] += x[i + 1] * x[i + 1];
    acc[2] += x[i + 2] * x[i + 2];
    acc[3] += x[i + 3] * x[i + 3];
  }
  for (; i < n; ++i) acc[i & 3] += x[i] * x[i];
  return Reduce4(acc);
}

MeanVar MeanVarScalar(const double* x, std::size_t n) {
  MeanVar mv;
  mv.mean = SumScalar(x, n) / static_cast<double>(n);
  const double mu = mv.mean;
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i] - mu;
    const double d1 = x[i + 1] - mu;
    const double d2 = x[i + 2] - mu;
    const double d3 = x[i + 3] - mu;
    acc[0] += d0 * d0;
    acc[1] += d1 * d1;
    acc[2] += d2 * d2;
    acc[3] += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = x[i] - mu;
    acc[i & 3] += d * d;
  }
  mv.variance = Reduce4(acc) / static_cast<double>(n);
  return mv;
}

double DotScalar(const double* x, const double* y, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc[0] += x[i] * y[i];
    acc[1] += x[i + 1] * y[i + 1];
    acc[2] += x[i + 2] * y[i + 2];
    acc[3] += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) acc[i & 3] += x[i] * y[i];
  return Reduce4(acc);
}

double SquaredEdScalar(const double* x, const double* y, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i] - y[i];
    const double d1 = x[i + 1] - y[i + 1];
    const double d2 = x[i + 2] - y[i + 2];
    const double d3 = x[i + 3] - y[i + 3];
    acc[0] += d0 * d0;
    acc[1] += d1 * d1;
    acc[2] += d2 * d2;
    acc[3] += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    acc[i & 3] += d * d;
  }
  return Reduce4(acc);
}

double SquaredEdAbandonScalar(const double* x, const double* y, std::size_t n,
                              double threshold) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  // Fixed 16-element checkpoint cadence shared by every backend: the running
  // 4-lane total is compared (not fed back), so an abandoning call returns
  // the identical partial sum regardless of backend.
  while (i + 16 <= n) {
    const std::size_t stop = i + 16;
    for (; i < stop; i += 4) {
      const double d0 = x[i] - y[i];
      const double d1 = x[i + 1] - y[i + 1];
      const double d2 = x[i + 2] - y[i + 2];
      const double d3 = x[i + 3] - y[i + 3];
      acc[0] += d0 * d0;
      acc[1] += d1 * d1;
      acc[2] += d2 * d2;
      acc[3] += d3 * d3;
    }
    const double total = Reduce4(acc);
    if (total >= threshold) return total;
  }
  for (; i + 4 <= n; i += 4) {
    const double d0 = x[i] - y[i];
    const double d1 = x[i + 1] - y[i + 1];
    const double d2 = x[i + 2] - y[i + 2];
    const double d3 = x[i + 3] - y[i + 3];
    acc[0] += d0 * d0;
    acc[1] += d1 * d1;
    acc[2] += d2 * d2;
    acc[3] += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = x[i] - y[i];
    acc[i & 3] += d * d;
  }
  return Reduce4(acc);
}

double LbKeoghSquaredScalar(const double* c, const double* lower,
                            const double* upper, std::size_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  // Per element: du = max(c-upper, 0), dl = max(lower-c, 0); exactly one of
  // the two squares is nonzero outside the envelope, both are +0 inside, so
  // acc += (du*du + dl*dl) adds the same value the branching legacy loop did.
  auto term = [&](std::size_t k) {
    double du = c[k] - upper[k];
    du = du > 0.0 ? du : 0.0;
    double dl = lower[k] - c[k];
    dl = dl > 0.0 ? dl : 0.0;
    return du * du + dl * dl;
  };
  for (; i + 4 <= n; i += 4) {
    acc[0] += term(i);
    acc[1] += term(i + 1);
    acc[2] += term(i + 2);
    acc[3] += term(i + 3);
  }
  for (; i < n; ++i) acc[i & 3] += term(i);
  return Reduce4(acc);
}

void ComplexMulConjScalar(const double* a, const double* b, double* out,
                          std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a[2 * k];
    const double ai = a[2 * k + 1];
    const double br = b[2 * k];
    const double bi = b[2 * k + 1];
    out[2 * k] = ar * br + ai * bi;
    out[2 * k + 1] = ai * br - ar * bi;
  }
}

void ComplexMulConjSoaScalar(const double* a_re, const double* a_im,
                             const double* b_re, const double* b_im,
                             double* out_re, double* out_im, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ar = a_re[k];
    const double ai = a_im[k];
    const double br = b_re[k];
    const double bi = b_im[k];
    out_re[k] = ar * br + ai * bi;
    out_im[k] = ai * br - ar * bi;
  }
}

Peak PeakScanScalar(const double* x, std::size_t n) {
  // Lane l starts from its first element x[l] (index l) and keeps the lowest
  // index of its lane maximum under a strict-greater scan; lanes past the end
  // of a short input can never win the combine.
  double bv[4];
  std::size_t bi[4];
  const std::size_t lead = n < 4 ? n : 4;
  for (std::size_t l = 0; l < 4; ++l) {
    bv[l] = l < lead ? x[l] : -std::numeric_limits<double>::infinity();
    bi[l] = l < lead ? l : std::numeric_limits<std::size_t>::max();
  }
  std::size_t i = 4;
  for (; i + 4 <= n; i += 4) {
    for (std::size_t l = 0; l < 4; ++l) {
      if (x[i + l] > bv[l]) {
        bv[l] = x[i + l];
        bi[l] = i + l;
      }
    }
  }
  for (; i < n; ++i) {
    const std::size_t l = i & 3;
    if (x[i] > bv[l]) {
      bv[l] = x[i];
      bi[l] = i;
    }
  }
  Peak peak;
  peak.value = bv[0];
  peak.index = bi[0];
  for (std::size_t l = 1; l < 4; ++l) {
    if (bv[l] > peak.value ||
        (bv[l] == peak.value && bi[l] < peak.index)) {
      peak.value = bv[l];
      peak.index = bi[l];
    }
  }
  return peak;
}

void AxpyScalar(double a, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void ScaleScalar(double* x, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

void ApplyZNormScalar(double* x, std::size_t n, double mean,
                      double inv_stddev) {
  for (std::size_t i = 0; i < n; ++i) x[i] = (x[i] - mean) * inv_stddev;
}

void DtwRowScalar(const double* prev_jm1, const double* y_jm1, double xi,
                  double left_seed, double* cur, std::size_t count) {
  // Fused form of the banded recurrence; per element every operation is a
  // single rounding (or exact, for min), so the split precompute+combine the
  // vector backends use produces the identical row.
  double left = left_seed;
  for (std::size_t t = 0; t < count; ++t) {
    const double d = xi - y_jm1[t];
    const double e =
        prev_jm1[t] < prev_jm1[t + 1] ? prev_jm1[t] : prev_jm1[t + 1];
    const double best = e < left ? e : left;
    left = d * d + best;
    cur[t] = left;
  }
}

double AbsProductPartialSumsScalar(const double* a_mag, const double* b_mag,
                                   const double* a_tail, const double* b_tail,
                                   std::size_t n, double threshold) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t i = 0;
  // The squared_ed_abandon cadence: a horizontal reduce every 16 elements,
  // compared (never fed back), so both exits return the identical value in
  // every backend. Exit order is fixed by the KernelTable contract: the
  // cannot-abandon check first, then the Cauchy–Schwarz abandon bound.
  while (i + 16 <= n) {
    const std::size_t stop = i + 16;
    for (; i < stop; i += 4) {
      acc[0] += a_mag[i] * b_mag[i];
      acc[1] += a_mag[i + 1] * b_mag[i + 1];
      acc[2] += a_mag[i + 2] * b_mag[i + 2];
      acc[3] += a_mag[i + 3] * b_mag[i + 3];
    }
    const double total = Reduce4(acc);
    if (total >= threshold) return total;
    const double bound = total + a_tail[i / 16] * b_tail[i / 16];
    if (bound < threshold) return bound;
  }
  for (; i + 4 <= n; i += 4) {
    acc[0] += a_mag[i] * b_mag[i];
    acc[1] += a_mag[i + 1] * b_mag[i + 1];
    acc[2] += a_mag[i + 2] * b_mag[i + 2];
    acc[3] += a_mag[i + 3] * b_mag[i + 3];
  }
  for (; i < n; ++i) acc[i & 3] += a_mag[i] * b_mag[i];
  return Reduce4(acc);
}

void Radix2PassScalar(double* data, const double* twiddles, std::size_t n,
                      std::size_t len, std::size_t step, bool inverse) {
  const std::size_t half = len / 2;
  for (std::size_t base = 0; base < n; base += len) {
    for (std::size_t j = 0; j < half; ++j) {
      const std::size_t tw = 2 * (j * step);
      const double wr = twiddles[tw];
      const double wi = inverse ? -twiddles[tw + 1] : twiddles[tw + 1];
      const std::size_t lo = 2 * (base + j);
      const std::size_t hi = 2 * (base + j + half);
      const double ur = data[lo];
      const double ui = data[lo + 1];
      const double xr = data[hi];
      const double xi = data[hi + 1];
      const double vr = xr * wr - xi * wi;
      const double vi = xr * wi + xi * wr;
      data[lo] = ur + vr;
      data[lo + 1] = ui + vi;
      data[hi] = ur - vr;
      data[hi + 1] = ui - vi;
    }
  }
}

void DotAxpyRowsScalar(const double* rows, std::size_t num_rows,
                       std::size_t m, const double* u, double* out) {
  // Composition of the dot and axpy kernels per row: the dot walks the fixed
  // 4-lane accumulator, the axpy is elementwise, and both touch the row while
  // it is hot in cache — the "fused" in the name is a locality fusion, not an
  // arithmetic one (the axpy needs the finished dot).
  for (std::size_t r = 0; r < num_rows; ++r) {
    const double* x = rows + r * m;
    const double d = DotScalar(x, u, m);
    AxpyScalar(d, x, out, m);
  }
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      "scalar",
      SumScalar,
      SumSquaresScalar,
      MeanVarScalar,
      DotScalar,
      SquaredEdScalar,
      SquaredEdAbandonScalar,
      LbKeoghSquaredScalar,
      ComplexMulConjScalar,
      ComplexMulConjSoaScalar,
      PeakScanScalar,
      AxpyScalar,
      ScaleScalar,
      ApplyZNormScalar,
      DtwRowScalar,
      AbsProductPartialSumsScalar,
      Radix2PassScalar,
      DotAxpyRowsScalar,
  };
  return table;
}

}  // namespace kshape::simd
