#ifndef KSHAPE_SIMD_DISPATCH_H_
#define KSHAPE_SIMD_DISPATCH_H_

#include <cstddef>
#include <span>

#include "simd/kernels.h"

namespace kshape::simd {

/// Kernel backends selectable at runtime.
enum class Backend {
  kScalar,
  kAvx2,
};

/// The active kernel table. Resolved once, on first use:
///  - `KSHAPE_SIMD=scalar` forces the reference backend;
///  - `KSHAPE_SIMD=avx2` forces the AVX2 backend (aborts if the binary or the
///    CPU does not support it — a forced backend silently falling back would
///    defeat the point of forcing it);
///  - unset: the best backend the CPU supports (CPUID), scalar otherwise.
/// All backends produce bit-identical results (see KernelTable), so the
/// selection affects throughput only.
const KernelTable& Active();

/// Which backend Active() resolved to.
Backend ActiveBackend();

/// Name of the active backend ("scalar", "avx2").
const char* ActiveBackendName();

/// True when the AVX2 backend is compiled in and the CPU supports AVX2+FMA.
bool Avx2Available();

/// Replaces the active backend for the rest of the process. For tests and
/// benchmarks that compare backends within one run; aborts if the requested
/// backend is unavailable. Call from a single thread, before or between (not
/// during) parallel regions.
void SetBackendForTesting(Backend backend);

/// Table lookup by backend (aborts if unavailable). Lets tests and
/// benchmarks drive a specific backend without changing the process-wide
/// dispatch state.
const KernelTable& Kernels(Backend backend);

// ---------------------------------------------------------------------------
// Convenience wrappers over the active table. Span overloads assert nothing:
// callers own the length/emptiness contracts documented in KernelTable.
// ---------------------------------------------------------------------------

inline double Sum(std::span<const double> x) {
  return Active().sum(x.data(), x.size());
}

inline double SumSquares(std::span<const double> x) {
  return Active().sum_squares(x.data(), x.size());
}

inline MeanVar MeanVariance(std::span<const double> x) {
  return Active().mean_var(x.data(), x.size());
}

inline double Dot(std::span<const double> x, std::span<const double> y) {
  return Active().dot(x.data(), y.data(), x.size());
}

inline double SquaredEd(std::span<const double> x,
                        std::span<const double> y) {
  return Active().squared_ed(x.data(), y.data(), x.size());
}

inline double SquaredEdAbandon(std::span<const double> x,
                               std::span<const double> y, double threshold) {
  return Active().squared_ed_abandon(x.data(), y.data(), x.size(), threshold);
}

inline double LbKeoghSquared(std::span<const double> candidate,
                             std::span<const double> lower,
                             std::span<const double> upper) {
  return Active().lb_keogh_squared(candidate.data(), lower.data(),
                                   upper.data(), candidate.size());
}

inline void ComplexMulConjSoa(std::span<const double> a_re,
                              std::span<const double> a_im,
                              std::span<const double> b_re,
                              std::span<const double> b_im,
                              std::span<double> out_re,
                              std::span<double> out_im) {
  Active().complex_mul_conj_soa(a_re.data(), a_im.data(), b_re.data(),
                                b_im.data(), out_re.data(), out_im.data(),
                                a_re.size());
}

inline Peak PeakScan(std::span<const double> x) {
  return Active().peak_scan(x.data(), x.size());
}

inline void Axpy(double a, std::span<const double> x, std::span<double> y) {
  Active().axpy(a, x.data(), y.data(), x.size());
}

inline void Scale(std::span<double> x, double s) {
  Active().scale(x.data(), s, x.size());
}

inline void ApplyZNorm(std::span<double> x, double mean, double inv_stddev) {
  Active().apply_znorm(x.data(), x.size(), mean, inv_stddev);
}

inline void DtwRow(const double* prev_jm1, const double* y_jm1, double xi,
                   double left_seed, double* cur, std::size_t count) {
  Active().dtw_row(prev_jm1, y_jm1, xi, left_seed, cur, count);
}

inline double AbsProductPartialSums(std::span<const double> a_mag,
                                    std::span<const double> b_mag,
                                    std::span<const double> a_tail,
                                    std::span<const double> b_tail,
                                    double threshold) {
  return Active().abs_product_partial_sums(a_mag.data(), b_mag.data(),
                                           a_tail.data(), b_tail.data(),
                                           a_mag.size(), threshold);
}

inline void Radix2Pass(double* data, const double* twiddles, std::size_t n,
                       std::size_t len, std::size_t step, bool inverse) {
  Active().radix2_pass(data, twiddles, n, len, step, inverse);
}

inline void DotAxpyRows(const double* rows, std::size_t num_rows,
                        std::size_t m, std::span<const double> u,
                        std::span<double> out) {
  Active().dot_axpy_rows(rows, num_rows, m, u.data(), out.data());
}

}  // namespace kshape::simd

#endif  // KSHAPE_SIMD_DISPATCH_H_
