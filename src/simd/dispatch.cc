#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace kshape::simd {

namespace {

// The active table, resolved lazily. A racing first use resolves the same
// pointer on every thread (the resolution is a pure function of the
// environment and CPUID), so the relaxed double-resolve is benign.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* Resolve() {
  const char* env = std::getenv("KSHAPE_SIMD");
  if (env != nullptr && *env != '\0') {
    if (std::strcmp(env, "scalar") == 0) return &ScalarKernels();
    if (std::strcmp(env, "avx2") == 0) {
      const KernelTable* avx2 = Avx2Kernels();
      KSHAPE_CHECK_MSG(avx2 != nullptr,
                       "KSHAPE_SIMD=avx2 requested but the AVX2 backend is "
                       "not available (not compiled in, or the CPU lacks "
                       "AVX2/FMA)");
      return avx2;
    }
    KSHAPE_CHECK_MSG(false, "KSHAPE_SIMD must be 'scalar' or 'avx2'");
  }
  const KernelTable* avx2 = Avx2Kernels();
  return avx2 != nullptr ? avx2 : &ScalarKernels();
}

}  // namespace

const KernelTable& Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = Resolve();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

Backend ActiveBackend() {
  return &Active() == &ScalarKernels() ? Backend::kScalar : Backend::kAvx2;
}

const char* ActiveBackendName() { return Active().name; }

bool Avx2Available() { return Avx2Kernels() != nullptr; }

void SetBackendForTesting(Backend backend) {
  g_active.store(&Kernels(backend), std::memory_order_release);
}

const KernelTable& Kernels(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return ScalarKernels();
    case Backend::kAvx2: {
      const KernelTable* avx2 = Avx2Kernels();
      KSHAPE_CHECK_MSG(avx2 != nullptr, "AVX2 backend unavailable");
      return *avx2;
    }
  }
  KSHAPE_CHECK_MSG(false, "unknown simd backend");
  return ScalarKernels();
}

}  // namespace kshape::simd
