// A fitted clustering model as a first-class, serializable artifact.
//
// The paper's headline claim is that k-Shape centroids are compact,
// domain-independent prototypes; FittedModel makes that operational: every
// centroid-producing ClusteringAlgorithm emits one (ClusteringResult::model),
// it round-trips through a versioned binary format (*.kmodel), and scoring —
// batch Predict() or incremental OnlineScorer ingestion — runs against the
// frozen centroids through the same Assigner scan the fit used.
//
// Binary format (single file, native-endian like the shard files — a
// machine-local artifact, not a wire format):
//
//   offset  size  field
//        0     8  magic "KSHMODEL"
//        8     4  u32 format version (1; KSHAPE_MODEL_V overrides the stamp)
//       12     4  u32 header bytes (= 160, validated on load)
//       16     8  u64 k
//       24     8  u64 m
//       32     4  u32 fingerprint: half_spectrum (0/1)
//       36     4  u32 fingerprint: pruning (0/1)
//       40     4  u32 fingerprint: length policy (tseries::LengthPolicy)
//       44     4  u32 fingerprint: missing policy (tseries::MissingPolicy)
//       48     8  i64 telemetry: iterations
//       56     4  u32 telemetry: converged (0/1)
//       60     4  u32 reserved (0)
//       64     8  i64 telemetry: empty_cluster_reseeds
//       72     8  i64 telemetry: degenerate_centroids
//       80     8  i64 telemetry: distances_computed
//       88     8  i64 telemetry: distances_pruned_bounds
//       96     8  i64 telemetry: distances_abandoned_partial
//      104     8  i64 telemetry: sampled_series
//      112    48  method name, NUL-padded
//      160  8km  centroid rows, k × m doubles, row-major
//
// Model files are untrusted input, so loading follows the sharded-store
// idiom: Status-returning Load/Validate with exact-size, range, and
// finiteness checks — a truncated, ragged, version-skewed, or corrupted file
// becomes an error, never an abort or an out-of-bounds read.
//
// Fingerprint semantics: the fingerprint records the configuration the model
// was FITTED under (spectrum layout, pruning, conditioning policies). It is
// diagnostic, not load-bearing: Predict() follows the current process gates,
// and the bit-identity contract (tests/fitted_model_test.cc) guarantees
// labels cannot depend on either side's gate settings. CheckFingerprint()
// reports divergence for callers that want fit-time parity (e.g. telemetry
// comparisons, which DO depend on the gates).

#ifndef KSHAPE_MODEL_FITTED_MODEL_H_
#define KSHAPE_MODEL_FITTED_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "model/assigner.h"
#include "tseries/conditioning.h"
#include "tseries/time_series.h"

namespace kshape::model {

/// Current *.kmodel format version. Save() stamps this (or the
/// KSHAPE_MODEL_V override, for version-skew testing); Load() accepts
/// exactly this.
constexpr std::uint32_t kModelFormatVersion = 1;

/// The process-wide KSHAPE_MODEL_V override: the version stamp Save()
/// writes. Unset means kModelFormatVersion.
std::uint32_t ModelFormatVersionStamp();

/// Test hooks for the version-skew matrix.
void SetModelFormatVersionStampForTesting(std::uint32_t version);
void ResetModelFormatVersionStampForTesting();

/// The configuration a model was fitted under.
struct ModelFingerprint {
  bool half_spectrum = true;
  bool pruning = true;
  tseries::LengthPolicy length_policy = tseries::LengthPolicy::kReject;
  tseries::MissingPolicy missing_policy = tseries::MissingPolicy::kReject;
};

/// Telemetry snapshot of the fit that produced the model.
struct FitTelemetry {
  std::int64_t iterations = 0;
  bool converged = false;
  std::int64_t empty_cluster_reseeds = 0;
  std::int64_t degenerate_centroids = 0;
  std::int64_t distances_computed = 0;
  std::int64_t distances_pruned_bounds = 0;
  std::int64_t distances_abandoned_partial = 0;
  std::int64_t sampled_series = 0;
};

class FittedModel {
 public:
  /// Empty model (no centroids). Methods that never produce centroids
  /// (hierarchical, spectral) leave ClusteringResult::model in this state.
  FittedModel() = default;

  /// Builds a model from fit outputs. Centroids must be non-empty,
  /// equal-length, finite rows; aborts otherwise (fit outputs are trusted —
  /// untrusted bytes go through Load).
  FittedModel(std::vector<tseries::Series> centroids,
              ModelFingerprint fingerprint, FitTelemetry telemetry,
              std::string method);

  bool empty() const { return centroids_.empty(); }
  std::size_t k() const { return centroids_.size(); }
  std::size_t m() const { return centroids_.empty() ? 0 : centroids_.length(); }
  const tseries::SeriesStore& centroids() const { return centroids_; }
  tseries::SeriesView centroid(std::size_t j) const { return centroids_[j]; }
  const ModelFingerprint& fingerprint() const { return fingerprint_; }
  const FitTelemetry& telemetry() const { return telemetry_; }
  const std::string& method() const { return method_; }

  /// Mints the centroid spectra (+ bound planes when `bound_planes`) in the
  /// requested layout — the precomputed-spectra half of the serving path.
  /// Deterministic per configuration, so queries minted after save→load are
  /// bit-identical to queries minted from the in-memory model.
  std::vector<core::SbdEngine::Query> CentroidQueries(bool half_spectrum,
                                                      bool bound_planes) const;

  /// Writes the model to `path` (*.kmodel). IoError on filesystem failure.
  common::Status Save(const std::string& path) const;

  /// Reads and validates a model file. The inverse of Save: magic, version,
  /// header geometry, exact file size, field ranges, and centroid finiteness
  /// are all checked before any value is trusted.
  static common::StatusOr<FittedModel> Load(const std::string& path);

  /// FailedPrecondition when the current process gates diverge from the
  /// fingerprint (labels are unaffected by construction; telemetry and
  /// performance are not).
  common::Status CheckFingerprint() const;

 private:
  tseries::SeriesStore centroids_;
  ModelFingerprint fingerprint_;
  FitTelemetry telemetry_;
  std::string method_;
};

/// Batch scoring result.
struct PredictResult {
  std::vector<int> labels;
  std::vector<double> distances;  // SBD to the winning centroid
  AssignmentIterationStats stats;
};

/// Assigns every series of `batch` to its nearest model centroid — the
/// assignment step of the fit, run once against frozen centroids. Builds a
/// spectrum-cache engine over the batch (one forward FFT per series), mints
/// the centroid queries, and runs the Assigner scan with spectral early
/// abandoning under the current process gates. Labels are bit-identical
/// across thread counts, SIMD backends, spectrum layouts, and prune gates,
/// and across save→load (enforced by tests/fitted_model_test.cc).
/// Aborts on length mismatch or an empty model; TryPredict is the Status
/// boundary for untrusted input.
PredictResult Predict(const FittedModel& model,
                      const tseries::SeriesBatch& batch);

/// Status-returning boundary: rejects empty models, empty batches, length
/// mismatches, and non-finite values instead of aborting.
common::StatusOr<PredictResult> TryPredict(const FittedModel& model,
                                           const tseries::SeriesBatch& batch);

struct OnlineScorerOptions {
  /// An ingested series whose winning SBD exceeds this counts as drifted
  /// (poorly explained by every frozen centroid). SBD ranges over [0, 2];
  /// 1.0 is the uncorrelated-shapes midpoint.
  double drift_distance = 1.0;
  /// Flag a refresh once this many ingested series drifted. 0 = never.
  std::size_t refresh_after_drifted = 0;
  /// Flag a refresh once this many series were ingested. 0 = never.
  std::size_t refresh_after_ingested = 0;
};

/// Incremental ingestion against frozen centroids: the serving half of the
/// fit/predict split. Appends each series to a locked-length SeriesStore,
/// assigns it with the same Assigner scan as Predict (bit-identical labels),
/// and keeps drift counters that flag when a mini-batch centroid refresh is
/// due. Centroid queries are minted once at construction (the fit-once/
/// predict-many hot path spends one forward FFT + k inverse transforms per
/// ingested series).
///
/// Not thread-safe: like the sharded store's Acquire, this is a
/// coordinator-thread object; the scan inside still fans out on the pool.
class OnlineScorer {
 public:
  /// `model` must be non-empty and outlive the scorer.
  explicit OnlineScorer(const FittedModel* model,
                        OnlineScorerOptions options = OnlineScorerOptions{});

  struct Ingested {
    int label = 0;
    double distance = 0.0;
    bool drifted = false;
  };

  /// Appends + scores one series. Aborts on a length mismatch (the store's
  /// locked-length contract); TryIngest is the Status boundary.
  Ingested Ingest(tseries::SeriesView series);
  common::StatusOr<Ingested> TryIngest(tseries::SeriesView series);

  /// Everything ingested so far (locked to the model's m), with labels
  /// parallel to the rows.
  const tseries::SeriesStore& store() const { return store_; }
  const std::vector<int>& labels() const { return labels_; }

  std::size_t ingested() const { return labels_.size(); }
  std::size_t drifted() const { return drifted_; }

  /// True once either refresh threshold tripped: time to refit (e.g. via
  /// MiniBatchKShape over store()) and swap the model in.
  bool refresh_due() const;

  /// Swaps in a refreshed model (same m; k may differ) and resets the
  /// ingestion/drift counters. The accumulated store is kept — the caller
  /// decides what corpus the refit used.
  void SwapModel(const FittedModel* model);

  /// Cumulative scan telemetry across all ingests.
  const AssignmentIterationStats& stats() const { return stats_; }

 private:
  const FittedModel* model_;
  OnlineScorerOptions options_;
  std::vector<tseries::Series> centroid_rows_;
  Assigner assigner_;
  // Gate settings resolved at construction (and SwapModel): every per-ingest
  // engine must match the configuration the frozen queries were minted in.
  bool half_ = true;
  bool pruning_ = true;
  tseries::SeriesStore store_;
  std::vector<int> labels_;
  std::size_t drifted_ = 0;
  std::size_t ingested_since_swap_ = 0;
  AssignmentIterationStats stats_;
};

}  // namespace kshape::model

#endif  // KSHAPE_MODEL_FITTED_MODEL_H_
