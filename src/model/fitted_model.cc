#include "model/fitted_model.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/env_gate.h"
#include "core/sbd_engine.h"
#include "fft/fft.h"
#include "fft/rfft.h"

namespace kshape::model {

namespace {

constexpr char kMagic[8] = {'K', 'S', 'H', 'M', 'O', 'D', 'E', 'L'};
constexpr std::uint32_t kHeaderBytes = 160;
constexpr std::size_t kMethodBytes = 48;
// Far above any plausible model, far below anything that could overflow the
// size arithmetic: the header fields are untrusted, so both k and m are
// range-checked before k*m*8 is ever formed.
constexpr std::uint64_t kMaxK = 1u << 20;
constexpr std::uint64_t kMaxM = 1u << 28;

common::EnvIntOverride g_model_version{"KSHAPE_MODEL_V",
                                       kModelFormatVersion};

// The fixed-size on-disk header. Plain scalar fields only; the layout is
// pinned by the static_asserts below and documented in fitted_model.h.
struct ModelHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t header_bytes;
  std::uint64_t k;
  std::uint64_t m;
  std::uint32_t half_spectrum;
  std::uint32_t pruning;
  std::uint32_t length_policy;
  std::uint32_t missing_policy;
  std::int64_t iterations;
  std::uint32_t converged;
  std::uint32_t reserved0;
  std::int64_t empty_cluster_reseeds;
  std::int64_t degenerate_centroids;
  std::int64_t distances_computed;
  std::int64_t distances_pruned_bounds;
  std::int64_t distances_abandoned_partial;
  std::int64_t sampled_series;
  char method[kMethodBytes];
};
static_assert(sizeof(ModelHeader) == kHeaderBytes,
              "the *.kmodel header layout is part of the format");
static_assert(offsetof(ModelHeader, iterations) == 48, "layout drift");
static_assert(offsetof(ModelHeader, method) == 112, "layout drift");

common::Status Corrupt(const std::string& path, const std::string& what) {
  return common::Status::InvalidArgument(path + ": " + what);
}

}  // namespace

std::uint32_t ModelFormatVersionStamp() {
  return static_cast<std::uint32_t>(g_model_version.value());
}

void SetModelFormatVersionStampForTesting(std::uint32_t version) {
  g_model_version.SetForTesting(version);
}

void ResetModelFormatVersionStampForTesting() {
  g_model_version.ResetForTesting();
}

FittedModel::FittedModel(std::vector<tseries::Series> centroids,
                         ModelFingerprint fingerprint, FitTelemetry telemetry,
                         std::string method)
    : fingerprint_(fingerprint),
      telemetry_(telemetry),
      method_(std::move(method)) {
  KSHAPE_CHECK_MSG(!centroids.empty(), "a fitted model needs >= 1 centroid");
  KSHAPE_CHECK(!centroids.front().empty());
  centroids_.Reserve(centroids.size(), centroids.front().size());
  for (const tseries::Series& c : centroids) {
    for (const double v : c) KSHAPE_CHECK(std::isfinite(v));
    centroids_.Append(c);
  }
  if (method_.size() >= kMethodBytes) method_.resize(kMethodBytes - 1);
}

std::vector<core::SbdEngine::Query> FittedModel::CentroidQueries(
    bool half_spectrum, bool bound_planes) const {
  KSHAPE_CHECK(!empty());
  const std::size_t fft_len = fft::NextPowerOfTwo(2 * m() - 1);
  std::vector<core::SbdEngine::Query> queries;
  queries.reserve(k());
  for (std::size_t j = 0; j < k(); ++j) {
    queries.push_back(core::SbdEngine::MakeQueryFor(
        centroids_[j], m(), fft_len, half_spectrum, bound_planes));
  }
  return queries;
}

common::Status FittedModel::Save(const std::string& path) const {
  if (empty()) {
    return common::Status::FailedPrecondition(
        "cannot save an empty FittedModel");
  }
  ModelHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = ModelFormatVersionStamp();
  header.header_bytes = kHeaderBytes;
  header.k = k();
  header.m = m();
  header.half_spectrum = fingerprint_.half_spectrum ? 1 : 0;
  header.pruning = fingerprint_.pruning ? 1 : 0;
  header.length_policy = static_cast<std::uint32_t>(fingerprint_.length_policy);
  header.missing_policy =
      static_cast<std::uint32_t>(fingerprint_.missing_policy);
  header.iterations = telemetry_.iterations;
  header.converged = telemetry_.converged ? 1 : 0;
  header.empty_cluster_reseeds = telemetry_.empty_cluster_reseeds;
  header.degenerate_centroids = telemetry_.degenerate_centroids;
  header.distances_computed = telemetry_.distances_computed;
  header.distances_pruned_bounds = telemetry_.distances_pruned_bounds;
  header.distances_abandoned_partial = telemetry_.distances_abandoned_partial;
  header.sampled_series = telemetry_.sampled_series;
  std::memcpy(header.method, method_.c_str(),
              std::min(method_.size() + 1, kMethodBytes - 1));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    return common::Status::IoError("cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(reinterpret_cast<const char*>(centroids_.data()),
            static_cast<std::streamsize>(k() * m() * sizeof(double)));
  out.close();
  if (!out.good()) {
    return common::Status::IoError("short write on " + path);
  }
  return common::Status::OK();
}

common::StatusOr<FittedModel> FittedModel::Load(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t actual_size = std::filesystem::file_size(path, ec);
  if (ec) {
    return common::Status::NotFound("no model file at " + path + ": " +
                                    ec.message());
  }
  if (actual_size < kHeaderBytes) {
    return Corrupt(path, "file shorter than the header (" +
                             std::to_string(actual_size) + " bytes)");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return common::Status::IoError("cannot open " + path);
  }
  ModelHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in.good()) {
    return common::Status::IoError("short read on " + path);
  }
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "unrecognized magic (not a *.kmodel file)");
  }
  if (header.version != kModelFormatVersion) {
    return Corrupt(path, "unsupported format version " +
                             std::to_string(header.version) +
                             " (this build reads v" +
                             std::to_string(kModelFormatVersion) + ")");
  }
  if (header.header_bytes != kHeaderBytes) {
    return Corrupt(path, "header geometry mismatch");
  }
  if (header.k < 1 || header.k > kMaxK) {
    return Corrupt(path, "k out of range: " + std::to_string(header.k));
  }
  if (header.m < 1 || header.m > kMaxM) {
    return Corrupt(path, "m out of range: " + std::to_string(header.m));
  }
  const std::uintmax_t expected_size =
      kHeaderBytes + static_cast<std::uintmax_t>(header.k) * header.m *
                         sizeof(double);
  if (actual_size != expected_size) {
    return Corrupt(path, "holds " + std::to_string(actual_size) +
                             " bytes, expected " +
                             std::to_string(expected_size) +
                             " (truncated or ragged centroid block)");
  }
  if (header.half_spectrum > 1 || header.pruning > 1 ||
      header.converged > 1) {
    return Corrupt(path, "boolean field out of range");
  }
  if (header.length_policy >
          static_cast<std::uint32_t>(tseries::LengthPolicy::kResample) ||
      header.missing_policy >
          static_cast<std::uint32_t>(tseries::MissingPolicy::kMeanFill)) {
    return Corrupt(path, "conditioning policy out of range");
  }
  if (header.method[kMethodBytes - 1] != '\0') {
    return Corrupt(path, "method name not NUL-terminated");
  }

  FittedModel model;
  model.fingerprint_.half_spectrum = header.half_spectrum != 0;
  model.fingerprint_.pruning = header.pruning != 0;
  model.fingerprint_.length_policy =
      static_cast<tseries::LengthPolicy>(header.length_policy);
  model.fingerprint_.missing_policy =
      static_cast<tseries::MissingPolicy>(header.missing_policy);
  model.telemetry_.iterations = header.iterations;
  model.telemetry_.converged = header.converged != 0;
  model.telemetry_.empty_cluster_reseeds = header.empty_cluster_reseeds;
  model.telemetry_.degenerate_centroids = header.degenerate_centroids;
  model.telemetry_.distances_computed = header.distances_computed;
  model.telemetry_.distances_pruned_bounds = header.distances_pruned_bounds;
  model.telemetry_.distances_abandoned_partial =
      header.distances_abandoned_partial;
  model.telemetry_.sampled_series = header.sampled_series;
  model.method_ = header.method;

  const std::size_t k = static_cast<std::size_t>(header.k);
  const std::size_t m = static_cast<std::size_t>(header.m);
  model.centroids_.Reserve(k, m);
  std::vector<double> row(m);
  for (std::size_t j = 0; j < k; ++j) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(m * sizeof(double)));
    if (!in.good()) {
      return common::Status::IoError("short read on " + path);
    }
    for (const double v : row) {
      if (!std::isfinite(v)) {
        return Corrupt(path, "centroid " + std::to_string(j) +
                                 " contains a non-finite value");
      }
    }
    model.centroids_.Append(row);
  }
  return model;
}

common::Status FittedModel::CheckFingerprint() const {
  if (empty()) {
    return common::Status::FailedPrecondition("empty model");
  }
  const bool half_now = fft::HalfSpectrumEnabled();
  const bool prune_now = core::PruningEnabled();
  if (fingerprint_.half_spectrum != half_now) {
    return common::Status::FailedPrecondition(
        "model fitted with half_spectrum=" +
        std::string(fingerprint_.half_spectrum ? "on" : "off") +
        " but the process gate is " + (half_now ? "on" : "off"));
  }
  if (fingerprint_.pruning != prune_now) {
    return common::Status::FailedPrecondition(
        "model fitted with pruning=" +
        std::string(fingerprint_.pruning ? "on" : "off") +
        " but the process gate is " + (prune_now ? "on" : "off"));
  }
  return common::Status::OK();
}

PredictResult Predict(const FittedModel& model,
                      const tseries::SeriesBatch& batch) {
  KSHAPE_CHECK_MSG(!model.empty(), "Predict on an empty model");
  KSHAPE_CHECK(!batch.empty());
  KSHAPE_CHECK_MSG(batch.length() == model.m(),
                   "batch length does not match the model's m");
  const std::size_t n = batch.size();
  const bool half = fft::HalfSpectrumEnabled();
  const bool pruning = core::PruningEnabled();

  // One forward FFT per incoming series; per-series spectra are a fixed
  // arithmetic function of (series, fft_len), so this engine is bit-for-bit
  // the engine any fit built over the same rows.
  const core::SbdEngine engine(batch, core::CrossCorrelationImpl::kFft, half,
                               /*build_bound_planes=*/pruning);

  AssignerOptions options;
  options.k = static_cast<int>(model.k());
  options.num_series = n;
  options.m = model.m();
  options.fft_len = engine.fft_length();
  options.use_half_spectrum = half;
  options.use_pruning = pruning;
  Assigner assigner(options);
  assigner.BeginIteration(model.centroids());

  PredictResult result;
  result.labels.assign(n, 0);
  result.distances.assign(n, 0.0);
  assigner.AssignBlock(engine, 0, &result.labels, &result.distances);
  result.stats = assigner.iteration_stats();
  return result;
}

common::StatusOr<PredictResult> TryPredict(const FittedModel& model,
                                           const tseries::SeriesBatch& batch) {
  if (model.empty()) {
    return common::Status::FailedPrecondition(
        "Predict needs a fitted (non-empty) model");
  }
  if (batch.empty()) {
    return common::Status::InvalidArgument("empty batch");
  }
  if (batch.length() != model.m()) {
    return common::Status::InvalidArgument(
        "batch length " + std::to_string(batch.length()) +
        " does not match the model's m = " + std::to_string(model.m()));
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (const double v : batch[i]) {
      if (!std::isfinite(v)) {
        return common::Status::InvalidArgument(
            "series " + std::to_string(i) + " contains a non-finite value");
      }
    }
  }
  return Predict(model, batch);
}

namespace {

AssignerOptions ScorerAssignerOptions(const FittedModel& model) {
  KSHAPE_CHECK_MSG(!model.empty(), "OnlineScorer needs a non-empty model");
  AssignerOptions options;
  options.k = static_cast<int>(model.k());
  options.num_series = 1;
  options.m = model.m();
  options.fft_len = fft::NextPowerOfTwo(2 * model.m() - 1);
  // Pinned at construction so the minted queries and every per-ingest engine
  // share one configuration for the scorer's whole lifetime, even if a test
  // flips the process gates mid-run.
  options.use_half_spectrum = fft::HalfSpectrumEnabled();
  options.use_pruning = core::PruningEnabled();
  return options;
}

std::vector<tseries::Series> CentroidRows(const FittedModel& model) {
  std::vector<tseries::Series> rows;
  rows.reserve(model.k());
  for (std::size_t j = 0; j < model.k(); ++j) {
    const tseries::SeriesView v = model.centroid(j);
    rows.emplace_back(v.begin(), v.end());
  }
  return rows;
}

}  // namespace

OnlineScorer::OnlineScorer(const FittedModel* model,
                           OnlineScorerOptions options)
    : model_(model),
      options_(options),
      centroid_rows_(CentroidRows(*model)),
      assigner_(ScorerAssignerOptions(*model)) {
  half_ = fft::HalfSpectrumEnabled();
  pruning_ = core::PruningEnabled();
  store_.Reserve(0, model_->m());
  // Frozen centroids: the queries are minted once here and reused by every
  // ingest — the "precomputed centroid spectra" half of the serving path.
  assigner_.BeginIteration(centroid_rows_);
}

OnlineScorer::Ingested OnlineScorer::Ingest(tseries::SeriesView series) {
  KSHAPE_CHECK_MSG(series.size() == model_->m(),
                   "ingested series length does not match the model's m");
  store_.Append(series);

  const tseries::SeriesBatch one(series.data(), 1, series.size());
  const core::SbdEngine engine(one, core::CrossCorrelationImpl::kFft, half_,
                               /*build_bound_planes=*/pruning_);

  std::vector<int> label(1, 0);
  std::vector<double> distance(1, 0.0);
  const AssignmentIterationStats before = assigner_.iteration_stats();
  assigner_.AssignBlock(engine, 0, &label, &distance);
  const AssignmentIterationStats& after = assigner_.iteration_stats();
  stats_.computed += after.computed - before.computed;
  stats_.pruned_bounds += after.pruned_bounds - before.pruned_bounds;
  stats_.abandoned_partial += after.abandoned_partial - before.abandoned_partial;

  Ingested out;
  out.label = label[0];
  out.distance = distance[0];
  out.drifted = distance[0] > options_.drift_distance;
  labels_.push_back(out.label);
  ++ingested_since_swap_;
  if (out.drifted) ++drifted_;
  return out;
}

common::StatusOr<OnlineScorer::Ingested> OnlineScorer::TryIngest(
    tseries::SeriesView series) {
  if (series.size() != model_->m()) {
    return common::Status::InvalidArgument(
        "series length " + std::to_string(series.size()) +
        " does not match the model's m = " + std::to_string(model_->m()));
  }
  for (const double v : series) {
    if (!std::isfinite(v)) {
      return common::Status::InvalidArgument(
          "series contains a non-finite value");
    }
  }
  return Ingest(series);
}

bool OnlineScorer::refresh_due() const {
  if (options_.refresh_after_drifted > 0 &&
      drifted_ >= options_.refresh_after_drifted) {
    return true;
  }
  if (options_.refresh_after_ingested > 0 &&
      ingested_since_swap_ >= options_.refresh_after_ingested) {
    return true;
  }
  return false;
}

void OnlineScorer::SwapModel(const FittedModel* model) {
  KSHAPE_CHECK(model != nullptr && !model->empty());
  KSHAPE_CHECK_MSG(model->m() == model_->m(),
                   "a refreshed model must keep the series length");
  model_ = model;
  centroid_rows_ = CentroidRows(*model);
  assigner_ = Assigner(ScorerAssignerOptions(*model));
  half_ = fft::HalfSpectrumEnabled();
  pruning_ = core::PruningEnabled();
  assigner_.BeginIteration(centroid_rows_);
  drifted_ = 0;
  ingested_since_swap_ = 0;
}

}  // namespace kshape::model
