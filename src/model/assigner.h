// The assign-series-to-centroids step, extracted into one implementation.
//
// Before this layer existed the scan lived in three copies: the k-Shape
// iteration loop (src/core/kshape.cc), the streamed/sampled mini-batch driver
// (src/cluster/minibatch_kshape.cc), and the classify-against-candidates path
// behind the SBD BatchScanner (src/core/sbd.cc). All three now route through
// Assigner, so the pruning layers — spectral early-abandon NCC and the
// Hamerly-style movement bounds — and the telemetry partition are defined
// exactly once.
//
// Ownership rules:
//   - The Assigner owns the per-iteration centroid queries (minted in
//     BeginIteration), the movement-bound state (ub/lb/shift arrays), and the
//     per-series telemetry cells. Callers own the centroids, the assignment
//     vector, and the engines.
//   - Engines are passed per block: the in-memory drivers pass one engine
//     with base 0, the sharded driver passes each shard's engine with the
//     shard's global base row. All engines of one clustering run must share
//     one configuration (m, fft_len, spectrum layout, bound planes) — the
//     MakeQueryFor interchange contract — which is what makes the minted
//     queries valid against every block.
//   - The iteration protocol is: SnapshotCentroids (before refinement) →
//     BeginIteration (after refinement) → AssignBlock/AssignSample per block
//     → read iteration_stats() → FinishIteration(reseeds). Blocks must be
//     presented in ascending base order so the telemetry reduction matches
//     the historical global-index-order sums bit for bit (integer sums, so
//     this is about discipline, not rounding).
//
// Determinism: each parallel worker writes only its own assignments[i],
// bound cells, and telemetry cells; comparison sequences are ascending in
// the centroid index with strict-less updates. Results are bit-identical
// across thread counts, SIMD backends, spectrum layouts (labels), and prune
// gates (labels) — the same contracts the three original copies carried.

#ifndef KSHAPE_MODEL_ASSIGNER_H_
#define KSHAPE_MODEL_ASSIGNER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/sbd_engine.h"
#include "tseries/time_series.h"

namespace kshape::model {

/// Telemetry partition of one assignment iteration. The invariant (pinned by
/// tests/pruning_test.cc): computed + pruned_bounds + abandoned_partial ==
/// n * k for full passes — every (series, centroid) pair is either computed
/// exactly, pruned wholesale by the movement bounds, or abandoned partway
/// through the spectral bound.
struct AssignmentIterationStats {
  long long computed = 0;
  long long pruned_bounds = 0;
  long long abandoned_partial = 0;
};

/// Result of a nearest-candidate scan (classify / serving path).
struct NearestResult {
  std::size_t index = 0;
  double distance = 0.0;
  long long computed = 0;   // exact distances evaluated
  long long abandoned = 0;  // candidates dropped by the spectral bound
};

struct AssignerOptions {
  int k = 0;                // number of centroids
  std::size_t num_series = 0;  // n: sizes the bound/telemetry cells
  std::size_t m = 0;        // series length
  // Padded transform length of the engines this run uses; 0 for engine-free
  // runs (custom assignment distances), which skip query minting entirely.
  std::size_t fft_len = 0;
  bool use_half_spectrum = false;  // layout the queries are minted in
  // Spectral early-abandon NCC (stateless, exactness-preserving). Queries
  // are minted with bound planes iff set.
  bool use_pruning = false;
  // Hamerly-style movement bounds (stateful per series; requires that every
  // series sees every centroid update, so the sampled driver leaves it off).
  // Implies use_pruning at every current call site.
  bool use_movement_bounds = false;
  double prune_margin = 0.0;
  // Exact recomputation of every argmin, counted outside the telemetry:
  // mismatches accumulate in iteration_verify_mismatches().
  bool verify = false;
};

class Assigner {
 public:
  explicit Assigner(const AssignerOptions& options);

  /// Records the pre-refinement centroids the movement bounds will measure
  /// shifts against. Call before refinement mutates the centroids; no-op
  /// unless movement bounds are on and currently valid.
  void SnapshotCentroids(const tseries::SeriesBatch& centroids);

  /// Starts an iteration against the (post-refinement) centroids: mints this
  /// iteration's centroid queries (k forward transforms, sequential), derives
  /// the centroid-shift distances when the bounds are valid, and resets the
  /// iteration telemetry. Serving paths with frozen centroids call this once
  /// and then AssignBlock many times.
  void BeginIteration(const tseries::SeriesBatch& centroids);

  /// Assigns every cached row of `engine` to its nearest centroid; engine
  /// row r is global series base + r, writing assignments[base + r].
  /// Parallel over rows with disjoint writes. `distances`, when non-null,
  /// receives the winning distance per global index (full scans only:
  /// rejected when movement bounds are on, since a bounds-pruned series
  /// computes no distance at all).
  void AssignBlock(const core::SbdEngine& engine, std::size_t base,
                   std::vector<int>* assignments,
                   std::vector<double>* distances = nullptr);

  /// Engine-free variant for custom assignment distances: the plain
  /// exhaustive scan over global rows [base, base + rows) with
  /// dist(j, i) supplying the distance from centroid j to global series i.
  void AssignBlockWith(const std::function<double(int, std::size_t)>& dist,
                       std::size_t base, std::size_t rows,
                       std::vector<int>* assignments);

  /// Sampled variant: assigns only the global indices sample[pos, stop),
  /// all of which must fall inside this engine's block. Movement bounds are
  /// never consulted or updated (sampled iterations violate their
  /// every-series-sees-every-update premise); the spectral abandon layer
  /// still applies when pruning is on.
  void AssignSample(const core::SbdEngine& engine, std::size_t base,
                    const std::vector<std::size_t>& sample, std::size_t pos,
                    std::size_t stop, std::vector<int>* assignments);

  /// Ends the iteration: the movement bounds stay valid only when the
  /// empty-cluster repair rewired nothing (repair moves assignments behind
  /// the bounds' back, so a full rebuild is the only safe continuation).
  void FinishIteration(int reseeds);

  /// Telemetry of the current iteration, reduced in ascending global index
  /// order across the blocks presented so far.
  const AssignmentIterationStats& iteration_stats() const { return stats_; }

  /// Verify-mode mismatches observed this iteration.
  long long iteration_verify_mismatches() const { return verify_count_; }

  /// This iteration's centroid queries (for callers' repair scans).
  const std::vector<core::SbdEngine::Query>& queries() const {
    return queries_;
  }

  bool bounds_valid() const { return bounds_valid_; }

  /// The one nearest-candidate scan: sequential argmin over the engine's
  /// cached series with spectral early abandoning (plain scan when the
  /// engine has no bound planes). The abandon cutoff carries `bound_slack`
  /// headroom over the best-so-far so ulp-level bound rounding can never
  /// flip a near-tie: the result index/distance is identical to
  /// DistanceToAll + first-strict-minimum. Backs the SBD BatchScanner
  /// (classify) and the serving path.
  static NearestResult NearestSeries(
      const core::SbdEngine& engine, const core::SbdEngine::Query& q,
      double bound_slack = core::SbdEngine::kDefaultBoundSlack);

 private:
  // Shared per-index scan bodies; `i` is the global index, `row` the engine
  // row (i - base).
  void PrunedScanIndex(const core::SbdEngine& engine, std::size_t i,
                       std::size_t row, bool use_bounds,
                       std::vector<int>* assignments,
                       std::vector<double>* distances);

  AssignerOptions options_;
  std::vector<core::SbdEngine::Query> queries_;

  // Movement-bound state, sqrt(SBD) domain (see the scan for the algebra).
  std::vector<double> ub_r_, lb_r_, shift_r_;
  std::vector<tseries::Series> prev_centroids_;
  bool bounds_valid_ = false;
  bool use_bounds_iter_ = false;
  double max_shift1_ = 0.0, max_shift2_ = 0.0;
  int max_shift_arg_ = -1;

  // Per-series telemetry cells (disjoint writes in the parallel scans,
  // reduced sequentially in index order per block).
  std::vector<long long> cnt_computed_, cnt_pruned_, cnt_abandoned_;
  std::vector<unsigned char> verify_mismatch_;
  AssignmentIterationStats stats_;
  long long verify_count_ = 0;
};

}  // namespace kshape::model

#endif  // KSHAPE_MODEL_ASSIGNER_H_
