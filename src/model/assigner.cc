#include "model/assigner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/parallel.h"
#include "core/sbd.h"

namespace kshape::model {

namespace {

// Same grain as the historical assignment/seeding scans: the per-index work
// dwarfs chunk claiming at 16. Chunking does not affect results (disjoint
// writes of pure per-index values), so per-block chunks and global chunks
// land on the same bits.
constexpr std::size_t kScanGrain = 16;

}  // namespace

Assigner::Assigner(const AssignerOptions& options) : options_(options) {
  KSHAPE_CHECK(options_.k >= 1);
  KSHAPE_CHECK(options_.num_series >= 1);
  KSHAPE_CHECK_MSG(!options_.use_movement_bounds || options_.use_pruning,
                   "movement bounds ride on the pruning layer");
  const std::size_t n = options_.num_series;
  const int k = options_.k;
  if (options_.use_pruning) {
    cnt_computed_.assign(n, 0);
    cnt_pruned_.assign(n, 0);
    cnt_abandoned_.assign(n, 0);
  }
  if (options_.use_movement_bounds) {
    ub_r_.assign(n, 0.0);
    lb_r_.assign(n, 0.0);
    shift_r_.assign(k, 0.0);
    if (options_.verify) verify_mismatch_.assign(n, 0);
  } else if (options_.verify && options_.use_pruning) {
    verify_mismatch_.assign(n, 0);
  }
}

void Assigner::SnapshotCentroids(const tseries::SeriesBatch& centroids) {
  if (options_.use_movement_bounds && bounds_valid_) {
    prev_centroids_.clear();
    for (std::size_t j = 0; j < centroids.size(); ++j) {
      const tseries::SeriesView row = centroids[j];
      prev_centroids_.emplace_back(row.begin(), row.end());
    }
  }
}

void Assigner::BeginIteration(const tseries::SeriesBatch& centroids) {
  KSHAPE_CHECK(static_cast<int>(centroids.size()) == options_.k);
  stats_ = AssignmentIterationStats{};
  verify_count_ = 0;
  if (options_.fft_len > 0) {
    // k forward transforms per iteration; every centroid-to-series distance
    // in the scans below reuses them as a single inverse transform. Minted
    // from the configuration alone (MakeQueryFor), so one query set serves
    // every block engine of the run.
    queries_.clear();
    for (int j = 0; j < options_.k; ++j) {
      queries_.push_back(core::SbdEngine::MakeQueryFor(
          centroids[j], options_.m, options_.fft_len,
          options_.use_half_spectrum,
          /*build_bound_planes=*/options_.use_pruning));
    }
  }

  // Centroid-shift distances for the movement bounds: k direct SBDs (old vs
  // new centroid), outside the n·k assignment counters. Hamerly max1/max2:
  // lb shrinks by the largest shift, or the second-largest when the owner
  // itself moved most.
  use_bounds_iter_ = bounds_valid_;
  max_shift1_ = 0.0;
  max_shift2_ = 0.0;
  max_shift_arg_ = -1;
  if (use_bounds_iter_) {
    for (int j = 0; j < options_.k; ++j) {
      const double d =
          core::Sbd(prev_centroids_[j], centroids[j]).distance;
      shift_r_[j] = std::sqrt(std::max(0.0, d));
    }
    for (int j = 0; j < options_.k; ++j) {
      if (max_shift_arg_ < 0 || shift_r_[j] > max_shift1_) {
        if (max_shift_arg_ >= 0) max_shift2_ = max_shift1_;
        max_shift1_ = shift_r_[j];
        max_shift_arg_ = j;
      } else if (shift_r_[j] > max_shift2_) {
        max_shift2_ = shift_r_[j];
      }
    }
  }
}

void Assigner::PrunedScanIndex(const core::SbdEngine& engine, std::size_t i,
                               std::size_t row, bool use_bounds,
                               std::vector<int>* assignments,
                               std::vector<double>* distances) {
  const int k = options_.k;
  const double margin = options_.prune_margin;
  const int owner = (*assignments)[i];
  long long comp = 0, pruned = 0, aband = 0;
  bool scanned = true;
  double d_owner = 0.0;
  if (use_bounds) {
    // Apply this iteration's centroid movement to the bounds. Bounds live in
    // the sqrt(SBD) domain, where SBD behaves (approximately) like a squared
    // chordal distance and the triangle inequality the movement updates rely
    // on approximately holds:
    //   ub_r[i] >= sqrt(d(i, centroid of a_i))     (upper, owner distance)
    //   lb_r[i] <= sqrt(min_{j != a_i} d(i, c_j))  (lower, second-closest)
    // Comparisons happen back in SBD units with the prune_margin slack.
    ub_r_[i] += shift_r_[owner];
    lb_r_[i] -= owner == max_shift_arg_ ? max_shift2_ : max_shift1_;
    if (lb_r_[i] < 0.0) lb_r_[i] = 0.0;
    const double ub2 = ub_r_[i] * ub_r_[i];
    const double lb2 = lb_r_[i] * lb_r_[i];
    if (ub2 + margin <= lb2) {
      // Whole-series prune: no centroid can take this series.
      pruned = k;
      scanned = false;
    } else {
      // Tighten the upper bound with the exact owner distance, then re-test
      // (Hamerly's second check).
      d_owner = engine.Distance(queries_[owner], row);
      ++comp;
      ub_r_[i] = std::sqrt(std::max(0.0, d_owner));
      if (d_owner + margin <= lb2) {
        pruned = k - 1;
        scanned = false;
      }
    }
  } else {
    d_owner = engine.Distance(queries_[owner], row);
    ++comp;
  }
  if (scanned) {
    // Full ascending-j scan with spectral early abandoning. The owner's
    // distance is computed up front (reused at j == owner), so the
    // comparison sequence over computed distances is the one the exact scan
    // walks — identical labels and tie-breaks.
    double min1 = std::numeric_limits<double>::infinity();
    double min2 = std::numeric_limits<double>::infinity();
    int best = owner;
    for (int j = 0; j < k; ++j) {
      bool ab = false;
      double v;
      if (j == owner) {
        v = d_owner;
      } else {
        v = engine.DistanceWithAbandon(
            queries_[j], row, min1 + core::SbdEngine::kDefaultBoundSlack,
            &ab);
        if (ab) {
          ++aband;
        } else {
          ++comp;
        }
      }
      if (!ab && v < min1) {
        min2 = min1;
        min1 = v;
        best = j;
      } else if (v < min2) {
        // Abandoned candidates contribute their distance LOWER bound: min2
        // stays a valid lower bound on the true second-closest distance.
        min2 = v;
      }
    }
    (*assignments)[i] = best;
    if (options_.use_movement_bounds) {
      ub_r_[i] = std::sqrt(std::max(0.0, min1));
      lb_r_[i] = std::sqrt(std::max(0.0, min2));
    }
    if (distances != nullptr) (*distances)[i] = min1;
  }
  if (!verify_mismatch_.empty()) {
    // Exact recomputation of the argmin (outside the telemetry counters);
    // the pruned decision is kept either way.
    double vmin = std::numeric_limits<double>::infinity();
    int vbest = owner;
    for (int j = 0; j < k; ++j) {
      const double d = engine.Distance(queries_[j], row);
      if (d < vmin) {
        vmin = d;
        vbest = j;
      }
    }
    verify_mismatch_[i] = vbest != (*assignments)[i] ? 1 : 0;
  }
  cnt_computed_[i] = comp;
  cnt_pruned_[i] = pruned;
  cnt_abandoned_[i] = aband;
}

void Assigner::AssignBlock(const core::SbdEngine& engine, std::size_t base,
                           std::vector<int>* assignments,
                           std::vector<double>* distances) {
  KSHAPE_CHECK(assignments != nullptr);
  const std::size_t rows = engine.size();
  const int k = options_.k;
  KSHAPE_CHECK(base + rows <= options_.num_series);
  KSHAPE_CHECK(!queries_.empty());
  KSHAPE_CHECK_MSG(distances == nullptr || !options_.use_movement_bounds,
                   "a bounds-pruned series computes no distance; request "
                   "distances only from bound-free scans");

  if (!options_.use_pruning) {
    common::ParallelFor(0, rows, kScanGrain,
                        [&](std::size_t begin, std::size_t end) {
      for (std::size_t r = begin; r < end; ++r) {
        const std::size_t i = base + r;
        double min_dist = std::numeric_limits<double>::infinity();
        int best = (*assignments)[i];
        for (int j = 0; j < k; ++j) {
          const double d = engine.Distance(queries_[j], r);
          if (d < min_dist) {
            min_dist = d;
            best = j;
          }
        }
        (*assignments)[i] = best;
        if (distances != nullptr) (*distances)[i] = min_dist;
      }
    });
    stats_.computed += static_cast<long long>(rows) * k;
    return;
  }

  const bool use_bounds = use_bounds_iter_;
  common::ParallelFor(0, rows, kScanGrain,
                      [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      PrunedScanIndex(engine, base + r, r, use_bounds, assignments,
                      distances);
    }
  });
  // Telemetry reduced in ascending index order per block; blocks arrive in
  // ascending base order, so the run-level sums match the historical
  // global-index-order reduction.
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t i = base + r;
    stats_.computed += cnt_computed_[i];
    stats_.pruned_bounds += cnt_pruned_[i];
    stats_.abandoned_partial += cnt_abandoned_[i];
  }
  if (!verify_mismatch_.empty()) {
    for (std::size_t r = 0; r < rows; ++r) {
      verify_count_ += verify_mismatch_[base + r];
    }
  }
}

void Assigner::AssignBlockWith(
    const std::function<double(int, std::size_t)>& dist, std::size_t base,
    std::size_t rows, std::vector<int>* assignments) {
  KSHAPE_CHECK(assignments != nullptr);
  KSHAPE_CHECK(base + rows <= options_.num_series);
  KSHAPE_CHECK_MSG(!options_.use_pruning,
                   "pruning needs engine spectra; the callback path is the "
                   "exhaustive scan");
  const int k = options_.k;
  common::ParallelFor(0, rows, kScanGrain,
                      [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const std::size_t i = base + r;
      double min_dist = std::numeric_limits<double>::infinity();
      int best = (*assignments)[i];
      for (int j = 0; j < k; ++j) {
        const double d = dist(j, i);
        if (d < min_dist) {
          min_dist = d;
          best = j;
        }
      }
      (*assignments)[i] = best;
    }
  });
  stats_.computed += static_cast<long long>(rows) * k;
}

void Assigner::AssignSample(const core::SbdEngine& engine, std::size_t base,
                            const std::vector<std::size_t>& sample,
                            std::size_t pos, std::size_t stop,
                            std::vector<int>* assignments) {
  KSHAPE_CHECK(assignments != nullptr);
  KSHAPE_CHECK(!queries_.empty());
  const int k = options_.k;
  const bool pruning = options_.use_pruning;
  common::ParallelFor(pos, stop, kScanGrain,
                      [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t i = sample[t];
      const std::size_t r = i - base;
      const int owner = (*assignments)[i];
      long long comp = 0, aband = 0;
      double min1 = std::numeric_limits<double>::infinity();
      int best = owner;
      if (pruning) {
        const double d_owner = engine.Distance(queries_[owner], r);
        ++comp;
        for (int j = 0; j < k; ++j) {
          bool ab = false;
          double v;
          if (j == owner) {
            v = d_owner;
          } else {
            v = engine.DistanceWithAbandon(
                queries_[j], r, min1 + core::SbdEngine::kDefaultBoundSlack,
                &ab);
            if (ab) {
              ++aband;
            } else {
              ++comp;
            }
          }
          if (!ab && v < min1) {
            min1 = v;
            best = j;
          }
        }
      } else {
        for (int j = 0; j < k; ++j) {
          const double d = engine.Distance(queries_[j], r);
          ++comp;
          if (d < min1) {
            min1 = d;
            best = j;
          }
        }
      }
      (*assignments)[i] = best;
      if (pruning) {
        cnt_computed_[i] = comp;
        cnt_pruned_[i] = 0;
        cnt_abandoned_[i] = aband;
      }
    }
  });
  if (pruning) {
    for (std::size_t t = pos; t < stop; ++t) {
      const std::size_t i = sample[t];
      stats_.computed += cnt_computed_[i];
      stats_.abandoned_partial += cnt_abandoned_[i];
    }
  } else {
    stats_.computed += static_cast<long long>(stop - pos) * k;
  }
}

void Assigner::FinishIteration(int reseeds) {
  if (options_.use_movement_bounds) {
    // Repair rewires assignments without touching the bounds; a full rebuild
    // next iteration is the only safe continuation.
    bounds_valid_ = reseeds == 0;
  }
}

NearestResult Assigner::NearestSeries(const core::SbdEngine& engine,
                                      const core::SbdEngine::Query& q,
                                      double bound_slack) {
  NearestResult r;
  const std::size_t n = engine.size();
  KSHAPE_CHECK(n >= 1);
  double best = std::numeric_limits<double>::infinity();
  if (!engine.has_bound_planes() || q.mag.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      const double d = engine.Distance(q, i);
      ++r.computed;
      if (d < best) {
        best = d;
        r.index = i;
      }
    }
    r.distance = best;
    return r;
  }
  // Ascending scan with a strict-less update — the identical tie-break to
  // DistanceToAll + first-strict-minimum. A candidate abandons only when its
  // distance lower bound exceeds best + bound_slack, i.e. it provably loses
  // even the tie-break, so early abandoning cannot change the result.
  for (std::size_t i = 0; i < n; ++i) {
    bool ab = false;
    const double d = engine.DistanceWithAbandon(q, i, best + bound_slack, &ab);
    if (ab) {
      ++r.abandoned;
      continue;
    }
    ++r.computed;
    if (d < best) {
      best = d;
      r.index = i;
    }
  }
  r.distance = best;
  return r;
}

}  // namespace kshape::model
