#ifndef KSHAPE_LINALG_ROW_POOL_H_
#define KSHAPE_LINALG_ROW_POOL_H_

#include <cstddef>
#include <span>
#include <vector>

namespace kshape::linalg {

/// Process-wide matrix-free-extraction gate, resolved lazily from
/// KSHAPE_MATFREE: "on" or unset enables the matrix-free eigenproblem paths
/// (shape extraction and the KSC centroid, each still subject to its own
/// option), "off" forces the dense Gram paths everywhere — bit-identically
/// to the pre-matrix-free implementation — without touching call sites;
/// anything else aborts. Lives here (not in core) because both core's shape
/// extraction and cluster's KSC consult it, and linalg is beneath both.
bool MatrixFreeEnabled();

/// Overrides the gate for the rest of the process (tests/benches comparing
/// both paths in one run). Call between, not during, extractions.
void SetMatrixFreeEnabledForTesting(bool enabled);

/// Deterministic parallel matvec against a contiguous row-major pool of
/// equal-length rows: Apply(u, out) computes
///
///   out = Σ_r (x_r · u) · x_r        (x_r = row r of the pool)
///
/// i.e. S·u for S = Σ_r x_r x_rᵀ without ever forming S — O(num_rows·m) per
/// application instead of the O(m²) dense product (and O(num_rows·m²) dense
/// accumulation). This is the engine of matrix-free shape extraction (where
/// the rows are the aligned z-normalized members and S is the Gram matrix)
/// and of the matrix-free KSC centroid (rows pre-scaled by 1/||b_r||).
///
/// Determinism contract: the rows are split into contiguous blocks whose
/// boundaries are a pure function of the row count alone — never the thread
/// count. Each block is reduced by the fused simd dot_axpy_rows kernel into
/// its own partial vector (disjoint writes on the pool), and the partials are
/// combined sequentially in block order on the calling thread. Results are
/// therefore bit-identical at any thread count and across SIMD backends, the
/// same contract every kernel and ParallelFor pattern in this codebase obeys.
class RowPoolMatVec {
 public:
  /// Views `rows` (num_rows rows of length m, row r at rows + r*m). The
  /// buffer must outlive the object and stay unchanged across Apply calls.
  /// num_rows == 0 is allowed (Apply then writes the zero vector).
  RowPoolMatVec(const double* rows, std::size_t num_rows, std::size_t m);

  /// Overwrites `out` with Σ_r (x_r·u) x_r. `u` and `out` must have length
  /// m and may not alias the pool. Not thread-safe (the partial buffers are
  /// reused); call from the coordinating thread — the fan-out over blocks
  /// happens inside.
  void Apply(std::span<const double> u, std::span<double> out);

  std::size_t num_rows() const { return num_rows_; }
  std::size_t m() const { return m_; }

 private:
  const double* rows_;
  std::size_t num_rows_;
  std::size_t m_;
  std::size_t grain_;
  std::size_t num_chunks_;
  std::vector<double> partials_;  // num_chunks_ blocks of length m_.
};

}  // namespace kshape::linalg

#endif  // KSHAPE_LINALG_ROW_POOL_H_
