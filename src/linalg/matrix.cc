#include "linalg/matrix.h"

#include <cmath>
#include <span>

#include "common/check.h"
#include "simd/dispatch.h"

namespace kshape::linalg {

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  KSHAPE_CHECK(!rows.empty());
  const std::size_t cols = rows[0].size();
  Matrix m(rows.size(), cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    KSHAPE_CHECK_MSG(rows[i].size() == cols, "ragged rows");
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rows[i][j];
  }
  return m;
}

std::vector<double> Matrix::RowVector(std::size_t i) const {
  KSHAPE_CHECK(i < rows_);
  return std::vector<double>(Row(i), Row(i) + cols_);
}

std::vector<double> Matrix::ColVector(std::size_t j) const {
  KSHAPE_CHECK(j < cols_);
  std::vector<double> out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  KSHAPE_CHECK_MSG(cols_ == other.rows_, "matmul dimension mismatch");
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop contiguous in both inputs; the
  // inner accumulation is one axpy over the output row.
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a_row = Row(i);
    double* out_row = out.Row(i);
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      simd::Active().axpy(a_ik, other.Row(k), out_row, other.cols_);
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(std::span<const double> v) const {
  KSHAPE_CHECK_MSG(cols_ == v.size(), "matvec dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    out[i] = simd::Active().dot(Row(i), v.data(), cols_);
  }
  return out;
}

void Matrix::AddOuterProduct(std::span<const double> v, double scale) {
  KSHAPE_CHECK_MSG(rows_ == cols_ && rows_ == v.size(),
                   "outer product dimension mismatch");
  for (std::size_t i = 0; i < rows_; ++i) {
    simd::Active().axpy(scale * v[i], v.data(), Row(i), cols_);
  }
}

void Matrix::AddSymmetricOuterProduct(std::span<const double> v) {
  KSHAPE_CHECK_MSG(rows_ == cols_ && rows_ == v.size(),
                   "outer product dimension mismatch");
  // Row i from column i on: the axpy kernel is element-wise (no cross-lane
  // accumulator), so each touched entry sees exactly the ops a full-row axpy
  // would have applied to it.
  for (std::size_t i = 0; i < rows_; ++i) {
    simd::Active().axpy(v[i], v.data() + i, Row(i) + i, cols_ - i);
  }
}

void Matrix::MirrorUpperToLower() {
  KSHAPE_CHECK_MSG(rows_ == cols_, "mirror requires a square matrix");
  for (std::size_t i = 1; i < rows_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      data_[i * cols_ + j] = data_[j * cols_ + i];
    }
  }
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(simd::Active().sum_squares(data_.data(), data_.size()));
}

double Dot(std::span<const double> a, std::span<const double> b) {
  KSHAPE_CHECK_MSG(a.size() == b.size(), "dot dimension mismatch");
  return simd::Dot(a, b);
}

double Norm(std::span<const double> v) {
  return std::sqrt(simd::SumSquares(v));
}

void Scale(std::span<double> v, double s) { simd::Scale(v, s); }

void Axpy(double a, std::span<const double> x, std::span<double> y) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "axpy dimension mismatch");
  simd::Axpy(a, x, y);
}

double NormalizeInPlace(std::span<double> v) {
  const double n = Norm(v);
  if (n > 0.0) Scale(v, 1.0 / n);
  return n;
}

}  // namespace kshape::linalg
