#include "linalg/row_pool.h"

#include <algorithm>

#include "common/check.h"
#include "common/env_gate.h"
#include "common/parallel.h"
#include "simd/dispatch.h"

namespace kshape::linalg {

namespace {

common::EnvGate g_matrix_free{"KSHAPE_MATFREE"};

}  // namespace

bool MatrixFreeEnabled() { return g_matrix_free.enabled(); }

void SetMatrixFreeEnabledForTesting(bool enabled) {
  g_matrix_free.SetForTesting(enabled);
}

namespace {

// Upper bound on the number of row blocks. Fixed (not derived from the
// thread count) so the block boundaries — and with them the reduction
// order — are identical at any parallelism level. 64 blocks saturate the
// pool on any machine this targets while keeping the partial-vector scratch
// at 64·m doubles.
constexpr std::size_t kMaxChunks = 64;

// Rows below which a block is not worth a chunk of its own: the per-chunk
// dispatch cost would rival the dot+axpy work at small m.
constexpr std::size_t kMinGrain = 4;

}  // namespace

RowPoolMatVec::RowPoolMatVec(const double* rows, std::size_t num_rows,
                             std::size_t m)
    : rows_(rows), num_rows_(num_rows), m_(m) {
  KSHAPE_CHECK(m >= 1);
  KSHAPE_CHECK(rows != nullptr || num_rows == 0);
  grain_ = std::max(kMinGrain, (num_rows + kMaxChunks - 1) / kMaxChunks);
  num_chunks_ = (num_rows + grain_ - 1) / grain_;
  partials_.assign(num_chunks_ * m_, 0.0);
}

void RowPoolMatVec::Apply(std::span<const double> u, std::span<double> out) {
  KSHAPE_CHECK(u.size() == m_ && out.size() == m_);
  const simd::KernelTable& kt = simd::Active();

  std::fill(partials_.begin(), partials_.end(), 0.0);
  // Each chunk writes only its own partial block — disjoint writes, any
  // schedule. Grain 1 over chunks: the chunks themselves are the grain.
  common::ParallelFor(0, num_chunks_, 1,
                      [&](std::size_t chunk_begin, std::size_t chunk_end) {
    for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
      const std::size_t row_begin = c * grain_;
      const std::size_t row_end = std::min(num_rows_, row_begin + grain_);
      kt.dot_axpy_rows(rows_ + row_begin * m_, row_end - row_begin, m_,
                       u.data(), partials_.data() + c * m_);
    }
  });

  // Sequential fixed-order reduction: chunk 0, 1, 2, ... on the calling
  // thread. One rounded add per (chunk, element); the multiply by 1.0 in
  // axpy is exact.
  std::fill(out.begin(), out.end(), 0.0);
  for (std::size_t c = 0; c < num_chunks_; ++c) {
    kt.axpy(1.0, partials_.data() + c * m_, out.data(), m_);
  }
}

}  // namespace kshape::linalg
