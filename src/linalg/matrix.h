#ifndef KSHAPE_LINALG_MATRIX_H_
#define KSHAPE_LINALG_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

namespace kshape::linalg {

/// Dense row-major matrix of doubles.
///
/// Deliberately minimal: the library needs Gram matrices, projections,
/// eigendecompositions and matrix-vector products, not a full BLAS. All
/// indices are checked via KSHAPE_CHECK in the .cc for the non-inline entry
/// points; operator() is unchecked for speed in inner loops.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a rows x cols matrix initialized to zero.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Returns the n x n identity matrix.
  static Matrix Identity(std::size_t n);

  /// Builds a matrix whose rows are the given equal-length vectors.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Unchecked element access.
  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Pointer to the start of row i.
  double* Row(std::size_t i) { return data_.data() + i * cols_; }
  const double* Row(std::size_t i) const { return data_.data() + i * cols_; }

  /// Read-only span over row i (the matrix is row-major, so this is free).
  std::span<const double> RowSpan(std::size_t i) const {
    return std::span<const double>(Row(i), cols_);
  }

  /// Copies row i into a vector.
  std::vector<double> RowVector(std::size_t i) const;

  /// Copies column j into a vector.
  std::vector<double> ColVector(std::size_t j) const;

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Returns this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Returns this * v. Requires cols() == v.size().
  std::vector<double> MultiplyVector(std::span<const double> v) const;

  /// Adds scale * v v^T to this matrix. Requires square with n == v.size().
  void AddOuterProduct(std::span<const double> v, double scale = 1.0);

  /// Adds v v^T to the upper triangle (j >= i) only, at half the work of
  /// AddOuterProduct; the lower triangle is left stale until
  /// MirrorUpperToLower(). Because IEEE multiplication commutes, the mirrored
  /// entries are bit-identical to what a full AddOuterProduct accumulation
  /// would have produced (this only holds at scale 1, hence no scale
  /// parameter). Requires square with n == v.size().
  void AddSymmetricOuterProduct(std::span<const double> v);

  /// Copies the strict upper triangle onto the strict lower triangle,
  /// completing a sequence of AddSymmetricOuterProduct calls. Requires
  /// square.
  void MirrorUpperToLower();

  /// Returns true iff the matrix is square and symmetric to within tol.
  bool IsSymmetric(double tol = 1e-9) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// Dot product. Requires equal sizes.
double Dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double Norm(std::span<const double> v);

/// Scales v in place by s.
void Scale(std::span<double> v, double s);
inline void Scale(std::vector<double>* v, double s) {
  Scale(std::span<double>(*v), s);
}

/// y += a * x. Requires equal sizes.
void Axpy(double a, std::span<const double> x, std::span<double> y);
inline void Axpy(double a, std::span<const double> x, std::vector<double>* y) {
  Axpy(a, x, std::span<double>(*y));
}

/// Normalizes v to unit Euclidean norm in place; leaves an all-zero vector
/// unchanged. Returns the original norm.
double NormalizeInPlace(std::span<double> v);
inline double NormalizeInPlace(std::vector<double>* v) {
  return NormalizeInPlace(std::span<double>(*v));
}

}  // namespace kshape::linalg

#endif  // KSHAPE_LINALG_MATRIX_H_
