#ifndef KSHAPE_LINALG_EIGEN_H_
#define KSHAPE_LINALG_EIGEN_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/random.h"
#include "linalg/matrix.h"

namespace kshape::linalg {

/// Result of a full symmetric eigendecomposition.
///
/// Eigenvalues are sorted ascending; column j of `eigenvectors` is the unit
/// eigenvector for `eigenvalues[j]`.
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  Matrix eigenvectors;
};

/// Full eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Robust and simple; O(n^3) per sweep with a larger constant than
/// SymmetricEigen. Used as the reference implementation in tests and for
/// small matrices. Requires a symmetric input.
EigenDecomposition JacobiEigen(const Matrix& a, int max_sweeps = 64,
                               double tol = 1e-12);

/// Full eigendecomposition of a symmetric matrix via Householder
/// tridiagonalization followed by the implicit-shift QL algorithm
/// (tred2/tql2). This is the production path used by spectral clustering and
/// KSC centroid computation. Requires a symmetric input.
EigenDecomposition SymmetricEigen(const Matrix& a);

/// Dominant eigenpair of a symmetric positive semi-definite matrix by power
/// iteration.
///
/// Shape extraction (Algorithm 2 of the paper) needs only the eigenvector of
/// the largest eigenvalue of the PSD matrix M = Q^T S Q; power iteration gets
/// it in O(n^2) per step instead of the O(n^3) full decomposition. `rng`
/// supplies the random start vector; convergence is declared when successive
/// iterates differ by less than `tol` in norm. Returns the eigenvector and
/// stores the Rayleigh quotient in `*eigenvalue` when non-null. Falls back to
/// SymmetricEigen if not converged within `max_iters` (e.g. when the top two
/// eigenvalues are nearly equal).
///
/// `initial`, when non-null with size n and a nonzero norm, seeds the
/// iteration instead of a random draw (and leaves the RNG stream untouched):
/// a warm start near the dominant eigenvector — e.g. the previous k-Shape
/// centroid, which moves little between refinement iterations — cuts the
/// matrix-vector products spent per call. A null/mismatched/zero `initial`
/// falls back to the random start. The SymmetricEigen safety net is
/// unchanged, so a pathological warm start costs iterations, never
/// correctness.
///
/// Stall handling: a run that exhausts `max_iters` without converging (the
/// near-tied-top-eigenpair regime, e.g. uniformly-phase-shifted corpora in
/// shape extraction) is NOT sent straight to the O(n^3) decomposition.
/// First the final iterate is accepted if its eigen-residual ||Av - λv|| is
/// already tiny (a tied top eigenSPACE makes the iterate rotate within the
/// space forever while being a perfectly valid maximizer); then up to two
/// capped restarts of shifted iteration on A + |λ|·I break sign
/// oscillation from magnitude ties. Only when all of that fails does the
/// SymmetricEigen fallback run — its firing count is observable below.
std::vector<double> DominantEigenvector(const Matrix& a, common::Rng* rng,
                                        int max_iters = 200,
                                        double tol = 1e-10,
                                        double* eigenvalue = nullptr,
                                        const std::vector<double>* initial =
                                            nullptr);

/// A symmetric linear operator given only by its action: `apply(v, &out)`
/// overwrites `out` with A·v (out arrives sized to the operator dimension).
/// The callable must be deterministic — power iteration evaluates it many
/// times and the stall handling compares successive results.
using MatVecFn =
    std::function<void(const std::vector<double>&, std::vector<double>*)>;

/// Lazily materializes the operator as a dense symmetric Matrix. Invoked at
/// most once per DominantEigenvectorOp call, and only on the full
/// SymmetricEigen fallback — the matrix-free fast paths never pay for it.
using MaterializeFn = std::function<Matrix()>;

/// Operator-form DominantEigenvector: the same power iteration, residual
/// acceptance, capped shifted restarts, and SymmetricEigen fallback, but the
/// matrix is only ever touched through `matvec` — so callers whose A·v is
/// cheaper than forming A (the matrix-free shape-extraction path: A = Q^T S Q
/// applied as center → Σ yᵢ(yᵢ·u) → center in O(n_c·m) per step) never
/// allocate the dense matrix. `materialize` supplies the dense form for the
/// O(m³) fallback only; it runs at most once per call, and warm-started
/// iterations in practice never reach it (the PR 8 stall contract).
/// DominantEigenvector below is exactly this function with `matvec` wrapping
/// Matrix::MultiplyVector, so the two paths share every acceptance decision
/// bit for bit.
std::vector<double> DominantEigenvectorOp(
    std::size_t n, const MatVecFn& matvec, const MaterializeFn& materialize,
    common::Rng* rng, int max_iters = 200, double tol = 1e-10,
    double* eigenvalue = nullptr, const std::vector<double>* initial = nullptr);

/// Process-wide count of DominantEigenvector calls that fell all the way
/// through to SymmetricEigen (the stall regression tests pin this at 0 on
/// corpora that used to trigger it), and its reset. Monotonic, thread-safe.
long long DominantEigenvectorFallbackCountForTesting();
void ResetDominantEigenvectorFallbackCountForTesting();

/// Rayleigh quotient v^T A v / v^T v. Requires v not all-zero.
double RayleighQuotient(const Matrix& a, const std::vector<double>& v);

}  // namespace kshape::linalg

#endif  // KSHAPE_LINALG_EIGEN_H_
