#include "linalg/eigen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace kshape::linalg {

namespace {

// Sorts (eigenvalue, eigenvector-column) pairs ascending by eigenvalue.
void SortAscending(EigenDecomposition* decomp) {
  const std::size_t n = decomp->eigenvalues.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return decomp->eigenvalues[a] < decomp->eigenvalues[b];
  });
  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_values[j] = decomp->eigenvalues[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      sorted_vectors(i, j) = decomp->eigenvectors(i, order[j]);
    }
  }
  decomp->eigenvalues = std::move(sorted_values);
  decomp->eigenvectors = std::move(sorted_vectors);
}

}  // namespace

EigenDecomposition JacobiEigen(const Matrix& a, int max_sweeps, double tol) {
  KSHAPE_CHECK_MSG(a.IsSymmetric(1e-8), "JacobiEigen requires symmetry");
  const std::size_t n = a.rows();
  Matrix m = a;
  Matrix v = Matrix::Identity(n);
  const double frob = m.FrobeniusNorm();
  const double threshold = tol * (frob > 0 ? frob : 1.0);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += m(p, q) * m(p, q);
    }
    if (std::sqrt(2.0 * off) <= threshold) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) <= threshold / static_cast<double>(n * n)) continue;
        const double theta = (m(q, q) - m(p, p)) / (2.0 * apq);
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Rotate rows/columns p and q of m.
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenDecomposition decomp;
  decomp.eigenvalues.resize(n);
  for (std::size_t i = 0; i < n; ++i) decomp.eigenvalues[i] = m(i, i);
  decomp.eigenvectors = std::move(v);
  SortAscending(&decomp);
  return decomp;
}

namespace {

// Householder reduction of a symmetric matrix to tridiagonal form with
// accumulated transformations. Public-domain EISPACK tred2 as translated in
// JAMA. On exit `v` holds the orthogonal transform, `d` the diagonal and `e`
// the subdiagonal (e[0] unused).
void Tred2(Matrix* v_ptr, std::vector<double>* d_ptr,
           std::vector<double>* e_ptr) {
  Matrix& v = *v_ptr;
  std::vector<double>& d = *d_ptr;
  std::vector<double>& e = *e_ptr;
  const int n = static_cast<int>(v.rows());

  for (int j = 0; j < n; ++j) d[j] = v(n - 1, j);

  for (int i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (int k = 0; k < i; ++k) scale += std::fabs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (int j = 0; j < i; ++j) {
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
        v(j, i) = 0.0;
      }
    } else {
      for (int k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (int j = 0; j < i; ++j) e[j] = 0.0;

      for (int j = 0; j < i; ++j) {
        f = d[j];
        v(j, i) = f;
        g = e[j] + v(j, j) * f;
        for (int k = j + 1; k <= i - 1; ++k) {
          g += v(k, j) * d[k];
          e[k] += v(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (int j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (int j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (int j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (int k = j; k <= i - 1; ++k) {
          v(k, j) -= (f * e[k] + g * d[k]);
        }
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  for (int i = 0; i < n - 1; ++i) {
    v(n - 1, i) = v(i, i);
    v(i, i) = 1.0;
    const double h = d[i + 1];
    if (h != 0.0) {
      for (int k = 0; k <= i; ++k) d[k] = v(k, i + 1) / h;
      for (int j = 0; j <= i; ++j) {
        double g = 0.0;
        for (int k = 0; k <= i; ++k) g += v(k, i + 1) * v(k, j);
        for (int k = 0; k <= i; ++k) v(k, j) -= g * d[k];
      }
    }
    for (int k = 0; k <= i; ++k) v(k, i + 1) = 0.0;
  }
  for (int j = 0; j < n; ++j) {
    d[j] = v(n - 1, j);
    v(n - 1, j) = 0.0;
  }
  v(n - 1, n - 1) = 1.0;
  e[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal form produced by Tred2,
// updating the accumulated transform in `v`. Public-domain EISPACK tql2.
void Tql2(Matrix* v_ptr, std::vector<double>* d_ptr,
          std::vector<double>* e_ptr) {
  Matrix& v = *v_ptr;
  std::vector<double>& d = *d_ptr;
  std::vector<double>& e = *e_ptr;
  const int n = static_cast<int>(v.rows());

  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::pow(2.0, -52.0);
  for (int l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::fabs(d[l]) + std::fabs(e[l]));
    int m = l;
    while (m < n) {
      if (std::fabs(e[m]) <= eps * tst1) break;
      ++m;
    }
    if (m > l) {
      int iter = 0;
      do {
        ++iter;
        KSHAPE_CHECK_MSG(iter <= 80, "tql2 failed to converge");
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = std::hypot(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (int i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (int i = m - 1; i >= l; --i) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = std::hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          for (int k = 0; k < n; ++k) {
            h = v(k, i + 1);
            v(k, i + 1) = s * v(k, i) + c * h;
            v(k, i) = c * v(k, i) - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::fabs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }
}

}  // namespace

EigenDecomposition SymmetricEigen(const Matrix& a) {
  KSHAPE_CHECK_MSG(a.IsSymmetric(1e-8), "SymmetricEigen requires symmetry");
  const std::size_t n = a.rows();
  KSHAPE_CHECK(n >= 1);

  EigenDecomposition decomp;
  decomp.eigenvectors = a;
  decomp.eigenvalues.assign(n, 0.0);
  std::vector<double> e(n, 0.0);

  if (n == 1) {
    decomp.eigenvalues[0] = a(0, 0);
    decomp.eigenvectors = Matrix::Identity(1);
    return decomp;
  }

  Tred2(&decomp.eigenvectors, &decomp.eigenvalues, &e);
  Tql2(&decomp.eigenvectors, &decomp.eigenvalues, &e);
  SortAscending(&decomp);
  return decomp;
}

namespace {

// How many times DominantEigenvector has fallen all the way through to the
// O(m^3) SymmetricEigen path; tests pin stall fixes by asserting it stays 0.
std::atomic<long long> g_full_fallbacks{0};

// Residual acceptance threshold of a stalled iterate, relative to
// max(|lambda|, 1): when ||A v - lambda v|| is this small, v is an
// eigenvector to far better accuracy than shape extraction needs, even
// though the successive-iterate test never fired (near-tied top eigenpairs
// keep the iterate rotating inside the top eigenspace forever — any vector
// in that eigenspace maximizes the Rayleigh quotient equally well).
constexpr double kResidualAcceptTol = 1e-8;

// Shifted restarts attempted before conceding to SymmetricEigen. Each costs
// at most max_iters O(m^2) products — noise next to the O(m^3) it avoids.
constexpr int kMaxShiftedRestarts = 2;

enum class PowerStatus { kConverged, kAnnihilated, kStalled };

// Power iteration on A + shift*I (sharing eigenvectors with A, eigenvalues
// translated by shift), converging when successive normalized iterates agree
// up to sign within tol. shift == 0.0 skips the axpy entirely so the
// unshifted first phase is arithmetic-for-arithmetic the historical loop.
// A is only touched through `matvec`, which fully overwrites its output.
PowerStatus RunPowerIteration(const MatVecFn& matvec, double shift,
                              int max_iters, double tol,
                              std::vector<double>* v_ptr) {
  std::vector<double>& v = *v_ptr;
  const std::size_t n = v.size();
  std::vector<double> w(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    matvec(v, &w);
    if (shift != 0.0) {
      for (std::size_t i = 0; i < n; ++i) w[i] += shift * v[i];
    }
    if (NormalizeInPlace(&w) == 0.0) return PowerStatus::kAnnihilated;
    double diff_minus = 0.0;
    double diff_plus = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      diff_minus += (w[i] - v[i]) * (w[i] - v[i]);
      diff_plus += (w[i] + v[i]) * (w[i] + v[i]);
    }
    std::swap(v, w);
    if (std::min(std::sqrt(diff_minus), std::sqrt(diff_plus)) < tol) {
      return PowerStatus::kConverged;
    }
  }
  return PowerStatus::kStalled;
}

// ||A v - lambda v|| for unit-norm v.
double EigenResidual(const MatVecFn& matvec, const std::vector<double>& v,
                     double lambda) {
  std::vector<double> av(v.size());
  matvec(v, &av);
  double r2 = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const double r = av[i] - lambda * v[i];
    r2 += r * r;
  }
  return std::sqrt(r2);
}

// Rayleigh quotient through the operator, sharing the arithmetic of the
// Matrix overload below (denominator first, then one matvec, then the dot).
double RayleighQuotientOp(const MatVecFn& matvec,
                          const std::vector<double>& v) {
  const double denom = Dot(v, v);
  KSHAPE_CHECK_MSG(denom > 0.0, "Rayleigh quotient of the zero vector");
  std::vector<double> av(v.size());
  matvec(v, &av);
  return Dot(v, av) / denom;
}

}  // namespace

long long DominantEigenvectorFallbackCountForTesting() {
  return g_full_fallbacks.load(std::memory_order_relaxed);
}

void ResetDominantEigenvectorFallbackCountForTesting() {
  g_full_fallbacks.store(0, std::memory_order_relaxed);
}

std::vector<double> DominantEigenvectorOp(
    std::size_t n, const MatVecFn& matvec, const MaterializeFn& materialize,
    common::Rng* rng, int max_iters, double tol, double* eigenvalue,
    const std::vector<double>* initial) {
  KSHAPE_CHECK(n >= 1);
  KSHAPE_CHECK(rng != nullptr);

  std::vector<double> v;
  bool warm = false;
  if (initial != nullptr && initial->size() == n) {
    v = *initial;
    warm = NormalizeInPlace(&v) > 0.0;
  }
  if (!warm) {
    // Cold start: random direction (almost surely non-orthogonal to the
    // dominant eigenvector).
    v.resize(n);
    for (auto& x : v) x = rng->Gaussian();
    NormalizeInPlace(&v);
  }

  PowerStatus status = RunPowerIteration(matvec, 0.0, max_iters, tol, &v);
  if (status == PowerStatus::kAnnihilated) {
    // The operator annihilated v: it is (numerically) zero on this subspace;
    // any unit vector is a valid answer for a zero operator.
    if (eigenvalue != nullptr) *eigenvalue = 0.0;
    return v;
  }
  if (status == PowerStatus::kConverged) {
    if (eigenvalue != nullptr) *eigenvalue = RayleighQuotientOp(matvec, v);
    return v;
  }

  // Stalled: the top eigenpairs are nearly tied (in magnitude). Two cheap
  // escapes run before the O(m^3) full decomposition:
  //  1. Residual acceptance — when the top eigenVALUES tie (the PSD shape-
  //     extraction case: e.g. a uniformly-phase-shifted corpus whose sin/cos
  //     pair is degenerate), the iterate stops moving *between* eigenvectors
  //     but keeps rotating *within* the top eigenspace; its residual is tiny
  //     and any such vector is an equally valid maximizer.
  //  2. Shifted restarts — when a tie is in magnitude only (lambda_min ~
  //     -lambda_max), iterating on A + shift*I with shift ~ |lambda| breaks
  //     the sign oscillation: the negative end maps near zero while the
  //     dominant end doubles.
  double lambda = RayleighQuotientOp(matvec, v);
  if (EigenResidual(matvec, v, lambda) <=
      kResidualAcceptTol * std::max(std::fabs(lambda), 1.0)) {
    if (eigenvalue != nullptr) *eigenvalue = lambda;
    return v;
  }
  for (int restart = 0; restart < kMaxShiftedRestarts; ++restart) {
    const double shift = std::max(std::fabs(lambda), 1.0);
    status = RunPowerIteration(matvec, shift, max_iters, tol, &v);
    if (status == PowerStatus::kAnnihilated) break;
    lambda = RayleighQuotientOp(matvec, v);
    if (status == PowerStatus::kConverged ||
        EigenResidual(matvec, v, lambda) <=
            kResidualAcceptTol * std::max(std::fabs(lambda), 1.0)) {
      if (eigenvalue != nullptr) *eigenvalue = lambda;
      return v;
    }
  }

  // Last resort: the deterministic full decomposition, on the lazily
  // materialized dense form — the only point in the call that touches it.
  g_full_fallbacks.fetch_add(1, std::memory_order_relaxed);
  EigenDecomposition decomp = SymmetricEigen(materialize());
  std::size_t best = 0;
  for (std::size_t j = 1; j < n; ++j) {
    if (std::fabs(decomp.eigenvalues[j]) >
        std::fabs(decomp.eigenvalues[best])) {
      best = j;
    }
  }
  if (eigenvalue != nullptr) *eigenvalue = decomp.eigenvalues[best];
  return decomp.eigenvectors.ColVector(best);
}

std::vector<double> DominantEigenvector(const Matrix& a, common::Rng* rng,
                                        int max_iters, double tol,
                                        double* eigenvalue,
                                        const std::vector<double>* initial) {
  KSHAPE_CHECK(a.rows() == a.cols());
  // The dense path is the operator path with MultiplyVector as the matvec:
  // identical kernel calls in identical order, so results (and every stall
  // decision) are bit-identical to iterating on the matrix directly.
  const MatVecFn matvec = [&a](const std::vector<double>& v,
                               std::vector<double>* out) {
    *out = a.MultiplyVector(v);
  };
  return DominantEigenvectorOp(
      a.rows(), matvec, [&a] { return a; }, rng, max_iters, tol, eigenvalue,
      initial);
}

double RayleighQuotient(const Matrix& a, const std::vector<double>& v) {
  const double denom = Dot(v, v);
  KSHAPE_CHECK_MSG(denom > 0.0, "Rayleigh quotient of the zero vector");
  return Dot(v, a.MultiplyVector(v)) / denom;
}

}  // namespace kshape::linalg
