#include "core/sbd_engine.h"

#include "common/check.h"
#include "common/parallel.h"
#include "linalg/matrix.h"
#include "simd/dispatch.h"

namespace kshape::core {

namespace {

// Peak of the raw cross-correlation of two cached full-complex spectra. The
// cc buffer is thread_local so concurrent per-pair evaluations write
// disjoint scratch.
simd::Peak PeakFromSpectra(const std::vector<fft::Complex>& x_spectrum,
                           const std::vector<fft::Complex>& y_spectrum,
                           std::size_t m) {
  static thread_local std::vector<double> cc;
  fft::CrossCorrelationFromSpectra(x_spectrum, y_spectrum, m, &cc);
  return simd::PeakScan(cc);
}

// Half-spectrum counterpart: SoA multiply-conjugate + one inverse real
// transform on the caller-supplied (batch-amortized) plan.
simd::Peak PeakFromRfft(const fft::RfftPlan& plan, const fft::RfftView& x,
                        const fft::RfftView& y, std::size_t m) {
  static thread_local std::vector<double> cc;
  fft::CrossCorrelationFromRfft(plan, x, y, m, &cc);
  return simd::PeakScan(cc);
}

}  // namespace

SbdEngine::SbdEngine(const tseries::SeriesBatch& series,
                     CrossCorrelationImpl impl, bool use_half_spectrum) {
  KSHAPE_CHECK(!series.empty());
  KSHAPE_CHECK_MSG(impl != CrossCorrelationImpl::kNaive,
                   "SbdEngine caches spectra; the naive path has none");
  m_ = series.length();
  KSHAPE_CHECK(m_ >= 1);
  fft_len_ = impl == CrossCorrelationImpl::kFft
                 ? fft::NextPowerOfTwo(2 * m_ - 1)
                 : 2 * m_ - 1;
  half_ = use_half_spectrum;

  const std::size_t n = series.size();
  norms_.resize(n);
  if (half_) {
    // One plan lookup for the whole batch, one contiguous SoA pool for all
    // spectra: the pre-pass below only runs transforms into disjoint slots.
    batch_.emplace(n, fft_len_);
  } else {
    spectra_.resize(n);
  }
  // Deterministic pre-pass: each index writes only its own spectrum/norm
  // slot, and each per-series FFT is a fixed arithmetic sequence, so the
  // cache contents are bit-identical at every thread count.
  common::ParallelFor(0, n, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (half_) {
        batch_->Transform(i, series[i]);
      } else {
        spectra_[i] = fft::Spectrum(series[i], fft_len_);
      }
      norms_[i] = linalg::Norm(series[i]);
    }
  });
}

SbdEngine::Query SbdEngine::MakeQuery(tseries::SeriesView q) const {
  KSHAPE_CHECK_MSG(q.size() == m_, "query length mismatch");
  Query query;
  if (half_) {
    query.rspectrum = fft::RfftForward(q, fft_len_);
  } else {
    query.spectrum = fft::Spectrum(q, fft_len_);
  }
  query.norm = linalg::Norm(q);
  return query;
}

simd::Peak SbdEngine::RawPeak(std::size_t i, std::size_t j) const {
  if (half_) {
    return PeakFromRfft(batch_->plan(), batch_->view(i), batch_->view(j), m_);
  }
  return PeakFromSpectra(spectra_[i], spectra_[j], m_);
}

simd::Peak SbdEngine::RawPeak(const Query& q, std::size_t i) const {
  if (half_) {
    KSHAPE_CHECK_MSG(q.rspectrum.fft_len == fft_len_,
                     "query minted by a different engine configuration");
    return PeakFromRfft(batch_->plan(), q.rspectrum.view(), batch_->view(i),
                        m_);
  }
  KSHAPE_CHECK_MSG(q.spectrum.size() == fft_len_,
                   "query minted by a different engine configuration");
  return PeakFromSpectra(q.spectrum, spectra_[i], m_);
}

double SbdEngine::Distance(std::size_t i, std::size_t j) const {
  KSHAPE_CHECK(i < size() && j < size());
  const double den = norms_[i] * norms_[j];
  if (den == 0.0) return 1.0;
  return 1.0 - RawPeak(i, j).value * (1.0 / den);
}

double SbdEngine::Distance(const Query& q, std::size_t i) const {
  KSHAPE_CHECK(i < size());
  const double den = q.norm * norms_[i];
  if (den == 0.0) return 1.0;
  return 1.0 - RawPeak(q, i).value * (1.0 / den);
}

NccPeak SbdEngine::MaxNcc(const Query& q, std::size_t i) const {
  KSHAPE_CHECK(i < size());
  NccPeak peak;
  const double den = q.norm * norms_[i];
  if (den == 0.0) {
    // Mirror MaxNcc over the all-zero NCCc sequence: value 0 at index 0.
    peak.value = 0.0;
    peak.shift = -static_cast<int>(m_ - 1);
    return peak;
  }
  const simd::Peak raw = RawPeak(q, i);
  peak.value = raw.value * (1.0 / den);
  peak.shift = static_cast<int>(raw.index) - static_cast<int>(m_ - 1);
  return peak;
}

void SbdEngine::DistanceToAll(const Query& q, std::vector<double>* out) const {
  const std::size_t n = size();
  out->resize(n);
  common::ParallelFor(0, n, 16, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      (*out)[i] = Distance(q, i);
    }
  });
}

std::vector<double> SbdEngine::DistanceToAll(tseries::SeriesView query) const {
  std::vector<double> out;
  DistanceToAll(MakeQuery(query), &out);
  return out;
}

linalg::Matrix SbdEngine::PairwiseMatrix() const {
  const std::size_t n = size();
  linalg::Matrix d(n, n);
  // Same disjoint-write row pattern (and therefore the same bitwise
  // thread-count invariance) as the generic PairwiseDistanceMatrix builder.
  common::ParallelFor(0, n, 1, [&](std::size_t row_begin,
                                   std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dist = Distance(i, j);
        d(i, j) = dist;
        d(j, i) = dist;
      }
    }
  });
  return d;
}

void SbdEngine::PairwiseFlat(std::vector<double>* flat) const {
  const std::size_t n = size();
  flat->assign(n * n, 0.0);
  common::ParallelFor(0, n, 1, [&](std::size_t row_begin,
                                   std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dist = Distance(i, j);
        (*flat)[i * n + j] = dist;
        (*flat)[j * n + i] = dist;
      }
    }
  });
}

}  // namespace kshape::core
