#include "core/sbd_engine.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/env_gate.h"
#include "common/parallel.h"
#include "linalg/matrix.h"
#include "simd/dispatch.h"

namespace kshape::core {

namespace {

// Checkpoint cadence of the spectral-bound suffix arrays; must match the
// abs_product_partial_sums kernel contract (16 elements per band).
constexpr std::size_t kBoundCheckpoint = 16;

// Fills one weighted magnitude plane mag[k] = sqrt(w_k |X_k|^2) over the
// packed bins (w = 2 on interior bins whose conjugate mirror was folded in,
// 1 on DC and — for even fft_len — Nyquist), then the checkpointed suffix
// norms tail[c] = sqrt(Σ_{k >= 16c} mag[k]^2). Sequential per series, so the
// plane contents are a fixed arithmetic sequence regardless of thread count.
// `bin(k)` returns the packed bin (re, im).
template <typename BinFn>
void FillBoundPlane(std::size_t fft_len, std::size_t bins, std::size_t ntail,
                    BinFn bin, double* mag, double* tail) {
  const bool has_nyquist = (fft_len % 2 == 0) && bins >= 2;
  for (std::size_t k = 0; k < bins; ++k) {
    const auto [br, bi] = bin(k);
    const double w = (k == 0 || (has_nyquist && k == bins - 1)) ? 1.0 : 2.0;
    mag[k] = std::sqrt(w * (br * br + bi * bi));
  }
  double energy = 0.0;
  std::size_t k = bins;
  for (std::size_t c = ntail; c-- > 0;) {
    const std::size_t lo = kBoundCheckpoint * c;
    for (; k > lo; --k) energy += mag[k - 1] * mag[k - 1];
    tail[c] = std::sqrt(energy);
  }
}

// Lag-scan early abandoning (the inverse-transform-side sibling of the
// spectral NCC bound). Chunk cadence of the scan and the relative margin the
// stop rule keeps below the best-so-far: |cc[t]| <= sqrt(Σ_{u >= t} cc[u]^2),
// so once the remaining suffix energy certifies every unseen lag is strictly
// below the running peak, the rest of the buffer cannot change the result.
constexpr std::size_t kPeakChunk = 64;
constexpr double kPeakAbandonMargin = 1e-9;

// Process-wide lag telemetry (relaxed: counters only, no ordering needed).
std::atomic<long long> g_peak_lags_scanned{0};
std::atomic<long long> g_peak_lags_skipped{0};

// Peak of the cc lag buffer, abandoning the tail when the checkpointed
// suffix energies prove it cannot win. Bit-identical to simd::PeakScan(cc):
// a chunk is skipped only when sqrt(suffix) <= best·(1 - margin); summation
// rounding underestimates the suffix norm by far less than the margin, so
// every skipped lag is *strictly* below best — it can neither beat the value
// nor steal the lowest-index tie-break. The strict-greater chunk combine
// preserves the kernel's lowest-index-of-the-max contract across chunk
// boundaries. Gated on KSHAPE_PRUNE like every other bound-driven shortcut.
simd::Peak PeakScanWithAbandon(const std::vector<double>& cc) {
  const std::size_t n = cc.size();
  if (!PruningEnabled() || n <= kPeakChunk) {
    g_peak_lags_scanned.fetch_add(static_cast<long long>(n),
                                  std::memory_order_relaxed);
    return simd::PeakScan(cc);
  }
  // Checkpointed suffix energies: suffix[c] = Σ_{t >= 64c} cc[t]^2, built by
  // one backward pass (cheap next to the inverse transform that made cc).
  static thread_local std::vector<double> suffix;
  const std::size_t ntail = (n + kPeakChunk - 1) / kPeakChunk;
  suffix.resize(ntail);
  double energy = 0.0;
  for (std::size_t c = ntail; c-- > 0;) {
    const std::size_t lo = c * kPeakChunk;
    std::size_t t = c + 1 == ntail ? n : lo + kPeakChunk;
    for (; t > lo; --t) energy += cc[t - 1] * cc[t - 1];
    suffix[c] = energy;
  }
  simd::Peak best;
  best.value = -std::numeric_limits<double>::infinity();
  std::size_t c = 0;
  for (; c < ntail; ++c) {
    if (best.value > 0.0 &&
        std::sqrt(suffix[c]) <= best.value * (1.0 - kPeakAbandonMargin)) {
      break;
    }
    const std::size_t lo = c * kPeakChunk;
    const std::size_t hi = c + 1 == ntail ? n : lo + kPeakChunk;
    const simd::Peak p = simd::Active().peak_scan(cc.data() + lo, hi - lo);
    if (p.value > best.value) {
      best.value = p.value;
      best.index = lo + p.index;
    }
  }
  const std::size_t scanned = c == ntail ? n : c * kPeakChunk;
  g_peak_lags_scanned.fetch_add(static_cast<long long>(scanned),
                                std::memory_order_relaxed);
  g_peak_lags_skipped.fetch_add(static_cast<long long>(n - scanned),
                                std::memory_order_relaxed);
  return best;
}

// Peak of the raw cross-correlation of two cached full-complex spectra. The
// cc buffer is thread_local so concurrent per-pair evaluations write
// disjoint scratch.
simd::Peak PeakFromSpectra(const std::vector<fft::Complex>& x_spectrum,
                           const std::vector<fft::Complex>& y_spectrum,
                           std::size_t m) {
  static thread_local std::vector<double> cc;
  fft::CrossCorrelationFromSpectra(x_spectrum, y_spectrum, m, &cc);
  return PeakScanWithAbandon(cc);
}

// Half-spectrum counterpart: SoA multiply-conjugate + one inverse real
// transform on the caller-supplied (batch-amortized) plan.
simd::Peak PeakFromRfft(const fft::RfftPlan& plan, const fft::RfftView& x,
                        const fft::RfftView& y, std::size_t m) {
  static thread_local std::vector<double> cc;
  fft::CrossCorrelationFromRfft(plan, x, y, m, &cc);
  return PeakScanWithAbandon(cc);
}

common::EnvGate g_pruning{"KSHAPE_PRUNE"};

}  // namespace

bool PruningEnabled() { return g_pruning.enabled(); }

void SetPruningEnabledForTesting(bool enabled) {
  g_pruning.SetForTesting(enabled);
}

PeakScanTelemetry PeakScanStats() {
  PeakScanTelemetry t;
  t.lags_scanned = g_peak_lags_scanned.load(std::memory_order_relaxed);
  t.lags_skipped = g_peak_lags_skipped.load(std::memory_order_relaxed);
  return t;
}

void ResetPeakScanStatsForTesting() {
  g_peak_lags_scanned.store(0, std::memory_order_relaxed);
  g_peak_lags_skipped.store(0, std::memory_order_relaxed);
}

SbdEngine::SbdEngine(const tseries::SeriesBatch& series,
                     CrossCorrelationImpl impl, bool use_half_spectrum,
                     bool build_bound_planes) {
  KSHAPE_CHECK(!series.empty());
  KSHAPE_CHECK_MSG(impl != CrossCorrelationImpl::kNaive,
                   "SbdEngine caches spectra; the naive path has none");
  m_ = series.length();
  KSHAPE_CHECK(m_ >= 1);
  fft_len_ = impl == CrossCorrelationImpl::kFft
                 ? fft::NextPowerOfTwo(2 * m_ - 1)
                 : 2 * m_ - 1;
  half_ = use_half_spectrum;

  const std::size_t n = series.size();
  norms_.resize(n);
  if (half_) {
    // One plan lookup for the whole batch, one contiguous SoA pool for all
    // spectra: the pre-pass below only runs transforms into disjoint slots.
    batch_.emplace(n, fft_len_);
  } else {
    spectra_.resize(n);
  }
  if (build_bound_planes) {
    bound_bins_ = fft::RfftBins(fft_len_);
    bound_tails_ = bound_bins_ / kBoundCheckpoint + 1;
    mags_.resize(n * bound_bins_);
    tails_.resize(n * bound_tails_);
  }
  // Deterministic pre-pass: each index writes only its own spectrum/norm
  // slot, and each per-series FFT is a fixed arithmetic sequence, so the
  // cache contents are bit-identical at every thread count.
  common::ParallelFor(0, n, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      if (half_) {
        batch_->Transform(i, series[i]);
      } else {
        spectra_[i] = fft::Spectrum(series[i], fft_len_);
      }
      norms_[i] = linalg::Norm(series[i]);
      if (build_bound_planes) {
        double* mag = mags_.data() + i * bound_bins_;
        double* tail = tails_.data() + i * bound_tails_;
        if (half_) {
          const fft::RfftView v = batch_->view(i);
          FillBoundPlane(
              fft_len_, bound_bins_, bound_tails_,
              [&](std::size_t k) { return std::pair(v.re[k], v.im[k]); }, mag,
              tail);
        } else {
          const std::vector<fft::Complex>& s = spectra_[i];
          FillBoundPlane(
              fft_len_, bound_bins_, bound_tails_,
              [&](std::size_t k) { return std::pair(s[k].real(), s[k].imag()); },
              mag, tail);
        }
      }
    }
  });
}

SbdEngine::Query SbdEngine::MakeQuery(tseries::SeriesView q) const {
  return MakeQueryFor(q, m_, fft_len_, half_, has_bound_planes());
}

SbdEngine::Query SbdEngine::MakeQueryFor(tseries::SeriesView q, std::size_t m,
                                         std::size_t fft_len,
                                         bool use_half_spectrum,
                                         bool build_bound_planes) {
  KSHAPE_CHECK_MSG(q.size() == m, "query length mismatch");
  KSHAPE_CHECK(fft_len >= 2 * m - 1);
  Query query;
  if (use_half_spectrum) {
    query.rspectrum = fft::RfftForward(q, fft_len);
  } else {
    query.spectrum = fft::Spectrum(q, fft_len);
  }
  query.norm = linalg::Norm(q);
  if (build_bound_planes) {
    // Same derived plane geometry as the engine constructor.
    const std::size_t bins = fft::RfftBins(fft_len);
    const std::size_t ntail = bins / kBoundCheckpoint + 1;
    query.mag.resize(bins);
    query.tail.resize(ntail);
    if (use_half_spectrum) {
      const fft::RfftView v = query.rspectrum.view();
      FillBoundPlane(
          fft_len, bins, ntail,
          [&](std::size_t k) { return std::pair(v.re[k], v.im[k]); },
          query.mag.data(), query.tail.data());
    } else {
      const std::vector<fft::Complex>& s = query.spectrum;
      FillBoundPlane(
          fft_len, bins, ntail,
          [&](std::size_t k) { return std::pair(s[k].real(), s[k].imag()); },
          query.mag.data(), query.tail.data());
    }
  }
  return query;
}

simd::Peak SbdEngine::RawPeak(std::size_t i, std::size_t j) const {
  if (half_) {
    return PeakFromRfft(batch_->plan(), batch_->view(i), batch_->view(j), m_);
  }
  return PeakFromSpectra(spectra_[i], spectra_[j], m_);
}

simd::Peak SbdEngine::RawPeak(const Query& q, std::size_t i) const {
  if (half_) {
    KSHAPE_CHECK_MSG(q.rspectrum.fft_len == fft_len_,
                     "query minted by a different engine configuration");
    return PeakFromRfft(batch_->plan(), q.rspectrum.view(), batch_->view(i),
                        m_);
  }
  KSHAPE_CHECK_MSG(q.spectrum.size() == fft_len_,
                   "query minted by a different engine configuration");
  return PeakFromSpectra(q.spectrum, spectra_[i], m_);
}

double SbdEngine::Distance(std::size_t i, std::size_t j) const {
  KSHAPE_CHECK(i < size() && j < size());
  const double den = norms_[i] * norms_[j];
  if (den == 0.0) return 1.0;
  return 1.0 - RawPeak(i, j).value * (1.0 / den);
}

double SbdEngine::Distance(const Query& q, std::size_t i) const {
  KSHAPE_CHECK(i < size());
  const double den = q.norm * norms_[i];
  if (den == 0.0) return 1.0;
  return 1.0 - RawPeak(q, i).value * (1.0 / den);
}

NccPeak SbdEngine::MaxNcc(const Query& q, std::size_t i) const {
  KSHAPE_CHECK(i < size());
  NccPeak peak;
  const double den = q.norm * norms_[i];
  if (den == 0.0) {
    // Mirror MaxNcc over the all-zero NCCc sequence: value 0 at index 0.
    peak.value = 0.0;
    peak.shift = -static_cast<int>(m_ - 1);
    return peak;
  }
  const simd::Peak raw = RawPeak(q, i);
  peak.value = raw.value * (1.0 / den);
  peak.shift = static_cast<int>(raw.index) - static_cast<int>(m_ - 1);
  return peak;
}

void SbdEngine::DistanceToAll(const Query& q, std::vector<double>* out) const {
  const std::size_t n = size();
  out->resize(n);
  common::ParallelFor(0, n, 16, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      (*out)[i] = Distance(q, i);
    }
  });
}

std::vector<double> SbdEngine::DistanceToAll(tseries::SeriesView query) const {
  std::vector<double> out;
  DistanceToAll(MakeQuery(query), &out);
  return out;
}

linalg::Matrix SbdEngine::PairwiseMatrix() const {
  const std::size_t n = size();
  linalg::Matrix d(n, n);
  // Same disjoint-write row pattern (and therefore the same bitwise
  // thread-count invariance) as the generic PairwiseDistanceMatrix builder.
  common::ParallelFor(0, n, 1, [&](std::size_t row_begin,
                                   std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dist = Distance(i, j);
        d(i, j) = dist;
        d(j, i) = dist;
      }
    }
  });
  return d;
}

double SbdEngine::NccUpperBound(const Query& q, std::size_t i) const {
  KSHAPE_CHECK(i < size());
  KSHAPE_CHECK_MSG(has_bound_planes() && !q.mag.empty(),
                   "spectral bound requires bound planes on engine and query");
  const double den = q.norm * norms_[i];
  if (den == 0.0) return 0.0;
  const double s =
      simd::Active().dot(q.mag.data(), mags_.data() + i * bound_bins_,
                         bound_bins_);
  return s / (static_cast<double>(fft_len_) * den);
}

double SbdEngine::DistanceWithAbandon(const Query& q, std::size_t i,
                                      double cutoff, bool* abandoned) const {
  KSHAPE_CHECK(i < size());
  KSHAPE_CHECK_MSG(has_bound_planes() && !q.mag.empty(),
                   "spectral bound requires bound planes on engine and query");
  *abandoned = false;
  const double den = q.norm * norms_[i];
  if (den == 0.0) return 1.0;  // Sbd() zero-norm convention, exact.
  // SBD > cutoff  ⟺  peak NCC < 1 - cutoff  ⟸  Σ w|Q||X| < (1-cutoff)·N·den.
  const double n_den = static_cast<double>(fft_len_) * den;
  const double threshold = (1.0 - cutoff) * n_den;
  const double s = simd::Active().abs_product_partial_sums(
      q.mag.data(), mags_.data() + i * bound_bins_, q.tail.data(),
      tails_.data() + i * bound_tails_, bound_bins_, threshold);
  if (s < threshold) {
    // s is an upper bound on the full magnitude sum, so 1 - s/(N·den) is a
    // valid lower bound on the distance, and it exceeds cutoff.
    *abandoned = true;
    return 1.0 - s / n_den;
  }
  return Distance(q, i);
}

void SbdEngine::PairwiseFlat(std::vector<double>* flat) const {
  const std::size_t n = size();
  flat->assign(n * n, 0.0);
  common::ParallelFor(0, n, 1, [&](std::size_t row_begin,
                                   std::size_t row_end) {
    for (std::size_t i = row_begin; i < row_end; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double dist = Distance(i, j);
        (*flat)[i * n + j] = dist;
        (*flat)[j * n + i] = dist;
      }
    }
  });
}

}  // namespace kshape::core
