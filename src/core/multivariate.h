#ifndef KSHAPE_CORE_MULTIVARIATE_H_
#define KSHAPE_CORE_MULTIVARIATE_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/shape_extraction.h"
#include "tseries/time_series.h"

namespace kshape::core {

/// Multivariate extension of k-Shape (future-work direction of the paper,
/// later developed in the k-Shape follow-up literature): a d-channel series
/// is d equal-length univariate channels observed simultaneously, and all
/// channels must shift TOGETHER — a heartbeat recorded by several leads is
/// delayed by one offset, not one per lead.
struct MultivariateSeries {
  /// channels[c] is the c-th univariate channel; all share one length.
  std::vector<tseries::Series> channels;

  std::size_t num_channels() const { return channels.size(); }
  std::size_t length() const {
    return channels.empty() ? 0 : channels[0].size();
  }
};

/// Z-normalizes every channel independently.
void ZNormalizeMultivariate(MultivariateSeries* series);

/// Result of the multivariate SBD.
struct MultivariateSbdResult {
  double distance = 0.0;       // 1 - max_w summed NCCc, in [0, 2].
  int shift = 0;               // The single common shift applied to y.
  MultivariateSeries aligned_y;
};

/// Multivariate shape-based distance: the cross-correlation sequences of the
/// channels are summed per shift (one common lag for all channels) and
/// normalized by the geometric mean of the total autocorrelations:
///   mSBD(x, y) = 1 - max_w  sum_c CC_w(x_c, y_c)
///                          / sqrt(sum_c R0(x_c,x_c) * sum_c R0(y_c,y_c)).
/// Reduces exactly to Sbd() for d = 1. Requires matching channel counts and
/// lengths; zero-norm inputs yield distance 1.
MultivariateSbdResult MultivariateSbd(const MultivariateSeries& x,
                                      const MultivariateSeries& y);

/// Multivariate shape extraction: members are aligned to the reference with
/// the common mSBD shift, then each channel's centroid is extracted with the
/// univariate Algorithm 2. An all-zero reference skips alignment.
MultivariateSeries ExtractMultivariateShape(
    const std::vector<MultivariateSeries>& members,
    const MultivariateSeries& reference, common::Rng* rng,
    const ShapeExtractionOptions& options = {});

/// Output of MultivariateKShape.
struct MultivariateClusteringResult {
  std::vector<int> assignments;
  std::vector<MultivariateSeries> centroids;
  int iterations = 0;
  bool converged = false;

  /// Repair telemetry, mirroring cluster::ClusteringResult: empty-cluster
  /// re-seeds across all iterations, and final centroids whose every channel
  /// is zero-norm while the cluster holds members.
  int empty_cluster_reseeds = 0;
  int degenerate_centroids = 0;
};

/// The data contract MultivariateKShape::Cluster assumes: a non-empty set of
/// series agreeing in channel count and per-channel length, with >= 1
/// channel, no empty channels, only finite values, and 1 <= k <= n. Returns
/// InvalidArgument/OutOfRange describing the first violation.
common::Status ValidateMultivariateInputs(
    const std::vector<MultivariateSeries>& series, int k);

/// Options for multivariate k-Shape.
struct MultivariateKShapeOptions {
  int max_iterations = 100;
  ShapeExtractionOptions shape_options;

  /// When true (default), Cluster() caches every channel's forward spectrum
  /// once per call (and every centroid channel's once per iteration), so each
  /// mSBD assignment distance is d inverse transforms instead of d packed
  /// forward + inverse pairs. Cached distances agree with MultivariateSbd()
  /// within a tight tolerance (not bitwise — see core/sbd_engine.h for the
  /// contract); the cached pipeline itself is thread-count-invariant. False
  /// forces per-pair MultivariateSbd(), kept for ablation.
  bool use_spectrum_cache = true;
};

/// k-Shape over multivariate series: Algorithm 3 with mSBD assignments and
/// per-channel shape extraction refinement.
class MultivariateKShape {
 public:
  explicit MultivariateKShape(MultivariateKShapeOptions options = {});

  /// Partitions `series` into k clusters. All series must agree in channel
  /// count and length; channels should be z-normalized. Violations of the
  /// data contract are programmer errors here and abort; untrusted data must
  /// go through TryCluster.
  MultivariateClusteringResult Cluster(
      const std::vector<MultivariateSeries>& series, int k,
      common::Rng* rng) const;

  /// Library-boundary entry point for untrusted data: validates via
  /// ValidateMultivariateInputs and returns a Status error instead of
  /// aborting on malformed input.
  common::StatusOr<MultivariateClusteringResult> TryCluster(
      const std::vector<MultivariateSeries>& series, int k,
      common::Rng* rng) const;

 private:
  MultivariateKShapeOptions options_;
};

}  // namespace kshape::core

#endif  // KSHAPE_CORE_MULTIVARIATE_H_
