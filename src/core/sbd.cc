#include "core/sbd.h"

#include <cmath>
#include <memory>
#include <string>

#include "common/check.h"
#include "core/sbd_engine.h"
#include "fft/fft.h"
#include "fft/rfft.h"
#include "linalg/matrix.h"
#include "model/assigner.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"

namespace kshape::core {

const char* NccNormalizationName(NccNormalization norm) {
  switch (norm) {
    case NccNormalization::kBiased:
      return "NCCb";
    case NccNormalization::kUnbiased:
      return "NCCu";
    case NccNormalization::kCoefficient:
      return "NCCc";
  }
  return "NCC?";
}

namespace {

std::vector<double> RawCrossCorrelation(tseries::SeriesView x,
                                        tseries::SeriesView y,
                                        CrossCorrelationImpl impl) {
  switch (impl) {
    case CrossCorrelationImpl::kFft:
      // Half-spectrum path (the default): two packed forward transforms at
      // half size plus one half-size inverse. The pre-PR full-complex
      // pack-two-reals trick stays behind KSHAPE_HALF_SPECTRUM=off; the two
      // agree to a tight epsilon, not bitwise.
      if (fft::HalfSpectrumEnabled()) {
        return fft::RfftCrossCorrelation(x, y);
      }
      return fft::CrossCorrelationFft(x, y);
    case CrossCorrelationImpl::kFftNoPow2:
      return fft::CrossCorrelationFftNoPow2(x, y);
    case CrossCorrelationImpl::kNaive:
      return fft::CrossCorrelationNaive(x, y);
  }
  KSHAPE_CHECK_MSG(false, "unknown CrossCorrelationImpl");
  return {};
}

}  // namespace

std::vector<double> NccSequence(tseries::SeriesView x, tseries::SeriesView y,
                                NccNormalization norm,
                                CrossCorrelationImpl impl) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "NCC requires equal lengths");
  const int m = static_cast<int>(x.size());
  std::vector<double> cc = RawCrossCorrelation(x, y, impl);

  switch (norm) {
    case NccNormalization::kBiased: {
      const double inv_m = 1.0 / static_cast<double>(m);
      for (double& v : cc) v *= inv_m;
      break;
    }
    case NccNormalization::kUnbiased: {
      for (int i = 0; i < 2 * m - 1; ++i) {
        const int overlap = m - std::abs(i - (m - 1));
        cc[i] /= static_cast<double>(overlap);
      }
      break;
    }
    case NccNormalization::kCoefficient: {
      const double den = linalg::Norm(x) * linalg::Norm(y);
      if (den == 0.0) {
        std::fill(cc.begin(), cc.end(), 0.0);
      } else {
        const double inv = 1.0 / den;
        for (double& v : cc) v *= inv;
      }
      break;
    }
  }
  return cc;
}

NccPeak MaxNcc(tseries::SeriesView x, tseries::SeriesView y,
               NccNormalization norm, CrossCorrelationImpl impl) {
  const std::vector<double> ncc = NccSequence(x, y, norm, impl);
  const int m = static_cast<int>(x.size());
  const simd::Peak p = simd::PeakScan(ncc);
  NccPeak peak;
  peak.value = p.value;
  peak.shift = static_cast<int>(p.index) - (m - 1);
  return peak;
}

SbdResult Sbd(tseries::SeriesView x, tseries::SeriesView y,
              CrossCorrelationImpl impl) {
  KSHAPE_CHECK_MSG(x.size() == y.size(), "SBD requires equal lengths");
  SbdResult result;
  const double den = linalg::Norm(x) * linalg::Norm(y);
  if (den == 0.0) {
    // Degenerate (constant after z-normalization) input: NCCc is identically
    // zero, so the distance is 1 and no shift is preferable to any other.
    result.distance = 1.0;
    result.shift = 0;
    result.aligned_y.assign(y.begin(), y.end());
    return result;
  }
  // Peak of the raw cross-correlation, normalized by the denominator already
  // in hand — going through NccSequence(kCoefficient) here would recompute
  // both norms a second time per distance evaluation.
  const std::vector<double> cc = RawCrossCorrelation(x, y, impl);
  const simd::Peak peak = simd::PeakScan(cc);
  const std::size_t m = x.size();
  result.distance = 1.0 - peak.value * (1.0 / den);
  result.shift = static_cast<int>(peak.index) - static_cast<int>(m - 1);
  result.aligned_y = tseries::ShiftWithZeroFill(y, result.shift);
  return result;
}

common::StatusOr<SbdResult> TrySbd(tseries::SeriesView x,
                                   tseries::SeriesView y,
                                   CrossCorrelationImpl impl) {
  if (x.empty() || y.empty()) {
    return common::Status::InvalidArgument("SBD requires non-empty series");
  }
  if (x.size() != y.size()) {
    return common::Status::InvalidArgument(
        "SBD requires equal lengths (" + std::to_string(x.size()) + " vs " +
        std::to_string(y.size()) +
        "); condition the input first (tseries/conditioning.h)");
  }
  for (double v : x) {
    if (!std::isfinite(v)) {
      return common::Status::InvalidArgument(
          "x contains a non-finite value; condition the input first "
          "(tseries/conditioning.h)");
    }
  }
  for (double v : y) {
    if (!std::isfinite(v)) {
      return common::Status::InvalidArgument(
          "y contains a non-finite value; condition the input first "
          "(tseries/conditioning.h)");
    }
  }
  return Sbd(x, y, impl);
}

SbdDistance::SbdDistance(CrossCorrelationImpl impl) : impl_(impl) {
  switch (impl) {
    case CrossCorrelationImpl::kFft:
      name_ = "SBD";
      break;
    case CrossCorrelationImpl::kFftNoPow2:
      name_ = "SBD_NoPow2";
      break;
    case CrossCorrelationImpl::kNaive:
      name_ = "SBD_NoFFT";
      break;
  }
}

double SbdDistance::Distance(tseries::SeriesView x,
                             tseries::SeriesView y) const {
  return Sbd(x, y, impl_).distance;
}

namespace {

class SbdBatchScanner : public distance::BatchScanner {
 public:
  // Bound planes are built only when the process-wide pruning gate is on,
  // so KSHAPE_PRUNE=off keeps the scanner byte-for-byte at its exhaustive
  // behavior (and its PR 6 memory footprint).
  SbdBatchScanner(const tseries::SeriesBatch& candidates,
                  CrossCorrelationImpl impl)
      : engine_(candidates, impl, fft::HalfSpectrumEnabled(),
                /*build_bound_planes=*/PruningEnabled()) {}

  void DistancesToAll(tseries::SeriesView query,
                      std::vector<double>* out) const override {
    // One forward transform for the query, then one inverse per candidate.
    // Sequential on purpose: the accuracy loops already parallelize over
    // queries, so the per-query scan runs inside a worker.
    const SbdEngine::Query q = engine_.MakeQuery(query);
    out->resize(engine_.size());
    for (std::size_t i = 0; i < engine_.size(); ++i) {
      (*out)[i] = engine_.Distance(q, i);
    }
  }

  NearestResult Nearest(tseries::SeriesView query) const override {
    // Spectral early abandoning (exactness-preserving — see
    // Assigner::NearestSeries): candidates whose partial-sum NCC bound
    // cannot beat the best-so-far skip their inverse transform entirely.
    const SbdEngine::Query q = engine_.MakeQuery(query);
    const model::NearestResult r = model::Assigner::NearestSeries(engine_, q);
    NearestResult out;
    out.index = r.index;
    out.distance = r.distance;
    out.computed = r.computed;
    out.abandoned = r.abandoned;
    return out;
  }

 private:
  SbdEngine engine_;
};

}  // namespace

bool SbdDistance::BatchedPairwise(const tseries::SeriesBatch& series,
                                  std::vector<double>* flat) const {
  if (impl_ == CrossCorrelationImpl::kNaive || series.empty()) return false;
  const SbdEngine engine(series, impl_);
  engine.PairwiseFlat(flat);
  return true;
}

std::unique_ptr<distance::BatchScanner> SbdDistance::NewBatchScanner(
    const tseries::SeriesBatch& candidates) const {
  if (impl_ == CrossCorrelationImpl::kNaive || candidates.empty()) {
    return nullptr;
  }
  return std::make_unique<SbdBatchScanner>(candidates, impl_);
}

NccDistance::NccDistance(NccNormalization norm)
    : norm_(norm), name_(NccNormalizationName(norm)) {}

double NccDistance::Distance(tseries::SeriesView x,
                             tseries::SeriesView y) const {
  return 1.0 - MaxNcc(x, y, norm_).value;
}

}  // namespace kshape::core
