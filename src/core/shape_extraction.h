#ifndef KSHAPE_CORE_SHAPE_EXTRACTION_H_
#define KSHAPE_CORE_SHAPE_EXTRACTION_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "tseries/time_series.h"

namespace kshape::core {

/// Options for ExtractShape.
struct ShapeExtractionOptions {
  /// When true, use O(n^2)-per-step power iteration for the dominant
  /// eigenvector (with a deterministic full-decomposition fallback); when
  /// false, always run the full symmetric eigendecomposition. The ablation
  /// bench compares the two.
  bool use_power_iteration = true;

  /// When true (default), seed the power iteration with the (z-normalized)
  /// reference series — the previous centroid in the k-Shape loop, which
  /// changes little between refinement iterations, so the iteration starts
  /// near its fixed point and converges in a handful of matrix-vector
  /// products instead of tens. A zero-norm reference (the first iteration)
  /// falls back to the usual random start, as does `warm_start = false` —
  /// kept for the warm-vs-cold ablation (ablation_eigensolver). Only affects
  /// the power-iteration path; the centroid still converges to the same
  /// dominant eigenvector (the SymmetricEigen stall fallback is unchanged),
  /// but the start-point change can shift the result within the
  /// eigensolver's tolerance.
  bool warm_start = true;
};

/// Shape extraction, Algorithm 2 of the paper.
///
/// Computes the cluster centroid that maximizes the summed squared NCCc to
/// the cluster members (Equation 13), reduced to a Rayleigh-quotient
/// maximization (Equation 15): the dominant eigenvector of
/// M = Q^T (X'^T X') Q with Q = I - (1/m) * ones.
///
/// `members` are the (z-normalized) series of the cluster; `reference` is the
/// previous centroid toward which members are SBD-aligned before the
/// eigenproblem. A zero-norm reference (the all-zero initial centroid of
/// Algorithm 3) skips alignment, matching the reference implementation.
/// The eigenvector's sign is chosen to correlate positively with the cluster
/// mean, and the result is z-normalized.
///
/// Returns the all-zero series when `members` is empty. `rng` seeds the power
/// iteration start vector. The batch is read, never retained.
tseries::Series ExtractShape(const tseries::SeriesBatch& members,
                             tseries::SeriesView reference,
                             common::Rng* rng,
                             const ShapeExtractionOptions& options = {});

/// Convenience overload for extracting the shape of members selected from a
/// larger pool by index (no copies: views straight into the pool's storage).
tseries::Series ExtractShapeIndexed(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options = {});

/// The result of a flagged shape extraction: the centroid plus an explicit
/// repair signal for degenerate member sets.
struct ExtractedShape {
  tseries::Series centroid;

  /// True when no member contributed to the eigenproblem: the member set was
  /// empty, or every member z-normalized to the zero series (all-constant
  /// data). The centroid is then the all-zero series — a deliberate, flagged
  /// value rather than a silent one: under SBD the zero-norm centroid is at
  /// the documented fallback distance 1 from everything, so callers can
  /// either keep it (all-constant clusters are legitimately represented by
  /// it) or re-seed.
  bool degenerate = false;
};

/// ExtractShape with the degenerate-member-set repair signal. Non-degenerate
/// inputs produce bit-identical centroids to ExtractShape; degenerate inputs
/// skip the eigenproblem entirely (the previous behavior ran power iteration
/// on the zero matrix and returned a z-normalized random start vector) and
/// return the flagged zero centroid instead.
ExtractedShape ExtractShapeFlagged(const tseries::SeriesBatch& members,
                                   tseries::SeriesView reference,
                                   common::Rng* rng,
                                   const ShapeExtractionOptions& options = {});

/// Indexed variant of ExtractShapeFlagged.
ExtractedShape ExtractShapeIndexedFlagged(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options = {});

}  // namespace kshape::core

#endif  // KSHAPE_CORE_SHAPE_EXTRACTION_H_
