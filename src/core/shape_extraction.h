#ifndef KSHAPE_CORE_SHAPE_EXTRACTION_H_
#define KSHAPE_CORE_SHAPE_EXTRACTION_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "linalg/matrix.h"
#include "tseries/time_series.h"

namespace kshape::core {

/// Options for ExtractShape.
struct ShapeExtractionOptions {
  /// When true, use O(n^2)-per-step power iteration for the dominant
  /// eigenvector (with a deterministic full-decomposition fallback); when
  /// false, always run the full symmetric eigendecomposition. The ablation
  /// bench compares the two.
  bool use_power_iteration = true;

  /// When true (default), seed the power iteration with the (z-normalized)
  /// reference series — the previous centroid in the k-Shape loop, which
  /// changes little between refinement iterations, so the iteration starts
  /// near its fixed point and converges in a handful of matrix-vector
  /// products instead of tens. A zero-norm reference (the first iteration)
  /// falls back to the usual random start, as does `warm_start = false` —
  /// kept for the warm-vs-cold ablation (ablation_eigensolver). Only affects
  /// the power-iteration path; the centroid still converges to the same
  /// dominant eigenvector (the SymmetricEigen stall fallback is unchanged),
  /// but the start-point change can shift the result within the
  /// eigensolver's tolerance.
  bool warm_start = true;
};

/// Shape extraction, Algorithm 2 of the paper.
///
/// Computes the cluster centroid that maximizes the summed squared NCCc to
/// the cluster members (Equation 13), reduced to a Rayleigh-quotient
/// maximization (Equation 15): the dominant eigenvector of
/// M = Q^T (X'^T X') Q with Q = I - (1/m) * ones.
///
/// `members` are the (z-normalized) series of the cluster; `reference` is the
/// previous centroid toward which members are SBD-aligned before the
/// eigenproblem. A zero-norm reference (the all-zero initial centroid of
/// Algorithm 3) skips alignment, matching the reference implementation.
/// The eigenvector's sign is chosen to correlate positively with the cluster
/// mean, and the result is z-normalized.
///
/// Returns the all-zero series when `members` is empty. `rng` seeds the power
/// iteration start vector. The batch is read, never retained.
tseries::Series ExtractShape(const tseries::SeriesBatch& members,
                             tseries::SeriesView reference,
                             common::Rng* rng,
                             const ShapeExtractionOptions& options = {});

/// Convenience overload for extracting the shape of members selected from a
/// larger pool by index (no copies: views straight into the pool's storage).
tseries::Series ExtractShapeIndexed(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options = {});

/// The result of a flagged shape extraction: the centroid plus an explicit
/// repair signal for degenerate member sets.
struct ExtractedShape {
  tseries::Series centroid;

  /// True when no member contributed to the eigenproblem: the member set was
  /// empty, or every member z-normalized to the zero series (all-constant
  /// data). The centroid is then the all-zero series — a deliberate, flagged
  /// value rather than a silent one: under SBD the zero-norm centroid is at
  /// the documented fallback distance 1 from everything, so callers can
  /// either keep it (all-constant clusters are legitimately represented by
  /// it) or re-seed.
  bool degenerate = false;
};

/// ExtractShape with the degenerate-member-set repair signal. Non-degenerate
/// inputs produce bit-identical centroids to ExtractShape; degenerate inputs
/// skip the eigenproblem entirely (the previous behavior ran power iteration
/// on the zero matrix and returned a z-normalized random start vector) and
/// return the flagged zero centroid instead.
ExtractedShape ExtractShapeFlagged(const tseries::SeriesBatch& members,
                                   tseries::SeriesView reference,
                                   common::Rng* rng,
                                   const ShapeExtractionOptions& options = {});

/// Indexed variant of ExtractShapeFlagged.
ExtractedShape ExtractShapeIndexedFlagged(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options = {});

/// Streaming shape extraction: the member loop of Algorithm 2 decoupled from
/// member storage, so a caller that cannot hold (or even view) all members at
/// once — the sharded out-of-core driver streaming one shard at a time — can
/// feed them incrementally and Finish() into the same eigenproblem.
///
/// The batch entry points above are implemented on this class, so streaming
/// members in the same order they'd appear in a batch produces bit-identical
/// centroids to ExtractShapeFlagged — the equivalence the sharded-vs-
/// contiguous clustering tests rely on.
///
/// Usage: construct with the alignment reference (the previous centroid; the
/// reference is copied, so the view may die immediately), Add() each member
/// in a deterministic order, then Finish(). Not thread-safe; one accumulator
/// per cluster, fed from the coordinating thread.
class ShapeAccumulator {
 public:
  /// `reference` must be non-empty; its length fixes the member length. A
  /// zero-norm reference (the all-zero initial centroid) disables alignment,
  /// as in ExtractShape.
  explicit ShapeAccumulator(tseries::SeriesView reference);

  /// Folds one member into the running S matrix and mean. Members that
  /// z-normalize to the zero series after alignment are counted but
  /// contribute nothing (the degenerate-set rule of ExtractShapeFlagged).
  void Add(tseries::SeriesView member);

  /// Number of Add() calls so far (including degenerate members).
  std::size_t members_added() const { return added_; }

  /// Solves the eigenproblem over everything added so far. Leaves the
  /// accumulator intact (Finish is const: the symmetric mirror and centering
  /// work on copies), matching ExtractShapeFlagged on the same member
  /// sequence bit for bit — including the degenerate zero-centroid result
  /// when nothing contributed, and the rng draw only on cold starts.
  ExtractedShape Finish(common::Rng* rng,
                        const ShapeExtractionOptions& options = {}) const;

 private:
  tseries::Series reference_;
  bool align_ = false;
  linalg::Matrix s_;
  std::vector<double> mean_;
  std::size_t used_ = 0;
  std::size_t added_ = 0;
};

}  // namespace kshape::core

#endif  // KSHAPE_CORE_SHAPE_EXTRACTION_H_
