#ifndef KSHAPE_CORE_SHAPE_EXTRACTION_H_
#define KSHAPE_CORE_SHAPE_EXTRACTION_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "linalg/matrix.h"
#include "linalg/row_pool.h"
#include "tseries/time_series.h"

namespace kshape::core {

/// The process-wide KSHAPE_MATFREE gate (see linalg/row_pool.h — it lives
/// beneath core because the KSC centroid consults it too). "off" forces the
/// dense Gram path everywhere, bit-identically to the pre-matrix-free
/// implementation; the CI matrix runs a KSHAPE_MATFREE=off leg against the
/// same tests to hold that equivalence.
inline bool MatrixFreeEnabled() { return linalg::MatrixFreeEnabled(); }
inline void SetMatrixFreeEnabledForTesting(bool enabled) {
  linalg::SetMatrixFreeEnabledForTesting(enabled);
}

/// Options for ExtractShape.
struct ShapeExtractionOptions {
  /// When true, use O(n^2)-per-step power iteration for the dominant
  /// eigenvector (with a deterministic full-decomposition fallback); when
  /// false, always run the full symmetric eigendecomposition. The ablation
  /// bench compares the two.
  bool use_power_iteration = true;

  /// When true (default), seed the power iteration with the (z-normalized)
  /// reference series — the previous centroid in the k-Shape loop, which
  /// changes little between refinement iterations, so the iteration starts
  /// near its fixed point and converges in a handful of matrix-vector
  /// products instead of tens. A zero-norm reference (the first iteration)
  /// falls back to the usual random start, as does `warm_start = false` —
  /// kept for the warm-vs-cold ablation (ablation_eigensolver). Only affects
  /// the power-iteration path; the centroid still converges to the same
  /// dominant eigenvector (the SymmetricEigen stall fallback is unchanged),
  /// but the start-point change can shift the result within the
  /// eigensolver's tolerance.
  bool warm_start = true;

  /// When true (default) — and the process-wide KSHAPE_MATFREE gate agrees —
  /// the eigenproblem runs matrix-free: members are pooled as aligned
  /// z-normalized rows (O(n_c·m) memory) instead of being folded into the
  /// m×m Gram matrix S, and each power-iteration step applies
  /// M·v = Q(Σ yᵢ(yᵢ·(Qv))) with the rank-one centering Qv = v − mean(v)·1
  /// in O(n_c·m) — versus O(n_c·m²) to accumulate S plus O(m²) per step.
  /// With warm starts converging in ~5–20 steps this is an ~m/iters win on
  /// the extraction phase. The matrix-free and Gram paths agree to epsilon
  /// (different summation order), not bitwise; end-to-end labels match in
  /// practice (pinned by the gate-equivalence tests). Only applies on the
  /// power-iteration path — the full-eigensolver ablation needs the dense
  /// matrix regardless.
  bool use_matrix_free = true;

  /// Crossover: clusters with fewer than this many contributing members take
  /// the dense Gram path even when matrix-free is enabled (bit-identical to
  /// use_matrix_free = false). For tiny clusters the per-step fan-out and
  /// pool bookkeeping cost more than the small Gram they avoid; the default
  /// comes from bench/shape_extraction sweeps.
  std::size_t matrix_free_min_members = 8;

  /// Memory bound for the matrix-free member pool, in rows; 0 = unbounded.
  /// When an accumulator exceeds it, the pooled rows are folded into the
  /// Gram matrix (same rows, same order — bit-identical to having
  /// accumulated the Gram from the start) and the pool is released, so
  /// extraction memory never exceeds max(m², cap·m) per cluster. The
  /// out-of-core driver sets this from its shard-residency budget; in-memory
  /// callers leave it unbounded (the pool is at most the corpus itself).
  std::size_t matrix_free_max_members = 0;
};

/// Shape extraction, Algorithm 2 of the paper.
///
/// Computes the cluster centroid that maximizes the summed squared NCCc to
/// the cluster members (Equation 13), reduced to a Rayleigh-quotient
/// maximization (Equation 15): the dominant eigenvector of
/// M = Q^T (X'^T X') Q with Q = I - (1/m) * ones.
///
/// `members` are the (z-normalized) series of the cluster; `reference` is the
/// previous centroid toward which members are SBD-aligned before the
/// eigenproblem. A zero-norm reference (the all-zero initial centroid of
/// Algorithm 3) skips alignment, matching the reference implementation.
/// The eigenvector's sign is chosen to correlate positively with the cluster
/// mean, and the result is z-normalized.
///
/// Returns the all-zero series when `members` is empty. `rng` seeds the power
/// iteration start vector. The batch is read, never retained.
tseries::Series ExtractShape(const tseries::SeriesBatch& members,
                             tseries::SeriesView reference,
                             common::Rng* rng,
                             const ShapeExtractionOptions& options = {});

/// Convenience overload for extracting the shape of members selected from a
/// larger pool by index (no copies: views straight into the pool's storage).
tseries::Series ExtractShapeIndexed(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options = {});

/// The result of a flagged shape extraction: the centroid plus an explicit
/// repair signal for degenerate member sets.
struct ExtractedShape {
  tseries::Series centroid;

  /// True when no member contributed to the eigenproblem: the member set was
  /// empty, or every member z-normalized to the zero series (all-constant
  /// data). The centroid is then the all-zero series — a deliberate, flagged
  /// value rather than a silent one: under SBD the zero-norm centroid is at
  /// the documented fallback distance 1 from everything, so callers can
  /// either keep it (all-constant clusters are legitimately represented by
  /// it) or re-seed.
  bool degenerate = false;
};

/// ExtractShape with the degenerate-member-set repair signal. Non-degenerate
/// inputs produce bit-identical centroids to ExtractShape; degenerate inputs
/// skip the eigenproblem entirely (the previous behavior ran power iteration
/// on the zero matrix and returned a z-normalized random start vector) and
/// return the flagged zero centroid instead.
ExtractedShape ExtractShapeFlagged(const tseries::SeriesBatch& members,
                                   tseries::SeriesView reference,
                                   common::Rng* rng,
                                   const ShapeExtractionOptions& options = {});

/// Indexed variant of ExtractShapeFlagged.
ExtractedShape ExtractShapeIndexedFlagged(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options = {});

/// Streaming shape extraction: the member loop of Algorithm 2 decoupled from
/// member storage, so a caller that cannot hold (or even view) all members at
/// once — the sharded out-of-core driver streaming one shard at a time — can
/// feed them incrementally and Finish() into the same eigenproblem.
///
/// The batch entry points above are implemented on this class, so streaming
/// members in the same order they'd appear in a batch produces bit-identical
/// centroids to ExtractShapeFlagged — the equivalence the sharded-vs-
/// contiguous clustering tests rely on.
///
/// Storage mode is fixed at construction from the options and the
/// KSHAPE_MATFREE gate. In matrix-free mode the accumulator stores the
/// aligned z-normalized members in a contiguous row-major pool (the m×m Gram
/// is never allocated) and Finish power-iterates through
/// linalg::DominantEigenvectorOp with a deterministic fan-out over member
/// blocks (linalg::RowPoolMatVec) — bit-identical at any thread count and
/// across SIMD backends, epsilon-equal to the Gram path. Small member sets
/// (below matrix_free_min_members) and pools exceeding
/// matrix_free_max_members cross back to the Gram path bit-identically.
///
/// Usage: construct with the alignment reference (the previous centroid; the
/// reference is copied, so the view may die immediately) and the same options
/// later passed to Finish(), Add() each member in a deterministic order, then
/// Finish(). Not thread-safe; one accumulator per cluster, fed from the
/// coordinating thread (Finish's matrix-free path fans out internally).
class ShapeAccumulator {
 public:
  /// `reference` must be non-empty; its length fixes the member length. A
  /// zero-norm reference (the all-zero initial centroid) disables alignment,
  /// as in ExtractShape. `options` selects the storage mode (matrix-free
  /// pool vs dense Gram) together with the process-wide gate.
  explicit ShapeAccumulator(tseries::SeriesView reference,
                            const ShapeExtractionOptions& options = {});

  /// Folds one member into the running state (pooled row or Gram update,
  /// plus the mean). Members that z-normalize to the zero series after
  /// alignment are counted but contribute nothing (the degenerate-set rule
  /// of ExtractShapeFlagged).
  void Add(tseries::SeriesView member);

  /// Number of Add() calls so far (including degenerate members).
  std::size_t members_added() const { return added_; }

  /// True while members are pooled for the matrix-free eigenproblem (no Gram
  /// allocated); false in Gram mode, including after a max-members spill.
  bool matrix_free_active() const { return pool_mode_; }

  /// Solves the eigenproblem over everything added so far. Leaves the
  /// accumulator intact (Finish is const: mirroring/centering work on
  /// copies, the matrix-free path only reads the pool), matching
  /// ExtractShapeFlagged on the same member sequence bit for bit — including
  /// the degenerate zero-centroid result when nothing contributed, and the
  /// rng draw only on cold starts.
  ExtractedShape Finish(common::Rng* rng,
                        const ShapeExtractionOptions& options = {}) const;

 private:
  // Folds the pooled rows into the Gram and releases the pool (the
  // matrix_free_max_members bound). Bit-identical to having accumulated the
  // Gram from the first Add.
  void SpillPoolToGram();

  // The symmetric Gram S = Σ yᵢyᵢᵀ, mirrored to both triangles — from s_ in
  // Gram mode, or folded on the fly from the pool (same rows, same order) on
  // the matrix-free crossover/fallback.
  linalg::Matrix MirroredGram() const;

  ExtractedShape FinishDense(common::Rng* rng,
                             const ShapeExtractionOptions& options) const;
  ExtractedShape FinishMatrixFree(common::Rng* rng,
                                  const ShapeExtractionOptions& options) const;

  tseries::Series reference_;
  bool align_ = false;
  bool pool_mode_ = false;
  std::size_t max_pool_rows_ = 0;
  linalg::Matrix s_;           // Gram upper triangle; 0x0 in pool mode.
  tseries::SeriesStore pool_;  // Aligned z-normalized members in pool mode.
  std::vector<double> mean_;
  std::size_t used_ = 0;
  std::size_t added_ = 0;
};

}  // namespace kshape::core

#endif  // KSHAPE_CORE_SHAPE_EXTRACTION_H_
