#include "core/multivariate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/check.h"
#include "common/parallel.h"
#include "cluster/algorithm.h"
#include "fft/fft.h"
#include "linalg/matrix.h"
#include "tseries/normalization.h"

namespace kshape::core {

void ZNormalizeMultivariate(MultivariateSeries* series) {
  for (tseries::Series& channel : series->channels) {
    tseries::ZNormalizeInPlace(&channel);
  }
}

namespace {

void CheckCompatible(const MultivariateSeries& x,
                     const MultivariateSeries& y) {
  KSHAPE_CHECK_MSG(x.num_channels() == y.num_channels(),
                   "channel count mismatch");
  KSHAPE_CHECK(x.num_channels() >= 1);
  KSHAPE_CHECK_MSG(x.length() == y.length(), "length mismatch");
  for (const auto& channel : x.channels) {
    KSHAPE_CHECK_MSG(channel.size() == x.length(), "ragged channels");
  }
  for (const auto& channel : y.channels) {
    KSHAPE_CHECK_MSG(channel.size() == y.length(), "ragged channels");
  }
}

MultivariateSeries ShiftAllChannels(const MultivariateSeries& x, int shift) {
  MultivariateSeries out;
  out.channels.reserve(x.num_channels());
  for (const auto& channel : x.channels) {
    out.channels.push_back(tseries::ShiftWithZeroFill(channel, shift));
  }
  return out;
}

bool IsZeroNorm(const MultivariateSeries& x) {
  for (const auto& channel : x.channels) {
    if (linalg::Norm(channel) > 0.0) return false;
  }
  return true;
}

// Spectrum cache for one multivariate series: the padded forward transform of
// every channel plus the summed channel energy (the mSBD denominator piece).
// All channels share one common shift, so the assignment step can sum the
// per-channel cross-correlations recovered from these spectra — one inverse
// transform per channel per pair, with no forward transforms in the scan.
struct ChannelSpectra {
  std::vector<std::vector<fft::Complex>> spectra;
  double energy = 0.0;
};

ChannelSpectra MakeChannelSpectra(const MultivariateSeries& s,
                                  std::size_t fft_len) {
  ChannelSpectra out;
  out.spectra.reserve(s.num_channels());
  for (const auto& channel : s.channels) {
    out.spectra.push_back(fft::Spectrum(channel, fft_len));
    out.energy += linalg::Dot(channel, channel);
  }
  return out;
}

// mSBD from cached spectra; same formula as MultivariateSbd, same epsilon
// (not bitwise) agreement contract as the univariate SbdEngine.
double CachedMsbdDistance(const ChannelSpectra& x, const ChannelSpectra& y,
                          std::size_t m) {
  const double den = std::sqrt(x.energy * y.energy);
  if (den == 0.0) return 1.0;
  static thread_local std::vector<double> cc;
  static thread_local std::vector<double> total;
  total.assign(2 * m - 1, 0.0);
  for (std::size_t c = 0; c < x.spectra.size(); ++c) {
    fft::CrossCorrelationFromSpectra(x.spectra[c], y.spectra[c], m, &cc);
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += cc[i];
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < total.size(); ++i) {
    if (total[i] > total[best]) best = i;
  }
  return 1.0 - total[best] / den;
}

}  // namespace

MultivariateSbdResult MultivariateSbd(const MultivariateSeries& x,
                                      const MultivariateSeries& y) {
  CheckCompatible(x, y);
  const std::size_t m = x.length();

  MultivariateSbdResult result;
  double x_energy = 0.0;
  double y_energy = 0.0;
  for (std::size_t c = 0; c < x.num_channels(); ++c) {
    x_energy += linalg::Dot(x.channels[c], x.channels[c]);
    y_energy += linalg::Dot(y.channels[c], y.channels[c]);
  }
  const double den = std::sqrt(x_energy * y_energy);
  if (den == 0.0) {
    result.distance = 1.0;
    result.aligned_y = y;
    return result;
  }

  // Sum the per-channel cross-correlation sequences: one common shift.
  std::vector<double> total(2 * m - 1, 0.0);
  for (std::size_t c = 0; c < x.num_channels(); ++c) {
    const std::vector<double> cc =
        fft::CrossCorrelationFft(x.channels[c], y.channels[c]);
    for (std::size_t i = 0; i < total.size(); ++i) total[i] += cc[i];
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i < total.size(); ++i) {
    if (total[i] > total[best]) best = i;
  }
  result.shift = static_cast<int>(best) - static_cast<int>(m - 1);
  result.distance = 1.0 - total[best] / den;
  result.aligned_y = ShiftAllChannels(y, result.shift);
  return result;
}

MultivariateSeries ExtractMultivariateShape(
    const std::vector<MultivariateSeries>& members,
    const MultivariateSeries& reference, common::Rng* rng,
    const ShapeExtractionOptions& options) {
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t d = reference.num_channels();
  const std::size_t m = reference.length();

  MultivariateSeries centroid;
  centroid.channels.assign(d, tseries::Series(m, 0.0));
  if (members.empty()) return centroid;

  const bool align = !IsZeroNorm(reference);

  // Align each member once with the common shift, then run the univariate
  // extraction per channel on the aligned copies.
  std::vector<std::vector<tseries::Series>> per_channel(d);
  for (const MultivariateSeries& member : members) {
    CheckCompatible(reference, member);
    const MultivariateSeries aligned =
        align ? MultivariateSbd(reference, member).aligned_y : member;
    for (std::size_t c = 0; c < d; ++c) {
      per_channel[c].push_back(aligned.channels[c]);
    }
  }
  for (std::size_t c = 0; c < d; ++c) {
    // Members are pre-aligned; pass a zero reference so the univariate
    // extraction does not re-shift individual channels.
    centroid.channels[c] = ExtractShape(per_channel[c],
                                        tseries::Series(m, 0.0), rng, options);
  }
  return centroid;
}

MultivariateKShape::MultivariateKShape(MultivariateKShapeOptions options)
    : options_(options) {
  KSHAPE_CHECK(options_.max_iterations >= 1);
}

MultivariateClusteringResult MultivariateKShape::Cluster(
    const std::vector<MultivariateSeries>& series, int k,
    common::Rng* rng) const {
  KSHAPE_CHECK(!series.empty());
  KSHAPE_CHECK(k >= 1 && static_cast<std::size_t>(k) <= series.size());
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t n = series.size();
  const std::size_t d = series[0].num_channels();
  const std::size_t m = series[0].length();
  for (const auto& s : series) CheckCompatible(series[0], s);

  MultivariateClusteringResult result;
  result.assignments = cluster::RandomAssignments(n, k, rng);
  MultivariateSeries zero;
  zero.channels.assign(d, tseries::Series(m, 0.0));
  result.centroids.assign(k, zero);

  // Spectrum cache: each series' channel spectra are computed once per call
  // in a deterministic disjoint-write pre-pass; centroid spectra are
  // refreshed once per iteration below.
  const bool cached = options_.use_spectrum_cache && m >= 1;
  const std::size_t fft_len = cached ? fft::NextPowerOfTwo(2 * m - 1) : 0;
  std::vector<ChannelSpectra> series_cache;
  if (cached) {
    series_cache.resize(n);
    common::ParallelFor(0, n, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        series_cache[i] = MakeChannelSpectra(series[i], fft_len);
      }
    });
  }
  std::vector<ChannelSpectra> centroid_cache;

  auto assignment_distance = [&](int j, std::size_t i) {
    if (cached) return CachedMsbdDistance(centroid_cache[j], series_cache[i], m);
    return MultivariateSbd(result.centroids[j], series[i]).distance;
  };

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const std::vector<int> previous = result.assignments;

    // Refinement.
    const auto groups = cluster::GroupByCluster(result.assignments, k);
    for (int j = 0; j < k; ++j) {
      std::vector<MultivariateSeries> members;
      members.reserve(groups[j].size());
      for (std::size_t idx : groups[j]) members.push_back(series[idx]);
      result.centroids[j] = ExtractMultivariateShape(
          members, result.centroids[j], rng, options_.shape_options);
    }
    if (cached) {
      // k*d forward transforms per iteration; every centroid-to-series
      // distance below reuses them as d inverse transforms.
      centroid_cache.clear();
      for (int j = 0; j < k; ++j) {
        centroid_cache.push_back(
            MakeChannelSpectra(result.centroids[j], fft_len));
      }
    }

    // Assignment. Same disjoint-write pattern as univariate k-Shape, so the
    // result is thread-count-invariant.
    common::ParallelFor(0, n, 16, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        double min_dist = std::numeric_limits<double>::infinity();
        int best = result.assignments[i];
        for (int j = 0; j < k; ++j) {
          const double dist = assignment_distance(j, i);
          if (dist < min_dist) {
            min_dist = dist;
            best = j;
          }
        }
        result.assignments[i] = best;
      }
    });

    // Re-seed empty clusters from the farthest member of populated ones
    // (shared policy — see RepairEmptyClusters for the tie-break contract).
    result.empty_cluster_reseeds += cluster::RepairEmptyClusters(
        k, &result.assignments, assignment_distance);

    result.iterations = iter + 1;
    if (result.assignments == previous) {
      result.converged = true;
      break;
    }
  }

  // Flag final centroids that collapsed to zero norm in every channel while
  // still holding members (all-constant clusters).
  std::vector<std::size_t> sizes(k, 0);
  for (int a : result.assignments) ++sizes[a];
  for (int j = 0; j < k; ++j) {
    if (sizes[j] > 0 && IsZeroNorm(result.centroids[j])) {
      ++result.degenerate_centroids;
    }
  }
  return result;
}

common::Status ValidateMultivariateInputs(
    const std::vector<MultivariateSeries>& series, int k) {
  if (series.empty()) {
    return common::Status::InvalidArgument("empty dataset: no series to cluster");
  }
  const std::size_t d = series[0].num_channels();
  const std::size_t m = series[0].length();
  if (d == 0) {
    return common::Status::InvalidArgument("series 0 has no channels");
  }
  if (m == 0) {
    return common::Status::InvalidArgument("series 0 has empty channels");
  }
  for (std::size_t i = 0; i < series.size(); ++i) {
    const MultivariateSeries& s = series[i];
    if (s.num_channels() != d) {
      return common::Status::InvalidArgument(
          "series " + std::to_string(i) + ": channel count " +
          std::to_string(s.num_channels()) + " does not match series 0 (" +
          std::to_string(d) + ")");
    }
    for (std::size_t c = 0; c < d; ++c) {
      if (s.channels[c].size() != m) {
        return common::Status::InvalidArgument(
            "series " + std::to_string(i) + " channel " + std::to_string(c) +
            ": length " + std::to_string(s.channels[c].size()) +
            " does not match series 0 (" + std::to_string(m) +
            "); condition the input first (tseries/conditioning.h)");
      }
      for (double v : s.channels[c]) {
        if (!std::isfinite(v)) {
          return common::Status::InvalidArgument(
              "series " + std::to_string(i) + " channel " + std::to_string(c) +
              " contains a non-finite value; condition the input first "
              "(tseries/conditioning.h)");
        }
      }
    }
  }
  if (k < 1 || static_cast<std::size_t>(k) > series.size()) {
    return common::Status::OutOfRange(
        "k = " + std::to_string(k) + " outside [1, n = " +
        std::to_string(series.size()) + "]");
  }
  return common::Status::OK();
}

common::StatusOr<MultivariateClusteringResult> MultivariateKShape::TryCluster(
    const std::vector<MultivariateSeries>& series, int k,
    common::Rng* rng) const {
  if (rng == nullptr) {
    return common::Status::InvalidArgument("rng must not be null");
  }
  common::Status status = ValidateMultivariateInputs(series, k);
  if (!status.ok()) return status;
  return Cluster(series, k, rng);
}

}  // namespace kshape::core
