#ifndef KSHAPE_CORE_KSHAPE_H_
#define KSHAPE_CORE_KSHAPE_H_

#include <string>

#include "cluster/algorithm.h"
#include "core/shape_extraction.h"
#include "distance/measure.h"

namespace kshape::core {

/// Initialization strategies for k-Shape.
enum class KShapeInit {
  /// Algorithm 3's initialization: every series assigned to a uniformly
  /// random cluster. The paper's default.
  kRandomAssignment,

  /// k-means++-style seeding under SBD (an extension, not in the paper):
  /// pick one series as the first seed, then repeatedly pick the next seed
  /// with probability proportional to the squared SBD to the closest chosen
  /// seed; initial assignment is nearest-seed. Breaks the symmetric-centroid
  /// local optima that random assignment is prone to on small datasets —
  /// see the ablation_initialization bench.
  kPlusPlusSeeding,
};

/// Options for the k-Shape algorithm.
struct KShapeOptions {
  /// Iteration cap of Algorithm 3 ("usually a small number, such as 100").
  int max_iterations = 100;

  /// How the initial cluster memberships are chosen.
  KShapeInit init = KShapeInit::kRandomAssignment;

  /// Controls the eigenvector computation inside shape extraction.
  ShapeExtractionOptions shape_options;

  /// When true (default), Cluster() builds an SbdEngine over the input: every
  /// series' spectrum is computed once per call and every centroid's once per
  /// iteration, so each ++-seeding or assignment distance is a single inverse
  /// transform against cached spectra. Distances agree with the direct Sbd()
  /// path within a tight tolerance (not bitwise — see core/sbd_engine.h), and
  /// the cached pipeline itself stays bit-identical at every thread count.
  /// Ignored when `assignment_distance` is set (the engine only accelerates
  /// SBD). False forces the per-pair Sbd() path, kept for ablation benches.
  bool use_spectrum_cache = true;

  /// When true (default), the spectrum cache stores packed half spectra
  /// (fft/rfft.h): half the memory, and half-size transforms at power-of-two
  /// padding. Combined with the process-wide KSHAPE_HALF_SPECTRUM gate — the
  /// half path runs only when both say yes. Distances differ from the
  /// full-complex cache by last-ulp rounding only; labels and telemetry are
  /// expected to match (enforced by the half-vs-full equivalence tests).
  bool use_half_spectrum = true;

  /// Distance used in the assignment step. Null means SBD (the paper's
  /// k-Shape); pointing this at a DtwMeasure gives the k-Shape+DTW ablation
  /// of Table 3. The pointee must outlive the KShape instance.
  const distance::DistanceMeasure* assignment_distance = nullptr;

  /// Bound-driven assignment pruning. When true (default) AND the
  /// process-wide KSHAPE_PRUNE gate is on AND the run uses the SBD spectrum
  /// cache (pruning needs cached spectra; it is silently inactive with
  /// `use_spectrum_cache = false` or a custom `assignment_distance`), the
  /// assignment step skips provably-unchanged work two ways:
  ///  1. Hamerly-style centroid-movement bounds in the sqrt(SBD) domain —
  ///     after refinement the k centroid-shift distances tighten per-series
  ///     upper bounds (distance to owner) and lower bounds (second-closest);
  ///     a series whose bounds stay separated keeps its label with zero
  ///     distance calls. SBD is not a guaranteed metric, so this layer is
  ///     heuristic and guarded by `prune_margin` (below).
  ///  2. Spectral early-abandon NCC — candidates whose partial-sum NCC upper
  ///     bound (SbdEngine::DistanceWithAbandon) cannot beat the best-so-far
  ///     are dropped without an inverse transform. This layer is rigorous
  ///     (the bound is a theorem, slack covers only ulp rounding) and cannot
  ///     change labels.
  /// Telemetry lands in ClusteringResult::{distances_computed,
  /// distances_pruned_bounds, distances_abandoned_partial, assignment_stats}.
  bool use_pruning = true;

  /// Safety slack of the movement-bound layer, in SBD distance units: a
  /// series is pruned only when its owner-distance upper bound clears the
  /// second-closest lower bound by more than this margin, absorbing both
  /// bound rounding and small triangle-inequality violations of the
  /// non-metric SBD. Larger values prune less and track the exact path more
  /// faithfully; +infinity disables the movement-bound layer entirely and
  /// makes the run bit-identical to the exact path (the spectral layer is
  /// exactness-preserving on its own). The default absorbs every violation
  /// observed on the test corpora with orders of magnitude to spare.
  double prune_margin = 1e-6;

  /// Verification mode: recompute every pruned series' assignment exactly
  /// and count disagreements in ClusteringResult::pruned_label_mismatches.
  /// Pruned decisions are kept, so enabling this changes telemetry only —
  /// it exists to measure (and test) label agreement of the bounds.
  bool verify_pruning = false;

  // --- Out-of-core / mini-batch options, consumed by the sharded driver
  // (cluster::MiniBatchKShape over a store::ShardedSeriesStore). The
  // in-memory KShape ignores all four.

  /// Mini-batch size B: when > 0 AND the process-wide KSHAPE_SHARDS gate is
  /// on, most sharded iterations sample B series (without replacement,
  /// seeded from the run's rng) and run refinement + assignment on the
  /// sample only; a full exact pass runs every `refresh_period` iterations
  /// (and on the final one), which is also where convergence is checked.
  /// 0 (the default) disables sampling entirely: every iteration is a full
  /// pass, and the sharded run reproduces the in-memory KShape bit for bit.
  std::size_t minibatch_size = 0;

  /// Full-pass cadence of the mini-batch schedule: iterations 1-indexed
  /// divisible by this run the full exact assignment. Must be >= 1; 1 turns
  /// every iteration into a full pass (sampling then only thins refinement).
  int refresh_period = 5;

  /// Shard geometry used when *building* a store from an in-memory batch
  /// (MiniBatchKShape::ShardBatch) — rows per on-disk shard. Opening an
  /// existing store reads its geometry from disk instead.
  std::size_t shard_rows = 4096;

  /// Residency budget used by ShardBatch: how many shards may be resident
  /// in memory at once while clustering streams the store.
  std::size_t max_resident_shards = 4;
};

/// k-Shape, Algorithm 3 of the paper.
///
/// A centroid-based iterative-refinement clustering of z-normalized time
/// series: the assignment step places each series with the SBD-closest
/// centroid; the refinement step recomputes each centroid by shape
/// extraction (Algorithm 2), using the previous centroid as the alignment
/// reference. Runs until the assignment reaches a fixed point or
/// `max_iterations` is hit. O(max{n k m log m, n m^2, k m^3}) per iteration
/// — linear in the number of series (§3.3).
class KShape : public cluster::ClusteringAlgorithm {
 public:
  explicit KShape(KShapeOptions options = {});

  cluster::ClusteringResult Cluster(const tseries::SeriesBatch& series,
                                    int k, common::Rng* rng) const override;

  std::string Name() const override { return name_; }

 private:
  KShapeOptions options_;
  std::string name_;
};

}  // namespace kshape::core

#endif  // KSHAPE_CORE_KSHAPE_H_
