#include "core/shape_extraction.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "core/sbd.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "linalg/row_pool.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"

namespace kshape::core {

namespace {

// Centers M = Q S Q for Q = I - (1/m) * ones in O(m^2) using
// M_ij = S_ij - rowmean_i - colmean_j + grandmean, instead of two O(m^3)
// matrix products. In place: the means are computed up front, so each entry
// is read once and overwritten — no second m×m buffer (the historical
// implementation allocated one, doubling peak Gram-path memory).
void CenterGramInPlace(linalg::Matrix* s_ptr) {
  linalg::Matrix& s = *s_ptr;
  const std::size_t m = s.rows();
  std::vector<double> row_mean(m, 0.0);
  std::vector<double> col_mean(m, 0.0);
  // One kernel pass per row: the row sum reduces the row, the axpy folds it
  // into the running column sums; the grand sum is the reduction of the row
  // sums. All three stay within the epsilon contract of the fused legacy
  // triple accumulation.
  for (std::size_t i = 0; i < m; ++i) {
    row_mean[i] = simd::Active().sum(s.Row(i), m);
    simd::Active().axpy(1.0, s.Row(i), col_mean.data(), m);
  }
  double grand = simd::Sum(row_mean);
  const double inv_m = 1.0 / static_cast<double>(m);
  simd::Scale(row_mean, inv_m);
  simd::Scale(col_mean, inv_m);
  grand *= inv_m * inv_m;

  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      s(i, j) = s(i, j) - row_mean[i] - col_mean[j] + grand;
    }
  }
}

ExtractedShape ExtractShapeImpl(
    const std::vector<tseries::SeriesView>& members,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options) {
  KSHAPE_CHECK(rng != nullptr);
  if (members.empty()) {
    ExtractedShape result;
    result.centroid = tseries::Series(reference.size(), 0.0);
    result.degenerate = true;
    return result;
  }
  ShapeAccumulator accumulator(reference, options);
  for (tseries::SeriesView member : members) accumulator.Add(member);
  return accumulator.Finish(rng, options);
}

}  // namespace

ShapeAccumulator::ShapeAccumulator(tseries::SeriesView reference,
                                   const ShapeExtractionOptions& options)
    : reference_(reference.begin(), reference.end()),
      align_(linalg::Norm(reference) > 0.0),
      pool_mode_(options.use_matrix_free && options.use_power_iteration &&
                 MatrixFreeEnabled()),
      max_pool_rows_(options.matrix_free_max_members),
      mean_(reference.size(), 0.0) {
  KSHAPE_CHECK_MSG(!reference_.empty(), "empty shape-extraction reference");
  // The whole point of pool mode is that the m×m Gram is never allocated;
  // s_ stays 0x0 until a max-members spill (if any).
  if (!pool_mode_) {
    s_ = linalg::Matrix(reference.size(), reference.size());
  }
}

void ShapeAccumulator::Add(tseries::SeriesView member) {
  const std::size_t m = reference_.size();
  KSHAPE_CHECK_MSG(member.size() == m, "member length mismatch");
  ++added_;
  // Accumulate S = sum_i y_i y_i^T over the aligned, z-normalized members —
  // as an explicit Gram in Gram mode, as pooled rows in matrix-free mode.
  // Members that z-normalize to the zero series (constant after alignment)
  // contribute nothing to S or the mean; they are skipped so a fully
  // degenerate member set can be detected instead of feeding the zero matrix
  // to the eigensolver, which would return an arbitrary start vector.
  tseries::Series aligned = align_ ? Sbd(reference_, member).aligned_y
                                   : tseries::Series(member.begin(),
                                                     member.end());
  tseries::ZNormalizeInPlace(&aligned);
  if (linalg::Norm(aligned) == 0.0) return;
  if (pool_mode_) {
    pool_.Append(aligned);
    if (max_pool_rows_ > 0 && pool_.size() > max_pool_rows_) {
      SpillPoolToGram();
    }
  } else {
    // Upper triangle only (S is symmetric); mirrored once in Finish at half
    // the accumulation cost, bit-identical to the full outer products.
    s_.AddSymmetricOuterProduct(aligned);
  }
  linalg::Axpy(1.0, aligned, &mean_);
  ++used_;
}

void ShapeAccumulator::SpillPoolToGram() {
  const std::size_t m = reference_.size();
  s_ = linalg::Matrix(m, m);
  for (std::size_t r = 0; r < pool_.size(); ++r) {
    s_.AddSymmetricOuterProduct(pool_.view(r));
  }
  pool_ = tseries::SeriesStore();
  pool_mode_ = false;
}

linalg::Matrix ShapeAccumulator::MirroredGram() const {
  if (!pool_mode_) {
    linalg::Matrix s = s_;
    s.MirrorUpperToLower();
    return s;
  }
  // Crossover (small cluster) or eigensolver fallback: fold the pooled rows
  // into the Gram they would have accumulated — same rows, same order, so
  // the result is bit-identical to Gram mode on this member sequence.
  const std::size_t m = reference_.size();
  linalg::Matrix s(m, m);
  for (std::size_t r = 0; r < pool_.size(); ++r) {
    s.AddSymmetricOuterProduct(pool_.view(r));
  }
  s.MirrorUpperToLower();
  return s;
}

ExtractedShape ShapeAccumulator::Finish(
    common::Rng* rng, const ShapeExtractionOptions& options) const {
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t m = reference_.size();
  if (used_ == 0) {
    ExtractedShape result;
    result.centroid = tseries::Series(m, 0.0);
    result.degenerate = true;
    return result;
  }
  // Crossover: tiny clusters pay more in per-step fan-out than the small
  // Gram costs, so they fold the pool into the dense path (bit-identical to
  // Gram mode; the pooled rows ARE the Gram's member sequence).
  if (pool_mode_ && options.use_matrix_free && options.use_power_iteration &&
      used_ >= options.matrix_free_min_members) {
    return FinishMatrixFree(rng, options);
  }
  return FinishDense(rng, options);
}

ExtractedShape ShapeAccumulator::FinishDense(
    common::Rng* rng, const ShapeExtractionOptions& options) const {
  const std::size_t m = reference_.size();
  linalg::Matrix centered = MirroredGram();
  CenterGramInPlace(&centered);

  std::vector<double> centroid;
  if (options.use_power_iteration) {
    // Warm start: the alignment reference (the previous centroid) is close
    // to the new dominant eigenvector once the clustering begins to settle,
    // so seeding with it saves most of the power-iteration steps. `align_`
    // already certifies a nonzero reference.
    std::vector<double> seed;
    if (options.warm_start && align_) {
      seed.assign(reference_.begin(), reference_.end());
    }
    centroid = linalg::DominantEigenvector(
        centered, rng, /*max_iters=*/200, /*tol=*/1e-10,
        /*eigenvalue=*/nullptr, seed.empty() ? nullptr : &seed);
  } else {
    const linalg::EigenDecomposition decomp = linalg::SymmetricEigen(centered);
    centroid = decomp.eigenvectors.ColVector(m - 1);  // Largest eigenvalue.
  }

  // An eigenvector's sign is arbitrary; pick the orientation that correlates
  // positively with the cluster mean so centroids look like the data.
  if (linalg::Dot(centroid, mean_) < 0.0) {
    linalg::Scale(&centroid, -1.0);
  }
  tseries::ZNormalizeInPlace(&centroid);
  ExtractedShape result;
  result.centroid = std::move(centroid);
  return result;
}

ExtractedShape ShapeAccumulator::FinishMatrixFree(
    common::Rng* rng, const ShapeExtractionOptions& options) const {
  const std::size_t m = reference_.size();
  // M·v = Q(S(Qv)) with Qv = v − mean(v)·1 (rank-one centering) and
  // S(u) = Σ yᵢ(yᵢ·u) applied row-wise over the pooled members: O(n_c·m)
  // per power step, the Gram never formed. The pool holds exactly the
  // non-degenerate aligned rows, so S here is the same sum the Gram path
  // accumulates (up to summation order — the epsilon-level difference the
  // gate-equivalence tests allow for).
  linalg::RowPoolMatVec pool_op(pool_.data(), pool_.size(), m);
  std::vector<double> centered(m);
  const linalg::MatVecFn matvec = [&](const std::vector<double>& v,
                                      std::vector<double>* out) {
    const double v_mean = simd::Sum(v) / static_cast<double>(m);
    for (std::size_t j = 0; j < m; ++j) centered[j] = v[j] - v_mean;
    pool_op.Apply(centered, *out);
    const double w_mean = simd::Sum(*out) / static_cast<double>(m);
    for (double& x : *out) x -= w_mean;
  };
  // The O(m³) stall fallback needs the dense centered matrix; materialize it
  // lazily from the pool — at most once per cold extraction (warm starts
  // never reach it, per the eigensolver's stall contract).
  const linalg::MaterializeFn materialize = [&]() {
    linalg::Matrix s = MirroredGram();
    CenterGramInPlace(&s);
    return s;
  };

  std::vector<double> seed;
  if (options.warm_start && align_) {
    seed.assign(reference_.begin(), reference_.end());
  }
  std::vector<double> centroid = linalg::DominantEigenvectorOp(
      m, matvec, materialize, rng, /*max_iters=*/200, /*tol=*/1e-10,
      /*eigenvalue=*/nullptr, seed.empty() ? nullptr : &seed);

  if (linalg::Dot(centroid, mean_) < 0.0) {
    linalg::Scale(&centroid, -1.0);
  }
  tseries::ZNormalizeInPlace(&centroid);
  ExtractedShape result;
  result.centroid = std::move(centroid);
  return result;
}

tseries::Series ExtractShape(const tseries::SeriesBatch& members,
                             tseries::SeriesView reference,
                             common::Rng* rng,
                             const ShapeExtractionOptions& options) {
  return ExtractShapeFlagged(members, reference, rng, options).centroid;
}

tseries::Series ExtractShapeIndexed(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options) {
  return ExtractShapeIndexedFlagged(pool, member_indices, reference, rng,
                                    options)
      .centroid;
}

ExtractedShape ExtractShapeFlagged(const tseries::SeriesBatch& members,
                                   tseries::SeriesView reference,
                                   common::Rng* rng,
                                   const ShapeExtractionOptions& options) {
  std::vector<tseries::SeriesView> views;
  views.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) views.push_back(members[i]);
  return ExtractShapeImpl(views, reference, rng, options);
}

ExtractedShape ExtractShapeIndexedFlagged(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options) {
  std::vector<tseries::SeriesView> views;
  views.reserve(member_indices.size());
  for (std::size_t idx : member_indices) {
    KSHAPE_CHECK(idx < pool.size());
    views.push_back(pool[idx]);
  }
  return ExtractShapeImpl(views, reference, rng, options);
}

}  // namespace kshape::core
