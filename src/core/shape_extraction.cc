#include "core/shape_extraction.h"

#include <cmath>

#include "common/check.h"
#include "core/sbd.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"

namespace kshape::core {

namespace {

// Computes M = Q S Q for Q = I - (1/m) * ones in O(m^2) using
// M_ij = S_ij - rowmean_i - colmean_j + grandmean, instead of two O(m^3)
// matrix products.
linalg::Matrix CenterGramMatrix(const linalg::Matrix& s) {
  const std::size_t m = s.rows();
  std::vector<double> row_mean(m, 0.0);
  std::vector<double> col_mean(m, 0.0);
  // One kernel pass per row: the row sum reduces the row, the axpy folds it
  // into the running column sums; the grand sum is the reduction of the row
  // sums. All three stay within the epsilon contract of the fused legacy
  // triple accumulation.
  for (std::size_t i = 0; i < m; ++i) {
    row_mean[i] = simd::Active().sum(s.Row(i), m);
    simd::Active().axpy(1.0, s.Row(i), col_mean.data(), m);
  }
  double grand = simd::Sum(row_mean);
  const double inv_m = 1.0 / static_cast<double>(m);
  simd::Scale(row_mean, inv_m);
  simd::Scale(col_mean, inv_m);
  grand *= inv_m * inv_m;

  linalg::Matrix centered(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      centered(i, j) = s(i, j) - row_mean[i] - col_mean[j] + grand;
    }
  }
  return centered;
}

ExtractedShape ExtractShapeImpl(
    const std::vector<tseries::SeriesView>& members,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options) {
  KSHAPE_CHECK(rng != nullptr);
  if (members.empty()) {
    ExtractedShape result;
    result.centroid = tseries::Series(reference.size(), 0.0);
    result.degenerate = true;
    return result;
  }
  ShapeAccumulator accumulator(reference);
  for (tseries::SeriesView member : members) accumulator.Add(member);
  return accumulator.Finish(rng, options);
}

}  // namespace

ShapeAccumulator::ShapeAccumulator(tseries::SeriesView reference)
    : reference_(reference.begin(), reference.end()),
      align_(linalg::Norm(reference) > 0.0),
      s_(reference.size(), reference.size()),
      mean_(reference.size(), 0.0) {
  KSHAPE_CHECK_MSG(!reference_.empty(), "empty shape-extraction reference");
}

void ShapeAccumulator::Add(tseries::SeriesView member) {
  const std::size_t m = reference_.size();
  KSHAPE_CHECK_MSG(member.size() == m, "member length mismatch");
  ++added_;
  // Accumulate S = sum_i y_i y_i^T over the aligned, z-normalized members.
  // Members that z-normalize to the zero series (constant after alignment)
  // contribute nothing to S or the mean; they are skipped so a fully
  // degenerate member set can be detected instead of feeding the zero matrix
  // to the eigensolver, which would return an arbitrary start vector.
  tseries::Series aligned = align_ ? Sbd(reference_, member).aligned_y
                                   : tseries::Series(member.begin(),
                                                     member.end());
  tseries::ZNormalizeInPlace(&aligned);
  if (linalg::Norm(aligned) == 0.0) return;
  // Upper triangle only (S is symmetric); mirrored once in Finish at half
  // the accumulation cost, bit-identical to the full outer products.
  s_.AddSymmetricOuterProduct(aligned);
  linalg::Axpy(1.0, aligned, &mean_);
  ++used_;
}

ExtractedShape ShapeAccumulator::Finish(
    common::Rng* rng, const ShapeExtractionOptions& options) const {
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t m = reference_.size();
  ExtractedShape result;
  if (used_ == 0) {
    result.centroid = tseries::Series(m, 0.0);
    result.degenerate = true;
    return result;
  }
  linalg::Matrix s = s_;
  s.MirrorUpperToLower();

  const linalg::Matrix centered = CenterGramMatrix(s);

  std::vector<double> centroid;
  if (options.use_power_iteration) {
    // Warm start: the alignment reference (the previous centroid) is close
    // to the new dominant eigenvector once the clustering begins to settle,
    // so seeding with it saves most of the power-iteration steps. `align_`
    // already certifies a nonzero reference.
    std::vector<double> seed;
    if (options.warm_start && align_) {
      seed.assign(reference_.begin(), reference_.end());
    }
    centroid = linalg::DominantEigenvector(
        centered, rng, /*max_iters=*/200, /*tol=*/1e-10,
        /*eigenvalue=*/nullptr, seed.empty() ? nullptr : &seed);
  } else {
    const linalg::EigenDecomposition decomp = linalg::SymmetricEigen(centered);
    centroid = decomp.eigenvectors.ColVector(m - 1);  // Largest eigenvalue.
  }

  // An eigenvector's sign is arbitrary; pick the orientation that correlates
  // positively with the cluster mean so centroids look like the data.
  if (linalg::Dot(centroid, mean_) < 0.0) {
    linalg::Scale(&centroid, -1.0);
  }
  tseries::ZNormalizeInPlace(&centroid);
  result.centroid = std::move(centroid);
  return result;
}

tseries::Series ExtractShape(const tseries::SeriesBatch& members,
                             tseries::SeriesView reference,
                             common::Rng* rng,
                             const ShapeExtractionOptions& options) {
  return ExtractShapeFlagged(members, reference, rng, options).centroid;
}

tseries::Series ExtractShapeIndexed(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options) {
  return ExtractShapeIndexedFlagged(pool, member_indices, reference, rng,
                                    options)
      .centroid;
}

ExtractedShape ExtractShapeFlagged(const tseries::SeriesBatch& members,
                                   tseries::SeriesView reference,
                                   common::Rng* rng,
                                   const ShapeExtractionOptions& options) {
  std::vector<tseries::SeriesView> views;
  views.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) views.push_back(members[i]);
  return ExtractShapeImpl(views, reference, rng, options);
}

ExtractedShape ExtractShapeIndexedFlagged(
    const tseries::SeriesBatch& pool,
    const std::vector<std::size_t>& member_indices,
    tseries::SeriesView reference, common::Rng* rng,
    const ShapeExtractionOptions& options) {
  std::vector<tseries::SeriesView> views;
  views.reserve(member_indices.size());
  for (std::size_t idx : member_indices) {
    KSHAPE_CHECK(idx < pool.size());
    views.push_back(pool[idx]);
  }
  return ExtractShapeImpl(views, reference, rng, options);
}

}  // namespace kshape::core
