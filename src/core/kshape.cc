#include "core/kshape.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/check.h"
#include "common/parallel.h"
#include "core/sbd.h"
#include "core/sbd_engine.h"
#include "fft/rfft.h"

namespace kshape::core {

namespace {

// The SBD evaluations of one D^2 scan are independent per series, so they
// run on the thread pool; each index writes only d2[i] / nearest[i]. The
// RNG-driven sampling between scans stays sequential, and `total` is reduced
// over the materialized d2 array in index order — so the seeding consumes
// exactly the same random stream and picks the same seeds at every thread
// count. Grain 16 amortizes chunk-claiming over the cheap per-index work.
constexpr std::size_t kScanGrain = 16;

// k-means++-style seeding under SBD: D^2 sampling of k seed series, then a
// nearest-seed initial assignment. With a spectrum cache (`engine` non-null)
// every seed-to-series distance is a single inverse transform on spectra
// computed once for the whole Cluster() call; both seed and candidate are
// in-set, so no forward transform runs inside the scans at all.
std::vector<int> PlusPlusAssignments(const tseries::SeriesBatch& series,
                                     int k, common::Rng* rng,
                                     const SbdEngine* engine) {
  const std::size_t n = series.size();
  std::vector<std::size_t> seeds;
  seeds.push_back(static_cast<std::size_t>(rng->UniformInt(
      static_cast<int>(n))));

  auto seed_distance = [&](std::size_t seed, std::size_t i) {
    return engine != nullptr ? engine->Distance(seed, i)
                             : Sbd(series[seed], series[i]).distance;
  };

  // d2[i] = squared SBD to the nearest chosen seed.
  std::vector<double> d2(n);
  common::ParallelFor(0, n, kScanGrain,
                      [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const double d = seed_distance(seeds[0], i);
      d2[i] = d * d;
    }
  });
  std::vector<int> nearest(n, 0);

  while (static_cast<int>(seeds.size()) < k) {
    double total = 0.0;
    for (double v : d2) total += v;
    std::size_t pick = 0;
    if (total <= 0.0) {
      // All series coincide with a seed; any unused index works.
      pick = static_cast<std::size_t>(rng->UniformInt(static_cast<int>(n)));
    } else {
      double threshold = rng->Uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        threshold -= d2[i];
        if (threshold <= 0.0) {
          pick = i;
          break;
        }
      }
    }
    seeds.push_back(pick);
    const int seed_index = static_cast<int>(seeds.size()) - 1;
    common::ParallelFor(0, n, kScanGrain,
                        [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const double d = seed_distance(pick, i);
        if (d * d < d2[i]) {
          d2[i] = d * d;
          nearest[i] = seed_index;
        }
      }
    });
  }
  return nearest;
}

}  // namespace

KShape::KShape(KShapeOptions options) : options_(options) {
  KSHAPE_CHECK(options_.max_iterations >= 1);
  name_ = options_.assignment_distance == nullptr
              ? "k-Shape"
              : "k-Shape+" + options_.assignment_distance->Name();
}

cluster::ClusteringResult KShape::Cluster(
    const tseries::SeriesBatch& series, int k, common::Rng* rng) const {
  KSHAPE_CHECK(!series.empty());
  KSHAPE_CHECK(k >= 1 && static_cast<std::size_t>(k) <= series.size());
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t n = series.size();
  const std::size_t m = series.length();

  // Bound-driven pruning runs only on the cached-SBD path (it needs the
  // engine's spectra for the bounds) and only when both the option and the
  // process-wide KSHAPE_PRUNE gate agree.
  const bool pruning = options_.use_pruning && PruningEnabled() &&
                       options_.use_spectrum_cache &&
                       options_.assignment_distance == nullptr;

  // Spectrum cache: every series' forward FFT is computed once here and
  // reused by every ++-seeding scan and every assignment-step distance in
  // every iteration. Centroid spectra are refreshed once per iteration (k
  // forwards) below, so each centroid-to-series distance is a single inverse
  // transform. Disabled for custom assignment distances (the engine only
  // accelerates SBD) and by the ablation flag.
  std::optional<SbdEngine> engine;
  if (options_.use_spectrum_cache && options_.assignment_distance == nullptr) {
    engine.emplace(series, CrossCorrelationImpl::kFft,
                   options_.use_half_spectrum && fft::HalfSpectrumEnabled(),
                   /*build_bound_planes=*/pruning);
  }

  cluster::ClusteringResult result;
  result.assignments =
      options_.init == KShapeInit::kPlusPlusSeeding
          ? PlusPlusAssignments(series, k, rng,
                                engine ? &*engine : nullptr)
          : cluster::RandomAssignments(n, k, rng);
  result.centroids.assign(k, tseries::Series(m, 0.0));

  // Per-iteration centroid spectra; refreshed sequentially after each
  // refinement step so the assignment scan below stays deterministic.
  std::vector<SbdEngine::Query> centroid_queries;

  auto assignment_distance = [&](int j, std::size_t i) {
    if (options_.assignment_distance != nullptr) {
      return options_.assignment_distance->Distance(result.centroids[j],
                                                    series[i]);
    }
    if (engine) return engine->Distance(centroid_queries[j], i);
    return Sbd(result.centroids[j], series[i]).distance;
  };

  // Pruning state. Bounds live in the sqrt(SBD) domain, where SBD behaves
  // (approximately) like a squared chordal distance and the triangle
  // inequality the movement updates rely on approximately holds:
  //   ub_r[i] >= sqrt(d(i, centroid of a_i))     (upper, owner distance)
  //   lb_r[i] <= sqrt(min_{j != a_i} d(i, c_j))  (lower, second-closest)
  // After refinement moves centroid j by shift_r[j] = sqrt(SBD(old_j, new_j)),
  // ub_r grows by the owner's shift and lb_r shrinks by the largest shift
  // (second-largest when the owner moved most — the Hamerly max1/max2 trick).
  // Comparisons happen back in SBD units with the prune_margin slack. The
  // first iteration (and any iteration after an empty-cluster repair, which
  // rewires assignments behind the bounds' back) runs a full scan.
  const double margin = options_.prune_margin;
  std::vector<double> ub_r, lb_r, shift_r;
  std::vector<tseries::Series> prev_centroids;
  bool bounds_valid = false;
  // Per-series telemetry cells (disjoint writes in the parallel scan,
  // reduced sequentially in index order afterwards).
  std::vector<long long> cnt_computed, cnt_pruned, cnt_abandoned;
  std::vector<unsigned char> verify_mismatch;
  if (pruning) {
    ub_r.assign(n, 0.0);
    lb_r.assign(n, 0.0);
    shift_r.assign(k, 0.0);
    cnt_computed.assign(n, 0);
    cnt_pruned.assign(n, 0);
    cnt_abandoned.assign(n, 0);
    if (options_.verify_pruning) verify_mismatch.assign(n, 0);
  }

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const std::vector<int> previous = result.assignments;
    if (pruning && bounds_valid) prev_centroids = result.centroids;

    // Refinement step: recompute each centroid by shape extraction, using
    // the previous centroid as the alignment reference (Algorithm 3, 5-10).
    // A degenerate extraction (all members zero-norm) keeps the zero centroid
    // as its documented representative and is surfaced via the result flag.
    const auto groups = cluster::GroupByCluster(result.assignments, k);
    result.degenerate_centroids = 0;
    for (int j = 0; j < k; ++j) {
      ExtractedShape extracted =
          ExtractShapeIndexedFlagged(series, groups[j], result.centroids[j],
                                     rng, options_.shape_options);
      result.centroids[j] = std::move(extracted.centroid);
      if (extracted.degenerate && !groups[j].empty()) {
        ++result.degenerate_centroids;
      }
    }
    if (engine) {
      // k forward transforms per iteration; every centroid-to-series
      // distance below reuses them as a single inverse transform.
      centroid_queries.clear();
      for (int j = 0; j < k; ++j) {
        centroid_queries.push_back(engine->MakeQuery(result.centroids[j]));
      }
    }

    // Centroid-shift distances for the movement bounds: k direct SBDs (old
    // vs new centroid), outside the n·k assignment counters.
    double max_shift1 = 0.0, max_shift2 = 0.0;
    int max_shift_arg = -1;
    if (pruning && bounds_valid) {
      for (int j = 0; j < k; ++j) {
        const double d = Sbd(prev_centroids[j], result.centroids[j]).distance;
        shift_r[j] = std::sqrt(std::max(0.0, d));
      }
      for (int j = 0; j < k; ++j) {
        if (max_shift_arg < 0 || shift_r[j] > max_shift1) {
          if (max_shift_arg >= 0) max_shift2 = max_shift1;
          max_shift1 = shift_r[j];
          max_shift_arg = j;
        } else if (shift_r[j] > max_shift2) {
          max_shift2 = shift_r[j];
        }
      }
    }

    // Assignment step: move each series to its closest centroid
    // (Algorithm 3, lines 11-17). Each index reads the shared centroids and
    // writes only its own assignments[i] (and, when pruning, its own bound/
    // telemetry cells); ties are broken by centroid order inside each index,
    // so the result is thread-count-invariant.
    cluster::AssignmentIterationStats stats;
    if (!pruning) {
      common::ParallelFor(0, n, kScanGrain,
                          [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          double min_dist = std::numeric_limits<double>::infinity();
          int best = result.assignments[i];
          for (int j = 0; j < k; ++j) {
            const double d = assignment_distance(j, i);
            if (d < min_dist) {
              min_dist = d;
              best = j;
            }
          }
          result.assignments[i] = best;
        }
      });
      stats.computed = static_cast<long long>(n) * k;
    } else {
      const bool use_bounds = bounds_valid;
      common::ParallelFor(0, n, kScanGrain,
                          [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const int owner = result.assignments[i];
          long long comp = 0, pruned = 0, aband = 0;
          bool scanned = true;
          double d_owner = 0.0;
          if (use_bounds) {
            // Apply this iteration's centroid movement to the bounds.
            ub_r[i] += shift_r[owner];
            lb_r[i] -= owner == max_shift_arg ? max_shift2 : max_shift1;
            if (lb_r[i] < 0.0) lb_r[i] = 0.0;
            const double ub2 = ub_r[i] * ub_r[i];
            const double lb2 = lb_r[i] * lb_r[i];
            if (ub2 + margin <= lb2) {
              // Whole-series prune: no centroid can take this series.
              pruned = k;
              scanned = false;
            } else {
              // Tighten the upper bound with the exact owner distance, then
              // re-test (Hamerly's second check).
              d_owner = engine->Distance(centroid_queries[owner], i);
              ++comp;
              ub_r[i] = std::sqrt(std::max(0.0, d_owner));
              if (d_owner + margin <= lb2) {
                pruned = k - 1;
                scanned = false;
              }
            }
          } else {
            d_owner = engine->Distance(centroid_queries[owner], i);
            ++comp;
          }
          if (scanned) {
            // Full ascending-j scan with spectral early abandoning. The
            // owner's distance is computed up front (reused at j == owner),
            // so the comparison sequence over computed distances is the one
            // the exact scan walks — identical labels and tie-breaks.
            double min1 = std::numeric_limits<double>::infinity();
            double min2 = std::numeric_limits<double>::infinity();
            int best = owner;
            for (int j = 0; j < k; ++j) {
              bool ab = false;
              double v;
              if (j == owner) {
                v = d_owner;
              } else {
                v = engine->DistanceWithAbandon(
                    centroid_queries[j], i,
                    min1 + SbdEngine::kDefaultBoundSlack, &ab);
                if (ab) {
                  ++aband;
                } else {
                  ++comp;
                }
              }
              if (!ab && v < min1) {
                min2 = min1;
                min1 = v;
                best = j;
              } else if (v < min2) {
                // Abandoned candidates contribute their distance LOWER
                // bound: min2 stays a valid lower bound on the true
                // second-closest distance.
                min2 = v;
              }
            }
            result.assignments[i] = best;
            ub_r[i] = std::sqrt(std::max(0.0, min1));
            lb_r[i] = std::sqrt(std::max(0.0, min2));
          }
          if (!verify_mismatch.empty()) {
            // Exact recomputation of the argmin (outside the telemetry
            // counters); the pruned decision is kept either way.
            double vmin = std::numeric_limits<double>::infinity();
            int vbest = owner;
            for (int j = 0; j < k; ++j) {
              const double d = engine->Distance(centroid_queries[j], i);
              if (d < vmin) {
                vmin = d;
                vbest = j;
              }
            }
            verify_mismatch[i] = vbest != result.assignments[i] ? 1 : 0;
          }
          cnt_computed[i] = comp;
          cnt_pruned[i] = pruned;
          cnt_abandoned[i] = aband;
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        stats.computed += cnt_computed[i];
        stats.pruned_bounds += cnt_pruned[i];
        stats.abandoned_partial += cnt_abandoned[i];
      }
      if (!verify_mismatch.empty()) {
        for (std::size_t i = 0; i < n; ++i) {
          result.pruned_label_mismatches += verify_mismatch[i];
        }
      }
    }
    result.assignment_stats.push_back(stats);
    result.distances_computed += stats.computed;
    result.distances_pruned_bounds += stats.pruned_bounds;
    result.distances_abandoned_partial += stats.abandoned_partial;

    // Re-seed clusters that lost all members with the series farthest from
    // its current centroid, so every requested cluster stays populated
    // (shared policy — see RepairEmptyClusters for the tie-break contract).
    const int reseeds =
        cluster::RepairEmptyClusters(k, &result.assignments,
                                     assignment_distance);
    result.empty_cluster_reseeds += reseeds;
    if (pruning) {
      // Repair rewires assignments without touching the bounds; a full
      // rebuild next iteration is the only safe continuation.
      bounds_valid = reseeds == 0;
    }

    result.iterations = iter + 1;
    if (result.assignments == previous) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace kshape::core
