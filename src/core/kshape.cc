#include "core/kshape.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "core/sbd.h"
#include "core/sbd_engine.h"
#include "fft/rfft.h"
#include "model/assigner.h"

namespace kshape::core {

namespace {

// The SBD evaluations of one D^2 scan are independent per series, so they
// run on the thread pool; each index writes only d2[i] / nearest[i]. The
// RNG-driven sampling between scans stays sequential, and `total` is reduced
// over the materialized d2 array in index order — so the seeding consumes
// exactly the same random stream and picks the same seeds at every thread
// count. Grain 16 amortizes chunk-claiming over the cheap per-index work.
constexpr std::size_t kScanGrain = 16;

// k-means++-style seeding under SBD: D^2 sampling of k seed series, then a
// nearest-seed initial assignment. With a spectrum cache (`engine` non-null)
// every seed-to-series distance is a single inverse transform on spectra
// computed once for the whole Cluster() call; both seed and candidate are
// in-set, so no forward transform runs inside the scans at all.
std::vector<int> PlusPlusAssignments(const tseries::SeriesBatch& series,
                                     int k, common::Rng* rng,
                                     const SbdEngine* engine) {
  const std::size_t n = series.size();
  std::vector<std::size_t> seeds;
  seeds.push_back(static_cast<std::size_t>(rng->UniformInt(
      static_cast<int>(n))));

  auto seed_distance = [&](std::size_t seed, std::size_t i) {
    return engine != nullptr ? engine->Distance(seed, i)
                             : Sbd(series[seed], series[i]).distance;
  };

  // d2[i] = squared SBD to the nearest chosen seed.
  std::vector<double> d2(n);
  common::ParallelFor(0, n, kScanGrain,
                      [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const double d = seed_distance(seeds[0], i);
      d2[i] = d * d;
    }
  });
  std::vector<int> nearest(n, 0);

  while (static_cast<int>(seeds.size()) < k) {
    double total = 0.0;
    for (double v : d2) total += v;
    std::size_t pick = 0;
    if (total <= 0.0) {
      // All series coincide with a seed; any unused index works.
      pick = static_cast<std::size_t>(rng->UniformInt(static_cast<int>(n)));
    } else {
      double threshold = rng->Uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        threshold -= d2[i];
        if (threshold <= 0.0) {
          pick = i;
          break;
        }
      }
    }
    seeds.push_back(pick);
    const int seed_index = static_cast<int>(seeds.size()) - 1;
    common::ParallelFor(0, n, kScanGrain,
                        [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const double d = seed_distance(pick, i);
        if (d * d < d2[i]) {
          d2[i] = d * d;
          nearest[i] = seed_index;
        }
      }
    });
  }
  return nearest;
}

}  // namespace

KShape::KShape(KShapeOptions options) : options_(options) {
  KSHAPE_CHECK(options_.max_iterations >= 1);
  name_ = options_.assignment_distance == nullptr
              ? "k-Shape"
              : "k-Shape+" + options_.assignment_distance->Name();
}

cluster::ClusteringResult KShape::Cluster(
    const tseries::SeriesBatch& series, int k, common::Rng* rng) const {
  KSHAPE_CHECK(!series.empty());
  KSHAPE_CHECK(k >= 1 && static_cast<std::size_t>(k) <= series.size());
  KSHAPE_CHECK(rng != nullptr);
  const std::size_t n = series.size();
  const std::size_t m = series.length();

  // Bound-driven pruning runs only on the cached-SBD path (it needs the
  // engine's spectra for the bounds) and only when both the option and the
  // process-wide KSHAPE_PRUNE gate agree.
  const bool pruning = options_.use_pruning && PruningEnabled() &&
                       options_.use_spectrum_cache &&
                       options_.assignment_distance == nullptr;

  // Spectrum cache: every series' forward FFT is computed once here and
  // reused by every ++-seeding scan and every assignment-step distance in
  // every iteration. Centroid spectra are refreshed once per iteration (k
  // forwards) below, so each centroid-to-series distance is a single inverse
  // transform. Disabled for custom assignment distances (the engine only
  // accelerates SBD) and by the ablation flag.
  std::optional<SbdEngine> engine;
  if (options_.use_spectrum_cache && options_.assignment_distance == nullptr) {
    engine.emplace(series, CrossCorrelationImpl::kFft,
                   options_.use_half_spectrum && fft::HalfSpectrumEnabled(),
                   /*build_bound_planes=*/pruning);
  }

  cluster::ClusteringResult result;
  result.assignments =
      options_.init == KShapeInit::kPlusPlusSeeding
          ? PlusPlusAssignments(series, k, rng,
                                engine ? &*engine : nullptr)
          : cluster::RandomAssignments(n, k, rng);
  result.centroids.assign(k, tseries::Series(m, 0.0));

  // The one assignment implementation (movement bounds + spectral abandon +
  // telemetry live in model::Assigner). The k-Shape loop keeps only the
  // iteration protocol: snapshot → refine → begin → assign → repair → finish.
  model::AssignerOptions assigner_options;
  assigner_options.k = k;
  assigner_options.num_series = n;
  assigner_options.m = m;
  assigner_options.fft_len = engine ? engine->fft_length() : 0;
  assigner_options.use_half_spectrum = engine && engine->half_spectrum();
  assigner_options.use_pruning = pruning;
  assigner_options.use_movement_bounds = pruning;
  assigner_options.prune_margin = options_.prune_margin;
  assigner_options.verify = pruning && options_.verify_pruning;
  model::Assigner assigner(assigner_options);

  auto assignment_distance = [&](int j, std::size_t i) {
    if (options_.assignment_distance != nullptr) {
      return options_.assignment_distance->Distance(result.centroids[j],
                                                    series[i]);
    }
    if (engine) return engine->Distance(assigner.queries()[j], i);
    return Sbd(result.centroids[j], series[i]).distance;
  };

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    const std::vector<int> previous = result.assignments;
    assigner.SnapshotCentroids(result.centroids);

    // Refinement step: recompute each centroid by shape extraction, using
    // the previous centroid as the alignment reference (Algorithm 3, 5-10).
    // A degenerate extraction (all members zero-norm) keeps the zero centroid
    // as its documented representative and is surfaced via the result flag.
    common::Stopwatch phase_clock;
    const auto groups = cluster::GroupByCluster(result.assignments, k);
    result.degenerate_centroids = 0;
    for (int j = 0; j < k; ++j) {
      ExtractedShape extracted =
          ExtractShapeIndexedFlagged(series, groups[j], result.centroids[j],
                                     rng, options_.shape_options);
      result.centroids[j] = std::move(extracted.centroid);
      if (extracted.degenerate && !groups[j].empty()) {
        ++result.degenerate_centroids;
      }
    }
    result.extraction_seconds += phase_clock.ElapsedSeconds();
    phase_clock.Reset();
    // Assignment step: move each series to its closest centroid
    // (Algorithm 3, lines 11-17), delegated entirely to the Assigner.
    // BeginIteration mints this iteration's centroid queries (k forward
    // transforms; every centroid-to-series distance below reuses them as a
    // single inverse transform) and derives the movement-bound shifts.
    assigner.BeginIteration(result.centroids);
    if (engine) {
      assigner.AssignBlock(*engine, 0, &result.assignments);
    } else {
      assigner.AssignBlockWith(assignment_distance, 0, n,
                               &result.assignments);
    }
    const cluster::AssignmentIterationStats stats =
        assigner.iteration_stats();
    result.pruned_label_mismatches += assigner.iteration_verify_mismatches();
    result.assignment_stats.push_back(stats);
    result.distances_computed += stats.computed;
    result.distances_pruned_bounds += stats.pruned_bounds;
    result.distances_abandoned_partial += stats.abandoned_partial;

    // Re-seed clusters that lost all members with the series farthest from
    // its current centroid, so every requested cluster stays populated
    // (shared policy — see RepairEmptyClusters for the tie-break contract).
    const int reseeds =
        cluster::RepairEmptyClusters(k, &result.assignments,
                                     assignment_distance);
    result.empty_cluster_reseeds += reseeds;
    assigner.FinishIteration(reseeds);
    result.assignment_seconds += phase_clock.ElapsedSeconds();

    result.iterations = iter + 1;
    if (result.assignments == previous) {
      result.converged = true;
      break;
    }
  }
  cluster::AttachFittedModel(&result, Name());
  return result;
}

}  // namespace kshape::core
