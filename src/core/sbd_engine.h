#ifndef KSHAPE_CORE_SBD_ENGINE_H_
#define KSHAPE_CORE_SBD_ENGINE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "core/sbd.h"
#include "fft/fft.h"
#include "fft/rfft.h"
#include "linalg/matrix.h"
#include "simd/kernels.h"
#include "tseries/time_series.h"

namespace kshape::core {

/// Spectrum cache for SBD over a fixed set of equal-length series.
///
/// Construction performs one forward FFT and one norm per series (a
/// deterministic parallel pre-pass); after that, every pairwise NCC against
/// the set is a single inverse transform on the cached spectra instead of the
/// two forwards + one inverse the direct Sbd() path spends. A pairwise matrix
/// therefore costs n forwards + n(n-1)/2 inverses rather than ~n^2 forwards
/// + n(n-1)/2 inverses, and a k-Shape assignment iteration costs k forwards
/// (one per centroid) + n*k inverses.
///
/// Half-spectrum mode (the default; see fft/rfft.h): series are real, so the
/// engine caches only the packed bins [0, fft_len/2] in one contiguous SoA
/// pool (fft::BatchSpectra, one plan lookup for the whole batch). That halves
/// the cache memory — 16*fft_len bytes per series for full complex spectra
/// versus 8*fft_len + 16 bytes packed — and on power-of-two fft_len the
/// forward/inverse transforms run at half size too. The full-complex layout
/// of PR 5 remains behind `use_half_spectrum = false` (or the process-wide
/// KSHAPE_HALF_SPECTRUM=off gate) for A/B comparison.
///
/// Equivalence contract: the cached path agrees with Sbd() to a tight
/// epsilon, not bitwise — the direct path packs two reals into one complex
/// transform, which rounds differently from per-series spectra (see
/// fft::CrossCorrelationFromSpectra); the half- and full-spectrum cached
/// paths likewise agree to epsilon, not bitwise. Within one configuration the
/// arithmetic is fixed per input, so results are bit-identical across runs,
/// SIMD backends, and thread counts.
///
/// Thread-safety: immutable after construction; all const members may be
/// called concurrently (per-pair scratch is thread_local inside src/fft).
class SbdEngine {
 public:
  /// Builds spectra and norms for `series`. All series must share one length
  /// m >= 1. `impl` selects the padding: kFft transforms at the next power of
  /// two >= 2m-1, kFftNoPow2 at exactly 2m-1 (Bluestein, whose chirp plan is
  /// cached per length). kNaive has no spectra and is rejected.
  /// `use_half_spectrum` selects the packed SoA cache (default: the
  /// process-wide gate, i.e. on unless KSHAPE_HALF_SPECTRUM=off).
  explicit SbdEngine(const tseries::SeriesBatch& series,
                     CrossCorrelationImpl impl = CrossCorrelationImpl::kFft,
                     bool use_half_spectrum = fft::HalfSpectrumEnabled());

  /// Number of cached series.
  std::size_t size() const { return norms_.size(); }

  /// The common series length m.
  std::size_t series_length() const { return m_; }

  /// The padded transform length.
  std::size_t fft_length() const { return fft_len_; }

  /// True when the engine runs on packed half spectra.
  bool half_spectrum() const { return half_; }

  /// Spectrum + norm of an out-of-set series (e.g. a k-Shape centroid),
  /// computed once and reusable against every cached series. Exactly one of
  /// `spectrum` (full-complex mode) / `rspectrum` (half-spectrum mode) is
  /// populated, matching the engine that minted it.
  struct Query {
    std::vector<fft::Complex> spectrum;
    fft::RfftSpectrum rspectrum;
    double norm = 0.0;
  };

  /// One forward transform + one norm. Requires q.size() == series_length().
  Query MakeQuery(tseries::SeriesView q) const;

  /// SBD(series[i], series[j]) from cached spectra: one inverse transform.
  /// Mirrors Sbd()'s zero-norm convention (distance 1).
  double Distance(std::size_t i, std::size_t j) const;

  /// SBD(q, series[i]), with the query in the x role of Sbd(x, y).
  double Distance(const Query& q, std::size_t i) const;

  /// Peak NCCc value and optimal shift of series[i] relative to q — the
  /// cached analogue of MaxNcc(q, series[i], kCoefficient).
  NccPeak MaxNcc(const Query& q, std::size_t i) const;

  /// out[i] = SBD(q, series[i]) for every cached series, computed in parallel
  /// on the global pool with disjoint writes: bit-identical at every thread
  /// count.
  void DistanceToAll(const Query& q, std::vector<double>* out) const;

  /// Convenience: MakeQuery + DistanceToAll.
  std::vector<double> DistanceToAll(tseries::SeriesView query) const;

  /// Full symmetric pairwise SBD matrix (zero diagonal) from cached spectra,
  /// rows in parallel with disjoint writes: bit-identical at every thread
  /// count.
  linalg::Matrix PairwiseMatrix() const;

  /// PairwiseMatrix flattened row-major into `flat` (size() * size()
  /// entries). This is the carrier for the DistanceMeasure batched-pairwise
  /// hook, which cannot name linalg::Matrix.
  void PairwiseFlat(std::vector<double>* flat) const;

 private:
  // Peak of the raw cross-correlation of cached entry i against entry j /
  // query q, routed through whichever spectrum layout the engine holds.
  simd::Peak RawPeak(std::size_t i, std::size_t j) const;
  simd::Peak RawPeak(const Query& q, std::size_t i) const;

  std::size_t m_ = 0;
  std::size_t fft_len_ = 0;
  bool half_ = false;
  // Full-complex layout (PR 5): one spectrum vector per series.
  std::vector<std::vector<fft::Complex>> spectra_;
  // Packed half-spectrum layout: contiguous SoA pool + its amortized plan.
  std::optional<fft::BatchSpectra> batch_;
  std::vector<double> norms_;
};

}  // namespace kshape::core

#endif  // KSHAPE_CORE_SBD_ENGINE_H_
