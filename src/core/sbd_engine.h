#ifndef KSHAPE_CORE_SBD_ENGINE_H_
#define KSHAPE_CORE_SBD_ENGINE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "core/sbd.h"
#include "fft/fft.h"
#include "fft/rfft.h"
#include "linalg/matrix.h"
#include "simd/kernels.h"
#include "tseries/time_series.h"

namespace kshape::core {

/// Process-wide pruning gate, resolved once on first use from the
/// KSHAPE_PRUNE environment variable: "off" disables every bound-driven
/// shortcut (Hamerly-style assignment pruning and spectral early-abandon NCC
/// — all consumers fall back to exhaustive exact scans), "on" or unset
/// enables them, anything else aborts. Layered under the per-call options
/// (KShapeOptions::use_pruning, the classify scanners): pruning runs only
/// when both the option and this gate say yes, so one environment variable
/// can force the exact behavior for A/B runs without touching call sites.
bool PruningEnabled();

/// Replaces the gate for the rest of the process (tests comparing pruned and
/// exact paths in one run). Call from a single thread, between parallel
/// regions.
void SetPruningEnabledForTesting(bool enabled);

/// Process-wide telemetry of the lag-scan early abandon inside the cached
/// NCC peak scans: lags actually compared versus lags skipped because the
/// checkpointed suffix energy of the cc buffer certified the rest of the
/// scan could not beat the running peak (exactness-preserving — the returned
/// peak value AND index are bit-identical to the full scan). Relaxed atomic
/// counters; cumulative since process start (or the last reset).
struct PeakScanTelemetry {
  long long lags_scanned = 0;
  long long lags_skipped = 0;
};
PeakScanTelemetry PeakScanStats();

/// Zeroes the lag-scan counters (tests asserting on one workload's deltas).
/// Call between parallel regions.
void ResetPeakScanStatsForTesting();

/// Spectrum cache for SBD over a fixed set of equal-length series.
///
/// Construction performs one forward FFT and one norm per series (a
/// deterministic parallel pre-pass); after that, every pairwise NCC against
/// the set is a single inverse transform on the cached spectra instead of the
/// two forwards + one inverse the direct Sbd() path spends. A pairwise matrix
/// therefore costs n forwards + n(n-1)/2 inverses rather than ~n^2 forwards
/// + n(n-1)/2 inverses, and a k-Shape assignment iteration costs k forwards
/// (one per centroid) + n*k inverses.
///
/// Half-spectrum mode (the default; see fft/rfft.h): series are real, so the
/// engine caches only the packed bins [0, fft_len/2] in one contiguous SoA
/// pool (fft::BatchSpectra, one plan lookup for the whole batch). That halves
/// the cache memory — 16*fft_len bytes per series for full complex spectra
/// versus 8*fft_len + 16 bytes packed — and on power-of-two fft_len the
/// forward/inverse transforms run at half size too. The full-complex layout
/// of PR 5 remains behind `use_half_spectrum = false` (or the process-wide
/// KSHAPE_HALF_SPECTRUM=off gate) for A/B comparison.
///
/// Equivalence contract: the cached path agrees with Sbd() to a tight
/// epsilon, not bitwise — the direct path packs two reals into one complex
/// transform, which rounds differently from per-series spectra (see
/// fft::CrossCorrelationFromSpectra); the half- and full-spectrum cached
/// paths likewise agree to epsilon, not bitwise. Within one configuration the
/// arithmetic is fixed per input, so results are bit-identical across runs,
/// SIMD backends, and thread counts.
///
/// Spectral NCC bound (the pruning layer): for any shift s,
///   |cc[s]| = |IDFT(X * conj(Y))[s]| <= (1/N) Σ_k |X_k||Y_k|,
/// so max_s NCCc(x,y) <= (Σ_k |X_k||Y_k|) / (N ‖x‖‖y‖) — an upper bound on
/// the NCC peak (equivalently a lower bound on SBD) evaluable from bin
/// magnitudes alone, with NO inverse transform. The engine can precompute a
/// per-series weighted magnitude plane mag[k] = sqrt(w_k)|X_k| over the
/// packed bins [0, N/2] (w = 2 on interior bins, 1 on DC/Nyquist — conjugate
/// symmetry folds the upper half in) plus per-checkpoint suffix energies, so
/// the bound evaluates band-by-band through the abs_product_partial_sums
/// kernel and a candidate abandons as soon as its partial-sum bound falls
/// below the caller's cutoff (DistanceWithAbandon / Nearest).
///
/// Thread-safety: immutable after construction; all const members may be
/// called concurrently (per-pair scratch is thread_local inside src/fft).
class SbdEngine {
 public:
  /// Builds spectra and norms for `series`. All series must share one length
  /// m >= 1. `impl` selects the padding: kFft transforms at the next power of
  /// two >= 2m-1, kFftNoPow2 at exactly 2m-1 (Bluestein, whose chirp plan is
  /// cached per length). kNaive has no spectra and is rejected.
  /// `use_half_spectrum` selects the packed SoA cache (default: the
  /// process-wide gate, i.e. on unless KSHAPE_HALF_SPECTRUM=off).
  /// `build_bound_planes` additionally precomputes the magnitude/suffix
  /// planes for the spectral NCC bound (8·(N/2) bytes per series; off by
  /// default so non-pruning users keep the PR 6 memory footprint).
  explicit SbdEngine(const tseries::SeriesBatch& series,
                     CrossCorrelationImpl impl = CrossCorrelationImpl::kFft,
                     bool use_half_spectrum = fft::HalfSpectrumEnabled(),
                     bool build_bound_planes = false);

  /// Number of cached series.
  std::size_t size() const { return norms_.size(); }

  /// The common series length m.
  std::size_t series_length() const { return m_; }

  /// The padded transform length.
  std::size_t fft_length() const { return fft_len_; }

  /// True when the engine runs on packed half spectra.
  bool half_spectrum() const { return half_; }

  /// True when the magnitude/suffix planes for the spectral bound exist.
  bool has_bound_planes() const { return !mags_.empty(); }

  /// Spectrum + norm of an out-of-set series (e.g. a k-Shape centroid),
  /// computed once and reusable against every cached series. Exactly one of
  /// `spectrum` (full-complex mode) / `rspectrum` (half-spectrum mode) is
  /// populated, matching the engine that minted it. `mag`/`tail` (the
  /// query-side planes of the spectral bound) are filled only when the
  /// engine was built with bound planes.
  struct Query {
    std::vector<fft::Complex> spectrum;
    fft::RfftSpectrum rspectrum;
    double norm = 0.0;
    std::vector<double> mag;
    std::vector<double> tail;
  };

  /// One forward transform + one norm. Requires q.size() == series_length().
  Query MakeQuery(tseries::SeriesView q) const;

  /// Mints a Query from the engine *configuration* alone — series length,
  /// padded transform length, spectrum layout, bound planes — with no engine
  /// instance. The query arithmetic depends only on that configuration, so a
  /// query minted here is interchangeable bit for bit with MakeQuery() on
  /// any engine sharing it. The sharded clustering driver relies on this:
  /// each centroid's query is minted once per iteration and reused against
  /// every per-shard engine (all of which share one configuration, because
  /// fft_len is a function of m alone).
  static Query MakeQueryFor(tseries::SeriesView q, std::size_t m,
                            std::size_t fft_len, bool use_half_spectrum,
                            bool build_bound_planes);

  /// SBD(series[i], series[j]) from cached spectra: one inverse transform.
  /// Mirrors Sbd()'s zero-norm convention (distance 1).
  double Distance(std::size_t i, std::size_t j) const;

  /// SBD(q, series[i]), with the query in the x role of Sbd(x, y).
  double Distance(const Query& q, std::size_t i) const;

  /// Peak NCCc value and optimal shift of series[i] relative to q — the
  /// cached analogue of MaxNcc(q, series[i], kCoefficient).
  NccPeak MaxNcc(const Query& q, std::size_t i) const;

  /// out[i] = SBD(q, series[i]) for every cached series, computed in parallel
  /// on the global pool with disjoint writes: bit-identical at every thread
  /// count.
  void DistanceToAll(const Query& q, std::vector<double>* out) const;

  /// Convenience: MakeQuery + DistanceToAll.
  std::vector<double> DistanceToAll(tseries::SeriesView query) const;

  /// Full symmetric pairwise SBD matrix (zero diagonal) from cached spectra,
  /// rows in parallel with disjoint writes: bit-identical at every thread
  /// count.
  linalg::Matrix PairwiseMatrix() const;

  /// PairwiseMatrix flattened row-major into `flat` (size() * size()
  /// entries). This is the carrier for the DistanceMeasure batched-pairwise
  /// hook, which cannot name linalg::Matrix.
  void PairwiseFlat(std::vector<double>* flat) const;

  /// The spectral NCC upper bound (Σ_k w_k|Q_k||X_i,k|) / (N ‖q‖‖x_i‖),
  /// evaluated over the full plane (no abandoning). 0 when either norm is
  /// zero (mirroring the MaxNcc convention). Requires bound planes on both
  /// the engine and the query.
  double NccUpperBound(const Query& q, std::size_t i) const;

  /// SBD(q, series[i]) with spectral early abandoning: evaluates the
  /// partial-sum NCC bound band-by-band, and as soon as it certifies
  /// SBD(q, i) > cutoff, returns a valid LOWER bound on the distance
  /// (> cutoff) with *abandoned = true — no inverse transform spent.
  /// Otherwise returns the exact Distance(q, i) with *abandoned = false.
  /// cutoff = +infinity never abandons. Requires bound planes.
  double DistanceWithAbandon(const Query& q, std::size_t i, double cutoff,
                             bool* abandoned) const;

  /// Headroom added to early-abandon cutoffs so bound rounding (sqrt'd
  /// suffix energies, the band dot product) can never abandon a true
  /// near-tie. Far above accumulated ulps, far below any meaningful SBD gap.
  static constexpr double kDefaultBoundSlack = 1e-9;

 private:
  // Peak of the raw cross-correlation of cached entry i against entry j /
  // query q, routed through whichever spectrum layout the engine holds.
  simd::Peak RawPeak(std::size_t i, std::size_t j) const;
  simd::Peak RawPeak(const Query& q, std::size_t i) const;

  std::size_t m_ = 0;
  std::size_t fft_len_ = 0;
  bool half_ = false;
  // Full-complex layout (PR 5): one spectrum vector per series.
  std::vector<std::vector<fft::Complex>> spectra_;
  // Packed half-spectrum layout: contiguous SoA pool + its amortized plan.
  std::optional<fft::BatchSpectra> batch_;
  std::vector<double> norms_;
  // Spectral-bound planes (built on request): weighted bin magnitudes
  // (size() x bound_bins_) and checkpointed suffix norms (size() x
  // bound_tails_), both row-major contiguous.
  std::size_t bound_bins_ = 0;
  std::size_t bound_tails_ = 0;
  std::vector<double> mags_;
  std::vector<double> tails_;
};

}  // namespace kshape::core

#endif  // KSHAPE_CORE_SBD_ENGINE_H_
