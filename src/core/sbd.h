#ifndef KSHAPE_CORE_SBD_H_
#define KSHAPE_CORE_SBD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "distance/measure.h"
#include "tseries/time_series.h"

namespace kshape::core {

/// The three cross-correlation normalizations of Equation 8 of the paper.
enum class NccNormalization {
  kBiased,       // NCCb: CC_w / m
  kUnbiased,     // NCCu: CC_w / (m - |w - m|)
  kCoefficient,  // NCCc: CC_w / sqrt(R0(x,x) * R0(y,y))
};

/// Returns a short name ("NCCb", "NCCu", "NCCc").
const char* NccNormalizationName(NccNormalization norm);

/// How the full cross-correlation sequence is evaluated. Table 2 of the paper
/// ablates these: the padded FFT ("SBD") is 4.4x slower than ED, the
/// unpadded FFT ("SBD_NoPow2") 8.7x, and the direct O(m^2) evaluation
/// ("SBD_NoFFT") 224x.
enum class CrossCorrelationImpl {
  kFft,       // FFT at the next power of two >= 2m-1 (Algorithm 1 line 1-2).
  kFftNoPow2, // FFT at exactly 2m-1 (Bluestein when not a power of two).
  kNaive,     // Direct O(m^2) evaluation of Equation 7.
};

/// Computes the normalized cross-correlation sequence NCCq(x, y) of
/// Equation 8 for every shift: the returned vector has length 2m-1 and its
/// element i corresponds to shift s = i - (m - 1) of x relative to y.
/// For NCCc with a zero-norm input the sequence is all zeros.
std::vector<double> NccSequence(tseries::SeriesView x,
                                tseries::SeriesView y,
                                NccNormalization norm,
                                CrossCorrelationImpl impl =
                                    CrossCorrelationImpl::kFft);

/// The peak of an NCC sequence: value and the shift s at which it occurs.
struct NccPeak {
  double value = 0.0;
  int shift = 0;
};

/// Returns the maximum of NccSequence and the corresponding optimal shift.
NccPeak MaxNcc(tseries::SeriesView x, tseries::SeriesView y,
               NccNormalization norm,
               CrossCorrelationImpl impl = CrossCorrelationImpl::kFft);

/// Result of Algorithm 1 (SBD): the dissimilarity and y aligned toward x.
struct SbdResult {
  /// 1 - max_w NCCc(x, y), in [0, 2]; 0 means identical shape.
  double distance = 0.0;

  /// y delayed/advanced by `shift` with zero fill (Equation 5) so that it is
  /// optimally aligned with x.
  tseries::Series aligned_y;

  /// The applied shift: positive delays y, negative advances it.
  int shift = 0;
};

/// Shape-based distance, Algorithm 1 of the paper. Requires equal lengths.
/// Inputs are expected to be z-normalized (the measure is still well defined
/// otherwise, but only z-normalized inputs give the scaling invariance the
/// paper argues for). A zero-norm input yields distance 1 and an unshifted y.
SbdResult Sbd(tseries::SeriesView x, tseries::SeriesView y,
              CrossCorrelationImpl impl = CrossCorrelationImpl::kFft);

/// Library-boundary SBD for untrusted data: returns InvalidArgument on empty
/// inputs, a length mismatch (with a pointer to tseries/conditioning.h), or
/// non-finite values, where Sbd() would abort via KSHAPE_CHECK (or propagate
/// NaN). Zero-norm inputs are NOT an error: the documented fallback
/// (distance 1, unshifted y) applies, matching Sbd().
common::StatusOr<SbdResult> TrySbd(
    tseries::SeriesView x, tseries::SeriesView y,
    CrossCorrelationImpl impl = CrossCorrelationImpl::kFft);

/// DistanceMeasure adapter for SBD, usable by any clustering algorithm or
/// the 1-NN classifier (PAM+SBD, S+SBD, H-*+SBD, k-AVG+SBD of the paper).
///
/// The FFT variants also implement the batched DistanceMeasure hooks via
/// SbdEngine (see core/sbd_engine.h): pairwise matrices and fixed-set scans
/// cache one spectrum per series so each pair costs a single inverse
/// transform. The naive variant has no spectra and keeps the per-pair path.
class SbdDistance : public distance::DistanceMeasure {
 public:
  explicit SbdDistance(CrossCorrelationImpl impl = CrossCorrelationImpl::kFft);

  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override;
  std::string Name() const override { return name_; }

  bool BatchedPairwise(const tseries::SeriesBatch& series,
                       std::vector<double>* flat) const override;
  std::unique_ptr<distance::BatchScanner> NewBatchScanner(
      const tseries::SeriesBatch& candidates) const override;

 private:
  CrossCorrelationImpl impl_;
  std::string name_;
};

/// DistanceMeasure adapter for the raw cross-correlation variants NCCb/NCCu
/// (Appendix A): dissimilarity is defined as 1 - max_w NCCq(x, y). For NCCb
/// and NCCu the value is unbounded below/above 1, but 1-NN classification
/// only needs the ordering.
class NccDistance : public distance::DistanceMeasure {
 public:
  explicit NccDistance(NccNormalization norm);

  double Distance(tseries::SeriesView x,
                  tseries::SeriesView y) const override;
  std::string Name() const override { return name_; }

 private:
  NccNormalization norm_;
  std::string name_;
};

}  // namespace kshape::core

#endif  // KSHAPE_CORE_SBD_H_
