#include "fft/fft.h"

#include <cmath>
#include <map>
#include <span>
#include <mutex>

#include "common/check.h"
#include "simd/dispatch.h"

namespace kshape::fft {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

std::size_t NextPowerOfTwo(std::size_t n) {
  KSHAPE_CHECK(n >= 1);
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool IsPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

Radix2Plan::Radix2Plan(std::size_t n) : n_(n) {
  KSHAPE_CHECK_MSG(IsPowerOfTwo(n), "Radix2Plan requires a power-of-two size");
  log2n_ = 0;
  while ((std::size_t{1} << log2n_) < n_) ++log2n_;

  bit_reverse_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t rev = 0;
    std::size_t v = i;
    for (std::size_t b = 0; b < log2n_; ++b) {
      rev = (rev << 1) | (v & 1);
      v >>= 1;
    }
    bit_reverse_[i] = rev;
  }

  twiddles_.resize(n_ / 2);
  for (std::size_t k = 0; k < n_ / 2; ++k) {
    const double angle = -2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n_);
    twiddles_[k] = Complex(std::cos(angle), std::sin(angle));
  }
}

void Radix2Plan::TransformImpl(Complex* data, bool inverse) const {
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  // The butterfly stages run through the dispatched radix2_pass kernel
  // (scalar or AVX2, bit-identical by the kernel contract).
  // std::complex<double> is array-layout-compatible with double[2], so the
  // data buffer and the twiddle table stream into the kernel directly.
  const auto& kernels = simd::Active();
  double* interleaved = reinterpret_cast<double*>(data);
  const double* twiddles = reinterpret_cast<const double*>(twiddles_.data());
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    kernels.radix2_pass(interleaved, twiddles, n_, len, n_ / len, inverse);
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n_);
    for (std::size_t i = 0; i < n_; ++i) data[i] *= scale;
  }
}

void Radix2Plan::Forward(Complex* data) const { TransformImpl(data, false); }

void Radix2Plan::Inverse(Complex* data) const { TransformImpl(data, true); }

const Radix2Plan& GetPlan(std::size_t n) {
  // Function-local static pointer so the cache is never destroyed (the plans
  // are immutable and reclaiming them at exit would gain nothing). The map is
  // mutex-guarded so concurrent ParallelFor workers can share one cache; the
  // returned plans are heap-allocated and immutable, so references stay valid
  // and usable without the lock.
  static auto* cache = new std::map<std::size_t, std::unique_ptr<Radix2Plan>>();
  static auto* mu = new std::mutex();
  {
    std::lock_guard<std::mutex> lock(*mu);
    auto it = cache->find(n);
    if (it != cache->end()) return *it->second;
  }
  // Construct outside the lock: the O(n log n) twiddle/bit-reverse setup must
  // not stall every other pool worker on first use of a size. If two threads
  // race on the same n, both build identical plans and emplace keeps the
  // first; the loser's copy is discarded.
  auto plan = std::make_unique<Radix2Plan>(n);
  std::lock_guard<std::mutex> lock(*mu);
  const auto it = cache->emplace(n, std::move(plan)).first;
  return *it->second;
}

namespace {

// Precomputed state for Bluestein's chirp-z transform of one length n: the
// chirp sequence and the forward spectrum of the convolution kernel b. Both
// depend only on n, so they get the same plan treatment as the radix-2
// twiddles instead of being rebuilt on every call — only the data-dependent
// a-sequence work remains per transform.
class BluesteinPlan {
 public:
  explicit BluesteinPlan(std::size_t n)
      : n_(n), m_(NextPowerOfTwo(2 * n - 1)), plan_(&GetPlan(m_)), chirp_(n) {
    // chirp[j] = exp(-i*pi*j^2/n); compute j^2 mod 2n in integers to keep the
    // reduced angle exact for large j.
    for (std::size_t j = 0; j < n; ++j) {
      const unsigned long long jj =
          (static_cast<unsigned long long>(j) * j) % (2ULL * n);
      const double angle = -kPi * static_cast<double>(jj) /
                           static_cast<double>(n);
      chirp_[j] = Complex(std::cos(angle), std::sin(angle));
    }

    b_spectrum_.assign(m_, Complex(0, 0));
    b_spectrum_[0] = std::conj(chirp_[0]);
    for (std::size_t j = 1; j < n; ++j) {
      b_spectrum_[j] = std::conj(chirp_[j]);
      b_spectrum_[m_ - j] = std::conj(chirp_[j]);
    }
    plan_->Forward(b_spectrum_.data());
  }

  // Expresses the n-point DFT of `data` as a linear convolution with the
  // cached kernel, evaluated with power-of-two FFTs.
  void Forward(std::vector<Complex>* data) const {
    // Per-thread scratch keyed by the padded size, so concurrent workers
    // transforming the same length never share the a-buffer.
    static thread_local std::map<std::size_t, std::vector<Complex>> scratch;
    std::vector<Complex>& a = scratch[m_];
    a.assign(m_, Complex(0, 0));
    for (std::size_t j = 0; j < n_; ++j) a[j] = (*data)[j] * chirp_[j];

    plan_->Forward(a.data());
    for (std::size_t j = 0; j < m_; ++j) a[j] *= b_spectrum_[j];
    plan_->Inverse(a.data());

    for (std::size_t j = 0; j < n_; ++j) (*data)[j] = a[j] * chirp_[j];
  }

 private:
  std::size_t n_;
  std::size_t m_;
  const Radix2Plan* plan_;
  std::vector<Complex> chirp_;
  std::vector<Complex> b_spectrum_;
};

// Same never-destroyed, construct-outside-the-lock caching as GetPlan.
const BluesteinPlan& GetBluesteinPlan(std::size_t n) {
  static auto* cache =
      new std::map<std::size_t, std::unique_ptr<BluesteinPlan>>();
  static auto* mu = new std::mutex();
  {
    std::lock_guard<std::mutex> lock(*mu);
    auto it = cache->find(n);
    if (it != cache->end()) return *it->second;
  }
  auto plan = std::make_unique<BluesteinPlan>(n);
  std::lock_guard<std::mutex> lock(*mu);
  const auto it = cache->emplace(n, std::move(plan)).first;
  return *it->second;
}

void BluesteinForward(std::vector<Complex>* data) {
  GetBluesteinPlan(data->size()).Forward(data);
}

}  // namespace

void Forward(std::vector<Complex>* data) {
  KSHAPE_CHECK(!data->empty());
  const std::size_t n = data->size();
  if (n == 1) return;
  if (IsPowerOfTwo(n)) {
    GetPlan(n).Forward(data->data());
  } else {
    BluesteinForward(data);
  }
}

void Inverse(std::vector<Complex>* data) {
  KSHAPE_CHECK(!data->empty());
  const std::size_t n = data->size();
  // IDFT(x) = conj(DFT(conj(x))) / n, valid for any length.
  for (auto& v : *data) v = std::conj(v);
  Forward(data);
  const double scale = 1.0 / static_cast<double>(n);
  for (auto& v : *data) v = std::conj(v) * scale;
}

std::vector<Complex> RealForward(std::span<const double> x, std::size_t n) {
  KSHAPE_CHECK(n >= 1);
  std::vector<Complex> data(n, Complex(0, 0));
  const std::size_t copy = std::min(n, x.size());
  for (std::size_t i = 0; i < copy; ++i) data[i] = Complex(x[i], 0.0);
  Forward(&data);
  return data;
}

std::vector<Complex> Spectrum(std::span<const double> x,
                              std::size_t fft_len) {
  KSHAPE_CHECK(fft_len >= 1);
  KSHAPE_CHECK_MSG(x.size() <= fft_len,
                   "Spectrum pads, never truncates: fft_len < series length");
  std::vector<Complex> data(fft_len, Complex(0, 0));
  for (std::size_t i = 0; i < x.size(); ++i) data[i] = Complex(x[i], 0.0);
  Forward(&data);
  return data;
}

void CrossCorrelationFromSpectra(const std::vector<Complex>& x_spectrum,
                                 const std::vector<Complex>& y_spectrum,
                                 std::size_t m, std::vector<double>* cc) {
  const std::size_t len = x_spectrum.size();
  KSHAPE_CHECK_MSG(y_spectrum.size() == len, "spectrum length mismatch");
  KSHAPE_CHECK(m >= 1);
  KSHAPE_CHECK(len >= 2 * m - 1);

  // Per-thread product buffer keyed by length, as in CrossCorrelationImpl:
  // concurrent per-pair evaluations never share scratch, which the bitwise
  // thread-count-invariance guarantee relies on.
  static thread_local std::map<std::size_t, std::vector<Complex>> scratch;
  std::vector<Complex>& c = scratch[len];
  c.resize(len);
  // Vectorized X[k] * conj(Y[k]) over the packed (re, im) spectra.
  // std::complex<double> is array-layout-compatible with double[2], so the
  // kernel streams the buffers directly.
  simd::Active().complex_mul_conj(
      reinterpret_cast<const double*>(x_spectrum.data()),
      reinterpret_cast<const double*>(y_spectrum.data()),
      reinterpret_cast<double*>(c.data()), len);
  // The hot half of the cached path: one inverse transform per pair. Power-of-
  // two lengths go straight to the plan (skipping the conjugation passes of
  // the generic Inverse); Bluestein lengths reuse the cached chirp plan.
  if (IsPowerOfTwo(len)) {
    GetPlan(len).Inverse(c.data());
  } else {
    Inverse(&c);
  }

  cc->resize(2 * m - 1);
  for (std::size_t i = 0; i < 2 * m - 1; ++i) {
    const long long lag = static_cast<long long>(i) -
                          static_cast<long long>(m - 1);
    const std::size_t idx =
        lag >= 0 ? static_cast<std::size_t>(lag)
                 : len - static_cast<std::size_t>(-lag);
    (*cc)[i] = c[idx].real();
  }
}

namespace {

// Shared implementation of the full cross-correlation sequence: transforms
// z = x + i*y once at length fft_len, unpacks the two spectra, multiplies
// X[k] * conj(Y[k]), and inverse-transforms. SBD calls this once per distance
// evaluation — the hottest path in the library — so the transform buffers are
// cached per size instead of being reallocated on every call. The cache is
// thread_local: every ParallelFor worker gets its own scratch, so concurrent
// SBD evaluations never share FFT buffers (a requirement of the library's
// thread-count-invariance guarantee).
std::vector<double> CrossCorrelationImpl(std::span<const double> x,
                                         std::span<const double> y,
                                         std::size_t fft_len) {
  const std::size_t m = x.size();
  KSHAPE_CHECK_MSG(y.size() == m, "cross-correlation requires equal lengths");
  KSHAPE_CHECK(m >= 1);
  KSHAPE_CHECK(fft_len >= 2 * m - 1);

  struct Workspace {
    std::vector<Complex> z;
    std::vector<Complex> c;
  };
  // A value (not a leaked pointer like the plan cache) so each pool worker's
  // scratch is reclaimed when its thread exits.
  static thread_local std::map<std::size_t, Workspace> workspaces;
  Workspace& ws = workspaces[fft_len];
  ws.z.assign(fft_len, Complex(0, 0));
  ws.c.resize(fft_len);
  std::vector<Complex>& z = ws.z;
  std::vector<Complex>& c = ws.c;

  for (std::size_t i = 0; i < m; ++i) z[i] = Complex(x[i], y[i]);
  Forward(&z);

  // Unpack spectra of the two real inputs and form C[k] = X[k]*conj(Y[k]).
  // X[k] = (Z[k] + conj(Z[L-k])) / 2, Y[k] = (Z[k] - conj(Z[L-k])) / (2i).
  const std::size_t len = fft_len;
  for (std::size_t k = 0; k < len; ++k) {
    const Complex zk = z[k];
    const Complex zmk = std::conj(z[(len - k) % len]);
    const Complex xk = 0.5 * (zk + zmk);
    const Complex yk = Complex(0, -0.5) * (zk - zmk);
    c[k] = xk * std::conj(yk);
  }
  Inverse(&c);

  // cc[i] = R_{i-(m-1)}(x, y); negative lags live at the top of the circular
  // buffer.
  std::vector<double> cc(2 * m - 1);
  for (std::size_t i = 0; i < 2 * m - 1; ++i) {
    const long long lag = static_cast<long long>(i) -
                          static_cast<long long>(m - 1);
    const std::size_t idx =
        lag >= 0 ? static_cast<std::size_t>(lag)
                 : len - static_cast<std::size_t>(-lag);
    cc[i] = c[idx].real();
  }
  return cc;
}

}  // namespace

std::vector<double> CrossCorrelationFft(std::span<const double> x,
                                        std::span<const double> y) {
  const std::size_t m = x.size();
  KSHAPE_CHECK(m >= 1);
  return CrossCorrelationImpl(x, y, NextPowerOfTwo(2 * m - 1));
}

std::vector<double> CrossCorrelationFftNoPow2(std::span<const double> x,
                                              std::span<const double> y) {
  const std::size_t m = x.size();
  KSHAPE_CHECK(m >= 1);
  return CrossCorrelationImpl(x, y, 2 * m - 1);
}

std::vector<double> CrossCorrelationNaive(std::span<const double> x,
                                          std::span<const double> y) {
  const std::size_t m = x.size();
  KSHAPE_CHECK_MSG(y.size() == m, "cross-correlation requires equal lengths");
  KSHAPE_CHECK(m >= 1);
  std::vector<double> cc(2 * m - 1, 0.0);
  for (std::size_t i = 0; i < 2 * m - 1; ++i) {
    const long long k = static_cast<long long>(i) -
                        static_cast<long long>(m - 1);
    double sum = 0.0;
    if (k >= 0) {
      for (std::size_t l = 0; l + static_cast<std::size_t>(k) < m; ++l) {
        sum += x[l + static_cast<std::size_t>(k)] * y[l];
      }
    } else {
      const std::size_t s = static_cast<std::size_t>(-k);
      for (std::size_t l = 0; l + s < m; ++l) {
        sum += x[l] * y[l + s];
      }
    }
    cc[i] = sum;
  }
  return cc;
}

std::vector<double> Convolve(std::span<const double> a,
                             std::span<const double> b) {
  KSHAPE_CHECK(!a.empty() && !b.empty());
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t fft_len = NextPowerOfTwo(out_len);

  std::vector<Complex> z(fft_len, Complex(0, 0));
  for (std::size_t i = 0; i < a.size(); ++i) z[i] += Complex(a[i], 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) z[i] += Complex(0.0, b[i]);
  Forward(&z);

  std::vector<Complex> c(fft_len);
  for (std::size_t k = 0; k < fft_len; ++k) {
    const Complex zk = z[k];
    const Complex zmk = std::conj(z[(fft_len - k) % fft_len]);
    const Complex ak = 0.5 * (zk + zmk);
    const Complex bk = Complex(0, -0.5) * (zk - zmk);
    c[k] = ak * bk;
  }
  Inverse(&c);

  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = c[i].real();
  return out;
}

}  // namespace kshape::fft
