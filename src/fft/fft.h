#ifndef KSHAPE_FFT_FFT_H_
#define KSHAPE_FFT_FFT_H_

#include <complex>
#include <cstddef>
#include <span>
#include <memory>
#include <vector>

namespace kshape::fft {

using Complex = std::complex<double>;

/// Returns the smallest power of two >= n. Requires n >= 1.
std::size_t NextPowerOfTwo(std::size_t n);

/// Returns true iff n is a power of two (n >= 1).
bool IsPowerOfTwo(std::size_t n);

/// A precomputed transform plan for a power-of-two size.
///
/// Mirrors the FFTW "plan" idiom: constructing a plan performs the O(n) setup
/// (bit-reversal permutation table and twiddle factors) once, after which
/// transforms of that size run with no allocation. Plans are immutable and
/// safe to share.
class Radix2Plan {
 public:
  /// Builds a plan for `n`-point transforms. Requires n to be a power of two.
  explicit Radix2Plan(std::size_t n);

  /// In-place forward DFT of `data` (length n()).
  void Forward(Complex* data) const;

  /// In-place inverse DFT of `data` (length n()), including the 1/n scaling.
  void Inverse(Complex* data) const;

  /// The transform size.
  std::size_t n() const { return n_; }

 private:
  void TransformImpl(Complex* data, bool inverse) const;

  std::size_t n_;
  std::size_t log2n_;
  std::vector<std::size_t> bit_reverse_;
  // Twiddles for the forward direction; the inverse uses their conjugates.
  std::vector<Complex> twiddles_;
};

/// Returns a cached plan for the power-of-two size `n`.
///
/// The cache is process-wide and intentionally never destroyed (trivially
/// reclaimed at exit), so repeated SBD computations at one series length do
/// not re-derive twiddles. Thread-safe: lookups are mutex-guarded and the
/// returned plan is immutable, so concurrent ParallelFor workers may share
/// it freely.
const Radix2Plan& GetPlan(std::size_t n);

/// In-place forward DFT of arbitrary length (radix-2 when possible, Bluestein
/// chirp-z otherwise).
void Forward(std::vector<Complex>* data);

/// In-place inverse DFT of arbitrary length, including the 1/n scaling.
void Inverse(std::vector<Complex>* data);

/// Computes the `n`-point forward DFT of the real sequence `x` (zero-padded
/// or truncated to length n). Requires n to be a power of two.
std::vector<Complex> RealForward(std::span<const double> x, std::size_t n);

/// The padded forward spectrum of one real series: the `fft_len`-point DFT of
/// x zero-padded to fft_len (any length >= x.size(); radix-2 when possible,
/// Bluestein otherwise). This is the precompute half of the spectrum-cached
/// SBD path: compute each series' spectrum once, and every pairwise
/// cross-correlation against it becomes a single inverse transform
/// (CrossCorrelationFromSpectra) instead of two forwards plus an inverse.
///
/// Padded-length convention — shared by Spectrum, RfftSpectrum (rfft.h), and
/// CrossCorrelationFromSpectra/CrossCorrelationFromRfft, and enforced by
/// tests so cached and uncached paths cannot silently disagree:
///  - A cross-correlation of two length-m series needs fft_len >= 2m-1.
///  - The kFft implementation (CrossCorrelationFft, SbdEngine's default)
///    transforms at NextPowerOfTwo(2m-1); kFftNoPow2 transforms at exactly
///    2m-1 — which is always odd for m >= 2, so it is always a Bluestein
///    length, never a power of two.
///  - Series are zero-padded up to fft_len; a series longer than fft_len is
///    a KSHAPE_CHECK failure (pad, never truncate).
///  - Spectra are only comparable at equal fft_len: the From* functions check
///    the lengths match and abort on mismatch rather than resample.
std::vector<Complex> Spectrum(std::span<const double> x,
                              std::size_t fft_len);

/// Cross-correlation sequence from two cached spectra: given the fft_len
/// spectra of x and y (both of original length m, fft_len >= 2m-1), forms
/// C[k] = X[k] * conj(Y[k]) and runs ONE inverse transform. Fills `cc` with
/// the same 2m-1 lag layout as CrossCorrelationFft.
///
/// Equivalence contract: this path transforms each real series separately,
/// while CrossCorrelationFft packs the two series into one complex transform
/// (x + i*y) and unpacks; the two round differently in the last ulps, so the
/// results agree to a tight epsilon, NOT bitwise. Within the cached pipeline
/// itself the arithmetic is fixed per (spectra, m), so repeated evaluations —
/// at any thread count — are bit-identical. Thread-safe: scratch is
/// per-thread.
void CrossCorrelationFromSpectra(const std::vector<Complex>& x_spectrum,
                                 const std::vector<Complex>& y_spectrum,
                                 std::size_t m, std::vector<double>* cc);

/// Full cross-correlation sequence of Equation 6 of the paper.
///
/// Given x and y of equal length m, returns cc of length 2m-1 with
/// cc[i] = R_{i-(m-1)}(x, y) = sum_l x[l + (i-(m-1))] * y[l],
/// i.e. index m-1 is the zero-shift correlation and larger indices slide x to
/// the left (equivalently, align y by delaying it). Computed with one complex
/// FFT of the packed sequence x + i*y plus one inverse FFT at the next power
/// of two >= 2m-1: O(m log m).
std::vector<double> CrossCorrelationFft(std::span<const double> x,
                                        std::span<const double> y);

/// Same as CrossCorrelationFft but transforms at exactly length 2m-1 using
/// Bluestein's algorithm when that length is not a power of two. This is the
/// "SBD_NoPow2" ablation of Table 2 in the paper.
std::vector<double> CrossCorrelationFftNoPow2(std::span<const double> x,
                                              std::span<const double> y);

/// Reference O(m^2) direct evaluation of the same cross-correlation sequence.
/// This is the "SBD_NoFFT" ablation of Table 2 in the paper and the oracle
/// used by the FFT tests.
std::vector<double> CrossCorrelationNaive(std::span<const double> x,
                                          std::span<const double> y);

/// Linear convolution of a and b (length |a|+|b|-1) via FFT.
std::vector<double> Convolve(std::span<const double> a,
                             std::span<const double> b);

}  // namespace kshape::fft

#endif  // KSHAPE_FFT_FFT_H_
