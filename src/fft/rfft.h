#ifndef KSHAPE_FFT_RFFT_H_
#define KSHAPE_FFT_RFFT_H_

#include <cstddef>
#include <span>
#include <vector>

#include "fft/fft.h"

namespace kshape::fft {

// ---------------------------------------------------------------------------
// Half-spectrum (real-input) transforms.
//
// The DFT of a real sequence is conjugate-symmetric: X[n-k] = conj(X[k]), so
// bins (n/2, n) carry no information. The types below store only the packed
// half spectrum — bins [0, n/2], i.e. n/2 + 1 complex values — laid out SoA
// (separate re/im planes) so the multiply-conjugate product of the SBD path
// runs through the shuffle-free complex_mul_conj_soa kernel. Versus the full
// complex spectrum (n complex = 16n bytes) the packed form is 8n + 16 bytes:
// the SBD spectrum cache memory halves.
//
// Padded-length convention (shared with Spectrum / CrossCorrelationFromSpectra
// — see fft.h): a cross-correlation of two length-m series needs a transform
// length fft_len >= 2m-1. The kFft implementation uses
// NextPowerOfTwo(2m-1); kFftNoPow2 uses exactly 2m-1 (always odd, served by
// Bluestein). Series are zero-padded to fft_len, never truncated, and a
// cached spectrum is ONLY comparable to another spectrum of the same fft_len.
// RfftSpectrum records its fft_len so mixed-length products fail loudly
// instead of silently disagreeing between cached and uncached paths.
// ---------------------------------------------------------------------------

/// Number of packed half-spectrum bins for an n-point real transform.
constexpr std::size_t RfftBins(std::size_t n) { return n / 2 + 1; }

/// A precomputed real-input transform plan for one size n.
///
/// For power-of-two n >= 2 the forward transform packs the even/odd samples
/// into one complex sequence of length n/2, runs the cached half-size
/// Radix2Plan, and unpacks with n/2 + 1 precomputed twiddles — roughly half
/// the work (and half the working set) of an n-point complex transform. The
/// inverse reverses the packing exactly. Other lengths (Bluestein, including
/// the odd 2m-1 of the NoPow2 ablation) fall back to a full complex transform
/// and pack/reconstruct the half spectrum around it: the memory saving is
/// kept, the arithmetic saving is not. Plans are immutable and safe to share;
/// transform scratch is per-thread.
class RfftPlan {
 public:
  /// Builds a plan for `n`-point real transforms. Requires n >= 1.
  explicit RfftPlan(std::size_t n);

  /// Forward R2C transform: the n-point DFT of x zero-padded to n (requires
  /// x.size() <= n — pads, never truncates, like Spectrum). Writes the packed
  /// half spectrum, bins() values each, into out_re / out_im.
  void Forward(std::span<const double> x, double* out_re,
               double* out_im) const;

  /// Inverse C2R transform, including the 1/n scaling: reconstructs the n
  /// real samples from a packed half spectrum (bins() values in re / im,
  /// bins 0 and n/2 are treated as real — their imaginary parts ignored).
  /// Writes n values into `out`.
  void Inverse(const double* re, const double* im, double* out) const;

  /// The transform size.
  std::size_t n() const { return n_; }

  /// Packed half-spectrum bin count, n/2 + 1.
  std::size_t bins() const { return RfftBins(n_); }

 private:
  std::size_t n_;
  bool packed_;                  // power-of-two n >= 2: even/odd packing path
  const Radix2Plan* half_plan_;  // GetPlan(n/2) when packed_
  std::vector<Complex> twiddles_;  // e^{-2*pi*i*k/n}, k in [0, n/2]
};

/// Returns a cached plan for size `n` (same never-destroyed, mutex-guarded
/// cache discipline as GetPlan).
const RfftPlan& GetRfftPlan(std::size_t n);

/// Non-owning SoA view of one packed half spectrum: bins() doubles behind
/// each of `re` and `im`.
struct RfftView {
  std::size_t fft_len = 0;
  const double* re = nullptr;
  const double* im = nullptr;

  std::size_t bins() const { return RfftBins(fft_len); }
};

/// Owning packed half spectrum of one real series.
struct RfftSpectrum {
  std::size_t fft_len = 0;
  std::vector<double> re;
  std::vector<double> im;

  std::size_t bins() const { return RfftBins(fft_len); }
  RfftView view() const { return RfftView{fft_len, re.data(), im.data()}; }
};

/// Half-spectrum counterpart of Spectrum: the fft_len-point DFT of x
/// zero-padded to fft_len, packed to bins [0, fft_len/2]. Same padded-length
/// convention: requires x.size() <= fft_len.
RfftSpectrum RfftForward(std::span<const double> x, std::size_t fft_len);

/// A contiguous SoA pool of packed half spectra for `count` same-length
/// series: one plan lookup at construction amortized over every transform,
/// and all re planes (then all im planes) contiguous so batch scans walk the
/// pool linearly. Slots are disjoint, so concurrent Transform calls on
/// distinct `i` from a ParallelFor are safe; the filled pool is immutable
/// through view().
class BatchSpectra {
 public:
  BatchSpectra(std::size_t count, std::size_t fft_len);

  /// Fills slot `i` with the packed half spectrum of x (zero-padded to
  /// fft_len; requires x.size() <= fft_len).
  void Transform(std::size_t i, std::span<const double> x);

  /// View of slot `i`.
  RfftView view(std::size_t i) const;

  std::size_t count() const { return count_; }
  std::size_t fft_len() const { return fft_len_; }
  const RfftPlan& plan() const { return *plan_; }

 private:
  std::size_t count_;
  std::size_t fft_len_;
  std::size_t bins_;
  const RfftPlan* plan_;
  std::vector<double> re_;  // count_ * bins_
  std::vector<double> im_;  // count_ * bins_
};

/// Half-spectrum counterpart of CrossCorrelationFromSpectra: forms
/// C[k] = X[k] * conj(Y[k]) over the packed bins with the SoA kernel, runs
/// ONE inverse real transform, and fills `cc` with the identical 2m-1 lag
/// layout. Requires both views to share fft_len >= 2m-1.
///
/// Equivalence contract (mirrors the full-spectrum one): on power-of-two
/// fft_len the half path computes the same mathematical quantity with a
/// different rounding sequence, so it matches the full-complex paths to a
/// tight epsilon, not bitwise. Within the half path itself the arithmetic is
/// fixed per (spectra, m): repeated evaluations are bit-identical across
/// backends (the SoA kernel is elementwise) and thread counts (scratch is
/// per-thread).
void CrossCorrelationFromRfft(const RfftView& x, const RfftView& y,
                              std::size_t m, std::vector<double>* cc);

/// Same, with the plan supplied by the caller so batch drivers (SbdEngine,
/// the classify scanners) pay the mutex-guarded plan-cache lookup once per
/// batch instead of once per pair. Requires plan.n() == x.fft_len.
void CrossCorrelationFromRfft(const RfftPlan& plan, const RfftView& x,
                              const RfftView& y, std::size_t m,
                              std::vector<double>* cc);

/// Direct-path counterpart of CrossCorrelationFft: two forward half-spectrum
/// transforms at NextPowerOfTwo(2m-1), the SoA product, one inverse. Same
/// lag layout and padded-length convention.
std::vector<double> RfftCrossCorrelation(std::span<const double> x,
                                         std::span<const double> y);

/// Process-wide half-spectrum gate, resolved once on first use from the
/// KSHAPE_HALF_SPECTRUM environment variable: "off" disables the half path
/// (every consumer falls back to full complex spectra), "on" or unset enables
/// it, anything else aborts. Layered under the per-call options
/// (KShapeOptions::use_half_spectrum, SbdEngine's constructor flag): the half
/// path runs only when both the option and this gate say yes, so one
/// environment variable can force the PR-5 behavior for A/B runs without
/// touching call sites.
bool HalfSpectrumEnabled();

/// Replaces the gate for the rest of the process (tests comparing the two
/// paths in one run). Call from a single thread, between parallel regions.
void SetHalfSpectrumEnabledForTesting(bool enabled);

}  // namespace kshape::fft

#endif  // KSHAPE_FFT_RFFT_H_
