#include "fft/rfft.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "common/check.h"
#include "common/env_gate.h"
#include "simd/dispatch.h"

namespace kshape::fft {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Per-thread complex scratch for the generic (non-power-of-two) fallback,
// keyed by transform size — the same discipline as every other FFT scratch
// buffer: concurrent workers never share, which the thread-count-invariance
// guarantee relies on.
std::vector<Complex>& GenericScratch(std::size_t n) {
  static thread_local std::map<std::size_t, std::vector<Complex>> scratch;
  return scratch[n];
}

// Per-thread packed scratch (length n/2) for the power-of-two path.
std::vector<Complex>& PackedScratch(std::size_t n) {
  static thread_local std::map<std::size_t, std::vector<Complex>> scratch;
  return scratch[n];
}

}  // namespace

RfftPlan::RfftPlan(std::size_t n) : n_(n) {
  KSHAPE_CHECK(n >= 1);
  packed_ = IsPowerOfTwo(n) && n >= 2;
  half_plan_ = packed_ ? &GetPlan(n / 2) : nullptr;
  if (packed_) {
    // Unpack twiddles e^{-2*pi*i*k/n} for k in [0, n/2] — one per packed bin.
    twiddles_.resize(bins());
    for (std::size_t k = 0; k < bins(); ++k) {
      const double angle =
          -2.0 * kPi * static_cast<double>(k) / static_cast<double>(n_);
      twiddles_[k] = Complex(std::cos(angle), std::sin(angle));
    }
  }
}

void RfftPlan::Forward(std::span<const double> x, double* out_re,
                       double* out_im) const {
  KSHAPE_CHECK_MSG(x.size() <= n_,
                   "RfftPlan pads, never truncates: n < series length");
  if (!packed_) {
    // Generic fallback: full complex transform (radix-2 for n=1, Bluestein
    // otherwise), then keep bins [0, n/2]. Bin 0 — and bin n/2 when n is
    // even — is exactly real for a real input, so its imaginary part is
    // stored as an exact zero rather than the transform's rounding residue;
    // this is what makes the packed-bin conjugate-symmetry invariant exact.
    std::vector<Complex>& data = GenericScratch(n_);
    data.assign(n_, Complex(0, 0));
    for (std::size_t i = 0; i < x.size(); ++i) data[i] = Complex(x[i], 0.0);
    fft::Forward(&data);
    const std::size_t b = bins();
    for (std::size_t k = 0; k < b; ++k) {
      out_re[k] = data[k].real();
      out_im[k] = data[k].imag();
    }
    out_im[0] = 0.0;
    if (n_ % 2 == 0) out_im[n_ / 2] = 0.0;
    return;
  }

  // Power-of-two path: pack even/odd samples into one half-size complex
  // sequence z[j] = x[2j] + i*x[2j+1], transform once at h = n/2, and unpack
  //   X[k] = E[k] + w^k * O[k],  w = e^{-2*pi*i/n},
  // where E[k] = (Z[k] + conj(Z[h-k])) / 2 and
  //       O[k] = (Z[k] - conj(Z[h-k])) / (2i)
  // are the h-point DFTs of the even and odd subsequences. Bins 0 and h come
  // straight from Z[0]: X[0] = Re(Z0) + Im(Z0), X[h] = Re(Z0) - Im(Z0), both
  // exactly real.
  const std::size_t h = n_ / 2;
  std::vector<Complex>& z = PackedScratch(n_);
  z.resize(h);
  for (std::size_t j = 0; j < h; ++j) {
    const double re = 2 * j < x.size() ? x[2 * j] : 0.0;
    const double im = 2 * j + 1 < x.size() ? x[2 * j + 1] : 0.0;
    z[j] = Complex(re, im);
  }
  half_plan_->Forward(z.data());

  out_re[0] = z[0].real() + z[0].imag();
  out_im[0] = 0.0;
  out_re[h] = z[0].real() - z[0].imag();
  out_im[h] = 0.0;
  for (std::size_t k = 1; k < h; ++k) {
    const Complex zk = z[k];
    const Complex zmk = std::conj(z[h - k]);
    const Complex even = 0.5 * (zk + zmk);
    const Complex odd = Complex(0, -0.5) * (zk - zmk);
    const Complex bin = even + twiddles_[k] * odd;
    out_re[k] = bin.real();
    out_im[k] = bin.imag();
  }
}

void RfftPlan::Inverse(const double* re, const double* im,
                       double* out) const {
  if (!packed_) {
    if (n_ == 1) {
      out[0] = re[0];
      return;
    }
    // Generic fallback: rebuild the full conjugate-symmetric spectrum from
    // the packed bins and run the full inverse. Bin 0 (and bin n/2 when n is
    // even) is treated as real per the packing contract.
    std::vector<Complex>& data = GenericScratch(n_);
    data.resize(n_);
    const std::size_t b = bins();
    data[0] = Complex(re[0], 0.0);
    for (std::size_t k = 1; k < b; ++k) data[k] = Complex(re[k], im[k]);
    if (n_ % 2 == 0) data[n_ / 2] = Complex(re[n_ / 2], 0.0);
    for (std::size_t k = b; k < n_; ++k) data[k] = std::conj(data[n_ - k]);
    fft::Inverse(&data);
    for (std::size_t i = 0; i < n_; ++i) out[i] = data[i].real();
    return;
  }

  // Exact algebraic inverse of the packed forward: recover the half-size
  // spectrum Z[k] = E[k] + i*O[k] from the packed bins C[0..h],
  //   E[k] = (C[k] + conj(C[h-k])) / 2,
  //   O[k] = (C[k] - conj(C[h-k])) * conj(w^k) / 2,
  // (C[k+h] = conj(C[h-k]) by the real-input symmetry), then one half-size
  // inverse transform — whose built-in 1/h scaling IS the full 1/n real
  // inverse, because E and O are exactly the h-point DFTs of the even/odd
  // samples — and deinterleave x[2j] = Re(z[j]), x[2j+1] = Im(z[j]).
  const std::size_t h = n_ / 2;
  std::vector<Complex>& z = PackedScratch(n_);
  z.resize(h);
  const auto bin = [&](std::size_t k) {
    // Bins 0 and h are real by the packing contract; ignore stored imag.
    return Complex(re[k], (k == 0 || k == h) ? 0.0 : im[k]);
  };
  for (std::size_t k = 0; k < h; ++k) {
    const Complex ck = bin(k);
    const Complex cmk = std::conj(bin(h - k));
    const Complex even = 0.5 * (ck + cmk);
    const Complex odd = 0.5 * (ck - cmk) * std::conj(twiddles_[k]);
    z[k] = even + Complex(0, 1) * odd;
  }
  half_plan_->Inverse(z.data());
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
}

const RfftPlan& GetRfftPlan(std::size_t n) {
  // Same never-destroyed, construct-outside-the-lock caching as GetPlan.
  static auto* cache = new std::map<std::size_t, std::unique_ptr<RfftPlan>>();
  static auto* mu = new std::mutex();
  {
    std::lock_guard<std::mutex> lock(*mu);
    auto it = cache->find(n);
    if (it != cache->end()) return *it->second;
  }
  auto plan = std::make_unique<RfftPlan>(n);
  std::lock_guard<std::mutex> lock(*mu);
  const auto it = cache->emplace(n, std::move(plan)).first;
  return *it->second;
}

RfftSpectrum RfftForward(std::span<const double> x, std::size_t fft_len) {
  KSHAPE_CHECK(fft_len >= 1);
  KSHAPE_CHECK_MSG(
      x.size() <= fft_len,
      "RfftForward pads, never truncates: fft_len < series length");
  RfftSpectrum spectrum;
  spectrum.fft_len = fft_len;
  spectrum.re.resize(RfftBins(fft_len));
  spectrum.im.resize(RfftBins(fft_len));
  GetRfftPlan(fft_len).Forward(x, spectrum.re.data(), spectrum.im.data());
  return spectrum;
}

BatchSpectra::BatchSpectra(std::size_t count, std::size_t fft_len)
    : count_(count),
      fft_len_(fft_len),
      bins_(RfftBins(fft_len)),
      plan_(&GetRfftPlan(fft_len)),
      re_(count * bins_, 0.0),
      im_(count * bins_, 0.0) {
  KSHAPE_CHECK(fft_len >= 1);
}

void BatchSpectra::Transform(std::size_t i, std::span<const double> x) {
  KSHAPE_CHECK(i < count_);
  plan_->Forward(x, re_.data() + i * bins_, im_.data() + i * bins_);
}

RfftView BatchSpectra::view(std::size_t i) const {
  KSHAPE_CHECK(i < count_);
  return RfftView{fft_len_, re_.data() + i * bins_, im_.data() + i * bins_};
}

void CrossCorrelationFromRfft(const RfftPlan& plan, const RfftView& x,
                              const RfftView& y, std::size_t m,
                              std::vector<double>* cc) {
  const std::size_t len = x.fft_len;
  KSHAPE_CHECK_MSG(y.fft_len == len, "half-spectrum length mismatch");
  KSHAPE_CHECK_MSG(plan.n() == len, "plan/spectrum length mismatch");
  KSHAPE_CHECK(m >= 1);
  KSHAPE_CHECK(len >= 2 * m - 1);

  // Per-thread product planes + time-domain buffer keyed by length, as in
  // CrossCorrelationFromSpectra.
  struct Workspace {
    std::vector<double> prod_re;
    std::vector<double> prod_im;
    std::vector<double> time;
  };
  static thread_local std::map<std::size_t, Workspace> scratch;
  Workspace& ws = scratch[len];
  const std::size_t b = RfftBins(len);
  ws.prod_re.resize(b);
  ws.prod_im.resize(b);
  ws.time.resize(len);

  // C[k] = X[k] * conj(Y[k]) over the packed bins only — the upper half of
  // the product spectrum is implied by symmetry and never materialized. The
  // SoA kernel is elementwise, so this product is bit-identical across
  // backends. On the real bins (0, and len/2 when len is even) both factors
  // have exact-zero imaginary parts, so the product's imaginary part is an
  // exact zero too — consistent with Inverse's real-bin contract.
  simd::Active().complex_mul_conj_soa(x.re, x.im, y.re, y.im,
                                      ws.prod_re.data(), ws.prod_im.data(), b);
  // The hot half of the cached path: ONE inverse real transform per pair.
  plan.Inverse(ws.prod_re.data(), ws.prod_im.data(), ws.time.data());

  // Identical lag layout to CrossCorrelationFft: cc[i] = R_{i-(m-1)},
  // negative lags at the top of the circular buffer.
  cc->resize(2 * m - 1);
  for (std::size_t i = 0; i < 2 * m - 1; ++i) {
    const long long lag =
        static_cast<long long>(i) - static_cast<long long>(m - 1);
    const std::size_t idx = lag >= 0 ? static_cast<std::size_t>(lag)
                                     : len - static_cast<std::size_t>(-lag);
    (*cc)[i] = ws.time[idx];
  }
}

void CrossCorrelationFromRfft(const RfftView& x, const RfftView& y,
                              std::size_t m, std::vector<double>* cc) {
  CrossCorrelationFromRfft(GetRfftPlan(x.fft_len), x, y, m, cc);
}

std::vector<double> RfftCrossCorrelation(std::span<const double> x,
                                         std::span<const double> y) {
  const std::size_t m = x.size();
  KSHAPE_CHECK_MSG(y.size() == m, "cross-correlation requires equal lengths");
  KSHAPE_CHECK(m >= 1);
  const std::size_t fft_len = NextPowerOfTwo(2 * m - 1);
  const RfftPlan& plan = GetRfftPlan(fft_len);

  // Per-thread forward planes keyed by length (the product/inverse scratch
  // lives inside CrossCorrelationFromRfft).
  struct Workspace {
    std::vector<double> x_re, x_im, y_re, y_im;
  };
  static thread_local std::map<std::size_t, Workspace> scratch;
  Workspace& ws = scratch[fft_len];
  const std::size_t b = RfftBins(fft_len);
  ws.x_re.resize(b);
  ws.x_im.resize(b);
  ws.y_re.resize(b);
  ws.y_im.resize(b);
  plan.Forward(x, ws.x_re.data(), ws.x_im.data());
  plan.Forward(y, ws.y_re.data(), ws.y_im.data());

  std::vector<double> cc;
  CrossCorrelationFromRfft(
      plan, RfftView{fft_len, ws.x_re.data(), ws.x_im.data()},
      RfftView{fft_len, ws.y_re.data(), ws.y_im.data()}, m, &cc);
  return cc;
}

namespace {

common::EnvGate g_half_spectrum{"KSHAPE_HALF_SPECTRUM"};

}  // namespace

bool HalfSpectrumEnabled() { return g_half_spectrum.enabled(); }

void SetHalfSpectrumEnabledForTesting(bool enabled) {
  g_half_spectrum.SetForTesting(enabled);
}

}  // namespace kshape::fft
