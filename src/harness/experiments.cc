#include "harness/experiments.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "eval/metrics.h"
#include "harness/table.h"
#include "linalg/matrix.h"
#include "stats/tests.h"

namespace kshape::harness {

namespace {

double MeanOf(const std::vector<double>& values) {
  KSHAPE_CHECK(!values.empty());
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

}  // namespace

void PrintComparisonTable(const MethodScores& baseline,
                          const std::vector<MethodScores>& methods,
                          const std::string& score_label, double alpha,
                          std::ostream& os) {
  TablePrinter table({"Method", ">", "=", "<", "Better", "Worse",
                      score_label, "Runtime"});
  table.AddRow({baseline.name + " (baseline)", "-", "-", "-", "-", "-",
                FormatDouble(MeanOf(baseline.scores)), "1x"});
  for (const MethodScores& method : methods) {
    KSHAPE_CHECK_MSG(method.scores.size() == baseline.scores.size(),
                     "method/baseline dataset count mismatch");
    const stats::WinTieLoss wtl =
        stats::CompareScores(method.scores, baseline.scores);
    const stats::WilcoxonResult wilcoxon =
        stats::WilcoxonSignedRank(method.scores, baseline.scores);
    const bool significant = wilcoxon.p_value < alpha;
    const bool method_better = wilcoxon.z > 0.0;
    const double ratio = baseline.total_seconds > 0.0
                             ? method.total_seconds / baseline.total_seconds
                             : 0.0;
    table.AddRow({method.name, std::to_string(wtl.wins),
                  std::to_string(wtl.ties), std::to_string(wtl.losses),
                  significant && method_better ? "yes" : "no",
                  significant && !method_better ? "yes" : "no",
                  FormatDouble(MeanOf(method.scores)), FormatRatio(ratio)});
  }
  table.Print(os);
  os << "(Wilcoxon signed-rank, two-sided, alpha = " << alpha
     << "; 'Better'/'Worse' relative to " << baseline.name << ")\n";
}

void PrintScatterPairs(const MethodScores& x_axis, const MethodScores& y_axis,
                       const std::vector<std::string>& dataset_names,
                       std::ostream& os) {
  KSHAPE_CHECK(x_axis.scores.size() == y_axis.scores.size());
  KSHAPE_CHECK(x_axis.scores.size() == dataset_names.size());
  TablePrinter table({"Dataset", x_axis.name, y_axis.name, "Above diagonal"});
  int above = 0;
  for (std::size_t i = 0; i < dataset_names.size(); ++i) {
    const bool y_wins = y_axis.scores[i] > x_axis.scores[i];
    above += y_wins ? 1 : 0;
    table.AddRow({dataset_names[i], FormatDouble(x_axis.scores[i]),
                  FormatDouble(y_axis.scores[i]), y_wins ? "*" : ""});
  }
  table.Print(os);
  os << y_axis.name << " better on " << above << "/" << dataset_names.size()
     << " datasets\n";
}

void PrintAverageRanks(const std::vector<MethodScores>& methods,
                       std::ostream& os) {
  KSHAPE_CHECK(methods.size() >= 2);
  const std::size_t num_datasets = methods[0].scores.size();
  linalg::Matrix scores(num_datasets, methods.size());
  for (std::size_t j = 0; j < methods.size(); ++j) {
    KSHAPE_CHECK(methods[j].scores.size() == num_datasets);
    for (std::size_t i = 0; i < num_datasets; ++i) {
      scores(i, j) = methods[j].scores[i];
    }
  }
  const stats::FriedmanResult friedman = stats::FriedmanTest(scores);
  const double cd = stats::NemenyiCriticalDifference(
      static_cast<int>(methods.size()), static_cast<int>(num_datasets), 0.05);

  TablePrinter table({"Method", "Average rank"});
  // Present best (lowest) rank first.
  std::vector<std::size_t> order(methods.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return friedman.average_ranks[a] < friedman.average_ranks[b];
  });
  for (std::size_t j : order) {
    table.AddRow({methods[j].name,
                  FormatDouble(friedman.average_ranks[j], 2)});
  }
  table.Print(os);
  os << "Friedman chi^2 = " << FormatDouble(friedman.chi_square, 2)
     << ", p = " << FormatDouble(friedman.p_value, 4)
     << "; Nemenyi CD (alpha = 0.05) = " << FormatDouble(cd, 2) << "\n"
     << "(methods whose average ranks differ by less than the CD are not"
        " significantly different)\n";
}

double AverageRandIndex(const cluster::ClusteringAlgorithm& algorithm,
                        const tseries::SeriesBatch& series,
                        const std::vector<int>& labels, int k, int runs,
                        uint64_t seed) {
  KSHAPE_CHECK(runs >= 1);
  common::Rng seeder(seed);
  double total = 0.0;
  for (int run = 0; run < runs; ++run) {
    common::Rng rng = seeder.Fork();
    const cluster::ClusteringResult result =
        algorithm.Cluster(series, k, &rng);
    total += eval::RandIndex(labels, result.assignments);
  }
  return total / static_cast<double>(runs);
}

common::StatusOr<double> TryAverageRandIndex(
    const cluster::ClusteringAlgorithm& algorithm,
    const std::vector<tseries::Series>& series, const std::vector<int>& labels,
    int k, int runs, uint64_t seed,
    const tseries::ConditioningOptions& conditioning) {
  if (runs < 1) {
    return common::Status::InvalidArgument("runs must be >= 1, got " +
                                           std::to_string(runs));
  }
  if (labels.size() != series.size()) {
    return common::Status::InvalidArgument(
        "label count " + std::to_string(labels.size()) +
        " does not match series count " + std::to_string(series.size()));
  }
  common::StatusOr<tseries::Dataset> conditioned =
      tseries::ConditionToDataset(series, labels, "try-average-rand-index",
                                  conditioning);
  if (!conditioned.ok()) return conditioned.status();

  const tseries::SeriesBatch batch = conditioned.value().batch();
  common::Status valid = cluster::ValidateClusteringInputs(batch, k);
  if (!valid.ok()) return valid;

  common::Rng seeder(seed);
  double total = 0.0;
  for (int run = 0; run < runs; ++run) {
    common::Rng rng = seeder.Fork();
    const cluster::ClusteringResult result = algorithm.Cluster(batch, k, &rng);
    total += eval::RandIndex(labels, result.assignments);
  }
  return total / static_cast<double>(runs);
}

}  // namespace kshape::harness
