#ifndef KSHAPE_HARNESS_EXPERIMENTS_H_
#define KSHAPE_HARNESS_EXPERIMENTS_H_

#include <iostream>
#include <string>
#include <vector>

#include "cluster/algorithm.h"
#include "common/status.h"
#include "tseries/conditioning.h"
#include "tseries/time_series.h"

namespace kshape::harness {

/// Per-dataset scores and total runtime of one method across an archive.
struct MethodScores {
  std::string name;
  std::vector<double> scores;   // One entry per dataset, larger = better.
  double total_seconds = 0.0;   // Wall time spent producing the scores.
};

/// Prints the paper's comparison-table layout (Tables 2-4): for each method,
/// the number of datasets where it is better/equal/worse than the baseline,
/// Wilcoxon two-sided significance ("Better"/"Worse" at 1 - alpha confidence),
/// the mean score, and the runtime factor relative to the baseline.
/// `score_label` names the score column (e.g. "Accuracy", "Rand Index").
void PrintComparisonTable(const MethodScores& baseline,
                          const std::vector<MethodScores>& methods,
                          const std::string& score_label, double alpha,
                          std::ostream& os);

/// Prints per-dataset (baseline, method) score pairs — the data behind the
/// scatter plots of Figures 5 and 7.
void PrintScatterPairs(const MethodScores& x_axis, const MethodScores& y_axis,
                       const std::vector<std::string>& dataset_names,
                       std::ostream& os);

/// Prints average ranks with the Friedman test and the Nemenyi critical
/// difference (Figures 6, 8, 9): methods whose rank gap is below the CD are
/// statistically indistinguishable.
void PrintAverageRanks(const std::vector<MethodScores>& methods,
                       std::ostream& os);

/// Runs a (possibly stochastic) clustering algorithm `runs` times with
/// deterministic per-run seeds derived from `seed` and returns the average
/// Rand index against the gold labels — the paper's protocol for partitional
/// (10 runs) and spectral (100 runs) methods.
double AverageRandIndex(const cluster::ClusteringAlgorithm& algorithm,
                        const tseries::SeriesBatch& series,
                        const std::vector<int>& labels, int k, int runs,
                        uint64_t seed);

/// Library-boundary variant of AverageRandIndex for untrusted corpora: the
/// raw series are first passed through tseries::ConditionToDataset with
/// `conditioning` (repairing unequal lengths and missing values per policy),
/// then validated via cluster::ValidateClusteringInputs, and only then
/// clustered. Returns the conditioning or validation error instead of
/// aborting; `runs` and `labels` size mismatches are InvalidArgument.
common::StatusOr<double> TryAverageRandIndex(
    const cluster::ClusteringAlgorithm& algorithm,
    const std::vector<tseries::Series>& series, const std::vector<int>& labels,
    int k, int runs, uint64_t seed,
    const tseries::ConditioningOptions& conditioning = {});

}  // namespace kshape::harness

#endif  // KSHAPE_HARNESS_EXPERIMENTS_H_
