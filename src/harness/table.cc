#include "harness/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace kshape::harness {

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string FormatRatio(double ratio) {
  std::ostringstream out;
  if (ratio >= 100.0) {
    out << std::fixed << std::setprecision(0) << ratio << "x";
  } else {
    out << std::fixed << std::setprecision(1) << ratio << "x";
  }
  return out.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  KSHAPE_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  KSHAPE_CHECK_MSG(row.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void PrintSection(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace kshape::harness
