#ifndef KSHAPE_HARNESS_TABLE_H_
#define KSHAPE_HARNESS_TABLE_H_

#include <iostream>
#include <string>
#include <vector>

namespace kshape::harness {

/// Formats a double with the given precision.
std::string FormatDouble(double value, int precision = 3);

/// Formats a runtime ratio in the paper's style, e.g. "4.4x" or "1558x".
std::string FormatRatio(double ratio);

/// Simple aligned-column text table for reproducing the paper's tables on
/// stdout.
class TablePrinter {
 public:
  /// Sets the header row.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Prints the table with a separator under the header.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a titled section delimiter, making bench output self-describing.
void PrintSection(std::ostream& os, const std::string& title);

}  // namespace kshape::harness

#endif  // KSHAPE_HARNESS_TABLE_H_
