
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_distance_comparison.cc" "bench/CMakeFiles/table2_distance_comparison.dir/table2_distance_comparison.cc.o" "gcc" "bench/CMakeFiles/table2_distance_comparison.dir/table2_distance_comparison.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kshape_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/kshape_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/kshape_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/kshape_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kshape_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kshape_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/kshape_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/kshape_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/tseries/CMakeFiles/kshape_tseries.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/kshape_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/kshape_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/kshape_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
