file(REMOVE_RECURSE
  "CMakeFiles/fig03_ncc_normalizations.dir/fig03_ncc_normalizations.cc.o"
  "CMakeFiles/fig03_ncc_normalizations.dir/fig03_ncc_normalizations.cc.o.d"
  "fig03_ncc_normalizations"
  "fig03_ncc_normalizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_ncc_normalizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
