# Empty dependencies file for fig03_ncc_normalizations.
# This may be replaced when dependencies are built.
