file(REMOVE_RECURSE
  "CMakeFiles/averaging_comparison.dir/averaging_comparison.cc.o"
  "CMakeFiles/averaging_comparison.dir/averaging_comparison.cc.o.d"
  "averaging_comparison"
  "averaging_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/averaging_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
