# Empty compiler generated dependencies file for averaging_comparison.
# This may be replaced when dependencies are built.
