# Empty compiler generated dependencies file for fig04_centroid_quality.
# This may be replaced when dependencies are built.
