file(REMOVE_RECURSE
  "CMakeFiles/fig04_centroid_quality.dir/fig04_centroid_quality.cc.o"
  "CMakeFiles/fig04_centroid_quality.dir/fig04_centroid_quality.cc.o.d"
  "fig04_centroid_quality"
  "fig04_centroid_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_centroid_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
