# Empty dependencies file for table4_nonscalable_clustering.
# This may be replaced when dependencies are built.
