file(REMOVE_RECURSE
  "CMakeFiles/table4_nonscalable_clustering.dir/table4_nonscalable_clustering.cc.o"
  "CMakeFiles/table4_nonscalable_clustering.dir/table4_nonscalable_clustering.cc.o.d"
  "table4_nonscalable_clustering"
  "table4_nonscalable_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_nonscalable_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
