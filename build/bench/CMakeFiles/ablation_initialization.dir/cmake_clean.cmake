file(REMOVE_RECURSE
  "CMakeFiles/ablation_initialization.dir/ablation_initialization.cc.o"
  "CMakeFiles/ablation_initialization.dir/ablation_initialization.cc.o.d"
  "ablation_initialization"
  "ablation_initialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_initialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
