# Empty compiler generated dependencies file for ablation_initialization.
# This may be replaced when dependencies are built.
