# Empty dependencies file for table3_scalable_clustering.
# This may be replaced when dependencies are built.
