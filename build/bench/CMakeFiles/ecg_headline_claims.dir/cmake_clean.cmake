file(REMOVE_RECURSE
  "CMakeFiles/ecg_headline_claims.dir/ecg_headline_claims.cc.o"
  "CMakeFiles/ecg_headline_claims.dir/ecg_headline_claims.cc.o.d"
  "ecg_headline_claims"
  "ecg_headline_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_headline_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
