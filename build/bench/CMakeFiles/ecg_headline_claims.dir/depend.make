# Empty dependencies file for ecg_headline_claims.
# This may be replaced when dependencies are built.
