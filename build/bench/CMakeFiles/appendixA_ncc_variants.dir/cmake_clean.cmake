file(REMOVE_RECURSE
  "CMakeFiles/appendixA_ncc_variants.dir/appendixA_ncc_variants.cc.o"
  "CMakeFiles/appendixA_ncc_variants.dir/appendixA_ncc_variants.cc.o.d"
  "appendixA_ncc_variants"
  "appendixA_ncc_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixA_ncc_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
