# Empty dependencies file for appendixA_ncc_variants.
# This may be replaced when dependencies are built.
