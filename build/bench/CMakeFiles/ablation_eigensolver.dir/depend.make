# Empty dependencies file for ablation_eigensolver.
# This may be replaced when dependencies are built.
