file(REMOVE_RECURSE
  "CMakeFiles/ablation_eigensolver.dir/ablation_eigensolver.cc.o"
  "CMakeFiles/ablation_eigensolver.dir/ablation_eigensolver.cc.o.d"
  "ablation_eigensolver"
  "ablation_eigensolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eigensolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
