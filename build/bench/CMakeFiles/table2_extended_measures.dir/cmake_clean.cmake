file(REMOVE_RECURSE
  "CMakeFiles/table2_extended_measures.dir/table2_extended_measures.cc.o"
  "CMakeFiles/table2_extended_measures.dir/table2_extended_measures.cc.o.d"
  "table2_extended_measures"
  "table2_extended_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_extended_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
