# Empty dependencies file for table2_extended_measures.
# This may be replaced when dependencies are built.
