# Empty compiler generated dependencies file for ablation_paa.
# This may be replaced when dependencies are built.
