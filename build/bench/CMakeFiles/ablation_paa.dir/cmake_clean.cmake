file(REMOVE_RECURSE
  "CMakeFiles/ablation_paa.dir/ablation_paa.cc.o"
  "CMakeFiles/ablation_paa.dir/ablation_paa.cc.o.d"
  "ablation_paa"
  "ablation_paa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_paa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
