file(REMOVE_RECURSE
  "CMakeFiles/ecg_clustering.dir/ecg_clustering.cpp.o"
  "CMakeFiles/ecg_clustering.dir/ecg_clustering.cpp.o.d"
  "ecg_clustering"
  "ecg_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecg_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
