# Empty dependencies file for ecg_clustering.
# This may be replaced when dependencies are built.
