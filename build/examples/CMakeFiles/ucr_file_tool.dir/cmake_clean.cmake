file(REMOVE_RECURSE
  "CMakeFiles/ucr_file_tool.dir/ucr_file_tool.cpp.o"
  "CMakeFiles/ucr_file_tool.dir/ucr_file_tool.cpp.o.d"
  "ucr_file_tool"
  "ucr_file_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucr_file_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
