# Empty compiler generated dependencies file for ucr_file_tool.
# This may be replaced when dependencies are built.
