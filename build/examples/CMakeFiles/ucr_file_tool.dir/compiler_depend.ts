# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ucr_file_tool.
