file(REMOVE_RECURSE
  "CMakeFiles/estimate_k.dir/estimate_k.cpp.o"
  "CMakeFiles/estimate_k.dir/estimate_k.cpp.o.d"
  "estimate_k"
  "estimate_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
