# Empty dependencies file for estimate_k.
# This may be replaced when dependencies are built.
