# Empty dependencies file for kshape_cluster.
# This may be replaced when dependencies are built.
