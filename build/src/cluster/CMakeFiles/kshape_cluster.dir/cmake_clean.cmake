file(REMOVE_RECURSE
  "CMakeFiles/kshape_cluster.dir/algorithm.cc.o"
  "CMakeFiles/kshape_cluster.dir/algorithm.cc.o.d"
  "CMakeFiles/kshape_cluster.dir/averaging.cc.o"
  "CMakeFiles/kshape_cluster.dir/averaging.cc.o.d"
  "CMakeFiles/kshape_cluster.dir/dba.cc.o"
  "CMakeFiles/kshape_cluster.dir/dba.cc.o.d"
  "CMakeFiles/kshape_cluster.dir/hierarchical.cc.o"
  "CMakeFiles/kshape_cluster.dir/hierarchical.cc.o.d"
  "CMakeFiles/kshape_cluster.dir/kmeans.cc.o"
  "CMakeFiles/kshape_cluster.dir/kmeans.cc.o.d"
  "CMakeFiles/kshape_cluster.dir/kmedoids.cc.o"
  "CMakeFiles/kshape_cluster.dir/kmedoids.cc.o.d"
  "CMakeFiles/kshape_cluster.dir/ksc.cc.o"
  "CMakeFiles/kshape_cluster.dir/ksc.cc.o.d"
  "CMakeFiles/kshape_cluster.dir/pairwise_averaging.cc.o"
  "CMakeFiles/kshape_cluster.dir/pairwise_averaging.cc.o.d"
  "CMakeFiles/kshape_cluster.dir/spectral.cc.o"
  "CMakeFiles/kshape_cluster.dir/spectral.cc.o.d"
  "CMakeFiles/kshape_cluster.dir/validity.cc.o"
  "CMakeFiles/kshape_cluster.dir/validity.cc.o.d"
  "libkshape_cluster.a"
  "libkshape_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
