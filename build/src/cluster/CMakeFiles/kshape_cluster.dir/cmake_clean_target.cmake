file(REMOVE_RECURSE
  "libkshape_cluster.a"
)
