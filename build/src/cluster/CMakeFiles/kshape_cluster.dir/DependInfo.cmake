
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/algorithm.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/algorithm.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/algorithm.cc.o.d"
  "/root/repo/src/cluster/averaging.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/averaging.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/averaging.cc.o.d"
  "/root/repo/src/cluster/dba.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/dba.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/dba.cc.o.d"
  "/root/repo/src/cluster/hierarchical.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/hierarchical.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/hierarchical.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/kmeans.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/kmeans.cc.o.d"
  "/root/repo/src/cluster/kmedoids.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/kmedoids.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/kmedoids.cc.o.d"
  "/root/repo/src/cluster/ksc.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/ksc.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/ksc.cc.o.d"
  "/root/repo/src/cluster/pairwise_averaging.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/pairwise_averaging.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/pairwise_averaging.cc.o.d"
  "/root/repo/src/cluster/spectral.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/spectral.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/spectral.cc.o.d"
  "/root/repo/src/cluster/validity.cc" "src/cluster/CMakeFiles/kshape_cluster.dir/validity.cc.o" "gcc" "src/cluster/CMakeFiles/kshape_cluster.dir/validity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kshape_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tseries/CMakeFiles/kshape_tseries.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/kshape_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/kshape_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
