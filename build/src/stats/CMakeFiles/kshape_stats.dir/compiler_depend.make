# Empty compiler generated dependencies file for kshape_stats.
# This may be replaced when dependencies are built.
