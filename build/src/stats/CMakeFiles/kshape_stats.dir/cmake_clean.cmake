file(REMOVE_RECURSE
  "CMakeFiles/kshape_stats.dir/special_functions.cc.o"
  "CMakeFiles/kshape_stats.dir/special_functions.cc.o.d"
  "CMakeFiles/kshape_stats.dir/tests.cc.o"
  "CMakeFiles/kshape_stats.dir/tests.cc.o.d"
  "libkshape_stats.a"
  "libkshape_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
