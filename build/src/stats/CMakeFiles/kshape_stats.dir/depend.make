# Empty dependencies file for kshape_stats.
# This may be replaced when dependencies are built.
