
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/special_functions.cc" "src/stats/CMakeFiles/kshape_stats.dir/special_functions.cc.o" "gcc" "src/stats/CMakeFiles/kshape_stats.dir/special_functions.cc.o.d"
  "/root/repo/src/stats/tests.cc" "src/stats/CMakeFiles/kshape_stats.dir/tests.cc.o" "gcc" "src/stats/CMakeFiles/kshape_stats.dir/tests.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kshape_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/kshape_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
