file(REMOVE_RECURSE
  "libkshape_stats.a"
)
