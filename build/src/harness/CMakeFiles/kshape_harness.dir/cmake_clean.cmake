file(REMOVE_RECURSE
  "CMakeFiles/kshape_harness.dir/experiments.cc.o"
  "CMakeFiles/kshape_harness.dir/experiments.cc.o.d"
  "CMakeFiles/kshape_harness.dir/table.cc.o"
  "CMakeFiles/kshape_harness.dir/table.cc.o.d"
  "libkshape_harness.a"
  "libkshape_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
