file(REMOVE_RECURSE
  "libkshape_harness.a"
)
