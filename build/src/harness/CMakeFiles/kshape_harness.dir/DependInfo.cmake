
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiments.cc" "src/harness/CMakeFiles/kshape_harness.dir/experiments.cc.o" "gcc" "src/harness/CMakeFiles/kshape_harness.dir/experiments.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/harness/CMakeFiles/kshape_harness.dir/table.cc.o" "gcc" "src/harness/CMakeFiles/kshape_harness.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kshape_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tseries/CMakeFiles/kshape_tseries.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/kshape_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/kshape_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kshape_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/kshape_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/kshape_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
