# Empty compiler generated dependencies file for kshape_harness.
# This may be replaced when dependencies are built.
