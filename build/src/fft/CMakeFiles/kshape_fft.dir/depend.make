# Empty dependencies file for kshape_fft.
# This may be replaced when dependencies are built.
