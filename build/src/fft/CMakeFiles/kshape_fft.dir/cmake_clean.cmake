file(REMOVE_RECURSE
  "CMakeFiles/kshape_fft.dir/fft.cc.o"
  "CMakeFiles/kshape_fft.dir/fft.cc.o.d"
  "libkshape_fft.a"
  "libkshape_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
