file(REMOVE_RECURSE
  "libkshape_fft.a"
)
