file(REMOVE_RECURSE
  "CMakeFiles/kshape_linalg.dir/eigen.cc.o"
  "CMakeFiles/kshape_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/kshape_linalg.dir/matrix.cc.o"
  "CMakeFiles/kshape_linalg.dir/matrix.cc.o.d"
  "libkshape_linalg.a"
  "libkshape_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
