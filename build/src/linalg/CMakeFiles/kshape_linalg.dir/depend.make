# Empty dependencies file for kshape_linalg.
# This may be replaced when dependencies are built.
