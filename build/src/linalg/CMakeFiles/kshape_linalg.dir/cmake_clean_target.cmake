file(REMOVE_RECURSE
  "libkshape_linalg.a"
)
