# Empty compiler generated dependencies file for kshape_linalg.
# This may be replaced when dependencies are built.
