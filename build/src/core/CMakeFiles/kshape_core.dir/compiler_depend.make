# Empty compiler generated dependencies file for kshape_core.
# This may be replaced when dependencies are built.
