# Empty dependencies file for kshape_core.
# This may be replaced when dependencies are built.
