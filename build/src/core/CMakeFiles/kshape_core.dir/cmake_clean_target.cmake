file(REMOVE_RECURSE
  "libkshape_core.a"
)
