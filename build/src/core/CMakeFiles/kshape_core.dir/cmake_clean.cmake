file(REMOVE_RECURSE
  "CMakeFiles/kshape_core.dir/kshape.cc.o"
  "CMakeFiles/kshape_core.dir/kshape.cc.o.d"
  "CMakeFiles/kshape_core.dir/multivariate.cc.o"
  "CMakeFiles/kshape_core.dir/multivariate.cc.o.d"
  "CMakeFiles/kshape_core.dir/sbd.cc.o"
  "CMakeFiles/kshape_core.dir/sbd.cc.o.d"
  "CMakeFiles/kshape_core.dir/shape_extraction.cc.o"
  "CMakeFiles/kshape_core.dir/shape_extraction.cc.o.d"
  "libkshape_core.a"
  "libkshape_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
