file(REMOVE_RECURSE
  "libkshape_data.a"
)
