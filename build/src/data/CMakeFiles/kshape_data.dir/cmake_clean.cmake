file(REMOVE_RECURSE
  "CMakeFiles/kshape_data.dir/archive.cc.o"
  "CMakeFiles/kshape_data.dir/archive.cc.o.d"
  "CMakeFiles/kshape_data.dir/generators.cc.o"
  "CMakeFiles/kshape_data.dir/generators.cc.o.d"
  "libkshape_data.a"
  "libkshape_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
