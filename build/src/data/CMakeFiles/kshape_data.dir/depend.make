# Empty dependencies file for kshape_data.
# This may be replaced when dependencies are built.
