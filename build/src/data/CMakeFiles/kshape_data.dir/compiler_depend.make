# Empty compiler generated dependencies file for kshape_data.
# This may be replaced when dependencies are built.
