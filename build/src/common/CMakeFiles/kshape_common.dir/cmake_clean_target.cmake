file(REMOVE_RECURSE
  "libkshape_common.a"
)
