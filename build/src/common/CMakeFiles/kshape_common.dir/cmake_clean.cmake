file(REMOVE_RECURSE
  "CMakeFiles/kshape_common.dir/random.cc.o"
  "CMakeFiles/kshape_common.dir/random.cc.o.d"
  "CMakeFiles/kshape_common.dir/status.cc.o"
  "CMakeFiles/kshape_common.dir/status.cc.o.d"
  "libkshape_common.a"
  "libkshape_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
