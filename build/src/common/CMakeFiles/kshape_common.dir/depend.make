# Empty dependencies file for kshape_common.
# This may be replaced when dependencies are built.
