file(REMOVE_RECURSE
  "CMakeFiles/kshape_classify.dir/nearest_neighbor.cc.o"
  "CMakeFiles/kshape_classify.dir/nearest_neighbor.cc.o.d"
  "libkshape_classify.a"
  "libkshape_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
