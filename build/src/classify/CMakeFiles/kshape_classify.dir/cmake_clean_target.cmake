file(REMOVE_RECURSE
  "libkshape_classify.a"
)
