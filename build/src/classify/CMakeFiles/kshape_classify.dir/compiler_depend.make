# Empty compiler generated dependencies file for kshape_classify.
# This may be replaced when dependencies are built.
