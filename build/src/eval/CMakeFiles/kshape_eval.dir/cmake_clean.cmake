file(REMOVE_RECURSE
  "CMakeFiles/kshape_eval.dir/metrics.cc.o"
  "CMakeFiles/kshape_eval.dir/metrics.cc.o.d"
  "libkshape_eval.a"
  "libkshape_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
