file(REMOVE_RECURSE
  "libkshape_eval.a"
)
