# Empty compiler generated dependencies file for kshape_eval.
# This may be replaced when dependencies are built.
