# Empty dependencies file for kshape_tseries.
# This may be replaced when dependencies are built.
