file(REMOVE_RECURSE
  "CMakeFiles/kshape_tseries.dir/io.cc.o"
  "CMakeFiles/kshape_tseries.dir/io.cc.o.d"
  "CMakeFiles/kshape_tseries.dir/normalization.cc.o"
  "CMakeFiles/kshape_tseries.dir/normalization.cc.o.d"
  "CMakeFiles/kshape_tseries.dir/paa.cc.o"
  "CMakeFiles/kshape_tseries.dir/paa.cc.o.d"
  "CMakeFiles/kshape_tseries.dir/time_series.cc.o"
  "CMakeFiles/kshape_tseries.dir/time_series.cc.o.d"
  "libkshape_tseries.a"
  "libkshape_tseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_tseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
