file(REMOVE_RECURSE
  "libkshape_tseries.a"
)
