# CMake generated Testfile for 
# Source directory: /root/repo/src/tseries
# Build directory: /root/repo/build/src/tseries
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
