# Empty compiler generated dependencies file for kshape_distance.
# This may be replaced when dependencies are built.
