file(REMOVE_RECURSE
  "libkshape_distance.a"
)
