
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distance/dtw.cc" "src/distance/CMakeFiles/kshape_distance.dir/dtw.cc.o" "gcc" "src/distance/CMakeFiles/kshape_distance.dir/dtw.cc.o.d"
  "/root/repo/src/distance/elastic.cc" "src/distance/CMakeFiles/kshape_distance.dir/elastic.cc.o" "gcc" "src/distance/CMakeFiles/kshape_distance.dir/elastic.cc.o.d"
  "/root/repo/src/distance/euclidean.cc" "src/distance/CMakeFiles/kshape_distance.dir/euclidean.cc.o" "gcc" "src/distance/CMakeFiles/kshape_distance.dir/euclidean.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/kshape_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tseries/CMakeFiles/kshape_tseries.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
