file(REMOVE_RECURSE
  "CMakeFiles/kshape_distance.dir/dtw.cc.o"
  "CMakeFiles/kshape_distance.dir/dtw.cc.o.d"
  "CMakeFiles/kshape_distance.dir/elastic.cc.o"
  "CMakeFiles/kshape_distance.dir/elastic.cc.o.d"
  "CMakeFiles/kshape_distance.dir/euclidean.cc.o"
  "CMakeFiles/kshape_distance.dir/euclidean.cc.o.d"
  "libkshape_distance.a"
  "libkshape_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
