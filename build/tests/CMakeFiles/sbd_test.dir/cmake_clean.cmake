file(REMOVE_RECURSE
  "CMakeFiles/sbd_test.dir/sbd_test.cc.o"
  "CMakeFiles/sbd_test.dir/sbd_test.cc.o.d"
  "sbd_test"
  "sbd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
