# Empty dependencies file for sbd_test.
# This may be replaced when dependencies are built.
