file(REMOVE_RECURSE
  "CMakeFiles/kshape_test.dir/kshape_test.cc.o"
  "CMakeFiles/kshape_test.dir/kshape_test.cc.o.d"
  "kshape_test"
  "kshape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kshape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
