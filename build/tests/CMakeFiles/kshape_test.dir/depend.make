# Empty dependencies file for kshape_test.
# This may be replaced when dependencies are built.
