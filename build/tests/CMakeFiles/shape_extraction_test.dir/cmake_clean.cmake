file(REMOVE_RECURSE
  "CMakeFiles/shape_extraction_test.dir/shape_extraction_test.cc.o"
  "CMakeFiles/shape_extraction_test.dir/shape_extraction_test.cc.o.d"
  "shape_extraction_test"
  "shape_extraction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_extraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
