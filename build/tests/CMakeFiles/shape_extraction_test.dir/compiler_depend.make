# Empty compiler generated dependencies file for shape_extraction_test.
# This may be replaced when dependencies are built.
