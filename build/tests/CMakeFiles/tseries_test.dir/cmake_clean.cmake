file(REMOVE_RECURSE
  "CMakeFiles/tseries_test.dir/tseries_test.cc.o"
  "CMakeFiles/tseries_test.dir/tseries_test.cc.o.d"
  "tseries_test"
  "tseries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tseries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
