# Empty compiler generated dependencies file for paa_test.
# This may be replaced when dependencies are built.
