# Empty dependencies file for pairwise_averaging_test.
# This may be replaced when dependencies are built.
