file(REMOVE_RECURSE
  "CMakeFiles/pairwise_averaging_test.dir/pairwise_averaging_test.cc.o"
  "CMakeFiles/pairwise_averaging_test.dir/pairwise_averaging_test.cc.o.d"
  "pairwise_averaging_test"
  "pairwise_averaging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairwise_averaging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
