#!/usr/bin/env bash
# CI for the parallel execution layer.
#
# 1. Release build (examples/ binaries built explicitly, so interface
#    refactors cannot silently break them); tier-1 tests at KSHAPE_THREADS=1
#    and KSHAPE_THREADS=4 (the suites assert bit-identical results across
#    thread counts, so running the whole tier at two settings catches
#    scheduling-dependent output anywhere in the library, not just in
#    parallel_test); then the storage-layout microbench in --smoke mode as a
#    release-stage smoke test (it cross-checks that the contiguous and
#    nested layouts produce bit-identical kernel outputs and writes
#    BENCH_storage_layout.json).
# 2. ThreadSanitizer build; parallel_test, thread_pool_test, and
#    sbd_cache_test run under TSan to catch data races in the pool, the FFT
#    plan caches, and the spectrum-cached SBD pipeline (engine construction
#    pre-pass, batched pairwise fills, concurrent batch-scanner queries).
# 3. AddressSanitizer+UBSan build; the robustness suites (degenerate inputs,
#    property sweeps over hostile data, conditioning) run under ASan+UBSan so
#    every repair/fallback path is also checked for memory errors and UB.
#
# Usage: ci/run_ci.sh [build-dir-prefix]   (default: build-ci)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build-ci}"
RELEASE_DIR="${PREFIX}-release"
TSAN_DIR="${PREFIX}-tsan"
ASAN_DIR="${PREFIX}-asan"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> Release build (${RELEASE_DIR})"
cmake -B "${RELEASE_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${RELEASE_DIR}" -j "${JOBS}"

echo "==> example binaries"
cmake --build "${RELEASE_DIR}" -j "${JOBS}" \
      --target quickstart ecg_clustering stock_patterns ucr_file_tool \
               estimate_k multichannel

for threads in 1 4; do
  echo "==> tier1 tests, KSHAPE_THREADS=${threads}"
  (cd "${RELEASE_DIR}" &&
   KSHAPE_THREADS="${threads}" ctest -L tier1 --output-on-failure -j "${JOBS}")
done

echo "==> storage-layout smoke test (contiguous vs nested bit-identity)"
(cd "${RELEASE_DIR}" && ./bench/storage_layout --smoke)

echo "==> ThreadSanitizer build (${TSAN_DIR})"
cmake -B "${TSAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DKSHAPE_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}" \
      --target parallel_test thread_pool_test sbd_cache_test

echo "==> race check: parallel_test + thread_pool_test + sbd_cache_test under TSan"
# Run the parallel paths at a thread count high enough to force real
# interleaving even on small CI machines.
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/parallel_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/thread_pool_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/sbd_cache_test"

echo "==> ASan+UBSan build (${ASAN_DIR})"
cmake -B "${ASAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DKSHAPE_SANITIZE=address,undefined
cmake --build "${ASAN_DIR}" -j "${JOBS}" \
      --target degenerate_input_test robustness_properties_test tseries_test

echo "==> hostile-input check: robustness suites under ASan+UBSan"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/degenerate_input_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/robustness_properties_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/tseries_test"

echo "==> CI OK"
