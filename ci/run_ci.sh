#!/usr/bin/env bash
# CI for the parallel execution layer.
#
# 1. Release build; tier-1 tests at KSHAPE_THREADS=1 and KSHAPE_THREADS=4
#    (the suites assert bit-identical results across thread counts, so
#    running the whole tier at two settings catches scheduling-dependent
#    output anywhere in the library, not just in parallel_test).
# 2. ThreadSanitizer build; parallel_test, thread_pool_test, and
#    sbd_cache_test run under TSan to catch data races in the pool, the FFT
#    plan caches, and the spectrum-cached SBD pipeline (engine construction
#    pre-pass, batched pairwise fills, concurrent batch-scanner queries).
#
# Usage: ci/run_ci.sh [build-dir-prefix]   (default: build-ci)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build-ci}"
RELEASE_DIR="${PREFIX}-release"
TSAN_DIR="${PREFIX}-tsan"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> Release build (${RELEASE_DIR})"
cmake -B "${RELEASE_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${RELEASE_DIR}" -j "${JOBS}"

for threads in 1 4; do
  echo "==> tier1 tests, KSHAPE_THREADS=${threads}"
  (cd "${RELEASE_DIR}" &&
   KSHAPE_THREADS="${threads}" ctest -L tier1 --output-on-failure -j "${JOBS}")
done

echo "==> ThreadSanitizer build (${TSAN_DIR})"
cmake -B "${TSAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DKSHAPE_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}" \
      --target parallel_test thread_pool_test sbd_cache_test

echo "==> race check: parallel_test + thread_pool_test + sbd_cache_test under TSan"
# Run the parallel paths at a thread count high enough to force real
# interleaving even on small CI machines.
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/parallel_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/thread_pool_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/sbd_cache_test"

echo "==> CI OK"
