#!/usr/bin/env bash
# CI for the parallel execution layer.
#
# 1. Release build (examples/ binaries built explicitly, so interface
#    refactors cannot silently break them); tier-1 tests at KSHAPE_THREADS=1
#    and KSHAPE_THREADS=4 (the suites assert bit-identical results across
#    thread counts, so running the whole tier at two settings catches
#    scheduling-dependent output anywhere in the library, not just in
#    parallel_test), plus a KSHAPE_SIMD=scalar leg that forces the reference
#    kernel backend through the whole tier (the SIMD determinism contract
#    says results cannot change, so any diff is a backend bug), and a
#    KSHAPE_HALF_SPECTRUM=off leg that forces the full-complex spectrum
#    cache through the whole tier (the half-spectrum equivalence contract
#    says labels and accuracies cannot change), and a KSHAPE_PRUNE=off leg
#    that forces exhaustive exact scans through the whole tier (the pruning
#    equivalence contract says labels cannot change), and KSHAPE_SHARDS=on
#    / KSHAPE_SHARDS=off legs that pin the out-of-core gate both ways (the
#    sharded exact-mode contract says results are bit-identical to the
#    in-memory driver, and the "off" leg forces the fall-back-to-exact path
#    through the mini-batch suite), and a KSHAPE_MATFREE=off leg that forces
#    the dense Gram eigensolver through the whole tier (the matrix-free
#    contract says the off state is bit-identical to the pre-matrix-free
#    implementation, and label parity with the on state is pinned by the
#    suites themselves); then the storage-layout, simd-kernels, rfft-batch,
#    assignment-pruning, and shape-extraction microbenches plus the sharded
#    fig12 scalability bench in --smoke mode as release-stage smoke tests
#    (all cross-check bit-identity, epsilon equivalence, or label equality
#    and write their BENCH_*.json files), the model_predict serving bench in
#    --smoke mode (asserts saved->loaded Predict bit-identity), and a
#    kshape_fit -> kshape_predict round-trip leg that exercises the .kmodel
#    artifact end to end through the example CLIs.
# 2. -march=native release build: the strictest determinism setting — the
#    compiler is free to fuse/vectorize everything OUTSIDE the pinned kernel
#    TUs, so tier-1 passing here proves the -ffp-contract=off firewalls
#    around src/simd/ actually hold.
# 3. ThreadSanitizer build; parallel_test, thread_pool_test, sbd_cache_test,
#    rfft_test, simd_kernels_test, pruning_test, sharded_store_test,
#    shape_extraction_test, and
#    minibatch_kshape_test run under TSan to catch data races in the pool,
#    the FFT/RFFT plan caches (incl. BatchSpectra parallel fill), the
#    spectrum-cached SBD pipeline, the kernel dispatch cache (atomic table
#    pointer + SetBackendForTesting), the pruned assignment scan (per-series
#    bound/telemetry cells + the KSHAPE_PRUNE gate atomics), the shard
#    residency cache (generation stamps + eviction under churn), the
#    sharded assignment fan-out (per-shard engines writing disjoint label
#    ranges in parallel), and the matrix-free extraction matvec (parallel
#    chunk fan-out writing disjoint partial blocks — RowPoolMatVec's
#    determinism contract); fitted_model_test also runs under TSan because
#    Predict drives the Assigner's parallel assignment fan-out over a frozen
#    model at multiple thread counts.
# 4. AddressSanitizer+UBSan build; the robustness suites (degenerate inputs,
#    property sweeps over hostile data, conditioning) plus simd_kernels_test
#    (unaligned loads, length-1..67 tails), rfft_test (packed-bin
#    unpack/fold indexing at odd, prime, and power-of-two lengths),
#    pruning_test (bound-plane indexing at Bluestein lengths, the
#    partial-sum checkpoint tails), sharded_store_test (mmap-free file I/O,
#    truncated/corrupt shard handling), minibatch_kshape_test (sampled
#    scatter indexing, streamed repair), shape_extraction_test (pooled-row
#    and partial-block indexing on the matrix-free path, crossover/spill
#    boundaries), and fitted_model_test (the .kmodel
#    corruption matrix: truncated/ragged/byte-patched model files through the
#    untrusted-input Load path) run under ASan+UBSan so every repair/fallback
#    path is also checked for memory errors and UB.
#
# Usage: ci/run_ci.sh [build-dir-prefix]   (default: build-ci)

set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build-ci}"
RELEASE_DIR="${PREFIX}-release"
TSAN_DIR="${PREFIX}-tsan"
ASAN_DIR="${PREFIX}-asan"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "==> Release build (${RELEASE_DIR})"
cmake -B "${RELEASE_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${RELEASE_DIR}" -j "${JOBS}"

echo "==> example binaries"
cmake --build "${RELEASE_DIR}" -j "${JOBS}" \
      --target quickstart ecg_clustering stock_patterns ucr_file_tool \
               estimate_k multichannel kshape_fit kshape_predict

for threads in 1 4; do
  echo "==> tier1 tests, KSHAPE_THREADS=${threads}"
  (cd "${RELEASE_DIR}" &&
   KSHAPE_THREADS="${threads}" ctest -L tier1 --output-on-failure -j "${JOBS}")
done

echo "==> tier1 tests, KSHAPE_SIMD=scalar (forced reference kernel backend)"
(cd "${RELEASE_DIR}" &&
 KSHAPE_SIMD=scalar ctest -L tier1 --output-on-failure -j "${JOBS}")

echo "==> tier1 tests, KSHAPE_HALF_SPECTRUM=off (forced full-complex spectra)"
(cd "${RELEASE_DIR}" &&
 KSHAPE_HALF_SPECTRUM=off ctest -L tier1 --output-on-failure -j "${JOBS}")

echo "==> tier1 tests, KSHAPE_PRUNE=off (forced exhaustive exact scans)"
(cd "${RELEASE_DIR}" &&
 KSHAPE_PRUNE=off ctest -L tier1 --output-on-failure -j "${JOBS}")

for shards in on off; do
  echo "==> tier1 tests, KSHAPE_SHARDS=${shards} (out-of-core gate pinned)"
  (cd "${RELEASE_DIR}" &&
   KSHAPE_SHARDS="${shards}" ctest -L tier1 --output-on-failure -j "${JOBS}")
done

echo "==> tier1 tests, KSHAPE_MATFREE=off (forced dense Gram eigensolver)"
(cd "${RELEASE_DIR}" &&
 KSHAPE_MATFREE=off ctest -L tier1 --output-on-failure -j "${JOBS}")

echo "==> storage-layout smoke test (contiguous vs nested bit-identity)"
(cd "${RELEASE_DIR}" && ./bench/storage_layout --smoke)

echo "==> simd-kernels smoke test (scalar vs dispatched bit-identity)"
(cd "${RELEASE_DIR}" && ./bench/simd_kernels --smoke)

echo "==> rfft-batch smoke test (half-spectrum vs full-complex equivalence)"
(cd "${RELEASE_DIR}" && ./bench/rfft_batch --smoke)

echo "==> assignment-pruning smoke test (pruned vs exact label equality)"
(cd "${RELEASE_DIR}" && ./bench/assignment_pruning --smoke)

echo "==> shape-extraction smoke test (matrix-free vs Gram equivalence)"
(cd "${RELEASE_DIR}" && ./bench/shape_extraction --smoke)

echo "==> model-predict smoke test (saved->loaded Predict bit-identity)"
(cd "${RELEASE_DIR}" && ./bench/model_predict --smoke)

echo "==> fit/predict round-trip smoke (kshape_fit -> .kmodel -> kshape_predict)"
MODEL_FILE="$(mktemp -u /tmp/kshape_ci_model.XXXXXX.kmodel)"
"${RELEASE_DIR}/examples/kshape_fit" "${MODEL_FILE}" --per-class 10 --length 64
"${RELEASE_DIR}/examples/kshape_predict" "${MODEL_FILE}" --per-class 5
rm -f "${MODEL_FILE}"

echo "==> sharded fig12 smoke test (out-of-core exact + mini-batch runs)"
(cd "${RELEASE_DIR}" && ./bench/fig12_scalability --sharded --smoke)

NATIVE_DIR="${PREFIX}-native"
echo "==> -march=native release build (${NATIVE_DIR})"
cmake -B "${NATIVE_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
      -DKSHAPE_MARCH_NATIVE=ON
cmake --build "${NATIVE_DIR}" -j "${JOBS}"

echo "==> tier1 tests under -march=native (kernel TU contract firewall)"
(cd "${NATIVE_DIR}" && ctest -L tier1 --output-on-failure -j "${JOBS}")

echo "==> simd-kernels smoke under -march=native"
(cd "${NATIVE_DIR}" && ./bench/simd_kernels --smoke)

echo "==> ThreadSanitizer build (${TSAN_DIR})"
cmake -B "${TSAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DKSHAPE_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}" \
      --target parallel_test thread_pool_test sbd_cache_test rfft_test \
               simd_kernels_test pruning_test sharded_store_test \
               shape_extraction_test minibatch_kshape_test fitted_model_test

echo "==> race check: parallel + thread_pool + sbd_cache + rfft + simd_kernels + pruning + sharded_store + shape_extraction + minibatch + fitted_model under TSan"
# Run the parallel paths at a thread count high enough to force real
# interleaving even on small CI machines.
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/parallel_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/thread_pool_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/sbd_cache_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/rfft_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/simd_kernels_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/pruning_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/sharded_store_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/shape_extraction_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/minibatch_kshape_test"
KSHAPE_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    "${TSAN_DIR}/tests/fitted_model_test"

echo "==> ASan+UBSan build (${ASAN_DIR})"
cmake -B "${ASAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DKSHAPE_SANITIZE=address,undefined
cmake --build "${ASAN_DIR}" -j "${JOBS}" \
      --target degenerate_input_test robustness_properties_test tseries_test \
               rfft_test simd_kernels_test pruning_test sharded_store_test \
               shape_extraction_test minibatch_kshape_test fitted_model_test

echo "==> hostile-input check: robustness suites under ASan+UBSan"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/degenerate_input_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/robustness_properties_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/tseries_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/rfft_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/simd_kernels_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/pruning_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/sharded_store_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/shape_extraction_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/minibatch_kshape_test"
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    "${ASAN_DIR}/tests/fitted_model_test"

echo "==> CI OK"
