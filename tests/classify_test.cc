#include "classify/nearest_neighbor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "tseries/normalization.h"

namespace kshape::classify {
namespace {

using tseries::Dataset;
using tseries::Series;

Dataset MakeSineDataset(int per_class, std::size_t m, double noise,
                        common::Rng* rng) {
  Dataset d("sines");
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < per_class; ++i) {
      d.Add(tseries::ZNormalized(
                data::MakeShiftedSine(k, m, rng, noise)),
            k);
    }
  }
  return d;
}

TEST(OneNnTest, ClassifiesByNearestTrainingSeries) {
  Dataset train("t");
  train.Add({0.0, 0.0, 0.0}, 0);
  train.Add({5.0, 5.0, 5.0}, 1);
  const distance::EuclideanDistance ed;
  EXPECT_EQ(OneNnClassify(train, Series{0.2, -0.1, 0.1}, ed), 0);
  EXPECT_EQ(OneNnClassify(train, Series{4.5, 5.5, 5.0}, ed), 1);
}

TEST(OneNnTest, PerfectAccuracyOnSeparableData) {
  common::Rng rng(1);
  const Dataset train = MakeSineDataset(10, 64, 0.05, &rng);
  const Dataset test = MakeSineDataset(10, 64, 0.05, &rng);
  const core::SbdDistance sbd;
  EXPECT_DOUBLE_EQ(OneNnAccuracy(train, test, sbd), 1.0);
}

TEST(OneNnTest, SbdBeatsEdOnPhaseShiftedData) {
  // Random-phase sines are hard for ED (no alignment) and easy for SBD.
  common::Rng rng(2);
  const Dataset train = MakeSineDataset(12, 96, 0.15, &rng);
  const Dataset test = MakeSineDataset(12, 96, 0.15, &rng);
  const distance::EuclideanDistance ed;
  const core::SbdDistance sbd;
  const double ed_acc = OneNnAccuracy(train, test, ed);
  const double sbd_acc = OneNnAccuracy(train, test, sbd);
  EXPECT_GE(sbd_acc, ed_acc);
  EXPECT_GT(sbd_acc, 0.9);
}

TEST(LbPruningTest, SamePredictionsAsExhaustiveSearch) {
  common::Rng rng(3);
  const Dataset train = MakeSineDataset(8, 48, 0.3, &rng);
  const Dataset test = MakeSineDataset(8, 48, 0.3, &rng);
  for (int window : {0, 2, 5, 10}) {
    // Exhaustive via the DistanceMeasure wrapper at the same window. The
    // half-cell offset keeps ceil() from rounding across the integer under
    // floating-point error.
    const double fraction =
        window == 0 ? 0.0 : (static_cast<double>(window) - 0.5) / 48.0;
    const dtw::DtwMeasure cdtw =
        dtw::DtwMeasure::SakoeChiba(fraction, "cDTW");
    // WindowFromFraction(ceil) reproduces `window` exactly for these values.
    ASSERT_EQ(dtw::WindowFromFraction(fraction, 48), window);
    const double exhaustive = OneNnAccuracy(train, test, cdtw);
    const double pruned = OneNnAccuracyCdtwLb(train, test, window);
    EXPECT_DOUBLE_EQ(pruned, exhaustive) << "window " << window;
  }
}

TEST(LooTuningTest, ReturnsWindowFromGrid) {
  common::Rng rng(4);
  const Dataset train = MakeSineDataset(8, 40, 0.2, &rng);
  const int window = TuneCdtwWindowLoo(train, DefaultWindowFractions());
  EXPECT_GE(window, 0);
  EXPECT_LE(window, static_cast<int>(std::ceil(0.20 * 40)));
}

TEST(LooTuningTest, PrefersNonZeroWindowOnWarpedData) {
  // Locally warped patterns need warping; window 0 (ED) should lose the
  // leave-one-out contest in aggregate.
  common::Rng rng(5);
  Dataset train("warped");
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < 10; ++i) {
      train.Add(tseries::ZNormalized(
                    data::MakeWarpedPattern(k, 64, &rng, 0.05)),
                k);
    }
  }
  const double acc_zero = LeaveOneOutCdtwAccuracy(train, 0);
  const double acc_five = LeaveOneOutCdtwAccuracy(train, 3);
  EXPECT_GE(acc_five, acc_zero);
}

TEST(LooTuningTest, LeaveOneOutExcludesSelf) {
  // Two singleton classes: with self excluded, LOO accuracy must be 0.
  Dataset d("two");
  d.Add({0.0, 0.0, 0.0, 0.0}, 0);
  d.Add({5.0, 5.0, 5.0, 5.0}, 1);
  EXPECT_DOUBLE_EQ(LeaveOneOutCdtwAccuracy(d, 1), 0.0);
}

TEST(KnnTest, KOneMatchesOneNn) {
  common::Rng rng(6);
  const Dataset train = MakeSineDataset(8, 48, 0.3, &rng);
  const Dataset test = MakeSineDataset(8, 48, 0.3, &rng);
  const core::SbdDistance sbd;
  for (std::size_t i = 0; i < test.size(); ++i) {
    EXPECT_EQ(KnnClassify(train, test.series(i), sbd, 1),
              OneNnClassify(train, test.series(i), sbd));
  }
  EXPECT_DOUBLE_EQ(KnnAccuracy(train, test, sbd, 1),
                   OneNnAccuracy(train, test, sbd));
}

TEST(KnnTest, MajorityVoteOverridesSingleNoisyNeighbor) {
  // Query equidistant-ish: nearest single neighbor is mislabeled, but two of
  // the three nearest carry the right label.
  Dataset train("t");
  train.Add({0.0, 0.0, 0.0, 0.1}, 1);  // Mislabeled point near the query.
  train.Add({0.2, 0.0, 0.0, 0.0}, 0);
  train.Add({0.0, 0.2, 0.0, 0.0}, 0);
  train.Add({9.0, 9.0, 9.0, 9.0}, 1);
  const distance::EuclideanDistance ed;
  const Series query = {0.0, 0.0, 0.0, 0.0};
  EXPECT_EQ(KnnClassify(train, query, ed, 1), 1);
  EXPECT_EQ(KnnClassify(train, query, ed, 3), 0);
}

TEST(KnnTest, KLargerThanTrainIsClamped) {
  Dataset train("t");
  train.Add({0.0, 0.0}, 0);
  train.Add({5.0, 5.0}, 1);
  const distance::EuclideanDistance ed;
  // k = 10 with 2 training points must not crash; tie of 1 vote each goes
  // to the class of the closest member.
  EXPECT_EQ(KnnClassify(train, Series{0.1, 0.1}, ed, 10), 0);
}

TEST(EarlyAbandonTest, MatchesExhaustiveEdSearch) {
  common::Rng rng(7);
  const Dataset train = MakeSineDataset(10, 64, 0.3, &rng);
  const Dataset test = MakeSineDataset(10, 64, 0.3, &rng);
  const distance::EuclideanDistance ed;
  EXPECT_DOUBLE_EQ(OneNnAccuracyEdEarlyAbandon(train, test),
                   OneNnAccuracy(train, test, ed));
}

TEST(DefaultWindowFractionsTest, GridCoversZeroToTwentyPercent) {
  const std::vector<double> grid = DefaultWindowFractions();
  ASSERT_EQ(grid.size(), 21u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 0.20);
}

}  // namespace
}  // namespace kshape::classify
