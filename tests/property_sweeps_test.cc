// Parameterized property sweeps across modules: invariants that must hold
// for whole families of inputs rather than single examples.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "eval/metrics.h"
#include "fft/fft.h"
#include "linalg/eigen.h"
#include "stats/tests.h"
#include "tseries/normalization.h"
#include "tseries/paa.h"

namespace kshape {
namespace {

using tseries::Series;

// ---------------------------------------------------------------- SBD shifts

class SbdShiftRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(SbdShiftRecoveryTest, RecoversEveryConstructedShift) {
  const int shift = GetParam();
  const std::size_t m = 96;
  // Compact asymmetric pattern: exact-match lag dominates.
  Series x(m, 0.0);
  for (std::size_t t = 40; t < 52; ++t) {
    x[t] = 1.0 + 0.2 * static_cast<double>(t - 40);
  }
  const Series y = tseries::ShiftWithZeroFill(x, shift);
  const core::SbdResult r = core::Sbd(x, y);
  EXPECT_EQ(r.shift, -shift);
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shifts, SbdShiftRecoveryTest,
                         ::testing::Values(-30, -17, -8, -1, 0, 1, 5, 13, 25,
                                           30));

// -------------------------------------------------------------- FFT algebra

class CrossCorrelationLinearityTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossCorrelationLinearityTest, LinearInEachArgument) {
  common::Rng rng(GetParam() * 11 + 1);
  const std::size_t m = GetParam();
  std::vector<double> x(m), y(m), z(m);
  for (auto* v : {&x, &y, &z}) {
    for (double& e : *v) e = rng.Gaussian();
  }
  const double a = 2.5;
  std::vector<double> combo(m);
  for (std::size_t i = 0; i < m; ++i) combo[i] = x[i] + a * z[i];

  const auto cc_combo = fft::CrossCorrelationFft(combo, y);
  const auto cc_x = fft::CrossCorrelationFft(x, y);
  const auto cc_z = fft::CrossCorrelationFft(z, y);
  for (std::size_t i = 0; i < cc_combo.size(); ++i) {
    EXPECT_NEAR(cc_combo[i], cc_x[i] + a * cc_z[i], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CrossCorrelationLinearityTest,
                         ::testing::Values(4, 9, 16, 33, 64, 127));

// ------------------------------------------------------------ PSD spectrum

class PsdSpectrumTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PsdSpectrumTest, GramMatricesHaveNonNegativeSpectra) {
  common::Rng rng(GetParam() * 13 + 2);
  const std::size_t n = GetParam();
  linalg::Matrix s(n, n);
  for (int rows = 0; rows < 5; ++rows) {
    std::vector<double> v(n);
    for (double& e : v) e = rng.Gaussian();
    s.AddOuterProduct(v);
  }
  const linalg::EigenDecomposition d = linalg::SymmetricEigen(s);
  for (double lambda : d.eigenvalues) {
    EXPECT_GE(lambda, -1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PsdSpectrumTest,
                         ::testing::Values(2, 3, 5, 8, 12, 20));

// ------------------------------------------------------------- rank algebra

class RankSumTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RankSumTest, RanksAlwaysSumToTriangularNumber) {
  common::Rng rng(GetParam() * 17 + 3);
  const std::size_t n = GetParam();
  std::vector<double> scores(n);
  // Include deliberate ties.
  for (double& v : scores) v = static_cast<double>(rng.UniformInt(4));
  const std::vector<double> ranks = stats::RankDescending(scores);
  const double sum = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_NEAR(sum, static_cast<double>(n * (n + 1)) / 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RankSumTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 100));

// -------------------------------------------------------- evaluation bounds

class MetricBoundsTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricBoundsTest, AllMetricsWithinTheirRangesOnRandomPartitions) {
  common::Rng rng(GetParam());
  const int n = 40;
  std::vector<int> labels(n), clusters(n);
  for (int& v : labels) v = rng.UniformInt(4);
  for (int& v : clusters) v = rng.UniformInt(5);

  const double ri = eval::RandIndex(labels, clusters);
  EXPECT_GE(ri, 0.0);
  EXPECT_LE(ri, 1.0);
  const double ari = eval::AdjustedRandIndex(labels, clusters);
  EXPECT_LE(ari, 1.0 + 1e-12);
  EXPECT_GE(ri, ari - 1e-12);  // RI >= ARI.
  const double nmi = eval::NormalizedMutualInformation(labels, clusters);
  EXPECT_GE(nmi, -1e-12);
  EXPECT_LE(nmi, 1.0 + 1e-12);
  const double purity = eval::Purity(labels, clusters);
  EXPECT_GE(purity, 0.0);
  EXPECT_LE(purity, 1.0);
  const double acc = eval::HungarianAccuracy(labels, clusters);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, purity + 1e-12);  // One-to-one matching can't beat purity.
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricBoundsTest,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------------- PAA + SBD

TEST(PaaSbdCompositionTest, SketchDistancesTrackFullDistances) {
  // PAA preserves coarse shape: SBD on 4x-reduced sketches must keep
  // within-class pairs closer than between-class pairs.
  common::Rng rng(5);
  std::vector<Series> full;
  std::vector<int> labels;
  for (int klass = 0; klass < 2; ++klass) {
    for (int i = 0; i < 6; ++i) {
      full.push_back(tseries::ZNormalized(
          data::MakeShiftedSine(2 * klass, 128, &rng, 0.05)));
      labels.push_back(klass);
    }
  }
  double within = 0.0;
  double between = 0.0;
  int wn = 0;
  int bn = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    for (std::size_t j = i + 1; j < full.size(); ++j) {
      const Series a = tseries::ZNormalized(tseries::Paa(full[i], 32));
      const Series b = tseries::ZNormalized(tseries::Paa(full[j], 32));
      const double d = core::Sbd(a, b).distance;
      if (labels[i] == labels[j]) {
        within += d;
        ++wn;
      } else {
        between += d;
        ++bn;
      }
    }
  }
  EXPECT_LT(within / wn, between / bn);
}

// ----------------------------------------------------- generator invariants

struct GeneratorSpec {
  const char* name;
  int num_classes;
};

class GeneratorSweepTest : public ::testing::TestWithParam<GeneratorSpec> {};

TEST_P(GeneratorSweepTest, AllClassesProduceFiniteSeriesOfRequestedLength) {
  common::Rng rng(9);
  const GeneratorSpec& spec = GetParam();
  for (int klass = 0; klass < spec.num_classes; ++klass) {
    for (std::size_t m : {16, 60, 128, 300}) {
      Series x;
      const std::string name = spec.name;
      if (name == "cbf") x = data::MakeCbf(klass, m, &rng);
      if (name == "ecg") x = data::MakeEcgLike(klass, m, &rng);
      if (name == "twopat") x = data::MakeTwoPatterns(klass, m, &rng);
      if (name == "control") x = data::MakeSyntheticControl(klass, m, &rng);
      if (name == "sine") x = data::MakeShiftedSine(klass, m, &rng);
      if (name == "harmonic") x = data::MakeHarmonic(klass, m, &rng);
      if (name == "bump") x = data::MakeBump(klass, m, &rng);
      if (name == "trend") x = data::MakeTrendSeasonal(klass, m, &rng);
      if (name == "wave") x = data::MakeWave(klass, m, &rng);
      if (name == "warped") x = data::MakeWarpedPattern(klass, m, &rng);
      ASSERT_EQ(x.size(), m) << name << " class " << klass;
      for (double v : x) {
        ASSERT_TRUE(std::isfinite(v)) << name << " class " << klass;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorSweepTest,
    ::testing::Values(GeneratorSpec{"cbf", 3}, GeneratorSpec{"ecg", 2},
                      GeneratorSpec{"twopat", 4}, GeneratorSpec{"control", 6},
                      GeneratorSpec{"sine", 4}, GeneratorSpec{"harmonic", 3},
                      GeneratorSpec{"bump", 3}, GeneratorSpec{"trend", 4},
                      GeneratorSpec{"wave", 3}, GeneratorSpec{"warped", 2}),
    [](const ::testing::TestParamInfo<GeneratorSpec>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace kshape
