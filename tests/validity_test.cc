#include "cluster/validity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/kmedoids.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "distance/euclidean.h"
#include "tseries/normalization.h"

namespace kshape::cluster {
namespace {

using tseries::Series;

constexpr double kPi = 3.14159265358979323846;

// Distance matrix for 1-d points, the easiest silhouette sanity setting.
linalg::Matrix PointMatrix(const std::vector<double>& points) {
  const std::size_t n = points.size();
  linalg::Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d(i, j) = std::fabs(points[i] - points[j]);
    }
  }
  return d;
}

TEST(SilhouetteTest, WellSeparatedClustersScoreNearOne) {
  const std::vector<double> points = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  const std::vector<int> good = {0, 0, 0, 1, 1, 1};
  const linalg::Matrix d = PointMatrix(points);
  EXPECT_GT(MeanSilhouette(d, good, 2), 0.95);
}

TEST(SilhouetteTest, BadPartitionScoresLower) {
  const std::vector<double> points = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  const linalg::Matrix d = PointMatrix(points);
  const std::vector<int> good = {0, 0, 0, 1, 1, 1};
  const std::vector<int> bad = {0, 1, 0, 1, 0, 1};
  EXPECT_GT(MeanSilhouette(d, good, 2), MeanSilhouette(d, bad, 2));
  EXPECT_LT(MeanSilhouette(d, bad, 2), 0.0);
}

TEST(SilhouetteTest, HandComputedTwoPointClusters) {
  // Points 0, 1 in cluster 0; point 10 in cluster 1 (singleton -> 0).
  // s(0): a = 1, b = 10 -> 9/10. s(1): a = 1, b = 9 -> 8/9.
  const std::vector<double> points = {0.0, 1.0, 10.0};
  const linalg::Matrix d = PointMatrix(points);
  const std::vector<int> assign = {0, 0, 1};
  const double expected = (9.0 / 10.0 + 8.0 / 9.0 + 0.0) / 3.0;
  EXPECT_NEAR(MeanSilhouette(d, assign, 2), expected, 1e-12);
}

TEST(DaviesBouldinTest, SeparatedBeatsMixed) {
  const std::vector<double> points = {0.0, 0.2, 0.4, 8.0, 8.2, 8.4};
  const linalg::Matrix d = PointMatrix(points);
  const std::vector<int> good = {0, 0, 0, 1, 1, 1};
  const std::vector<int> bad = {0, 1, 0, 1, 0, 1};
  // Davies-Bouldin: smaller is better.
  EXPECT_LT(DaviesBouldinIndex(d, good, 2), DaviesBouldinIndex(d, bad, 2));
}

TEST(WithinClusterSsdTest, HandComputed) {
  const std::vector<Series> series = {{0.0, 0.0}, {2.0, 0.0}, {10.0, 0.0}};
  ClusteringResult result;
  result.assignments = {0, 0, 1};
  result.centroids = {{1.0, 0.0}, {10.0, 0.0}};
  const distance::EuclideanDistance ed;
  // (1^2 + 1^2 + 0^2) = 2.
  EXPECT_DOUBLE_EQ(WithinClusterSsd(series, result, ed), 2.0);
}

TEST(EstimateKTest, RecoversTrueClusterCountOnSines) {
  // Three shape classes; the silhouette sweep should pick k = 3.
  common::Rng rng(1);
  std::vector<Series> series;
  for (int klass = 0; klass < 3; ++klass) {
    for (int i = 0; i < 10; ++i) {
      Series s(64);
      const double phase = rng.Uniform(0.0, 2.0 * kPi);
      for (std::size_t t = 0; t < 64; ++t) {
        s[t] = std::sin(2.0 * kPi * (2 * klass + 1) * t / 64.0 + phase) +
               rng.Gaussian(0.0, 0.05);
      }
      series.push_back(tseries::ZNormalized(s));
    }
  }
  const core::KShape kshape;
  const core::SbdDistance sbd;
  common::Rng sweep_rng(2);
  const KEstimate estimate =
      EstimateK(series, kshape, sbd, 2, 5, 3, &sweep_rng);
  EXPECT_EQ(estimate.best_k, 3);
  ASSERT_EQ(estimate.silhouettes.size(), 4u);
}

TEST(BestOfRestartsTest, NeverWorseThanSingleRunObjective) {
  common::Rng rng(9);
  std::vector<Series> series;
  for (int klass = 0; klass < 2; ++klass) {
    for (int i = 0; i < 8; ++i) {
      Series s(48);
      const double phase = rng.Uniform(0.0, 2.0 * kPi);
      for (std::size_t t = 0; t < 48; ++t) {
        s[t] = std::sin(2.0 * kPi * (2 * klass + 1) * t / 48.0 + phase) +
               rng.Gaussian(0.0, 0.1);
      }
      series.push_back(tseries::ZNormalized(s));
    }
  }
  const core::KShape kshape;
  const core::SbdDistance sbd;

  common::Rng best_rng(4);
  const ClusteringResult best =
      BestOfRestarts(series, kshape, sbd, 2, 5, &best_rng);
  const double best_cost = WithinClusterSsd(series, best, sbd);

  // Re-run the same 5 restarts manually: the chosen objective must equal the
  // minimum over them.
  common::Rng manual_rng(4);
  double manual_min = 1e18;
  for (int run = 0; run < 5; ++run) {
    common::Rng run_rng = manual_rng.Fork();
    const ClusteringResult result = kshape.Cluster(series, 2, &run_rng);
    manual_min = std::min(manual_min, WithinClusterSsd(series, result, sbd));
  }
  EXPECT_NEAR(best_cost, manual_min, 1e-9);
}

TEST(EstimateKTest, SilhouetteVectorAlignsWithRange) {
  const std::vector<double> points = {0.0, 0.1, 5.0, 5.1, 10.0, 10.1};
  std::vector<Series> series;
  for (double p : points) series.push_back({p, p});
  const distance::EuclideanDistance ed;
  const KMedoids pam(&ed, "PAM+ED");
  common::Rng rng(3);
  const KEstimate estimate = EstimateK(series, pam, ed, 2, 4, 2, &rng);
  EXPECT_EQ(estimate.best_k, 3);
  EXPECT_EQ(estimate.silhouettes.size(), 3u);
}

}  // namespace
}  // namespace kshape::cluster
