// The SIMD kernel determinism contract (src/simd/kernels.h), tested from
// three angles:
//
//  1. Bit-identity: every kernel must return bit-for-bit identical results
//     from the scalar and AVX2 backends, for every length 1..67 (covering
//     empty tails, partial tails, and multi-block bodies), including the
//     early-abandon checkpoint decisions and peak-scan tie-breaks.
//  2. Epsilon agreement: the 4-lane reduction order is allowed to differ
//     from a plain sequential loop only at rounding level; each reduction
//     kernel is compared against its legacy reference loop under a relative
//     tolerance.
//  3. End-to-end: k-Shape clustering (labels, centroids, telemetry) and the
//     early-abandon 1-NN accuracy must be bit-identical across backends and
//     across KSHAPE_THREADS = 1, 2, 8 — the user-visible statement of the
//     contract.

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "classify/nearest_neighbor.h"
#include "cluster/algorithm.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "fft/rfft.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace kshape {
namespace {

using simd::Backend;
using simd::KernelTable;
using tseries::Series;

constexpr std::size_t kMaxLength = 67;
constexpr int kThreadCounts[] = {1, 2, 8};

std::vector<double> RandomBuffer(std::size_t n, common::Rng* rng,
                                 double lo = -2.0, double hi = 2.0) {
  std::vector<double> x(n);
  for (double& v : x) v = rng->Uniform(lo, hi);
  return x;
}

// Every backend available in this binary on this machine. The scalar backend
// is always present; the AVX2 entry appears only when the CPU supports it.
std::vector<Backend> AvailableBackends() {
  std::vector<Backend> backends = {Backend::kScalar};
  if (simd::Avx2Available()) backends.push_back(Backend::kAvx2);
  return backends;
}

class SimdBackendGuard {
 public:
  SimdBackendGuard() : saved_(simd::ActiveBackend()) {}
  ~SimdBackendGuard() {
    simd::SetBackendForTesting(saved_);
    common::SetThreadCount(1);
  }

 private:
  Backend saved_;
};

// Restores the process-wide half-spectrum gate (fft/rfft.h) that the
// end-to-end tests below toggle to compare the packed and full-complex
// spectrum-cache layouts.
class HalfSpectrumGateGuard {
 public:
  HalfSpectrumGateGuard() : saved_(fft::HalfSpectrumEnabled()) {}
  ~HalfSpectrumGateGuard() { fft::SetHalfSpectrumEnabledForTesting(saved_); }

 private:
  bool saved_;
};

// ---------------------------------------------------------------------------
// 1. Bit-identity between backends, all lengths 1..67.
// ---------------------------------------------------------------------------

class BitIdentityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::Avx2Available()) {
      GTEST_SKIP() << "AVX2 backend unavailable; nothing to compare";
    }
  }

  const KernelTable& scalar_ = simd::Kernels(Backend::kScalar);
  const KernelTable& avx2_ = simd::Kernels(Backend::kAvx2);
};

TEST_F(BitIdentityTest, Reductions) {
  common::Rng rng(101);
  for (std::size_t n = 1; n <= kMaxLength; ++n) {
    const std::vector<double> x = RandomBuffer(n, &rng);
    const std::vector<double> y = RandomBuffer(n, &rng);
    EXPECT_EQ(scalar_.sum(x.data(), n), avx2_.sum(x.data(), n)) << "n=" << n;
    EXPECT_EQ(scalar_.sum_squares(x.data(), n), avx2_.sum_squares(x.data(), n))
        << "n=" << n;
    EXPECT_EQ(scalar_.dot(x.data(), y.data(), n),
              avx2_.dot(x.data(), y.data(), n))
        << "n=" << n;
    EXPECT_EQ(scalar_.squared_ed(x.data(), y.data(), n),
              avx2_.squared_ed(x.data(), y.data(), n))
        << "n=" << n;
    const simd::MeanVar ms = scalar_.mean_var(x.data(), n);
    const simd::MeanVar mv = avx2_.mean_var(x.data(), n);
    EXPECT_EQ(ms.mean, mv.mean) << "n=" << n;
    EXPECT_EQ(ms.variance, mv.variance) << "n=" << n;
  }
}

TEST_F(BitIdentityTest, SquaredEdAbandonAllThresholds) {
  common::Rng rng(102);
  for (std::size_t n = 1; n <= kMaxLength; ++n) {
    const std::vector<double> x = RandomBuffer(n, &rng);
    const std::vector<double> y = RandomBuffer(n, &rng);
    const double full = scalar_.squared_ed(x.data(), y.data(), n);
    // Thresholds straddling every interesting regime: never abandons,
    // abandons at the first checkpoint, and abandons mid-way.
    const double thresholds[] = {std::numeric_limits<double>::infinity(),
                                 full * 2.0 + 1.0, full, full * 0.5,
                                 full * 0.1, 0.0};
    for (const double t : thresholds) {
      const double a = scalar_.squared_ed_abandon(x.data(), y.data(), n, t);
      const double b = avx2_.squared_ed_abandon(x.data(), y.data(), n, t);
      EXPECT_EQ(a, b) << "n=" << n << " threshold=" << t;
      // Identical values imply identical abandoned/not decisions, but state
      // the contract explicitly: both sides agree on which side of the
      // threshold the return lands.
      EXPECT_EQ(a >= t, b >= t) << "n=" << n << " threshold=" << t;
    }
  }
}

TEST_F(BitIdentityTest, LbKeogh) {
  common::Rng rng(103);
  for (std::size_t n = 1; n <= kMaxLength; ++n) {
    const std::vector<double> c = RandomBuffer(n, &rng);
    std::vector<double> lower = RandomBuffer(n, &rng, -1.0, 0.0);
    std::vector<double> upper(n);
    for (std::size_t i = 0; i < n; ++i) upper[i] = lower[i] + 1.0;
    EXPECT_EQ(scalar_.lb_keogh_squared(c.data(), lower.data(), upper.data(), n),
              avx2_.lb_keogh_squared(c.data(), lower.data(), upper.data(), n))
        << "n=" << n;
  }
}

TEST_F(BitIdentityTest, ComplexMulConj) {
  common::Rng rng(104);
  for (std::size_t n = 1; n <= kMaxLength; ++n) {
    const std::vector<double> a = RandomBuffer(2 * n, &rng);
    const std::vector<double> b = RandomBuffer(2 * n, &rng);
    std::vector<double> out_s(2 * n, 0.0);
    std::vector<double> out_v(2 * n, 123.0);  // Different garbage on purpose.
    scalar_.complex_mul_conj(a.data(), b.data(), out_s.data(), n);
    avx2_.complex_mul_conj(a.data(), b.data(), out_v.data(), n);
    EXPECT_EQ(out_s, out_v) << "n=" << n;
  }
}

TEST_F(BitIdentityTest, ComplexMulConjSoa) {
  common::Rng rng(108);
  for (std::size_t n = 1; n <= kMaxLength; ++n) {
    const std::vector<double> a_re = RandomBuffer(n, &rng);
    const std::vector<double> a_im = RandomBuffer(n, &rng);
    const std::vector<double> b_re = RandomBuffer(n, &rng);
    const std::vector<double> b_im = RandomBuffer(n, &rng);
    std::vector<double> re_s(n, 0.0);
    std::vector<double> im_s(n, 0.0);
    std::vector<double> re_v(n, 123.0);  // Different garbage on purpose.
    std::vector<double> im_v(n, 123.0);
    scalar_.complex_mul_conj_soa(a_re.data(), a_im.data(), b_re.data(),
                                 b_im.data(), re_s.data(), im_s.data(), n);
    avx2_.complex_mul_conj_soa(a_re.data(), a_im.data(), b_re.data(),
                               b_im.data(), re_v.data(), im_v.data(), n);
    EXPECT_EQ(re_s, re_v) << "n=" << n;
    EXPECT_EQ(im_s, im_v) << "n=" << n;
  }
}

TEST_F(BitIdentityTest, PeakScanRandom) {
  common::Rng rng(105);
  for (std::size_t n = 1; n <= kMaxLength; ++n) {
    const std::vector<double> x = RandomBuffer(n, &rng);
    const simd::Peak s = scalar_.peak_scan(x.data(), n);
    const simd::Peak v = avx2_.peak_scan(x.data(), n);
    EXPECT_EQ(s.value, v.value) << "n=" << n;
    EXPECT_EQ(s.index, v.index) << "n=" << n;
  }
}

TEST_F(BitIdentityTest, PeakScanTiesKeepLowestIndex) {
  // Duplicate the maximum at every pair of positions for a few lengths that
  // exercise lane boundaries; the reported index must always be the first.
  for (const std::size_t n : {4u, 5u, 8u, 9u, 16u, 17u, 33u}) {
    for (std::size_t first = 0; first < n; ++first) {
      for (std::size_t second = first; second < n; ++second) {
        std::vector<double> x(n, 0.0);
        x[first] = 7.5;
        x[second] = 7.5;
        const simd::Peak s = scalar_.peak_scan(x.data(), n);
        const simd::Peak v = avx2_.peak_scan(x.data(), n);
        EXPECT_EQ(s.value, 7.5);
        EXPECT_EQ(s.index, first) << "n=" << n;
        EXPECT_EQ(v.value, s.value) << "n=" << n;
        EXPECT_EQ(v.index, s.index)
            << "n=" << n << " first=" << first << " second=" << second;
      }
    }
  }
}

TEST_F(BitIdentityTest, ElementwiseKernels) {
  common::Rng rng(106);
  for (std::size_t n = 1; n <= kMaxLength; ++n) {
    const std::vector<double> x = RandomBuffer(n, &rng);
    std::vector<double> ys = RandomBuffer(n, &rng);
    std::vector<double> yv = ys;
    scalar_.axpy(1.75, x.data(), ys.data(), n);
    avx2_.axpy(1.75, x.data(), yv.data(), n);
    EXPECT_EQ(ys, yv) << "axpy n=" << n;

    std::vector<double> ss = x;
    std::vector<double> sv = x;
    scalar_.scale(ss.data(), -0.375, n);
    avx2_.scale(sv.data(), -0.375, n);
    EXPECT_EQ(ss, sv) << "scale n=" << n;

    std::vector<double> zs = x;
    std::vector<double> zv = x;
    scalar_.apply_znorm(zs.data(), n, 0.25, 1.5);
    avx2_.apply_znorm(zv.data(), n, 0.25, 1.5);
    EXPECT_EQ(zs, zv) << "apply_znorm n=" << n;
  }
}

TEST_F(BitIdentityTest, DotAxpyRows) {
  // The fused member pass of the matrix-free extraction matvec: for each row
  // x_r, out += (x_r . u) x_r. Must be bit-identical across backends for
  // every row length (lane tails) and row count.
  common::Rng rng(109);
  for (std::size_t m = 1; m <= kMaxLength; ++m) {
    for (const std::size_t rows : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}}) {
      const std::vector<double> pool = RandomBuffer(rows * m, &rng);
      const std::vector<double> u = RandomBuffer(m, &rng);
      std::vector<double> out_s = RandomBuffer(m, &rng);  // Nonzero start:
      std::vector<double> out_v = out_s;  // the kernel accumulates into out.
      scalar_.dot_axpy_rows(pool.data(), rows, m, u.data(), out_s.data());
      avx2_.dot_axpy_rows(pool.data(), rows, m, u.data(), out_v.data());
      EXPECT_EQ(out_s, out_v) << "m=" << m << " rows=" << rows;
    }
  }
}

TEST_F(BitIdentityTest, DtwRow) {
  common::Rng rng(107);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::size_t count = 1; count <= kMaxLength; ++count) {
    // prev spans count+1 cells starting at j_lo-1; seed a few with infinity
    // to mimic band boundaries.
    std::vector<double> prev = RandomBuffer(count + 1, &rng, 0.0, 4.0);
    prev[0] = kInf;
    if (count > 2) prev[count / 2] = kInf;
    const std::vector<double> y = RandomBuffer(count + 1, &rng);
    const double xi = rng.Uniform(-2.0, 2.0);
    for (const double left_seed : {kInf, 0.5}) {
      std::vector<double> cur_s(count, -1.0);
      std::vector<double> cur_v(count, -2.0);
      scalar_.dtw_row(prev.data(), y.data(), xi, left_seed, cur_s.data(),
                      count);
      avx2_.dtw_row(prev.data(), y.data(), xi, left_seed, cur_v.data(), count);
      EXPECT_EQ(cur_s, cur_v) << "count=" << count;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Epsilon agreement with the legacy sequential loops.
// ---------------------------------------------------------------------------

TEST(LegacyAgreementTest, ReductionsMatchSequentialLoops) {
  common::Rng rng(201);
  for (const Backend backend : AvailableBackends()) {
    const KernelTable& kt = simd::Kernels(backend);
    for (std::size_t n = 1; n <= kMaxLength; ++n) {
      const std::vector<double> x = RandomBuffer(n, &rng);
      const std::vector<double> y = RandomBuffer(n, &rng);

      double sum = 0.0;
      double sumsq = 0.0;
      double dot = 0.0;
      double ed = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        sum += x[i];
        sumsq += x[i] * x[i];
        dot += x[i] * y[i];
        const double d = x[i] - y[i];
        ed += d * d;
      }
      const double tol = 1e-12 * static_cast<double>(n);
      EXPECT_NEAR(kt.sum(x.data(), n), sum, tol);
      EXPECT_NEAR(kt.sum_squares(x.data(), n), sumsq, tol);
      EXPECT_NEAR(kt.dot(x.data(), y.data(), n), dot, tol);
      EXPECT_NEAR(kt.squared_ed(x.data(), y.data(), n), ed, tol);

      const double mean = sum / static_cast<double>(n);
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        var += (x[i] - mean) * (x[i] - mean);
      }
      var /= static_cast<double>(n);
      const simd::MeanVar mv = kt.mean_var(x.data(), n);
      EXPECT_NEAR(mv.mean, mean, tol);
      EXPECT_NEAR(mv.variance, var, tol);
    }
  }
}

TEST(LegacyAgreementTest, LbKeoghMatchesBranchingLoop) {
  common::Rng rng(202);
  for (const Backend backend : AvailableBackends()) {
    const KernelTable& kt = simd::Kernels(backend);
    for (std::size_t n = 1; n <= kMaxLength; ++n) {
      const std::vector<double> c = RandomBuffer(n, &rng);
      std::vector<double> lower = RandomBuffer(n, &rng, -1.0, 0.0);
      std::vector<double> upper(n);
      for (std::size_t i = 0; i < n; ++i) upper[i] = lower[i] + 0.8;
      double expected = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (c[i] > upper[i]) {
          expected += (c[i] - upper[i]) * (c[i] - upper[i]);
        } else if (c[i] < lower[i]) {
          expected += (lower[i] - c[i]) * (lower[i] - c[i]);
        }
      }
      EXPECT_NEAR(
          kt.lb_keogh_squared(c.data(), lower.data(), upper.data(), n),
          expected, 1e-12 * static_cast<double>(n))
          << "n=" << n;
    }
  }
}

TEST(LegacyAgreementTest, ComplexMulConjMatchesStdComplex) {
  common::Rng rng(203);
  for (const Backend backend : AvailableBackends()) {
    const KernelTable& kt = simd::Kernels(backend);
    for (std::size_t n = 1; n <= kMaxLength; ++n) {
      const std::vector<double> a = RandomBuffer(2 * n, &rng);
      const std::vector<double> b = RandomBuffer(2 * n, &rng);
      std::vector<double> out(2 * n, 0.0);
      kt.complex_mul_conj(a.data(), b.data(), out.data(), n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::complex<double> expected =
            std::complex<double>(a[2 * k], a[2 * k + 1]) *
            std::conj(std::complex<double>(b[2 * k], b[2 * k + 1]));
        // No fusing anywhere: each product is rounded separately in the
        // kernel and in operator*, so agreement is exact for finite inputs.
        EXPECT_EQ(out[2 * k], expected.real()) << "n=" << n << " k=" << k;
        EXPECT_EQ(out[2 * k + 1], expected.imag()) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(LegacyAgreementTest, ComplexMulConjSoaMatchesInterleavedKernel) {
  // The SoA kernel computes the same two products and one add/sub per
  // element as the interleaved kernel, each rounded separately (no fusing in
  // either), so changing the memory layout changes no value: agreement is
  // exact, not epsilon.
  common::Rng rng(206);
  for (const Backend backend : AvailableBackends()) {
    const KernelTable& kt = simd::Kernels(backend);
    for (std::size_t n = 1; n <= kMaxLength; ++n) {
      const std::vector<double> a = RandomBuffer(2 * n, &rng);
      const std::vector<double> b = RandomBuffer(2 * n, &rng);
      std::vector<double> interleaved(2 * n, 0.0);
      kt.complex_mul_conj(a.data(), b.data(), interleaved.data(), n);

      std::vector<double> a_re(n), a_im(n), b_re(n), b_im(n);
      for (std::size_t k = 0; k < n; ++k) {
        a_re[k] = a[2 * k];
        a_im[k] = a[2 * k + 1];
        b_re[k] = b[2 * k];
        b_im[k] = b[2 * k + 1];
      }
      std::vector<double> out_re(n, 0.0);
      std::vector<double> out_im(n, 0.0);
      kt.complex_mul_conj_soa(a_re.data(), a_im.data(), b_re.data(),
                              b_im.data(), out_re.data(), out_im.data(), n);
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_EQ(out_re[k], interleaved[2 * k]) << "n=" << n << " k=" << k;
        EXPECT_EQ(out_im[k], interleaved[2 * k + 1])
            << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(LegacyAgreementTest, DotAxpyRowsMatchesDotThenAxpyExactly) {
  // The fused kernel is BY CONTRACT the composition of the table's own dot
  // and axpy, row by row — no extra fusing, so agreement is exact (the
  // matrix-free reduction-order contract depends on this, not on an epsilon).
  common::Rng rng(207);
  for (const Backend backend : AvailableBackends()) {
    const KernelTable& kt = simd::Kernels(backend);
    for (std::size_t m = 1; m <= kMaxLength; ++m) {
      const std::size_t rows = 4;
      const std::vector<double> pool = RandomBuffer(rows * m, &rng);
      const std::vector<double> u = RandomBuffer(m, &rng);
      std::vector<double> fused(m, 0.0);
      kt.dot_axpy_rows(pool.data(), rows, m, u.data(), fused.data());
      std::vector<double> composed(m, 0.0);
      for (std::size_t r = 0; r < rows; ++r) {
        const double d = kt.dot(pool.data() + r * m, u.data(), m);
        kt.axpy(d, pool.data() + r * m, composed.data(), m);
      }
      EXPECT_EQ(fused, composed) << "backend=" << kt.name << " m=" << m;
    }
  }
}

TEST(LegacyAgreementTest, PeakScanMatchesSequentialScan) {
  common::Rng rng(204);
  for (const Backend backend : AvailableBackends()) {
    const KernelTable& kt = simd::Kernels(backend);
    for (std::size_t n = 1; n <= kMaxLength; ++n) {
      std::vector<double> x = RandomBuffer(n, &rng);
      if (n > 3) x[n - 1] = x[n / 3];  // Plant a potential tie.
      double best = x[0];
      std::size_t best_i = 0;
      for (std::size_t i = 1; i < n; ++i) {
        if (x[i] > best) {
          best = x[i];
          best_i = i;
        }
      }
      const simd::Peak p = kt.peak_scan(x.data(), n);
      EXPECT_EQ(p.value, best) << "n=" << n;
      EXPECT_EQ(p.index, best_i) << "n=" << n;
    }
  }
}

TEST(LegacyAgreementTest, DtwRowMatchesFusedLoop) {
  common::Rng rng(205);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const Backend backend : AvailableBackends()) {
    const KernelTable& kt = simd::Kernels(backend);
    for (std::size_t count = 1; count <= kMaxLength; ++count) {
      std::vector<double> prev = RandomBuffer(count + 1, &rng, 0.0, 4.0);
      prev[0] = kInf;
      const std::vector<double> y = RandomBuffer(count + 1, &rng);
      const double xi = rng.Uniform(-2.0, 2.0);
      std::vector<double> expected(count);
      double left = kInf;
      for (std::size_t t = 0; t < count; ++t) {
        const double d = xi - y[t];
        const double e = std::min(prev[t], prev[t + 1]);
        expected[t] = d * d + std::min(e, left);
        left = expected[t];
      }
      std::vector<double> cur(count, -1.0);
      kt.dtw_row(prev.data(), y.data(), xi, kInf, cur.data(), count);
      EXPECT_EQ(cur, expected) << "count=" << count;
    }
  }
}

// ---------------------------------------------------------------------------
// 3. End-to-end bit-identity across backends x thread counts.
// ---------------------------------------------------------------------------

std::vector<Series> MakeSeries(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Series> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(tseries::ZNormalized(
        data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
  }
  return series;
}

tseries::Dataset MakeDataset(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  tseries::Dataset dataset("simd-test");
  for (std::size_t i = 0; i < n; ++i) {
    const int klass = static_cast<int>(i % 3);
    dataset.Add(tseries::ZNormalized(data::MakeCbf(klass, m, &rng)), klass);
  }
  return dataset;
}

bool ResultsBitIdentical(const cluster::ClusteringResult& a,
                         const cluster::ClusteringResult& b) {
  if (a.assignments != b.assignments) return false;
  if (a.iterations != b.iterations || a.converged != b.converged) return false;
  if (a.empty_cluster_reseeds != b.empty_cluster_reseeds) return false;
  if (a.degenerate_centroids != b.degenerate_centroids) return false;
  if (a.centroids.size() != b.centroids.size()) return false;
  for (std::size_t j = 0; j < a.centroids.size(); ++j) {
    if (a.centroids[j] != b.centroids[j]) return false;
  }
  return true;
}

// Runs `compute` under every backend x thread-count combination and asserts
// all results compare equal to the scalar single-threaded reference.
template <typename T, typename Equal>
void ExpectBackendAndThreadInvariant(const std::function<T()>& compute,
                                     Equal equal, const char* what) {
  SimdBackendGuard guard;
  simd::SetBackendForTesting(Backend::kScalar);
  common::SetThreadCount(1);
  const T reference = compute();
  for (const Backend backend : AvailableBackends()) {
    simd::SetBackendForTesting(backend);
    for (const int threads : kThreadCounts) {
      common::SetThreadCount(threads);
      const T other = compute();
      EXPECT_TRUE(equal(reference, other))
          << what << " differs under backend "
          << simd::Kernels(backend).name << " with " << threads << " threads";
    }
  }
}

TEST(EndToEndInvarianceTest, KShapeLabelsAndTelemetry) {
  const std::vector<Series> series = MakeSeries(36, 64, 301);
  const core::KShape algorithm;
  ExpectBackendAndThreadInvariant<cluster::ClusteringResult>(
      [&] {
        common::Rng rng(7);
        return algorithm.Cluster(series, 3, &rng);
      },
      ResultsBitIdentical, "k-Shape result");
}

TEST(EndToEndInvarianceTest, KShapePlusPlusSeeding) {
  const std::vector<Series> series = MakeSeries(36, 64, 302);
  core::KShapeOptions options;
  options.init = core::KShapeInit::kPlusPlusSeeding;
  const core::KShape algorithm(options);
  ExpectBackendAndThreadInvariant<cluster::ClusteringResult>(
      [&] {
        common::Rng rng(11);
        return algorithm.Cluster(series, 3, &rng);
      },
      ResultsBitIdentical, "k-Shape (++ init) result");
}

TEST(EndToEndInvarianceTest, KShapeHalfSpectrumLabelsAndTelemetry) {
  // The half- and full-spectrum caches see distances that differ only in the
  // last ulps; on this data no NCC peak or assignment argmin flips, so the
  // entire result — labels, centroids (built from integer alignment shifts),
  // and telemetry — is bit-identical across the two layouts, and each layout
  // is separately invariant across backends and thread counts.
  const std::vector<Series> series = MakeSeries(36, 64, 307);
  cluster::ClusteringResult per_layout[2];
  for (const bool half : {false, true}) {
    core::KShapeOptions options;
    options.use_half_spectrum = half;
    const core::KShape algorithm(options);
    const auto run = [&] {
      common::Rng rng(7);
      return algorithm.Cluster(series, 3, &rng);
    };
    ExpectBackendAndThreadInvariant<cluster::ClusteringResult>(
        run, ResultsBitIdentical,
        half ? "k-Shape (half-spectrum cache)" : "k-Shape (full-complex cache)");
    per_layout[half ? 1 : 0] = run();
  }
  EXPECT_TRUE(ResultsBitIdentical(per_layout[0], per_layout[1]))
      << "half- and full-spectrum k-Shape results diverged";
}

TEST(EndToEndInvarianceTest, KShapePlusPlusSeedingHalfSpectrum) {
  // ++-seeding draws from the cached distance-to-nearest-seed distribution,
  // so it exercises DistanceToAll through both spectrum layouts.
  const std::vector<Series> series = MakeSeries(36, 64, 308);
  cluster::ClusteringResult per_layout[2];
  for (const bool half : {false, true}) {
    core::KShapeOptions options;
    options.init = core::KShapeInit::kPlusPlusSeeding;
    options.use_half_spectrum = half;
    const core::KShape algorithm(options);
    const auto run = [&] {
      common::Rng rng(11);
      return algorithm.Cluster(series, 3, &rng);
    };
    ExpectBackendAndThreadInvariant<cluster::ClusteringResult>(
        run, ResultsBitIdentical,
        half ? "k-Shape ++ (half-spectrum cache)"
             : "k-Shape ++ (full-complex cache)");
    per_layout[half ? 1 : 0] = run();
  }
  EXPECT_TRUE(ResultsBitIdentical(per_layout[0], per_layout[1]))
      << "half- and full-spectrum k-Shape ++ results diverged";
}

TEST(EndToEndInvarianceTest, OneNnSbdHalfSpectrumInvariance) {
  // The 1-NN batch scanner picks its spectrum layout from the process-wide
  // gate (SbdEngine's default argument), so this toggles the gate itself.
  const tseries::Dataset train = MakeDataset(30, 52, 309);
  const tseries::Dataset test = MakeDataset(15, 52, 310);
  const core::SbdDistance sbd;
  HalfSpectrumGateGuard gate_guard;
  double accuracy[2];
  for (const bool half : {false, true}) {
    fft::SetHalfSpectrumEnabledForTesting(half);
    const auto run = [&] { return classify::OneNnAccuracy(train, test, sbd); };
    ExpectBackendAndThreadInvariant<double>(
        run, [](double a, double b) { return a == b; },
        half ? "1-NN SBD (half-spectrum cache)"
             : "1-NN SBD (full-complex cache)");
    accuracy[half ? 1 : 0] = run();
  }
  EXPECT_EQ(accuracy[0], accuracy[1]);
}

TEST(EndToEndInvarianceTest, OneNnEarlyAbandonAccuracy) {
  const tseries::Dataset train = MakeDataset(40, 64, 303);
  const tseries::Dataset test = MakeDataset(20, 64, 304);
  ExpectBackendAndThreadInvariant<double>(
      [&] { return classify::OneNnAccuracyEdEarlyAbandon(train, test); },
      [](double a, double b) { return a == b; }, "1-NN ED early-abandon");
}

TEST(EndToEndInvarianceTest, CdtwLowerBoundAccuracy) {
  const tseries::Dataset train = MakeDataset(24, 48, 305);
  const tseries::Dataset test = MakeDataset(12, 48, 306);
  ExpectBackendAndThreadInvariant<double>(
      [&] { return classify::OneNnAccuracyCdtwLb(train, test, 4); },
      [](double a, double b) { return a == b; }, "1-NN cDTW+LB_Keogh");
}

TEST(DispatchTest, ActiveBackendReportsAConsistentName) {
  SimdBackendGuard guard;
  simd::SetBackendForTesting(Backend::kScalar);
  EXPECT_STREQ(simd::ActiveBackendName(), "scalar");
  EXPECT_EQ(simd::ActiveBackend(), Backend::kScalar);
  if (simd::Avx2Available()) {
    simd::SetBackendForTesting(Backend::kAvx2);
    EXPECT_STREQ(simd::ActiveBackendName(), "avx2");
    EXPECT_EQ(simd::ActiveBackend(), Backend::kAvx2);
  }
}

}  // namespace
}  // namespace kshape
