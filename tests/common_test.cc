#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"

namespace kshape::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = Status::InvalidArgument("bad length");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad length");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad length");
}

TEST(StatusTest, AllNamedConstructorsSetTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValueOrError) {
  StatusOr<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);

  StatusOr<int> err_result(Status::NotFound("missing"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversSupport) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMomentsAreApproximatelyStandard) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(12);
  const std::vector<int> perm = rng.Permutation(50);
  std::set<int> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 50u);
  EXPECT_EQ(*values.begin(), 0);
  EXPECT_EQ(*values.rbegin(), 49);
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(13);
  std::vector<int> values = {1, 1, 2, 3, 5, 8, 13};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(14);
  Rng child = parent.Fork();
  // The child stream must not simply replay the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace kshape::common
