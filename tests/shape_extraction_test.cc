#include "core/shape_extraction.h"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "fft/rfft.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"

namespace kshape::core {
namespace {

using tseries::Series;

constexpr double kPi = 3.14159265358979323846;

Series Sine(std::size_t m, double cycles, double phase) {
  Series x(m);
  for (std::size_t t = 0; t < m; ++t) {
    x[t] = std::sin(2.0 * kPi * cycles * t / static_cast<double>(m) + phase);
  }
  return x;
}

TEST(ShapeExtractionTest, EmptyClusterGivesZeroCentroid) {
  common::Rng rng(1);
  const Series reference(32, 0.0);
  const Series centroid = ExtractShape({}, reference, &rng);
  ASSERT_EQ(centroid.size(), 32u);
  for (double v : centroid) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ShapeExtractionTest, CentroidOfIdenticalCopiesIsTheShape) {
  common::Rng rng(2);
  const Series base = tseries::ZNormalized(Sine(64, 2.0, 0.3));
  const std::vector<Series> members = {base, base, base};
  const Series centroid = ExtractShape(members, Series(64, 0.0), &rng);
  // The centroid is z-normalized and sign-fixed toward the cluster mean, so
  // it must match the base shape up to numerical error.
  const double d = Sbd(base, centroid).distance;
  EXPECT_NEAR(d, 0.0, 1e-6);
}

TEST(ShapeExtractionTest, CentroidIsZNormalized) {
  common::Rng rng(3);
  std::vector<Series> members;
  for (int i = 0; i < 5; ++i) {
    Series s = Sine(48, 1.0, 0.1 * i);
    for (double& v : s) v += rng.Gaussian(0.0, 0.1);
    members.push_back(tseries::ZNormalized(s));
  }
  const Series centroid = ExtractShape(members, Series(48, 0.0), &rng);
  EXPECT_NEAR(tseries::Mean(centroid), 0.0, 1e-9);
  EXPECT_NEAR(tseries::StdDev(centroid), 1.0, 1e-9);
}

TEST(ShapeExtractionTest, AlignsShiftedCopiesBeforeAveraging) {
  // Members are shifted copies of one bump; with a non-zero reference the
  // extraction must align them and recover a single sharp bump rather than a
  // smeared average.
  const std::size_t m = 96;
  Series bump(m, 0.0);
  for (std::size_t t = 40; t < 50; ++t) bump[t] = 1.0;
  const Series base = tseries::ZNormalized(bump);

  common::Rng rng(4);
  std::vector<Series> members;
  for (int shift : {-8, -4, 0, 4, 8}) {
    members.push_back(
        tseries::ZNormalized(tseries::ShiftWithZeroFill(base, shift)));
  }
  const Series centroid = ExtractShape(members, base, &rng);
  EXPECT_LT(Sbd(base, centroid).distance, 0.05);
}

TEST(ShapeExtractionTest, SignIsOrientedTowardClusterMean) {
  common::Rng rng(5);
  const Series base = tseries::ZNormalized(Sine(40, 1.0, 0.0));
  const std::vector<Series> members = {base, base};
  const Series centroid = ExtractShape(members, Series(40, 0.0), &rng);
  EXPECT_GT(linalg::Dot(centroid, base), 0.0);
}

TEST(ShapeExtractionTest, PowerIterationMatchesFullEigensolver) {
  common::Rng rng(6);
  std::vector<Series> members;
  for (int i = 0; i < 8; ++i) {
    Series s = Sine(32, 2.0, 0.0);
    for (double& v : s) v += rng.Gaussian(0.0, 0.3);
    members.push_back(tseries::ZNormalized(s));
  }
  ShapeExtractionOptions power;
  power.use_power_iteration = true;
  ShapeExtractionOptions full;
  full.use_power_iteration = false;

  common::Rng rng_a(7);
  common::Rng rng_b(7);
  const Series via_power =
      ExtractShape(members, Series(32, 0.0), &rng_a, power);
  const Series via_full = ExtractShape(members, Series(32, 0.0), &rng_b, full);
  for (std::size_t t = 0; t < 32; ++t) {
    EXPECT_NEAR(via_power[t], via_full[t], 1e-5);
  }
}

TEST(ShapeExtractionTest, IndexedOverloadMatchesDirectCall) {
  common::Rng rng(8);
  std::vector<Series> pool;
  for (int i = 0; i < 6; ++i) {
    pool.push_back(tseries::ZNormalized(Sine(24, 1.0, 0.2 * i)));
  }
  common::Rng rng_a(9);
  common::Rng rng_b(9);
  const std::vector<Series> selected = {pool[1], pool[3], pool[5]};
  const Series direct = ExtractShape(selected, Series(24, 0.0), &rng_a);
  const Series indexed =
      ExtractShapeIndexed(pool, {1, 3, 5}, Series(24, 0.0), &rng_b);
  for (std::size_t t = 0; t < 24; ++t) {
    EXPECT_NEAR(direct[t], indexed[t], 1e-12);
  }
}

TEST(ShapeExtractionTest, BetterRepresentativeThanArithmeticMeanOnShifts) {
  // The motivating example of Figure 4: for out-of-phase members, the
  // arithmetic mean smears the shape while shape extraction keeps it sharp.
  const std::size_t m = 128;
  Series bump(m, 0.0);
  for (std::size_t t = 50; t < 62; ++t) bump[t] = 1.0;
  const Series base = tseries::ZNormalized(bump);

  common::Rng rng(10);
  std::vector<Series> members;
  for (int shift : {-20, -10, 0, 10, 20}) {
    members.push_back(
        tseries::ZNormalized(tseries::ShiftWithZeroFill(base, shift)));
  }

  Series mean(m, 0.0);
  for (const Series& s : members) linalg::Axpy(1.0, s, &mean);
  linalg::Scale(&mean, 1.0 / members.size());
  const Series extracted = ExtractShape(members, base, &rng);

  // Sum of squared SBDs to members: extraction must beat the mean.
  double mean_cost = 0.0;
  double extract_cost = 0.0;
  for (const Series& s : members) {
    const double dm = Sbd(mean, s).distance;
    const double de = Sbd(extracted, s).distance;
    mean_cost += dm * dm;
    extract_cost += de * de;
  }
  EXPECT_LT(extract_cost, mean_cost);
}

// ---------------------------------------------------------------------------
// Dominant-eigenvector stall handling (ROADMAP: the power iteration used to
// punt straight to the O(m^3) full decomposition when the top eigenvalues
// were near-degenerate).
// ---------------------------------------------------------------------------

double SummedSquaredSbd(const Series& centroid,
                        const std::vector<Series>& members) {
  double cost = 0.0;
  for (const Series& s : members) {
    const double d = Sbd(centroid, s).distance;
    cost += d * d;
  }
  return cost;
}

TEST(ShapeExtractionTest, NoExpensiveFallbackOnUniformlyPhaseShiftedCorpus) {
  // Uniformly phase-shifted copies of one sine make the centered Gram matrix
  // (nearly) circulant: its top eigenvalue is a degenerate sin/cos pair, the
  // historical worst case for power-iteration convergence. The stall fix
  // must resolve it with the residual check / cheap shifted restarts — the
  // full-decomposition fallback counter has to stay at zero — while matching
  // the full decomposition's Rayleigh cost.
  const std::size_t m = 64;
  const int n = 32;
  std::vector<Series> members;
  for (int i = 0; i < n; ++i) {
    members.push_back(tseries::ZNormalized(
        Sine(m, 1.0, 2.0 * kPi * i / static_cast<double>(n))));
  }

  linalg::ResetDominantEigenvectorFallbackCountForTesting();
  common::Rng rng_power(77);
  const Series power =
      ExtractShape(members, Series(m, 0.0), &rng_power);
  EXPECT_EQ(linalg::DominantEigenvectorFallbackCountForTesting(), 0);

  ShapeExtractionOptions full_options;
  full_options.use_power_iteration = false;
  common::Rng rng_full(77);
  const Series full =
      ExtractShape(members, Series(m, 0.0), &rng_full, full_options);

  // Any vector in the degenerate top eigenspace is an equally good centroid;
  // the power-iteration result must reach the full decomposition's cost.
  EXPECT_LE(SummedSquaredSbd(power, members),
            SummedSquaredSbd(full, members) + 1e-6);
}

TEST(ShapeExtractionTest, FallbackIsCappedOnNoisyNearDegenerateSweep) {
  // With noise the top pair splits into two CLOSE but distinct eigenvalues —
  // the genuinely hard case where power iteration converges too slowly and
  // the full decomposition is the right answer. The fix caps the damage:
  // at most ONE full solve per extraction (no unbounded restart stall), and
  // warm-started extractions — every refinement iteration after the first in
  // the k-Shape loop — start near the fixed point and never fall back.
  common::Rng rng(91);
  for (const std::size_t m : {std::size_t{31}, std::size_t{48}}) {
    std::vector<Series> members;
    for (int i = 0; i < 20; ++i) {
      Series s = Sine(m, 1.0, 2.0 * kPi * i / 20.0);
      for (double& v : s) v += rng.Gaussian(0.0, 0.05);
      members.push_back(tseries::ZNormalized(s));
    }
    linalg::ResetDominantEigenvectorFallbackCountForTesting();
    const Series cold = ExtractShape(members, Series(m, 0.0), &rng);
    EXPECT_LE(linalg::DominantEigenvectorFallbackCountForTesting(), 1)
        << "m=" << m;
    // Warm-started from the previous centroid, as the k-Shape refinement
    // loop does on every iteration after the first.
    linalg::ResetDominantEigenvectorFallbackCountForTesting();
    const Series warm = ExtractShape(members, cold, &rng);
    EXPECT_EQ(linalg::DominantEigenvectorFallbackCountForTesting(), 0)
        << "m=" << m;
    EXPECT_EQ(warm.size(), m);
  }
}

// ---------------------------------------------------------------------------
// Streaming extraction (ShapeAccumulator) — the out-of-core driver's path.
// ---------------------------------------------------------------------------

TEST(ShapeExtractionTest, AccumulatorMatchesBatchExtractionBitwise) {
  common::Rng corpus_rng(12);
  std::vector<Series> members;
  for (int i = 0; i < 9; ++i) {
    Series s = Sine(40, 1.0 + (i % 3), 0.2 * i);
    for (double& v : s) v += corpus_rng.Gaussian(0.0, 0.1);
    members.push_back(tseries::ZNormalized(s));
  }
  for (const Series& reference :
       {Series(40, 0.0), tseries::ZNormalized(Sine(40, 2.0, 0.5))}) {
    common::Rng rng_batch(13);
    common::Rng rng_stream(13);
    const ExtractedShape batch =
        ExtractShapeFlagged(members, reference, &rng_batch);

    ShapeAccumulator accumulator(reference);
    for (const Series& s : members) accumulator.Add(s);
    EXPECT_EQ(accumulator.members_added(), members.size());
    const ExtractedShape streamed = accumulator.Finish(&rng_stream);

    EXPECT_EQ(streamed.degenerate, batch.degenerate);
    ASSERT_EQ(streamed.centroid.size(), batch.centroid.size());
    for (std::size_t t = 0; t < batch.centroid.size(); ++t) {
      EXPECT_EQ(streamed.centroid[t], batch.centroid[t]) << "sample " << t;
    }
  }
}

TEST(ShapeExtractionTest, AccumulatorWithNoMembersIsDegenerate) {
  const ShapeAccumulator accumulator(Series(24, 0.0));
  EXPECT_EQ(accumulator.members_added(), 0u);
  common::Rng rng(14);
  const ExtractedShape extracted = accumulator.Finish(&rng);
  EXPECT_TRUE(extracted.degenerate);
  ASSERT_EQ(extracted.centroid.size(), 24u);
  for (double v : extracted.centroid) EXPECT_EQ(v, 0.0);
}

TEST(ShapeExtractionTest, AccumulatorCountsConstantMembersButDropsThem) {
  ShapeAccumulator accumulator(Series(16, 0.0));
  accumulator.Add(Series(16, 3.5));  // Z-normalizes to zero: no contribution.
  accumulator.Add(Series(16, -1.0));
  EXPECT_EQ(accumulator.members_added(), 2u);
  common::Rng rng(15);
  const ExtractedShape extracted = accumulator.Finish(&rng);
  EXPECT_TRUE(extracted.degenerate);
}

TEST(ShapeExtractionTest, AccumulatorFinishIsRepeatable) {
  // Finish is const (it works on copies), so interleaving Finish with more
  // Adds — the sampled-iteration pattern of the mini-batch driver — must
  // leave earlier results unchanged.
  std::vector<Series> members;
  for (int i = 0; i < 6; ++i) {
    members.push_back(tseries::ZNormalized(Sine(32, 2.0, 0.3 * i)));
  }
  ShapeAccumulator accumulator(Series(32, 0.0));
  for (int i = 0; i < 4; ++i) accumulator.Add(members[i]);
  common::Rng rng_a(16);
  common::Rng rng_b(16);
  const ExtractedShape first = accumulator.Finish(&rng_a);
  const ExtractedShape again = accumulator.Finish(&rng_b);
  ASSERT_EQ(first.centroid.size(), again.centroid.size());
  for (std::size_t t = 0; t < first.centroid.size(); ++t) {
    EXPECT_EQ(first.centroid[t], again.centroid[t]);
  }
  accumulator.Add(members[4]);
  accumulator.Add(members[5]);
  EXPECT_EQ(accumulator.members_added(), 6u);
  common::Rng rng_c(16);
  const ExtractedShape extended = accumulator.Finish(&rng_c);
  EXPECT_EQ(extended.centroid.size(), first.centroid.size());
}

// ---------------------------------------------------------------------------
// Matrix-free extraction (ROADMAP: power iteration in O(n·m) per step with
// the m×m Gram never formed) — equivalence, determinism, and crossover.
// ---------------------------------------------------------------------------

// Restores the process-wide KSHAPE_MATFREE gate toggled by the tests below.
class MatrixFreeGateGuard {
 public:
  MatrixFreeGateGuard() : saved_(MatrixFreeEnabled()) {}
  ~MatrixFreeGateGuard() { SetMatrixFreeEnabledForTesting(saved_); }

 private:
  bool saved_;
};

class HalfSpectrumGateGuard {
 public:
  HalfSpectrumGateGuard() : saved_(fft::HalfSpectrumEnabled()) {}
  ~HalfSpectrumGateGuard() { fft::SetHalfSpectrumEnabledForTesting(saved_); }

 private:
  bool saved_;
};

class SimdBackendGuard {
 public:
  SimdBackendGuard() : saved_(simd::ActiveBackend()) {}
  ~SimdBackendGuard() {
    simd::SetBackendForTesting(saved_);
    common::SetThreadCount(1);
  }

 private:
  simd::Backend saved_;
};

// A well-conditioned extraction corpus: one dominant shape plus mild noise,
// so the top eigenvalue is isolated and both eigensolver paths converge to
// the same eigenvector (the epsilon comparisons below are then meaningful).
std::vector<Series> NoisySineCorpus(std::size_t n, std::size_t m,
                                    uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Series> members;
  members.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Series s = Sine(m, 2.0, 0.05 * static_cast<double>(i % 5));
    for (double& v : s) v += rng.Gaussian(0.0, 0.1);
    members.push_back(tseries::ZNormalized(s));
  }
  return members;
}

Series ExtractWith(const std::vector<Series>& members, const Series& reference,
                   uint64_t seed, const ShapeExtractionOptions& options) {
  common::Rng rng(seed);
  return ExtractShape(members, reference, &rng, options);
}

TEST(MatrixFreeExtractionTest, MatchesGramPathAcrossConfigs) {
  // The tentpole equivalence statement: matrix-free and Gram extraction
  // agree to epsilon (different summation order, not bitwise) under every
  // combination of thread count x SIMD backend x warm/cold start x spectrum
  // layout. Both paths are given identical RNG seeds; warm starts draw
  // nothing, cold starts draw the same start vector.
  MatrixFreeGateGuard gate_guard;
  HalfSpectrumGateGuard spectrum_guard;
  SimdBackendGuard backend_guard;
  SetMatrixFreeEnabledForTesting(true);

  const std::size_t m = 64;
  const std::vector<Series> members = NoisySineCorpus(24, m, 41);
  const Series warm_reference = tseries::ZNormalized(Sine(m, 2.0, 0.1));

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::Avx2Available()) backends.push_back(simd::Backend::kAvx2);

  for (const simd::Backend backend : backends) {
    simd::SetBackendForTesting(backend);
    for (const int threads : {1, 2, 8}) {
      common::SetThreadCount(threads);
      for (const bool half_spectrum : {false, true}) {
        fft::SetHalfSpectrumEnabledForTesting(half_spectrum);
        for (const bool warm : {false, true}) {
          const Series& reference = warm ? warm_reference : Series(m, 0.0);
          ShapeExtractionOptions matfree;
          matfree.warm_start = warm;
          matfree.use_matrix_free = true;
          ShapeExtractionOptions gram = matfree;
          gram.use_matrix_free = false;

          const Series via_pool = ExtractWith(members, reference, 43, matfree);
          const Series via_gram = ExtractWith(members, reference, 43, gram);
          ASSERT_EQ(via_pool.size(), m);
          for (std::size_t t = 0; t < m; ++t) {
            EXPECT_NEAR(via_pool[t], via_gram[t], 1e-6)
                << "backend=" << simd::Kernels(backend).name
                << " threads=" << threads << " half=" << half_spectrum
                << " warm=" << warm << " t=" << t;
          }
        }
      }
    }
  }
}

TEST(MatrixFreeExtractionTest, BitIdenticalAcrossThreadCountsAndBackends) {
  // The determinism half of the contract: the matrix-free matvec fans out
  // over fixed row blocks whose boundaries never depend on the thread count,
  // and the block partials reduce in a fixed order with no-FMA fixed-lane
  // kernels — so the centroid is bit-for-bit identical at any parallelism
  // level and across SIMD backends.
  MatrixFreeGateGuard gate_guard;
  SimdBackendGuard backend_guard;
  SetMatrixFreeEnabledForTesting(true);

  const std::size_t m = 96;
  const std::vector<Series> members = NoisySineCorpus(40, m, 47);
  const Series reference = tseries::ZNormalized(Sine(m, 2.0, 0.2));

  simd::SetBackendForTesting(simd::Backend::kScalar);
  common::SetThreadCount(1);
  const Series baseline = ExtractWith(members, reference, 53, {});

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::Avx2Available()) backends.push_back(simd::Backend::kAvx2);
  for (const simd::Backend backend : backends) {
    simd::SetBackendForTesting(backend);
    for (const int threads : {1, 2, 8}) {
      common::SetThreadCount(threads);
      const Series other = ExtractWith(members, reference, 53, {});
      ASSERT_EQ(other.size(), baseline.size());
      for (std::size_t t = 0; t < m; ++t) {
        EXPECT_EQ(baseline[t], other[t])
            << "backend=" << simd::Kernels(backend).name
            << " threads=" << threads << " t=" << t;
      }
    }
  }
}

TEST(MatrixFreeExtractionTest, GateOffRestoresGramPathBitwise) {
  // KSHAPE_MATFREE=off must force the Gram path process-wide: identical bits
  // to use_matrix_free = false, and the accumulator must never enter pool
  // mode regardless of the per-call option.
  MatrixFreeGateGuard gate_guard;
  const std::size_t m = 48;
  const std::vector<Series> members = NoisySineCorpus(16, m, 59);
  const Series reference = tseries::ZNormalized(Sine(m, 2.0, 0.3));

  SetMatrixFreeEnabledForTesting(true);
  ShapeExtractionOptions gram_options;
  gram_options.use_matrix_free = false;
  const Series gram = ExtractWith(members, reference, 61, gram_options);

  SetMatrixFreeEnabledForTesting(false);
  ShapeAccumulator accumulator(reference);  // Default options: matrix-free.
  EXPECT_FALSE(accumulator.matrix_free_active());
  const Series gated = ExtractWith(members, reference, 61, {});
  ASSERT_EQ(gated.size(), gram.size());
  for (std::size_t t = 0; t < m; ++t) {
    EXPECT_EQ(gated[t], gram[t]) << "t=" << t;
  }
}

TEST(MatrixFreeExtractionTest, CrossoverBelowMinMembersMatchesGramBitwise) {
  // Small clusters pool their members but Finish crosses back to the dense
  // path: folding the pooled rows into the Gram in Add-order reproduces the
  // Gram-mode accumulation bit for bit, so the crossover is invisible.
  MatrixFreeGateGuard gate_guard;
  SetMatrixFreeEnabledForTesting(true);
  const std::size_t m = 40;
  const std::vector<Series> members = NoisySineCorpus(5, m, 67);
  const Series reference = tseries::ZNormalized(Sine(m, 2.0, 0.4));

  ShapeExtractionOptions pooled;  // Default min_members = 8 > 5 members.
  ASSERT_LT(members.size(), pooled.matrix_free_min_members);
  ShapeExtractionOptions gram = pooled;
  gram.use_matrix_free = false;

  ShapeAccumulator accumulator(reference, pooled);
  for (const Series& s : members) accumulator.Add(s);
  EXPECT_TRUE(accumulator.matrix_free_active());  // Pooled, yet...

  const Series via_pool = ExtractWith(members, reference, 71, pooled);
  const Series via_gram = ExtractWith(members, reference, 71, gram);
  for (std::size_t t = 0; t < m; ++t) {
    EXPECT_EQ(via_pool[t], via_gram[t]) << "t=" << t;  // ...bitwise Gram.
  }
}

TEST(MatrixFreeExtractionTest, MaxMembersSpillMatchesGramBitwise) {
  // The memory bound: exceeding matrix_free_max_members folds the pool into
  // the Gram mid-accumulation. Same rows, same order — bit-identical to
  // having accumulated the Gram from the first Add.
  MatrixFreeGateGuard gate_guard;
  SetMatrixFreeEnabledForTesting(true);
  const std::size_t m = 40;
  const std::vector<Series> members = NoisySineCorpus(12, m, 73);
  const Series reference = tseries::ZNormalized(Sine(m, 2.0, 0.5));

  ShapeExtractionOptions capped;
  capped.matrix_free_max_members = 4;
  ShapeExtractionOptions gram;
  gram.use_matrix_free = false;

  ShapeAccumulator accumulator(reference, capped);
  for (const Series& s : members) accumulator.Add(s);
  EXPECT_FALSE(accumulator.matrix_free_active());  // Spilled.

  common::Rng rng_capped(79);
  const ExtractedShape spilled = accumulator.Finish(&rng_capped, capped);
  const Series via_gram = ExtractWith(members, reference, 79, gram);
  ASSERT_EQ(spilled.centroid.size(), via_gram.size());
  for (std::size_t t = 0; t < m; ++t) {
    EXPECT_EQ(spilled.centroid[t], via_gram[t]) << "t=" << t;
  }
}

TEST(MatrixFreeExtractionTest, DegenerateMembersAndZeroReferenceParity) {
  // Constant members (z-normalize to zero) are dropped by both storage
  // modes; a fully degenerate set yields the flagged zero centroid in both.
  MatrixFreeGateGuard gate_guard;
  SetMatrixFreeEnabledForTesting(true);
  const std::size_t m = 32;

  // Fully degenerate: every member is constant.
  for (const bool matrix_free : {false, true}) {
    ShapeExtractionOptions options;
    options.use_matrix_free = matrix_free;
    options.matrix_free_min_members = 1;
    common::Rng rng(83);
    const std::vector<Series> constants = {Series(m, 2.0), Series(m, -1.0)};
    const ExtractedShape extracted = ExtractShapeFlagged(
        constants, Series(m, 0.0), &rng, options);
    EXPECT_TRUE(extracted.degenerate) << "matrix_free=" << matrix_free;
    for (double v : extracted.centroid) EXPECT_EQ(v, 0.0);
  }

  // Mixed: constant members drop out of both modes, leaving the same
  // effective member set — results agree to epsilon, with a zero-norm
  // reference (no alignment, cold start) and a warm one.
  std::vector<Series> members = NoisySineCorpus(10, m, 89);
  members.insert(members.begin() + 3, Series(m, 5.0));
  members.push_back(Series(m, 0.0));
  for (const Series& reference :
       {Series(m, 0.0), tseries::ZNormalized(Sine(m, 2.0, 0.6))}) {
    ShapeExtractionOptions pooled;
    pooled.matrix_free_min_members = 1;
    ShapeExtractionOptions gram;
    gram.use_matrix_free = false;
    const Series via_pool = ExtractWith(members, reference, 97, pooled);
    const Series via_gram = ExtractWith(members, reference, 97, gram);
    for (std::size_t t = 0; t < m; ++t) {
      EXPECT_NEAR(via_pool[t], via_gram[t], 1e-6) << "t=" << t;
    }
  }
}

TEST(MatrixFreeExtractionTest, InPlaceCenteringMatchesTwoBufferReference) {
  // Pins the in-place Gram centering (one m×m buffer) against a test-local
  // reimplementation of the historical two-buffer pipeline: accumulate S,
  // mirror, write M_ij = S_ij - rowmean_i - colmean_j + grand into a FRESH
  // matrix, then solve. Same reads, same arithmetic, different destination —
  // the centroids must agree bit for bit.
  MatrixFreeGateGuard gate_guard;
  SetMatrixFreeEnabledForTesting(true);
  const std::size_t m = 36;
  const std::vector<Series> members = NoisySineCorpus(9, m, 101);
  const Series reference = tseries::ZNormalized(Sine(m, 2.0, 0.7));

  // Production dense path (crossover keeps 9 < min_members pooled members on
  // the Gram path even with the gate on).
  ShapeExtractionOptions dense;
  dense.use_matrix_free = false;
  const Series production = ExtractWith(members, reference, 103, dense);

  // Historical pipeline, reimplemented with the explicit second buffer.
  linalg::Matrix s(m, m);
  std::vector<double> mean(m, 0.0);
  for (const Series& member : members) {
    Series aligned = Sbd(reference, member).aligned_y;
    tseries::ZNormalizeInPlace(&aligned);
    if (linalg::Norm(aligned) == 0.0) continue;
    s.AddSymmetricOuterProduct(aligned);
    linalg::Axpy(1.0, aligned, &mean);
  }
  s.MirrorUpperToLower();
  std::vector<double> row_mean(m, 0.0);
  std::vector<double> col_mean(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    row_mean[i] = simd::Active().sum(s.Row(i), m);
    simd::Active().axpy(1.0, s.Row(i), col_mean.data(), m);
  }
  double grand = simd::Sum(row_mean);
  const double inv_m = 1.0 / static_cast<double>(m);
  simd::Scale(row_mean, inv_m);
  simd::Scale(col_mean, inv_m);
  grand *= inv_m * inv_m;
  linalg::Matrix centered(m, m);  // The second buffer the new code elides.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      centered(i, j) = s(i, j) - row_mean[i] - col_mean[j] + grand;
    }
  }
  common::Rng rng(103);
  std::vector<double> seed(reference.begin(), reference.end());
  std::vector<double> centroid = linalg::DominantEigenvector(
      centered, &rng, /*max_iters=*/200, /*tol=*/1e-10,
      /*eigenvalue=*/nullptr, &seed);
  if (linalg::Dot(centroid, mean) < 0.0) linalg::Scale(&centroid, -1.0);
  tseries::ZNormalizeInPlace(&centroid);

  ASSERT_EQ(production.size(), centroid.size());
  for (std::size_t t = 0; t < m; ++t) {
    EXPECT_EQ(production[t], centroid[t]) << "t=" << t;
  }
}

TEST(MatrixFreeExtractionTest, KShapeLabelParityAcrossGateSeedSweep) {
  // End-to-end acceptance: over a sweep of clustering seeds, k-Shape with
  // matrix-free extraction produces EXACTLY the labels (and iteration
  // counts) of the Gram path — the epsilon-level centroid differences never
  // flip an assignment argmin on this corpus, so ARI between the two runs
  // is identically 1.
  MatrixFreeGateGuard gate_guard;
  const std::size_t m = 64;
  std::vector<Series> series;
  common::Rng corpus_rng(107);
  for (int i = 0; i < 36; ++i) {
    Series s = Sine(m, 1.0 + (i % 3), 0.1 * (i % 4));
    for (double& v : s) v += corpus_rng.Gaussian(0.0, 0.2);
    series.push_back(tseries::ZNormalized(s));
  }

  const KShape algorithm;
  for (const uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    SetMatrixFreeEnabledForTesting(true);
    common::Rng rng_on(seed);
    const cluster::ClusteringResult on = algorithm.Cluster(series, 3, &rng_on);

    SetMatrixFreeEnabledForTesting(false);
    common::Rng rng_off(seed);
    const cluster::ClusteringResult off =
        algorithm.Cluster(series, 3, &rng_off);

    EXPECT_EQ(on.assignments, off.assignments) << "seed=" << seed;
    EXPECT_EQ(on.iterations, off.iterations) << "seed=" << seed;
    EXPECT_EQ(on.empty_cluster_reseeds, off.empty_cluster_reseeds)
        << "seed=" << seed;
    // Phase telemetry (monotonic clock) is populated on both paths.
    EXPECT_GE(on.assignment_seconds, 0.0);
    EXPECT_GE(on.extraction_seconds, 0.0);
  }
}

}  // namespace
}  // namespace kshape::core
