#include "core/shape_extraction.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/sbd.h"
#include "linalg/matrix.h"
#include "tseries/normalization.h"

namespace kshape::core {
namespace {

using tseries::Series;

constexpr double kPi = 3.14159265358979323846;

Series Sine(std::size_t m, double cycles, double phase) {
  Series x(m);
  for (std::size_t t = 0; t < m; ++t) {
    x[t] = std::sin(2.0 * kPi * cycles * t / static_cast<double>(m) + phase);
  }
  return x;
}

TEST(ShapeExtractionTest, EmptyClusterGivesZeroCentroid) {
  common::Rng rng(1);
  const Series reference(32, 0.0);
  const Series centroid = ExtractShape({}, reference, &rng);
  ASSERT_EQ(centroid.size(), 32u);
  for (double v : centroid) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ShapeExtractionTest, CentroidOfIdenticalCopiesIsTheShape) {
  common::Rng rng(2);
  const Series base = tseries::ZNormalized(Sine(64, 2.0, 0.3));
  const std::vector<Series> members = {base, base, base};
  const Series centroid = ExtractShape(members, Series(64, 0.0), &rng);
  // The centroid is z-normalized and sign-fixed toward the cluster mean, so
  // it must match the base shape up to numerical error.
  const double d = Sbd(base, centroid).distance;
  EXPECT_NEAR(d, 0.0, 1e-6);
}

TEST(ShapeExtractionTest, CentroidIsZNormalized) {
  common::Rng rng(3);
  std::vector<Series> members;
  for (int i = 0; i < 5; ++i) {
    Series s = Sine(48, 1.0, 0.1 * i);
    for (double& v : s) v += rng.Gaussian(0.0, 0.1);
    members.push_back(tseries::ZNormalized(s));
  }
  const Series centroid = ExtractShape(members, Series(48, 0.0), &rng);
  EXPECT_NEAR(tseries::Mean(centroid), 0.0, 1e-9);
  EXPECT_NEAR(tseries::StdDev(centroid), 1.0, 1e-9);
}

TEST(ShapeExtractionTest, AlignsShiftedCopiesBeforeAveraging) {
  // Members are shifted copies of one bump; with a non-zero reference the
  // extraction must align them and recover a single sharp bump rather than a
  // smeared average.
  const std::size_t m = 96;
  Series bump(m, 0.0);
  for (std::size_t t = 40; t < 50; ++t) bump[t] = 1.0;
  const Series base = tseries::ZNormalized(bump);

  common::Rng rng(4);
  std::vector<Series> members;
  for (int shift : {-8, -4, 0, 4, 8}) {
    members.push_back(
        tseries::ZNormalized(tseries::ShiftWithZeroFill(base, shift)));
  }
  const Series centroid = ExtractShape(members, base, &rng);
  EXPECT_LT(Sbd(base, centroid).distance, 0.05);
}

TEST(ShapeExtractionTest, SignIsOrientedTowardClusterMean) {
  common::Rng rng(5);
  const Series base = tseries::ZNormalized(Sine(40, 1.0, 0.0));
  const std::vector<Series> members = {base, base};
  const Series centroid = ExtractShape(members, Series(40, 0.0), &rng);
  EXPECT_GT(linalg::Dot(centroid, base), 0.0);
}

TEST(ShapeExtractionTest, PowerIterationMatchesFullEigensolver) {
  common::Rng rng(6);
  std::vector<Series> members;
  for (int i = 0; i < 8; ++i) {
    Series s = Sine(32, 2.0, 0.0);
    for (double& v : s) v += rng.Gaussian(0.0, 0.3);
    members.push_back(tseries::ZNormalized(s));
  }
  ShapeExtractionOptions power;
  power.use_power_iteration = true;
  ShapeExtractionOptions full;
  full.use_power_iteration = false;

  common::Rng rng_a(7);
  common::Rng rng_b(7);
  const Series via_power =
      ExtractShape(members, Series(32, 0.0), &rng_a, power);
  const Series via_full = ExtractShape(members, Series(32, 0.0), &rng_b, full);
  for (std::size_t t = 0; t < 32; ++t) {
    EXPECT_NEAR(via_power[t], via_full[t], 1e-5);
  }
}

TEST(ShapeExtractionTest, IndexedOverloadMatchesDirectCall) {
  common::Rng rng(8);
  std::vector<Series> pool;
  for (int i = 0; i < 6; ++i) {
    pool.push_back(tseries::ZNormalized(Sine(24, 1.0, 0.2 * i)));
  }
  common::Rng rng_a(9);
  common::Rng rng_b(9);
  const std::vector<Series> selected = {pool[1], pool[3], pool[5]};
  const Series direct = ExtractShape(selected, Series(24, 0.0), &rng_a);
  const Series indexed =
      ExtractShapeIndexed(pool, {1, 3, 5}, Series(24, 0.0), &rng_b);
  for (std::size_t t = 0; t < 24; ++t) {
    EXPECT_NEAR(direct[t], indexed[t], 1e-12);
  }
}

TEST(ShapeExtractionTest, BetterRepresentativeThanArithmeticMeanOnShifts) {
  // The motivating example of Figure 4: for out-of-phase members, the
  // arithmetic mean smears the shape while shape extraction keeps it sharp.
  const std::size_t m = 128;
  Series bump(m, 0.0);
  for (std::size_t t = 50; t < 62; ++t) bump[t] = 1.0;
  const Series base = tseries::ZNormalized(bump);

  common::Rng rng(10);
  std::vector<Series> members;
  for (int shift : {-20, -10, 0, 10, 20}) {
    members.push_back(
        tseries::ZNormalized(tseries::ShiftWithZeroFill(base, shift)));
  }

  Series mean(m, 0.0);
  for (const Series& s : members) linalg::Axpy(1.0, s, &mean);
  linalg::Scale(&mean, 1.0 / members.size());
  const Series extracted = ExtractShape(members, base, &rng);

  // Sum of squared SBDs to members: extraction must beat the mean.
  double mean_cost = 0.0;
  double extract_cost = 0.0;
  for (const Series& s : members) {
    const double dm = Sbd(mean, s).distance;
    const double de = Sbd(extracted, s).distance;
    mean_cost += dm * dm;
    extract_cost += de * de;
  }
  EXPECT_LT(extract_cost, mean_cost);
}

}  // namespace
}  // namespace kshape::core
