#include "core/shape_extraction.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/sbd.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"
#include "tseries/normalization.h"

namespace kshape::core {
namespace {

using tseries::Series;

constexpr double kPi = 3.14159265358979323846;

Series Sine(std::size_t m, double cycles, double phase) {
  Series x(m);
  for (std::size_t t = 0; t < m; ++t) {
    x[t] = std::sin(2.0 * kPi * cycles * t / static_cast<double>(m) + phase);
  }
  return x;
}

TEST(ShapeExtractionTest, EmptyClusterGivesZeroCentroid) {
  common::Rng rng(1);
  const Series reference(32, 0.0);
  const Series centroid = ExtractShape({}, reference, &rng);
  ASSERT_EQ(centroid.size(), 32u);
  for (double v : centroid) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ShapeExtractionTest, CentroidOfIdenticalCopiesIsTheShape) {
  common::Rng rng(2);
  const Series base = tseries::ZNormalized(Sine(64, 2.0, 0.3));
  const std::vector<Series> members = {base, base, base};
  const Series centroid = ExtractShape(members, Series(64, 0.0), &rng);
  // The centroid is z-normalized and sign-fixed toward the cluster mean, so
  // it must match the base shape up to numerical error.
  const double d = Sbd(base, centroid).distance;
  EXPECT_NEAR(d, 0.0, 1e-6);
}

TEST(ShapeExtractionTest, CentroidIsZNormalized) {
  common::Rng rng(3);
  std::vector<Series> members;
  for (int i = 0; i < 5; ++i) {
    Series s = Sine(48, 1.0, 0.1 * i);
    for (double& v : s) v += rng.Gaussian(0.0, 0.1);
    members.push_back(tseries::ZNormalized(s));
  }
  const Series centroid = ExtractShape(members, Series(48, 0.0), &rng);
  EXPECT_NEAR(tseries::Mean(centroid), 0.0, 1e-9);
  EXPECT_NEAR(tseries::StdDev(centroid), 1.0, 1e-9);
}

TEST(ShapeExtractionTest, AlignsShiftedCopiesBeforeAveraging) {
  // Members are shifted copies of one bump; with a non-zero reference the
  // extraction must align them and recover a single sharp bump rather than a
  // smeared average.
  const std::size_t m = 96;
  Series bump(m, 0.0);
  for (std::size_t t = 40; t < 50; ++t) bump[t] = 1.0;
  const Series base = tseries::ZNormalized(bump);

  common::Rng rng(4);
  std::vector<Series> members;
  for (int shift : {-8, -4, 0, 4, 8}) {
    members.push_back(
        tseries::ZNormalized(tseries::ShiftWithZeroFill(base, shift)));
  }
  const Series centroid = ExtractShape(members, base, &rng);
  EXPECT_LT(Sbd(base, centroid).distance, 0.05);
}

TEST(ShapeExtractionTest, SignIsOrientedTowardClusterMean) {
  common::Rng rng(5);
  const Series base = tseries::ZNormalized(Sine(40, 1.0, 0.0));
  const std::vector<Series> members = {base, base};
  const Series centroid = ExtractShape(members, Series(40, 0.0), &rng);
  EXPECT_GT(linalg::Dot(centroid, base), 0.0);
}

TEST(ShapeExtractionTest, PowerIterationMatchesFullEigensolver) {
  common::Rng rng(6);
  std::vector<Series> members;
  for (int i = 0; i < 8; ++i) {
    Series s = Sine(32, 2.0, 0.0);
    for (double& v : s) v += rng.Gaussian(0.0, 0.3);
    members.push_back(tseries::ZNormalized(s));
  }
  ShapeExtractionOptions power;
  power.use_power_iteration = true;
  ShapeExtractionOptions full;
  full.use_power_iteration = false;

  common::Rng rng_a(7);
  common::Rng rng_b(7);
  const Series via_power =
      ExtractShape(members, Series(32, 0.0), &rng_a, power);
  const Series via_full = ExtractShape(members, Series(32, 0.0), &rng_b, full);
  for (std::size_t t = 0; t < 32; ++t) {
    EXPECT_NEAR(via_power[t], via_full[t], 1e-5);
  }
}

TEST(ShapeExtractionTest, IndexedOverloadMatchesDirectCall) {
  common::Rng rng(8);
  std::vector<Series> pool;
  for (int i = 0; i < 6; ++i) {
    pool.push_back(tseries::ZNormalized(Sine(24, 1.0, 0.2 * i)));
  }
  common::Rng rng_a(9);
  common::Rng rng_b(9);
  const std::vector<Series> selected = {pool[1], pool[3], pool[5]};
  const Series direct = ExtractShape(selected, Series(24, 0.0), &rng_a);
  const Series indexed =
      ExtractShapeIndexed(pool, {1, 3, 5}, Series(24, 0.0), &rng_b);
  for (std::size_t t = 0; t < 24; ++t) {
    EXPECT_NEAR(direct[t], indexed[t], 1e-12);
  }
}

TEST(ShapeExtractionTest, BetterRepresentativeThanArithmeticMeanOnShifts) {
  // The motivating example of Figure 4: for out-of-phase members, the
  // arithmetic mean smears the shape while shape extraction keeps it sharp.
  const std::size_t m = 128;
  Series bump(m, 0.0);
  for (std::size_t t = 50; t < 62; ++t) bump[t] = 1.0;
  const Series base = tseries::ZNormalized(bump);

  common::Rng rng(10);
  std::vector<Series> members;
  for (int shift : {-20, -10, 0, 10, 20}) {
    members.push_back(
        tseries::ZNormalized(tseries::ShiftWithZeroFill(base, shift)));
  }

  Series mean(m, 0.0);
  for (const Series& s : members) linalg::Axpy(1.0, s, &mean);
  linalg::Scale(&mean, 1.0 / members.size());
  const Series extracted = ExtractShape(members, base, &rng);

  // Sum of squared SBDs to members: extraction must beat the mean.
  double mean_cost = 0.0;
  double extract_cost = 0.0;
  for (const Series& s : members) {
    const double dm = Sbd(mean, s).distance;
    const double de = Sbd(extracted, s).distance;
    mean_cost += dm * dm;
    extract_cost += de * de;
  }
  EXPECT_LT(extract_cost, mean_cost);
}

// ---------------------------------------------------------------------------
// Dominant-eigenvector stall handling (ROADMAP: the power iteration used to
// punt straight to the O(m^3) full decomposition when the top eigenvalues
// were near-degenerate).
// ---------------------------------------------------------------------------

double SummedSquaredSbd(const Series& centroid,
                        const std::vector<Series>& members) {
  double cost = 0.0;
  for (const Series& s : members) {
    const double d = Sbd(centroid, s).distance;
    cost += d * d;
  }
  return cost;
}

TEST(ShapeExtractionTest, NoExpensiveFallbackOnUniformlyPhaseShiftedCorpus) {
  // Uniformly phase-shifted copies of one sine make the centered Gram matrix
  // (nearly) circulant: its top eigenvalue is a degenerate sin/cos pair, the
  // historical worst case for power-iteration convergence. The stall fix
  // must resolve it with the residual check / cheap shifted restarts — the
  // full-decomposition fallback counter has to stay at zero — while matching
  // the full decomposition's Rayleigh cost.
  const std::size_t m = 64;
  const int n = 32;
  std::vector<Series> members;
  for (int i = 0; i < n; ++i) {
    members.push_back(tseries::ZNormalized(
        Sine(m, 1.0, 2.0 * kPi * i / static_cast<double>(n))));
  }

  linalg::ResetDominantEigenvectorFallbackCountForTesting();
  common::Rng rng_power(77);
  const Series power =
      ExtractShape(members, Series(m, 0.0), &rng_power);
  EXPECT_EQ(linalg::DominantEigenvectorFallbackCountForTesting(), 0);

  ShapeExtractionOptions full_options;
  full_options.use_power_iteration = false;
  common::Rng rng_full(77);
  const Series full =
      ExtractShape(members, Series(m, 0.0), &rng_full, full_options);

  // Any vector in the degenerate top eigenspace is an equally good centroid;
  // the power-iteration result must reach the full decomposition's cost.
  EXPECT_LE(SummedSquaredSbd(power, members),
            SummedSquaredSbd(full, members) + 1e-6);
}

TEST(ShapeExtractionTest, FallbackIsCappedOnNoisyNearDegenerateSweep) {
  // With noise the top pair splits into two CLOSE but distinct eigenvalues —
  // the genuinely hard case where power iteration converges too slowly and
  // the full decomposition is the right answer. The fix caps the damage:
  // at most ONE full solve per extraction (no unbounded restart stall), and
  // warm-started extractions — every refinement iteration after the first in
  // the k-Shape loop — start near the fixed point and never fall back.
  common::Rng rng(91);
  for (const std::size_t m : {std::size_t{31}, std::size_t{48}}) {
    std::vector<Series> members;
    for (int i = 0; i < 20; ++i) {
      Series s = Sine(m, 1.0, 2.0 * kPi * i / 20.0);
      for (double& v : s) v += rng.Gaussian(0.0, 0.05);
      members.push_back(tseries::ZNormalized(s));
    }
    linalg::ResetDominantEigenvectorFallbackCountForTesting();
    const Series cold = ExtractShape(members, Series(m, 0.0), &rng);
    EXPECT_LE(linalg::DominantEigenvectorFallbackCountForTesting(), 1)
        << "m=" << m;
    // Warm-started from the previous centroid, as the k-Shape refinement
    // loop does on every iteration after the first.
    linalg::ResetDominantEigenvectorFallbackCountForTesting();
    const Series warm = ExtractShape(members, cold, &rng);
    EXPECT_EQ(linalg::DominantEigenvectorFallbackCountForTesting(), 0)
        << "m=" << m;
    EXPECT_EQ(warm.size(), m);
  }
}

// ---------------------------------------------------------------------------
// Streaming extraction (ShapeAccumulator) — the out-of-core driver's path.
// ---------------------------------------------------------------------------

TEST(ShapeExtractionTest, AccumulatorMatchesBatchExtractionBitwise) {
  common::Rng corpus_rng(12);
  std::vector<Series> members;
  for (int i = 0; i < 9; ++i) {
    Series s = Sine(40, 1.0 + (i % 3), 0.2 * i);
    for (double& v : s) v += corpus_rng.Gaussian(0.0, 0.1);
    members.push_back(tseries::ZNormalized(s));
  }
  for (const Series& reference :
       {Series(40, 0.0), tseries::ZNormalized(Sine(40, 2.0, 0.5))}) {
    common::Rng rng_batch(13);
    common::Rng rng_stream(13);
    const ExtractedShape batch =
        ExtractShapeFlagged(members, reference, &rng_batch);

    ShapeAccumulator accumulator(reference);
    for (const Series& s : members) accumulator.Add(s);
    EXPECT_EQ(accumulator.members_added(), members.size());
    const ExtractedShape streamed = accumulator.Finish(&rng_stream);

    EXPECT_EQ(streamed.degenerate, batch.degenerate);
    ASSERT_EQ(streamed.centroid.size(), batch.centroid.size());
    for (std::size_t t = 0; t < batch.centroid.size(); ++t) {
      EXPECT_EQ(streamed.centroid[t], batch.centroid[t]) << "sample " << t;
    }
  }
}

TEST(ShapeExtractionTest, AccumulatorWithNoMembersIsDegenerate) {
  const ShapeAccumulator accumulator(Series(24, 0.0));
  EXPECT_EQ(accumulator.members_added(), 0u);
  common::Rng rng(14);
  const ExtractedShape extracted = accumulator.Finish(&rng);
  EXPECT_TRUE(extracted.degenerate);
  ASSERT_EQ(extracted.centroid.size(), 24u);
  for (double v : extracted.centroid) EXPECT_EQ(v, 0.0);
}

TEST(ShapeExtractionTest, AccumulatorCountsConstantMembersButDropsThem) {
  ShapeAccumulator accumulator(Series(16, 0.0));
  accumulator.Add(Series(16, 3.5));  // Z-normalizes to zero: no contribution.
  accumulator.Add(Series(16, -1.0));
  EXPECT_EQ(accumulator.members_added(), 2u);
  common::Rng rng(15);
  const ExtractedShape extracted = accumulator.Finish(&rng);
  EXPECT_TRUE(extracted.degenerate);
}

TEST(ShapeExtractionTest, AccumulatorFinishIsRepeatable) {
  // Finish is const (it works on copies), so interleaving Finish with more
  // Adds — the sampled-iteration pattern of the mini-batch driver — must
  // leave earlier results unchanged.
  std::vector<Series> members;
  for (int i = 0; i < 6; ++i) {
    members.push_back(tseries::ZNormalized(Sine(32, 2.0, 0.3 * i)));
  }
  ShapeAccumulator accumulator(Series(32, 0.0));
  for (int i = 0; i < 4; ++i) accumulator.Add(members[i]);
  common::Rng rng_a(16);
  common::Rng rng_b(16);
  const ExtractedShape first = accumulator.Finish(&rng_a);
  const ExtractedShape again = accumulator.Finish(&rng_b);
  ASSERT_EQ(first.centroid.size(), again.centroid.size());
  for (std::size_t t = 0; t < first.centroid.size(); ++t) {
    EXPECT_EQ(first.centroid[t], again.centroid[t]);
  }
  accumulator.Add(members[4]);
  accumulator.Add(members[5]);
  EXPECT_EQ(accumulator.members_added(), 6u);
  common::Rng rng_c(16);
  const ExtractedShape extended = accumulator.Finish(&rng_c);
  EXPECT_EQ(extended.centroid.size(), first.centroid.size());
}

}  // namespace
}  // namespace kshape::core
