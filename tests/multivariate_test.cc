#include "core/multivariate.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/sbd.h"
#include "eval/metrics.h"
#include "tseries/normalization.h"

namespace kshape::core {
namespace {

using tseries::Series;

constexpr double kPi = 3.14159265358979323846;

MultivariateSeries RandomMv(std::size_t d, std::size_t m, common::Rng* rng) {
  MultivariateSeries s;
  for (std::size_t c = 0; c < d; ++c) {
    Series channel(m);
    for (double& v : channel) v = rng->Gaussian();
    s.channels.push_back(std::move(channel));
  }
  return s;
}

// A d=2 instance: channel 0 a sine of `cycles`, channel 1 its cosine, both
// delayed by one COMMON random offset (the defining multivariate structure).
MultivariateSeries PhasedPair(double cycles, std::size_t m, common::Rng* rng,
                              double noise) {
  const double phase = rng->Uniform(0.0, 2.0 * kPi);
  MultivariateSeries s;
  s.channels.assign(2, Series(m));
  for (std::size_t t = 0; t < m; ++t) {
    const double u = 2.0 * kPi * cycles * t / static_cast<double>(m) + phase;
    s.channels[0][t] = std::sin(u) + rng->Gaussian(0.0, noise);
    s.channels[1][t] = std::cos(u) + rng->Gaussian(0.0, noise);
  }
  ZNormalizeMultivariate(&s);
  return s;
}

TEST(MultivariateSbdTest, SelfDistanceIsZero) {
  common::Rng rng(1);
  MultivariateSeries x = RandomMv(3, 40, &rng);
  ZNormalizeMultivariate(&x);
  const MultivariateSbdResult r = MultivariateSbd(x, x);
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
  EXPECT_EQ(r.shift, 0);
}

TEST(MultivariateSbdTest, ReducesToUnivariateSbdForOneChannel) {
  common::Rng rng(2);
  MultivariateSeries x = RandomMv(1, 50, &rng);
  MultivariateSeries y = RandomMv(1, 50, &rng);
  const MultivariateSbdResult mv = MultivariateSbd(x, y);
  const SbdResult uni = Sbd(x.channels[0], y.channels[0]);
  EXPECT_NEAR(mv.distance, uni.distance, 1e-10);
  EXPECT_EQ(mv.shift, uni.shift);
}

TEST(MultivariateSbdTest, SymmetricInValue) {
  common::Rng rng(3);
  const MultivariateSeries x = RandomMv(2, 30, &rng);
  const MultivariateSeries y = RandomMv(2, 30, &rng);
  EXPECT_NEAR(MultivariateSbd(x, y).distance, MultivariateSbd(y, x).distance,
              1e-9);
}

TEST(MultivariateSbdTest, RecoversCommonShiftAcrossChannels) {
  const std::size_t m = 80;
  MultivariateSeries x;
  x.channels.assign(2, Series(m, 0.0));
  for (std::size_t t = 30; t < 40; ++t) {
    x.channels[0][t] = 1.0;
    x.channels[1][t] = -2.0 + 0.3 * static_cast<double>(t - 30);
  }
  MultivariateSeries y;
  for (const auto& channel : x.channels) {
    y.channels.push_back(tseries::ShiftWithZeroFill(channel, 7));
  }
  const MultivariateSbdResult r = MultivariateSbd(x, y);
  EXPECT_EQ(r.shift, -7);
  EXPECT_NEAR(r.distance, 0.0, 1e-9);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t t = 0; t + 7 < m; ++t) {
      EXPECT_NEAR(r.aligned_y.channels[c][t], x.channels[c][t], 1e-9);
    }
  }
}

TEST(MultivariateSbdTest, CommonShiftBeatsPerChannelContradiction) {
  // Channel 0 suggests shift +5, channel 1 suggests -5 with more energy:
  // the common shift must reconcile them (dominated by channel 1 here),
  // demonstrating that channels are not aligned independently.
  const std::size_t m = 64;
  MultivariateSeries x;
  x.channels.assign(2, Series(m, 0.0));
  for (std::size_t t = 20; t < 28; ++t) {
    x.channels[0][t] = 1.0;
    x.channels[1][t] = 3.0;  // Higher energy channel.
  }
  MultivariateSeries y;
  y.channels.push_back(tseries::ShiftWithZeroFill(x.channels[0], 5));
  y.channels.push_back(tseries::ShiftWithZeroFill(x.channels[1], -5));
  const MultivariateSbdResult r = MultivariateSbd(x, y);
  EXPECT_EQ(r.shift, 5);  // Align the heavy channel: y shifted by +5.
}

TEST(MultivariateSbdTest, ZeroNormGivesDistanceOne) {
  MultivariateSeries zero;
  zero.channels.assign(2, Series(10, 0.0));
  common::Rng rng(4);
  const MultivariateSeries x = RandomMv(2, 10, &rng);
  EXPECT_DOUBLE_EQ(MultivariateSbd(x, zero).distance, 1.0);
}

TEST(ExtractMultivariateShapeTest, IdenticalMembersGiveTheSharedShape) {
  common::Rng rng(5);
  MultivariateSeries base = PhasedPair(2.0, 64, &rng, 0.0);
  const std::vector<MultivariateSeries> members = {base, base, base};
  MultivariateSeries zero;
  zero.channels.assign(2, Series(64, 0.0));
  const MultivariateSeries centroid =
      ExtractMultivariateShape(members, zero, &rng);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_NEAR(Sbd(base.channels[c], centroid.channels[c]).distance, 0.0,
                1e-6);
  }
}

TEST(ExtractMultivariateShapeTest, EmptyClusterGivesZeros) {
  common::Rng rng(6);
  MultivariateSeries reference;
  reference.channels.assign(3, Series(16, 0.0));
  const MultivariateSeries centroid =
      ExtractMultivariateShape({}, reference, &rng);
  ASSERT_EQ(centroid.num_channels(), 3u);
  for (const auto& channel : centroid.channels) {
    for (double v : channel) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(MultivariateKShapeTest, RecoversTwoPhasedClasses) {
  common::Rng rng(7);
  std::vector<MultivariateSeries> series;
  std::vector<int> labels;
  for (int klass = 0; klass < 2; ++klass) {
    for (int i = 0; i < 10; ++i) {
      series.push_back(PhasedPair(klass == 0 ? 1.0 : 3.0, 64, &rng, 0.05));
      labels.push_back(klass);
    }
  }
  const MultivariateKShape mkshape;
  common::Rng seeder(8);
  double total = 0.0;
  const int runs = 3;
  for (int run = 0; run < runs; ++run) {
    common::Rng cluster_rng = seeder.Fork();
    const MultivariateClusteringResult result =
        mkshape.Cluster(series, 2, &cluster_rng);
    total += eval::RandIndex(labels, result.assignments);
  }
  EXPECT_GT(total / runs, 0.9);
}

TEST(MultivariateKShapeTest, OutputInvariants) {
  common::Rng rng(9);
  std::vector<MultivariateSeries> series;
  for (int i = 0; i < 8; ++i) {
    series.push_back(PhasedPair(1.0 + (i % 2) * 2.0, 32, &rng, 0.1));
  }
  const MultivariateKShape mkshape;
  common::Rng cluster_rng(10);
  const MultivariateClusteringResult result =
      mkshape.Cluster(series, 2, &cluster_rng);
  ASSERT_EQ(result.assignments.size(), series.size());
  ASSERT_EQ(result.centroids.size(), 2u);
  for (const auto& centroid : result.centroids) {
    ASSERT_EQ(centroid.num_channels(), 2u);
    ASSERT_EQ(centroid.length(), 32u);
  }
  std::vector<int> counts(2, 0);
  for (int a : result.assignments) ++counts[a];
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GE(result.iterations, 1);
}

TEST(MultivariateKShapeTest, DeterministicGivenSeed) {
  common::Rng rng(11);
  std::vector<MultivariateSeries> series;
  for (int i = 0; i < 6; ++i) {
    series.push_back(PhasedPair(1.0 + (i % 2) * 2.0, 32, &rng, 0.1));
  }
  const MultivariateKShape mkshape;
  common::Rng rng_a(42);
  common::Rng rng_b(42);
  EXPECT_EQ(mkshape.Cluster(series, 2, &rng_a).assignments,
            mkshape.Cluster(series, 2, &rng_b).assignments);
}

}  // namespace
}  // namespace kshape::core
