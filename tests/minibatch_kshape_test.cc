// Equivalence and contract tests for the sharded out-of-core k-Shape driver
// (cluster::MiniBatchKShape over a store::ShardedSeriesStore).
//
// The load-bearing claim is the exact-mode contract: with mini-batching off,
// a sharded run is BIT-IDENTICAL to the in-memory KShape on the same series
// — same labels, same centroids, same iteration count, same distance
// telemetry — at every shard geometry, residency budget, thread count, SIMD
// backend, spectrum layout, pruning setting, and initialization. Everything
// the sharded driver streams (per-shard engines, one-accumulator-per-cluster
// refinement, global-index-order reductions, the shared repair policy) is
// pinned through that single equivalence.
//
// On top of it: mini-batch mode is deterministic for a fixed seed across
// threads / backends / shard geometry (the sample is drawn on the
// coordinating thread), its telemetry partitions B*k on sampled iterations
// and n*k on full passes, the KSHAPE_SHARDS gate forces the exact path, its
// clustering quality tracks the exact run (ARI sweep over seeds and both
// power-of-two and non-power-of-two lengths), and the TryCluster Status
// boundary rejects malformed stores instead of aborting.

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/minibatch_kshape.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "core/kshape.h"
#include "core/sbd_engine.h"
#include "data/generators.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "fft/rfft.h"
#include "simd/dispatch.h"
#include "store/sharded_store.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace kshape {
namespace {

namespace fs = std::filesystem;
using cluster::ClusteringResult;
using cluster::MiniBatchKShape;
using common::StatusCode;
using store::ShardedSeriesStore;
using tseries::Series;

// Pins every process-wide gate to its documented default on entry (so a
// CI leg exporting KSHAPE_SHARDS=off / KSHAPE_PRUNE=off cannot starve the
// tests that need sampling or pruning active — each case states its own
// configuration) and restores the defaults on exit, so cases can't leak
// configuration into each other.
struct ConfigGuard {
  ConfigGuard() {
    core::SetPruningEnabledForTesting(true);
    fft::SetHalfSpectrumEnabledForTesting(true);
    store::SetShardingEnabledForTesting(true);
  }
  ~ConfigGuard() {
    common::SetThreadCount(saved_threads);
    simd::SetBackendForTesting(saved_backend);
    core::SetPruningEnabledForTesting(true);
    fft::SetHalfSpectrumEnabledForTesting(true);
    store::SetShardingEnabledForTesting(true);
  }
  int saved_threads = common::ThreadCount();
  simd::Backend saved_backend = simd::ActiveBackend();
};

std::vector<Series> MakeCorpus(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Series> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(tseries::ZNormalized(
        data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
  }
  return series;
}

std::vector<int> CorpusLabels(std::size_t n) {
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i % 3);
  return labels;
}

ClusteringResult RunInMemory(const core::KShapeOptions& options,
                             const std::vector<Series>& series, int k,
                             uint64_t seed) {
  const core::KShape kshape(options);
  common::Rng rng(seed);
  return kshape.Cluster(series, k, &rng);
}

// Spills `series` into a fresh sharded store under TempDir and clusters it.
// The store is returned too, so tests can assert residency telemetry.
std::pair<ClusteringResult, ShardedSeriesStore> RunSharded(
    const core::KShapeOptions& options, const std::vector<Series>& series,
    int k, uint64_t seed, const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/kshape_mb_" + tag;
  fs::remove_all(dir);
  common::StatusOr<ShardedSeriesStore> sharded =
      MiniBatchKShape::ShardBatch(series, dir, options);
  EXPECT_TRUE(sharded.ok()) << sharded.status().message();
  ShardedSeriesStore store = std::move(sharded).value();
  const MiniBatchKShape driver(options);
  common::Rng rng(seed);
  ClusteringResult result = driver.Cluster(&store, k, &rng);
  return {std::move(result), std::move(store)};
}

// Bitwise equivalence of everything that must not depend on how the corpus
// was stored or scanned. Residency telemetry (shards_loaded/shard_evictions)
// is deliberately NOT here: it is a function of shard geometry.
void ExpectBitIdentical(const ClusteringResult& a, const ClusteringResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.assignments, b.assignments) << what;
  EXPECT_EQ(a.iterations, b.iterations) << what;
  EXPECT_EQ(a.converged, b.converged) << what;
  EXPECT_EQ(a.empty_cluster_reseeds, b.empty_cluster_reseeds) << what;
  EXPECT_EQ(a.degenerate_centroids, b.degenerate_centroids) << what;
  EXPECT_EQ(a.distances_computed, b.distances_computed) << what;
  EXPECT_EQ(a.distances_pruned_bounds, b.distances_pruned_bounds) << what;
  EXPECT_EQ(a.distances_abandoned_partial, b.distances_abandoned_partial)
      << what;
  EXPECT_EQ(a.pruned_label_mismatches, b.pruned_label_mismatches) << what;
  EXPECT_EQ(a.sampled_series, b.sampled_series) << what;
  ASSERT_EQ(a.assignment_stats.size(), b.assignment_stats.size()) << what;
  for (std::size_t t = 0; t < a.assignment_stats.size(); ++t) {
    EXPECT_EQ(a.assignment_stats[t].computed, b.assignment_stats[t].computed)
        << what << " iter " << t;
    EXPECT_EQ(a.assignment_stats[t].pruned_bounds,
              b.assignment_stats[t].pruned_bounds)
        << what << " iter " << t;
    EXPECT_EQ(a.assignment_stats[t].abandoned_partial,
              b.assignment_stats[t].abandoned_partial)
        << what << " iter " << t;
  }
  ASSERT_EQ(a.centroids.size(), b.centroids.size()) << what;
  for (std::size_t j = 0; j < a.centroids.size(); ++j) {
    ASSERT_EQ(a.centroids[j].size(), b.centroids[j].size()) << what;
    for (std::size_t t = 0; t < a.centroids[j].size(); ++t) {
      // EXPECT_EQ on doubles is exact equality — the bitwise contract.
      EXPECT_EQ(a.centroids[j][t], b.centroids[j][t])
          << what << " centroid " << j << " sample " << t;
    }
  }
}

core::KShapeOptions ShardedOptions(std::size_t shard_rows,
                                   std::size_t max_resident_shards) {
  core::KShapeOptions options;
  options.shard_rows = shard_rows;
  options.max_resident_shards = max_resident_shards;
  return options;
}

// ---------------------------------------------------------------------------
// Exact mode: sharded == in-memory, bit for bit.
// ---------------------------------------------------------------------------

TEST(MiniBatchKShapeTest, ExactModeMatchesInMemoryAcrossShardGeometry) {
  ConfigGuard guard;
  const std::size_t n = 36, m = 37;
  const int k = 3;
  for (uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<Series> series = MakeCorpus(n, m, 100 + seed);
    const ClusteringResult reference =
        RunInMemory(core::KShapeOptions{}, series, k, seed);
    for (std::size_t shard_rows : {std::size_t{7}, std::size_t{16}, n}) {
      const auto [result, store] =
          RunSharded(ShardedOptions(shard_rows, 4), series, k, seed,
                     "geom_" + std::to_string(shard_rows));
      ExpectBitIdentical(result, reference,
                         "seed " + std::to_string(seed) + " shard_rows " +
                             std::to_string(shard_rows));
      EXPECT_EQ(result.sampled_series, 0);
      EXPECT_GE(result.shards_loaded,
                static_cast<long long>(store.num_shards()));
    }
  }
}

TEST(MiniBatchKShapeTest, ExactModeMatchesInMemoryWithPlusPlusSeeding) {
  ConfigGuard guard;
  const std::size_t n = 30, m = 48;
  const int k = 4;
  core::KShapeOptions options;
  options.init = core::KShapeInit::kPlusPlusSeeding;
  const std::vector<Series> series = MakeCorpus(n, m, 7);
  const ClusteringResult reference = RunInMemory(options, series, k, 11);
  for (std::size_t shard_rows : {std::size_t{7}, n}) {
    core::KShapeOptions sharded = options;
    sharded.shard_rows = shard_rows;
    sharded.max_resident_shards = 2;
    const auto [result, store] =
        RunSharded(sharded, series, k, 11,
                   "pp_" + std::to_string(shard_rows));
    ExpectBitIdentical(result, reference,
                       "++ shard_rows " + std::to_string(shard_rows));
  }
}

TEST(MiniBatchKShapeTest, ExactModeMatchesInMemoryAcrossConfigMatrix) {
  ConfigGuard guard;
  const std::size_t n = 24, m = 31;
  const int k = 3;
  const std::vector<Series> series = MakeCorpus(n, m, 5);
  for (bool half : {true, false}) {
    for (bool prune : {true, false}) {
      fft::SetHalfSpectrumEnabledForTesting(half);
      core::SetPruningEnabledForTesting(prune);
      const ClusteringResult reference =
          RunInMemory(core::KShapeOptions{}, series, k, 17);
      const auto [result, store] = RunSharded(
          ShardedOptions(/*shard_rows=*/7, /*max_resident_shards=*/2),
          series, k, 17,
          std::string("cfg_") + (half ? "h" : "f") + (prune ? "p" : "x"));
      ExpectBitIdentical(result, reference,
                         std::string("half=") + (half ? "1" : "0") +
                             " prune=" + (prune ? "1" : "0"));
      if (!prune) {
        // Exact non-pruned runs report the full n*k per iteration.
        EXPECT_EQ(result.distances_computed,
                  static_cast<long long>(n) * k * result.iterations);
      }
    }
  }
}

TEST(MiniBatchKShapeTest, ExactModeBitIdenticalAcrossThreadsAndBackends) {
  ConfigGuard guard;
  const std::size_t n = 36, m = 64;
  const int k = 3;
  const std::vector<Series> series = MakeCorpus(n, m, 23);

  common::SetThreadCount(1);
  simd::SetBackendForTesting(simd::Backend::kScalar);
  const ClusteringResult reference =
      RunInMemory(core::KShapeOptions{}, series, k, 29);

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::Avx2Available()) backends.push_back(simd::Backend::kAvx2);
  for (simd::Backend backend : backends) {
    simd::SetBackendForTesting(backend);
    for (int threads : {1, 2, 8}) {
      common::SetThreadCount(threads);
      const auto [result, store] = RunSharded(
          ShardedOptions(/*shard_rows=*/7, /*max_resident_shards=*/3),
          series, k, 29, "tb_" + std::to_string(threads));
      ExpectBitIdentical(result, reference,
                         "threads " + std::to_string(threads) + " backend " +
                             std::to_string(static_cast<int>(backend)));
    }
  }
}

TEST(MiniBatchKShapeTest, EvictionPressureDoesNotChangeResults) {
  ConfigGuard guard;
  const std::size_t n = 23, m = 37;
  const int k = 3;
  const std::vector<Series> series = MakeCorpus(n, m, 41);
  const ClusteringResult reference =
      RunInMemory(core::KShapeOptions{}, series, k, 43);
  // Budget of one shard: every cross-shard access thrashes, so correctness
  // here means the scans never read a stale or partially-reloaded shard.
  const auto [result, store] = RunSharded(
      ShardedOptions(/*shard_rows=*/5, /*max_resident_shards=*/1), series, k,
      43, "pressure");
  ExpectBitIdentical(result, reference, "eviction pressure");
  EXPECT_EQ(store.num_shards(), 5u);
  EXPECT_GT(result.shard_evictions, 0);
  EXPECT_GT(result.shards_loaded,
            static_cast<long long>(store.num_shards()));
  EXPECT_LE(store.resident_count(), 1u);
}

TEST(MiniBatchKShapeTest, RepairStreamsIdenticallyWhenClustersEmpty) {
  ConfigGuard guard;
  // k close to n makes empty clusters (and thus repair) likely under random
  // initial assignment; the equivalence must hold through the repair path.
  const std::size_t n = 12, m = 31;
  const int k = 8;
  int runs_with_reseeds = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const std::vector<Series> series = MakeCorpus(n, m, 300 + seed);
    const ClusteringResult reference =
        RunInMemory(core::KShapeOptions{}, series, k, seed);
    const auto [result, store] =
        RunSharded(ShardedOptions(/*shard_rows=*/5, /*max_resident_shards=*/1),
                   series, k, seed, "repair_" + std::to_string(seed));
    ExpectBitIdentical(result, reference, "repair seed " +
                                              std::to_string(seed));
    if (result.empty_cluster_reseeds > 0) ++runs_with_reseeds;
  }
  // The sweep must actually exercise repair, not just pass vacuously.
  EXPECT_GT(runs_with_reseeds, 0);
}

TEST(MiniBatchKShapeTest, VerifyPruningSeesNoMismatchesSharded) {
  ConfigGuard guard;
  const std::size_t n = 24, m = 37;
  const int k = 3;
  core::KShapeOptions options;
  options.verify_pruning = true;
  const std::vector<Series> series = MakeCorpus(n, m, 53);
  const ClusteringResult reference = RunInMemory(options, series, k, 59);
  core::KShapeOptions sharded = options;
  sharded.shard_rows = 7;
  const auto [result, store] = RunSharded(sharded, series, k, 59, "verify");
  ExpectBitIdentical(result, reference, "verify_pruning");
  EXPECT_EQ(result.pruned_label_mismatches, 0);
}

// ---------------------------------------------------------------------------
// Mini-batch mode.
// ---------------------------------------------------------------------------

TEST(MiniBatchKShapeTest, ShardsGateOffForcesTheExactPath) {
  ConfigGuard guard;
  const std::size_t n = 30, m = 31;
  const int k = 3;
  const std::vector<Series> series = MakeCorpus(n, m, 61);

  core::KShapeOptions exact = ShardedOptions(7, 4);
  const auto [reference, ref_store] =
      RunSharded(exact, series, k, 67, "gate_exact");

  core::KShapeOptions minibatch = exact;
  minibatch.minibatch_size = 8;
  store::SetShardingEnabledForTesting(false);
  const auto [result, store] =
      RunSharded(minibatch, series, k, 67, "gate_off");
  // With the gate off, minibatch_size is ignored: every iteration is a full
  // pass and the run reproduces the exact one bit for bit.
  ExpectBitIdentical(result, reference, "KSHAPE_SHARDS=off");
  EXPECT_EQ(result.sampled_series, 0);
}

TEST(MiniBatchKShapeTest, SampledIterationTelemetryPartitionsBatchTimesK) {
  ConfigGuard guard;
  const std::size_t n = 36, m = 31;
  const int k = 3;
  const std::size_t batch = 12;
  core::KShapeOptions options = ShardedOptions(7, 4);
  options.minibatch_size = batch;
  options.refresh_period = 3;
  options.max_iterations = 9;
  const std::vector<Series> series = MakeCorpus(n, m, 71);
  const auto [result, store] = RunSharded(options, series, k, 73, "sampled");

  long long sampled_iters = 0;
  for (std::size_t t = 0; t < result.assignment_stats.size(); ++t) {
    const cluster::AssignmentIterationStats& s = result.assignment_stats[t];
    const bool full = (t + 1) % 3 == 0 ||
                      static_cast<int>(t) + 1 == options.max_iterations;
    const long long expected =
        (full ? static_cast<long long>(n) : static_cast<long long>(batch)) * k;
    EXPECT_EQ(s.computed + s.pruned_bounds + s.abandoned_partial, expected)
        << "iteration " << t;
    if (!full) {
      ++sampled_iters;
      // Movement bounds are off in mini-batch mode; only the stateless
      // spectral abandon may skip work.
      EXPECT_EQ(s.pruned_bounds, 0) << "iteration " << t;
    }
  }
  EXPECT_EQ(result.sampled_series,
            sampled_iters * static_cast<long long>(batch));
  EXPECT_GT(result.sampled_series, 0);
  // Convergence is only declared on full passes.
  if (result.converged) {
    EXPECT_EQ(result.iterations % 3 == 0 ||
                  result.iterations == options.max_iterations,
              true);
  }
}

TEST(MiniBatchKShapeTest, PlainScanMinibatchComputesBatchTimesK) {
  ConfigGuard guard;
  core::SetPruningEnabledForTesting(false);
  const std::size_t n = 30, m = 31;
  const int k = 3;
  const std::size_t batch = 10;
  core::KShapeOptions options = ShardedOptions(7, 4);
  options.minibatch_size = batch;
  options.refresh_period = 4;
  options.max_iterations = 8;
  const std::vector<Series> series = MakeCorpus(n, m, 79);
  const auto [result, store] = RunSharded(options, series, k, 83, "plain_mb");
  for (std::size_t t = 0; t < result.assignment_stats.size(); ++t) {
    const cluster::AssignmentIterationStats& s = result.assignment_stats[t];
    const bool full = (t + 1) % 4 == 0 ||
                      static_cast<int>(t) + 1 == options.max_iterations;
    EXPECT_EQ(s.computed,
              (full ? static_cast<long long>(n)
                    : static_cast<long long>(batch)) * k);
    EXPECT_EQ(s.pruned_bounds, 0);
    EXPECT_EQ(s.abandoned_partial, 0);
  }
}

TEST(MiniBatchKShapeTest, MinibatchDeterministicAcrossThreadsAndBackends) {
  ConfigGuard guard;
  const std::size_t n = 36, m = 64;
  const int k = 3;
  core::KShapeOptions options = ShardedOptions(7, 3);
  options.minibatch_size = 12;
  options.refresh_period = 3;
  options.max_iterations = 9;
  const std::vector<Series> series = MakeCorpus(n, m, 89);

  common::SetThreadCount(1);
  simd::SetBackendForTesting(simd::Backend::kScalar);
  const auto [reference, ref_store] =
      RunSharded(options, series, k, 97, "mb_ref");
  EXPECT_GT(reference.sampled_series, 0);

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::Avx2Available()) backends.push_back(simd::Backend::kAvx2);
  for (simd::Backend backend : backends) {
    simd::SetBackendForTesting(backend);
    for (int threads : {2, 8}) {
      common::SetThreadCount(threads);
      const auto [result, store] =
          RunSharded(options, series, k, 97,
                     "mb_t" + std::to_string(threads));
      ExpectBitIdentical(result, reference,
                         "minibatch threads " + std::to_string(threads));
    }
  }
}

TEST(MiniBatchKShapeTest, MinibatchDeterministicAcrossShardGeometry) {
  ConfigGuard guard;
  const std::size_t n = 36, m = 37;
  const int k = 3;
  const std::vector<Series> series = MakeCorpus(n, m, 101);
  core::KShapeOptions base = ShardedOptions(7, 3);
  base.minibatch_size = 12;
  base.refresh_period = 3;
  base.max_iterations = 9;
  const auto [reference, ref_store] =
      RunSharded(base, series, k, 103, "mb_g7");
  for (std::size_t shard_rows : {std::size_t{16}, n}) {
    core::KShapeOptions options = base;
    options.shard_rows = shard_rows;
    const auto [result, store] =
        RunSharded(options, series, k, 103,
                   "mb_g" + std::to_string(shard_rows));
    ExpectBitIdentical(result, reference,
                       "minibatch shard_rows " + std::to_string(shard_rows));
  }
}

TEST(MiniBatchKShapeTest, MinibatchQualityTracksExactAcrossSeedsAndLengths) {
  ConfigGuard guard;
  const std::size_t n = 60;
  const int k = 3;
  const std::vector<int> labels = CorpusLabels(n);
  // 61 pads to a non-trivial power of two (Bluestein territory for the
  // direct Sbd path), 64 is the clean power-of-two case. Individual seeds
  // are noisy in both directions (mini-batch sometimes lands in a better
  // local optimum, sometimes a worse one), so quality is asserted on the
  // seed-sweep mean per length, plus a far-above-chance floor per run.
  for (std::size_t m : {std::size_t{61}, std::size_t{64}}) {
    double sum_full = 0.0, sum_mb = 0.0;
    const std::vector<uint64_t> seeds = {1, 2, 3, 4, 5};
    for (uint64_t seed : seeds) {
      const std::vector<Series> series = MakeCorpus(n, m, 500 + m + seed);
      core::KShapeOptions exact = ShardedOptions(16, 4);
      const auto [full, full_store] = RunSharded(
          exact, series, k, seed, "ari_full_" + std::to_string(m));
      core::KShapeOptions mb = exact;
      mb.minibatch_size = 20;
      mb.refresh_period = 3;
      const auto [sampled, sampled_store] = RunSharded(
          mb, series, k, seed, "ari_mb_" + std::to_string(m));
      const double ari_full =
          eval::AdjustedRandIndex(labels, full.assignments);
      const double ari_mb =
          eval::AdjustedRandIndex(labels, sampled.assignments);
      // A random partition scores ~0; every run must stay well clear of it.
      EXPECT_GT(ari_mb, 0.1)
          << "m=" << m << " seed=" << seed << " exact ARI " << ari_full;
      sum_full += ari_full;
      sum_mb += ari_mb;
    }
    const double mean_full = sum_full / static_cast<double>(seeds.size());
    const double mean_mb = sum_mb / static_cast<double>(seeds.size());
    // Mini-batching trades per-iteration coverage for throughput; on
    // average it must stay in the same quality regime as the exact run.
    EXPECT_GE(mean_mb, mean_full - 0.25)
        << "m=" << m << " exact mean ARI " << mean_full
        << " minibatch mean ARI " << mean_mb;
    EXPECT_GT(mean_mb, 0.3) << "m=" << m;
  }
}

// ---------------------------------------------------------------------------
// Status boundary and misuse.
// ---------------------------------------------------------------------------

TEST(MiniBatchKShapeTest, TryClusterRejectsMalformedInputs) {
  ConfigGuard guard;
  const MiniBatchKShape driver(ShardedOptions(4, 2));
  common::Rng rng(7);

  EXPECT_EQ(driver.TryCluster(nullptr, 2, &rng).status().code(),
            StatusCode::kInvalidArgument);

  const std::vector<Series> series = MakeCorpus(10, 16, 7);
  const std::string dir = ::testing::TempDir() + "/kshape_mb_try";
  fs::remove_all(dir);
  common::StatusOr<ShardedSeriesStore> sharded =
      MiniBatchKShape::ShardBatch(series, dir, ShardedOptions(4, 2));
  ASSERT_TRUE(sharded.ok());
  ShardedSeriesStore store = std::move(sharded).value();

  EXPECT_EQ(driver.TryCluster(&store, 2, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(driver.TryCluster(&store, 0, &rng).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(driver.TryCluster(&store, 11, &rng).status().code(),
            StatusCode::kOutOfRange);

  ShardedSeriesStore unsealed;
  EXPECT_EQ(driver.TryCluster(&unsealed, 2, &rng).status().code(),
            StatusCode::kFailedPrecondition);

  // The happy path still clusters.
  common::StatusOr<ClusteringResult> ok = driver.TryCluster(&store, 2, &rng);
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  EXPECT_EQ(ok.value().assignments.size(), series.size());
}

TEST(MiniBatchKShapeTest, TryClusterRejectsNonFiniteSeries) {
  ConfigGuard guard;
  const std::string dir = ::testing::TempDir() + "/kshape_mb_nonfinite";
  fs::remove_all(dir);
  common::StatusOr<ShardedSeriesStore> created = ShardedSeriesStore::Create(
      dir, store::ShardedStoreOptions{.shard_rows = 3,
                                      .max_resident_shards = 2});
  ASSERT_TRUE(created.ok());
  ShardedSeriesStore store = std::move(created).value();
  const std::vector<Series> series = MakeCorpus(7, 16, 11);
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i == 5) {
      Series bad = series[i];
      bad[3] = std::numeric_limits<double>::quiet_NaN();
      store.Append(bad);
    } else {
      store.Append(series[i]);
    }
  }
  ASSERT_TRUE(store.Seal().ok());

  const MiniBatchKShape driver(ShardedOptions(3, 2));
  common::Rng rng(13);
  common::StatusOr<ClusteringResult> result =
      driver.TryCluster(&store, 2, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("series 5"), std::string::npos);
  EXPECT_NE(result.status().message().find("non-finite"), std::string::npos);
}

TEST(MiniBatchKShapeTest, TryClusterCatchesTruncationBehindTheHandle) {
  ConfigGuard guard;
  const std::vector<Series> series = MakeCorpus(8, 16, 17);
  const std::string dir = ::testing::TempDir() + "/kshape_mb_truncated";
  fs::remove_all(dir);
  common::StatusOr<ShardedSeriesStore> sharded =
      MiniBatchKShape::ShardBatch(series, dir, ShardedOptions(4, 2));
  ASSERT_TRUE(sharded.ok());
  ShardedSeriesStore store = std::move(sharded).value();
  store.EvictAll();
  fs::resize_file(dir + "/shard_00001.bin", 16);

  const MiniBatchKShape driver(ShardedOptions(4, 2));
  common::Rng rng(19);
  common::StatusOr<ClusteringResult> result =
      driver.TryCluster(&store, 2, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(MiniBatchKShapeTest, ShardBatchRejectsAnEmptyBatch) {
  const std::vector<Series> empty;
  common::StatusOr<ShardedSeriesStore> sharded = MiniBatchKShape::ShardBatch(
      empty, ::testing::TempDir() + "/kshape_mb_empty", ShardedOptions(4, 2));
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(sharded.status().code(), StatusCode::kInvalidArgument);
}

TEST(MiniBatchKShapeDeathTest, RequiresTheSpectrumCachePath) {
  core::KShapeOptions options;
  options.use_spectrum_cache = false;
  EXPECT_DEATH(MiniBatchKShape{options}, "spectrum-cache");
}

TEST(MiniBatchKShapeDeathTest, RejectsCustomAssignmentDistances) {
  const distance::EuclideanDistance euclid;
  core::KShapeOptions options;
  options.assignment_distance = &euclid;
  EXPECT_DEATH(MiniBatchKShape{options}, "not streamable");
}

TEST(MiniBatchKShapeDeathTest, ClusterRequiresASealedStore) {
  ConfigGuard guard;
  const std::string dir = ::testing::TempDir() + "/kshape_mb_unsealed";
  fs::remove_all(dir);
  common::StatusOr<ShardedSeriesStore> created = ShardedSeriesStore::Create(
      dir, store::ShardedStoreOptions{.shard_rows = 4});
  ASSERT_TRUE(created.ok());
  ShardedSeriesStore store = std::move(created).value();
  store.Append(Series(16, 1.0));
  const MiniBatchKShape driver;
  common::Rng rng(3);
  EXPECT_DEATH(driver.Cluster(&store, 1, &rng), "sealed");
}

}  // namespace
}  // namespace kshape
