#include "data/archive.h"
#include "data/generators.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "tseries/normalization.h"

namespace kshape::data {
namespace {

using tseries::Series;

TEST(CbfTest, ProducesCorrectLengthAndStructure) {
  common::Rng rng(1);
  for (int klass = 0; klass < 3; ++klass) {
    const Series x = MakeCbf(klass, 128, &rng);
    ASSERT_EQ(x.size(), 128u);
  }
}

TEST(CbfTest, CylinderHasFlatTopBellRampsUp) {
  // Average many noiseless-ish instances: the cylinder's mid-plateau mean
  // exceeds the bell's early-segment mean (bell ramps up from zero).
  common::Rng rng(2);
  double cylinder_early = 0.0;
  double bell_early = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const Series cyl = MakeCbf(0, 128, &rng);
    const Series bell = MakeCbf(1, 128, &rng);
    for (int t = 33; t < 48; ++t) {
      cylinder_early += cyl[t];
      bell_early += bell[t];
    }
  }
  EXPECT_GT(cylinder_early, bell_early);
}

TEST(EcgLikeTest, ClassesAreShapeDistinct) {
  // With phase removed (no circular shift applied at generation time the
  // phase is random, so compare via SBD-style max correlation instead):
  // generate many of each and check the two class means differ.
  common::Rng rng(3);
  const Series a = MakeEcgLike(0, 136, &rng, 0.0);
  const Series b = MakeEcgLike(1, 136, &rng, 0.0);
  ASSERT_EQ(a.size(), 136u);
  ASSERT_EQ(b.size(), 136u);
}

TEST(TwoPatternsTest, FourClassesValidLength) {
  common::Rng rng(4);
  for (int klass = 0; klass < 4; ++klass) {
    const Series x = MakeTwoPatterns(klass, 128, &rng);
    ASSERT_EQ(x.size(), 128u);
    // Patterns push values to +-2; background noise stays small.
    const auto [mn, mx] = std::minmax_element(x.begin(), x.end());
    EXPECT_LT(*mn, -1.0);
    EXPECT_GT(*mx, 1.0);
  }
}

TEST(SyntheticControlTest, TrendClassesActuallyTrend) {
  common::Rng rng(5);
  const Series inc = MakeSyntheticControl(2, 60, &rng);
  const Series dec = MakeSyntheticControl(3, 60, &rng);
  // Compare first and last thirds.
  auto third_mean = [](const Series& x, bool last) {
    double sum = 0.0;
    const std::size_t n = x.size() / 3;
    const std::size_t start = last ? x.size() - n : 0;
    for (std::size_t t = start; t < start + n; ++t) sum += x[t];
    return sum / static_cast<double>(n);
  };
  EXPECT_GT(third_mean(inc, true), third_mean(inc, false) + 5.0);
  EXPECT_LT(third_mean(dec, true), third_mean(dec, false) - 5.0);
}

TEST(SyntheticControlTest, ShiftClassesJump) {
  common::Rng rng(6);
  const Series up = MakeSyntheticControl(4, 60, &rng);
  double early = 0.0;
  double late = 0.0;
  for (int t = 0; t < 15; ++t) early += up[t];
  for (int t = 45; t < 60; ++t) late += up[t];
  EXPECT_GT(late / 15.0, early / 15.0 + 5.0);
}

TEST(ShiftedSineTest, FrequencyScalesWithClass) {
  common::Rng rng(7);
  // Count zero crossings: class 2 (3 cycles) has ~3x those of class 0.
  auto crossings = [](const Series& x) {
    int count = 0;
    for (std::size_t t = 1; t < x.size(); ++t) {
      if ((x[t - 1] < 0) != (x[t] < 0)) ++count;
    }
    return count;
  };
  const Series slow = MakeShiftedSine(0, 256, &rng, 0.0);
  const Series fast = MakeShiftedSine(2, 256, &rng, 0.0);
  EXPECT_GE(crossings(fast), crossings(slow) * 2);
}

TEST(HarmonicAndWaveTest, ValidClassesAndLengths) {
  common::Rng rng(8);
  for (int klass = 0; klass < 3; ++klass) {
    EXPECT_EQ(MakeHarmonic(klass, 100, &rng).size(), 100u);
    EXPECT_EQ(MakeWave(klass, 100, &rng).size(), 100u);
    EXPECT_EQ(MakeBump(klass, 100, &rng).size(), 100u);
  }
}

TEST(WarpedPatternTest, SameClassInstancesAreDtwClose) {
  common::Rng rng(9);
  const Series a = MakeWarpedPattern(0, 128, &rng, 0.0);
  const Series b = MakeWarpedPattern(0, 128, &rng, 0.0);
  const Series c = MakeWarpedPattern(1, 128, &rng, 0.0);
  // Within-class distance below between-class distance (Euclidean proxy).
  double within = 0.0;
  double between = 0.0;
  for (std::size_t t = 0; t < 128; ++t) {
    within += (a[t] - b[t]) * (a[t] - b[t]);
    between += (a[t] - c[t]) * (a[t] - c[t]);
  }
  EXPECT_LT(within, between);
}

TEST(RandomWalkTest, HasIncrementsOfUnitVariance) {
  common::Rng rng(10);
  const Series x = MakeRandomWalk(10000, &rng);
  double sum_sq = 0.0;
  for (std::size_t t = 1; t < x.size(); ++t) {
    const double d = x[t] - x[t - 1];
    sum_sq += d * d;
  }
  EXPECT_NEAR(sum_sq / static_cast<double>(x.size() - 1), 1.0, 0.1);
}

TEST(MakeLabeledDatasetTest, LabelsAndCounts) {
  common::Rng rng(11);
  const tseries::Dataset d = MakeLabeledDataset(
      "toy", 3, 4, [](int k, common::Rng* r) { return MakeCbf(k, 64, r); },
      &rng);
  EXPECT_EQ(d.size(), 12u);
  EXPECT_EQ(d.NumClasses(), 3);
  std::set<int> labels(d.labels().begin(), d.labels().end());
  EXPECT_EQ(labels.size(), 3u);
}

TEST(ArchiveTest, HasEighteenDatasetsWithSplits) {
  const auto archive = MakeSyntheticArchive();
  EXPECT_EQ(archive.size(), 18u);
  std::set<std::string> names;
  for (const auto& split : archive) {
    EXPECT_FALSE(split.train.empty());
    EXPECT_FALSE(split.test.empty());
    EXPECT_EQ(split.train.length(), split.test.length());
    EXPECT_EQ(split.train.NumClasses(), split.test.NumClasses());
    EXPECT_GE(split.train.NumClasses(), 2);
    names.insert(split.name());
  }
  EXPECT_EQ(names.size(), archive.size());  // Unique names.
}

TEST(ArchiveTest, SeriesAreZNormalizedByDefault) {
  const auto archive = MakeSyntheticArchive();
  const auto& d = archive[0].train;
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(tseries::Mean(d.series(i)), 0.0, 1e-9);
    EXPECT_NEAR(tseries::StdDev(d.series(i)), 1.0, 1e-9);
  }
}

TEST(ArchiveTest, DeterministicForFixedSeed) {
  ArchiveOptions options;
  options.seed = 7;
  const auto a = MakeSyntheticArchive(options);
  const auto b = MakeSyntheticArchive(options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].train.size(), b[i].train.size());
    EXPECT_EQ(a[i].train.series(0), b[i].train.series(0));
  }
}

TEST(ArchiveTest, SizeFactorScalesCounts) {
  ArchiveOptions small;
  small.size_factor = 0.5;
  ArchiveOptions big;
  big.size_factor = 2.0;
  const auto a = MakeSyntheticArchive(small);
  const auto b = MakeSyntheticArchive(big);
  EXPECT_LT(a[0].train.size(), b[0].train.size());
}

TEST(ArchiveTest, UnnormalizedOptionKeepsRawAmplitudes) {
  ArchiveOptions options;
  options.z_normalize = false;
  const auto archive = MakeSyntheticArchive(options);
  // SynthControl has base level 30: raw means must be far from zero.
  bool found = false;
  for (const auto& split : archive) {
    if (split.name() == "SynthControl") {
      EXPECT_GT(std::fabs(tseries::Mean(split.train.series(0))), 5.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace kshape::data
