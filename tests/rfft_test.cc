// Golden-value, round-trip, and convention tests for the half-spectrum RFFT
// layer (fft/rfft.h). The packed transforms are new arithmetic — the
// even/odd packing trick on power-of-two lengths, the full-transform
// fallback on Bluestein lengths — so this suite pins them against the same
// naive O(n^2) DFT oracle fft_test uses, plus the invariants the SBD cache
// relies on: conjugate symmetry of the packed bins, the shared padded-length
// convention, bitwise batch/standalone agreement, and backend bit-identity
// of the SoA product path.

#include "fft/rfft.h"

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "fft/fft.h"
#include "simd/dispatch.h"

namespace kshape::fft {
namespace {

constexpr double kPi = 3.14159265358979323846;

// Reference O(n^2) DFT of a real sequence, evaluated directly from the
// definition — the oracle every golden-value test compares against.
std::vector<Complex> NaiveRealDft(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle =
          -2.0 * kPi * static_cast<double>(k * t) / static_cast<double>(n);
      out[k] += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

std::vector<double> RandomRealVector(std::size_t n, common::Rng* rng) {
  std::vector<double> x(n);
  for (auto& v : x) v = rng->Gaussian();
  return x;
}

// Restores the process-wide half-spectrum gate and SIMD backend after a test
// that flips them, so test order never leaks state.
class HalfSpectrumGuard {
 public:
  HalfSpectrumGuard()
      : enabled_(HalfSpectrumEnabled()), backend_(simd::ActiveBackend()) {}
  ~HalfSpectrumGuard() {
    SetHalfSpectrumEnabledForTesting(enabled_);
    simd::SetBackendForTesting(backend_);
    common::SetThreadCount(1);
  }

 private:
  bool enabled_;
  simd::Backend backend_;
};

TEST(RfftBinsTest, KnownValues) {
  EXPECT_EQ(RfftBins(1), 1u);
  EXPECT_EQ(RfftBins(2), 2u);
  EXPECT_EQ(RfftBins(7), 4u);
  EXPECT_EQ(RfftBins(8), 5u);
  EXPECT_EQ(RfftBins(1024), 513u);
}

// Power-of-two sizes exercise the even/odd packed path (including the n=2
// degenerate half-size-1 transform); the rest exercise the full-transform
// fallback, with odd sizes covering every Bluestein length the kFftNoPow2
// ablation can produce (2m-1 is always odd).
class RfftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RfftSizeTest, ForwardMatchesNaiveDft) {
  const std::size_t n = GetParam();
  common::Rng rng(n * 7919 + 11);
  const std::vector<double> x = RandomRealVector(n, &rng);
  const RfftSpectrum spec = RfftForward(x, n);
  ASSERT_EQ(spec.fft_len, n);
  ASSERT_EQ(spec.re.size(), RfftBins(n));
  ASSERT_EQ(spec.im.size(), RfftBins(n));

  const std::vector<Complex> slow = NaiveRealDft(x);
  for (std::size_t k = 0; k < spec.bins(); ++k) {
    EXPECT_NEAR(spec.re[k], slow[k].real(), 1e-7 * (1.0 + std::fabs(slow[k].real())))
        << "k=" << k;
    EXPECT_NEAR(spec.im[k], slow[k].imag(), 1e-7 * (1.0 + std::fabs(slow[k].imag())))
        << "k=" << k;
  }
}

TEST_P(RfftSizeTest, RoundTripRecoversInput) {
  const std::size_t n = GetParam();
  common::Rng rng(n * 104729 + 12);
  const std::vector<double> x = RandomRealVector(n, &rng);
  const RfftSpectrum spec = RfftForward(x, n);
  std::vector<double> back(n, 0.0);
  GetRfftPlan(n).Inverse(spec.re.data(), spec.im.data(), back.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-8) << "i=" << i;
  }
}

TEST_P(RfftSizeTest, MatchesFullSpectrumBins) {
  // The packed bins must agree with the full complex Spectrum at the same
  // fft_len — the equivalence the half/full SBD paths rest on.
  const std::size_t n = GetParam();
  common::Rng rng(n * 31 + 13);
  const std::vector<double> x = RandomRealVector(n, &rng);
  const RfftSpectrum half = RfftForward(x, n);
  const std::vector<Complex> full = Spectrum(x, n);
  for (std::size_t k = 0; k < half.bins(); ++k) {
    EXPECT_NEAR(half.re[k], full[k].real(), 1e-8 * (1.0 + std::fabs(full[k].real())))
        << "k=" << k;
    EXPECT_NEAR(half.im[k], full[k].imag(), 1e-8 * (1.0 + std::fabs(full[k].imag())))
        << "k=" << k;
  }
}

TEST_P(RfftSizeTest, PackedRealBinsAreExactlyReal) {
  // Conjugate symmetry of a real input's spectrum pins bins 0 and n/2 (n
  // even) to the real axis. The packed layout stores them with EXACT zero
  // imaginary parts — by construction on the packed path, forced on the
  // fallback — so downstream products never leak a rounding residue into
  // the implied upper half-spectrum.
  const std::size_t n = GetParam();
  common::Rng rng(n * 13 + 14);
  const std::vector<double> x = RandomRealVector(n, &rng);
  const RfftSpectrum spec = RfftForward(x, n);
  EXPECT_EQ(spec.im[0], 0.0);
  if (n % 2 == 0) {
    EXPECT_EQ(spec.im[n / 2], 0.0);
  }
}

TEST_P(RfftSizeTest, PackedBinsImplyConjugateSymmetricSpectrum) {
  // Reconstructing the upper bins as conj(packed) must reproduce the full
  // transform: X[n-k] = conj(X[k]).
  const std::size_t n = GetParam();
  common::Rng rng(n * 17 + 15);
  const std::vector<double> x = RandomRealVector(n, &rng);
  const RfftSpectrum spec = RfftForward(x, n);
  const std::vector<Complex> full = Spectrum(x, n);
  for (std::size_t k = spec.bins(); k < n; ++k) {
    const Complex implied =
        std::conj(Complex(spec.re[n - k], spec.im[n - k]));
    EXPECT_NEAR(implied.real(), full[k].real(),
                1e-8 * (1.0 + std::fabs(full[k].real())))
        << "k=" << k;
    EXPECT_NEAR(implied.imag(), full[k].imag(),
                1e-8 * (1.0 + std::fabs(full[k].imag())))
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, RfftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 13, 16,
                                           25, 27, 31, 32, 33, 63, 64, 100,
                                           127, 128, 129, 255, 256, 257,
                                           500));

TEST(RfftTest, KnownFourPointTransform) {
  // DFT of [1, 2, 3, 4] = [10, -2+2i, -2, ...]; packed bins are the first 3.
  const std::vector<double> x = {1, 2, 3, 4};
  const RfftSpectrum spec = RfftForward(x, 4);
  ASSERT_EQ(spec.bins(), 3u);
  EXPECT_NEAR(spec.re[0], 10.0, 1e-9);
  EXPECT_NEAR(spec.im[0], 0.0, 1e-9);
  EXPECT_NEAR(spec.re[1], -2.0, 1e-9);
  EXPECT_NEAR(spec.im[1], 2.0, 1e-9);
  EXPECT_NEAR(spec.re[2], -2.0, 1e-9);
  EXPECT_NEAR(spec.im[2], 0.0, 1e-9);
}

TEST(RfftTest, ZeroPaddingMatchesFullSpectrum) {
  // The padded-length convention: a length-20 series transformed at
  // fft_len=64 must match Spectrum's zero-padded transform bin for bin.
  common::Rng rng(7);
  const std::vector<double> x = RandomRealVector(20, &rng);
  const RfftSpectrum half = RfftForward(x, 64);
  const std::vector<Complex> full = Spectrum(x, 64);
  for (std::size_t k = 0; k < half.bins(); ++k) {
    EXPECT_NEAR(half.re[k], full[k].real(), 1e-9);
    EXPECT_NEAR(half.im[k], full[k].imag(), 1e-9);
  }
}

TEST(RfftTest, PadNeverTruncateIsEnforced) {
  // Spectrum, RfftForward, and RfftPlan::Forward share the pad-never-
  // truncate contract; violating it must abort, not silently drop samples.
  const std::vector<double> x(10, 1.0);
  EXPECT_DEATH(RfftForward(x, 8), "pads, never truncates");
  std::vector<double> out_re(RfftBins(8)), out_im(RfftBins(8));
  EXPECT_DEATH(GetRfftPlan(8).Forward(x, out_re.data(), out_im.data()),
               "pads, never truncates");
}

TEST(RfftTest, MismatchedSpectrumLengthsAbort) {
  // Bluestein (2m-1) and power-of-two paddings of the same series are NOT
  // comparable; the product path must reject the mix loudly.
  common::Rng rng(8);
  const std::vector<double> x = RandomRealVector(16, &rng);
  const RfftSpectrum pow2 = RfftForward(x, 32);  // NextPowerOfTwo(31)
  const RfftSpectrum odd = RfftForward(x, 31);   // exact 2m-1
  std::vector<double> cc;
  EXPECT_DEATH(CrossCorrelationFromRfft(pow2.view(), odd.view(), 16, &cc),
               "length mismatch");
}

class RfftCrossCorrelationSizeTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RfftCrossCorrelationSizeTest, MatchesNaive) {
  const std::size_t m = GetParam();
  common::Rng rng(m * 13 + 21);
  const std::vector<double> x = RandomRealVector(m, &rng);
  const std::vector<double> y = RandomRealVector(m, &rng);
  const std::vector<double> fast = RfftCrossCorrelation(x, y);
  const std::vector<double> slow = CrossCorrelationNaive(x, y);
  ASSERT_EQ(fast.size(), slow.size());
  ASSERT_EQ(fast.size(), 2 * m - 1);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], slow[i], 1e-7) << "lag index " << i;
  }
}

TEST_P(RfftCrossCorrelationSizeTest, CachedHalfMatchesCachedFull) {
  // The half- and full-spectrum cached paths compute the same quantity with
  // different rounding; they must agree to a tight epsilon at both the
  // power-of-two and the Bluestein (exact 2m-1) padding.
  const std::size_t m = GetParam();
  common::Rng rng(m * 17 + 22);
  const std::vector<double> x = RandomRealVector(m, &rng);
  const std::vector<double> y = RandomRealVector(m, &rng);
  for (const std::size_t len :
       {NextPowerOfTwo(2 * m - 1), 2 * m - 1}) {
    const RfftSpectrum hx = RfftForward(x, len);
    const RfftSpectrum hy = RfftForward(y, len);
    std::vector<double> half_cc;
    CrossCorrelationFromRfft(hx.view(), hy.view(), m, &half_cc);

    const std::vector<Complex> fx = Spectrum(x, len);
    const std::vector<Complex> fy = Spectrum(y, len);
    std::vector<double> full_cc;
    CrossCorrelationFromSpectra(fx, fy, m, &full_cc);

    ASSERT_EQ(half_cc.size(), full_cc.size());
    for (std::size_t i = 0; i < half_cc.size(); ++i) {
      EXPECT_NEAR(half_cc[i], full_cc[i], 1e-8) << "len=" << len << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RfftCrossCorrelationSizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31, 32, 33, 60,
                                           100, 128, 200));

TEST(BatchSpectraTest, SlotsMatchStandaloneTransformsBitwise) {
  // The batch pool runs the SAME plan and arithmetic as the standalone
  // helper, so slots must match RfftForward bitwise, not just within
  // epsilon.
  common::Rng rng(31);
  const std::size_t count = 9;
  const std::size_t m = 50;
  const std::size_t len = NextPowerOfTwo(2 * m - 1);
  std::vector<std::vector<double>> series;
  for (std::size_t i = 0; i < count; ++i) {
    series.push_back(RandomRealVector(m, &rng));
  }
  BatchSpectra batch(count, len);
  for (std::size_t i = 0; i < count; ++i) batch.Transform(i, series[i]);

  for (std::size_t i = 0; i < count; ++i) {
    const RfftSpectrum solo = RfftForward(series[i], len);
    const RfftView slot = batch.view(i);
    ASSERT_EQ(slot.bins(), solo.bins());
    EXPECT_EQ(std::memcmp(slot.re, solo.re.data(),
                          solo.bins() * sizeof(double)),
              0)
        << "slot " << i;
    EXPECT_EQ(std::memcmp(slot.im, solo.im.data(),
                          solo.bins() * sizeof(double)),
              0)
        << "slot " << i;
  }
}

TEST(BatchSpectraTest, ParallelFillIsBitIdentical) {
  // Slots are disjoint, so a ParallelFor fill at any thread count must
  // produce the byte-identical pool a sequential fill produces.
  HalfSpectrumGuard guard;
  common::Rng rng(32);
  const std::size_t count = 24;
  const std::size_t m = 37;
  const std::size_t len = NextPowerOfTwo(2 * m - 1);
  std::vector<std::vector<double>> series;
  for (std::size_t i = 0; i < count; ++i) {
    series.push_back(RandomRealVector(m, &rng));
  }

  BatchSpectra sequential(count, len);
  for (std::size_t i = 0; i < count; ++i) sequential.Transform(i, series[i]);

  for (const int threads : {2, 8}) {
    common::SetThreadCount(threads);
    BatchSpectra parallel(count, len);
    common::ParallelFor(0, count, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        parallel.Transform(i, series[i]);
      }
    });
    for (std::size_t i = 0; i < count; ++i) {
      const RfftView a = sequential.view(i);
      const RfftView b = parallel.view(i);
      EXPECT_EQ(std::memcmp(a.re, b.re, a.bins() * sizeof(double)), 0)
          << "threads=" << threads << " slot=" << i;
      EXPECT_EQ(std::memcmp(a.im, b.im, a.bins() * sizeof(double)), 0)
          << "threads=" << threads << " slot=" << i;
    }
  }
}

TEST(RfftBackendTest, ProductPathIsBitIdenticalAcrossBackends) {
  // complex_mul_conj_soa is elementwise, the transforms are backend-
  // independent — so the whole cached half-spectrum pipeline must be
  // bitwise reproducible across SIMD backends.
  HalfSpectrumGuard guard;
  common::Rng rng(41);
  const std::size_t m = 96;
  const std::vector<double> x = RandomRealVector(m, &rng);
  const std::vector<double> y = RandomRealVector(m, &rng);
  const std::size_t len = NextPowerOfTwo(2 * m - 1);
  const RfftSpectrum hx = RfftForward(x, len);
  const RfftSpectrum hy = RfftForward(y, len);

  simd::SetBackendForTesting(simd::Backend::kScalar);
  std::vector<double> scalar_cc;
  CrossCorrelationFromRfft(hx.view(), hy.view(), m, &scalar_cc);

  if (!simd::Avx2Available()) {
    GTEST_SKIP() << "AVX2 backend unavailable";
  }
  simd::SetBackendForTesting(simd::Backend::kAvx2);
  std::vector<double> avx2_cc;
  CrossCorrelationFromRfft(hx.view(), hy.view(), m, &avx2_cc);

  ASSERT_EQ(scalar_cc.size(), avx2_cc.size());
  EXPECT_EQ(std::memcmp(scalar_cc.data(), avx2_cc.data(),
                        scalar_cc.size() * sizeof(double)),
            0);
}

TEST(RfftTest, RepeatedEvaluationIsBitStable) {
  // Fixed inputs must reproduce bitwise across repeated evaluations — the
  // half-path half of the cache's determinism contract.
  common::Rng rng(51);
  const std::size_t m = 61;  // 2m-1 = 121, a Bluestein fallback length
  const std::vector<double> x = RandomRealVector(m, &rng);
  const std::vector<double> y = RandomRealVector(m, &rng);
  for (const std::size_t len :
       {NextPowerOfTwo(2 * m - 1), 2 * m - 1}) {
    const RfftSpectrum hx = RfftForward(x, len);
    const RfftSpectrum hy = RfftForward(y, len);
    const RfftSpectrum hx2 = RfftForward(x, len);
    EXPECT_EQ(std::memcmp(hx.re.data(), hx2.re.data(),
                          hx.bins() * sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(hx.im.data(), hx2.im.data(),
                          hx.bins() * sizeof(double)),
              0);
    std::vector<double> cc1, cc2;
    CrossCorrelationFromRfft(hx.view(), hy.view(), m, &cc1);
    CrossCorrelationFromRfft(hx.view(), hy.view(), m, &cc2);
    EXPECT_EQ(std::memcmp(cc1.data(), cc2.data(), cc1.size() * sizeof(double)),
              0)
        << "len=" << len;
  }
}

TEST(RfftPlanCacheTest, ReturnsSameObjectForSameSize) {
  const RfftPlan& a = GetRfftPlan(64);
  const RfftPlan& b = GetRfftPlan(64);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.n(), 64u);
  EXPECT_EQ(a.bins(), 33u);
}

TEST(HalfSpectrumGateTest, TestingOverrideRoundTrips) {
  HalfSpectrumGuard guard;
  SetHalfSpectrumEnabledForTesting(false);
  EXPECT_FALSE(HalfSpectrumEnabled());
  SetHalfSpectrumEnabledForTesting(true);
  EXPECT_TRUE(HalfSpectrumEnabled());
}

}  // namespace
}  // namespace kshape::fft
