#include "core/kshape.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/averaging.h"
#include "cluster/kmeans.h"
#include "common/random.h"
#include "data/generators.h"
#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "tseries/normalization.h"

namespace kshape::core {
namespace {

using tseries::Series;

constexpr double kPi = 3.14159265358979323846;

// Builds n series per class: class k is a (k+1)-cycle sine with random phase
// and mild noise — separable by shape but heavily misaligned.
void MakePhasedSines(int per_class, int num_classes, std::size_t m,
                     common::Rng* rng, std::vector<Series>* series,
                     std::vector<int>* labels) {
  for (int k = 0; k < num_classes; ++k) {
    for (int i = 0; i < per_class; ++i) {
      const double phase = rng->Uniform(0.0, 2.0 * kPi);
      Series s(m);
      for (std::size_t t = 0; t < m; ++t) {
        s[t] = std::sin(2.0 * kPi * (k + 1) * t / static_cast<double>(m) +
                        phase) +
               rng->Gaussian(0.0, 0.05);
      }
      series->push_back(tseries::ZNormalized(s));
      labels->push_back(k);
    }
  }
}

TEST(KShapeTest, RecoversWellSeparatedPhasedClasses) {
  common::Rng rng(1);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(15, 3, 96, &rng, &series, &labels);

  // k-means-style methods can hit local optima on unlucky initializations;
  // average over restarts as the paper does (10 runs per dataset).
  const KShape kshape;
  common::Rng seeder(2);
  double total = 0.0;
  const int runs = 5;
  for (int run = 0; run < runs; ++run) {
    common::Rng cluster_rng = seeder.Fork();
    const cluster::ClusteringResult result =
        kshape.Cluster(series, 3, &cluster_rng);
    total += eval::RandIndex(labels, result.assignments);
  }
  EXPECT_GT(total / runs, 0.85);
}

TEST(KShapeTest, BeatsEdKMeansOnOutOfPhaseEcgLikeData) {
  // The headline scenario of the paper's introduction: similar but
  // out-of-phase ECG patterns. Like every k-means-family method, k-Shape
  // lands in local optima on some initializations, so the paper's claim is
  // *relative*: averaged over random restarts, k-Shape must beat the
  // ED-based k-means on phase-shifted data.
  common::Rng rng(3);
  std::vector<Series> series;
  std::vector<int> labels;
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < 30; ++i) {
      series.push_back(
          tseries::ZNormalized(data::MakeEcgLike(k, 136, &rng, 0.1)));
      labels.push_back(k);
    }
  }
  const KShape kshape;
  const distance::EuclideanDistance ed;
  const cluster::ArithmeticMeanAveraging avg;
  const cluster::KMeans kavg_ed(&ed, &avg, "k-AVG+ED");

  common::Rng seeder(4);
  double kshape_total = 0.0;
  double kavg_total = 0.0;
  const int runs = 10;
  for (int run = 0; run < runs; ++run) {
    common::Rng rng_a = seeder.Fork();
    common::Rng rng_b = seeder.Fork();
    kshape_total +=
        eval::RandIndex(labels, kshape.Cluster(series, 2, &rng_a).assignments);
    kavg_total +=
        eval::RandIndex(labels, kavg_ed.Cluster(series, 2, &rng_b).assignments);
  }
  EXPECT_GE(kshape_total, kavg_total);
  EXPECT_GT(kshape_total / runs, 0.5);
}

TEST(KShapeTest, OutputInvariants) {
  common::Rng rng(5);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(8, 2, 64, &rng, &series, &labels);

  const KShape kshape;
  common::Rng cluster_rng(6);
  const cluster::ClusteringResult result =
      kshape.Cluster(series, 2, &cluster_rng);
  ASSERT_EQ(result.assignments.size(), series.size());
  ASSERT_EQ(result.centroids.size(), 2u);
  for (int a : result.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 2);
  }
  // Centroids are z-normalized series of the right length.
  for (const Series& c : result.centroids) {
    ASSERT_EQ(c.size(), 64u);
    EXPECT_NEAR(tseries::Mean(c), 0.0, 1e-9);
    EXPECT_NEAR(tseries::StdDev(c), 1.0, 1e-9);
  }
  // No empty cluster.
  std::vector<int> counts(2, 0);
  for (int a : result.assignments) ++counts[a];
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GE(result.iterations, 1);
}

TEST(KShapeTest, DeterministicGivenSeed) {
  common::Rng rng(7);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(6, 2, 48, &rng, &series, &labels);

  const KShape kshape;
  common::Rng rng_a(42);
  common::Rng rng_b(42);
  const auto result_a = kshape.Cluster(series, 2, &rng_a);
  const auto result_b = kshape.Cluster(series, 2, &rng_b);
  EXPECT_EQ(result_a.assignments, result_b.assignments);
  EXPECT_EQ(result_a.iterations, result_b.iterations);
}

TEST(KShapeTest, SingleClusterAssignsEverythingTogether) {
  common::Rng rng(8);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(5, 2, 32, &rng, &series, &labels);

  const KShape kshape;
  common::Rng cluster_rng(9);
  const auto result = kshape.Cluster(series, 1, &cluster_rng);
  for (int a : result.assignments) EXPECT_EQ(a, 0);
}

TEST(KShapeTest, KEqualsNGivesOnePointPerCluster) {
  common::Rng rng(10);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(2, 2, 32, &rng, &series, &labels);
  const int n = static_cast<int>(series.size());

  const KShape kshape;
  common::Rng cluster_rng(11);
  const auto result = kshape.Cluster(series, n, &cluster_rng);
  std::vector<int> counts(n, 0);
  for (int a : result.assignments) ++counts[a];
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(KShapeTest, ConvergesWithinIterationCap) {
  common::Rng rng(12);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(10, 2, 64, &rng, &series, &labels);

  const KShape kshape;
  common::Rng cluster_rng(13);
  const auto result = kshape.Cluster(series, 2, &cluster_rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 100);
}

TEST(KShapeTest, MaxIterationsOptionIsHonored) {
  common::Rng rng(14);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(10, 3, 64, &rng, &series, &labels);

  KShapeOptions options;
  options.max_iterations = 1;
  const KShape kshape(options);
  common::Rng cluster_rng(15);
  const auto result = kshape.Cluster(series, 3, &cluster_rng);
  EXPECT_EQ(result.iterations, 1);
}

TEST(KShapeTest, DtwAssignmentVariantRunsAndIsNamed) {
  const dtw::DtwMeasure dtw_measure = dtw::DtwMeasure::Unconstrained();
  KShapeOptions options;
  options.assignment_distance = &dtw_measure;
  const KShape kshape_dtw(options);
  EXPECT_EQ(kshape_dtw.Name(), "k-Shape+DTW");

  common::Rng rng(16);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(5, 2, 32, &rng, &series, &labels);
  common::Rng cluster_rng(17);
  const auto result = kshape_dtw.Cluster(series, 2, &cluster_rng);
  EXPECT_EQ(result.assignments.size(), series.size());
}

TEST(KShapeTest, DefaultNameIsKShape) {
  EXPECT_EQ(KShape().Name(), "k-Shape");
}

TEST(KShapeTest, PlusPlusSeedingRecoversClasses) {
  common::Rng rng(20);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(10, 3, 64, &rng, &series, &labels);

  KShapeOptions options;
  options.init = KShapeInit::kPlusPlusSeeding;
  const KShape kshape_pp(options);
  common::Rng seeder(21);
  double total = 0.0;
  const int runs = 5;
  for (int run = 0; run < runs; ++run) {
    common::Rng cluster_rng = seeder.Fork();
    total += eval::RandIndex(labels,
                             kshape_pp.Cluster(series, 3, &cluster_rng)
                                 .assignments);
  }
  EXPECT_GT(total / runs, 0.9);
}

TEST(KShapeTest, PlusPlusSeedingIsDeterministicGivenSeed) {
  common::Rng rng(22);
  std::vector<Series> series;
  std::vector<int> labels;
  MakePhasedSines(6, 2, 48, &rng, &series, &labels);

  KShapeOptions options;
  options.init = KShapeInit::kPlusPlusSeeding;
  const KShape kshape_pp(options);
  common::Rng rng_a(5);
  common::Rng rng_b(5);
  EXPECT_EQ(kshape_pp.Cluster(series, 2, &rng_a).assignments,
            kshape_pp.Cluster(series, 2, &rng_b).assignments);
}

}  // namespace
}  // namespace kshape::core
