// Cross-module integration tests: the full combination grid the paper's
// evaluation depends on (every clustering algorithm crossed with every
// distance measure), and a complete generate -> write -> read -> cluster ->
// evaluate pipeline.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cluster/averaging.h"
#include "cluster/dba.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/kmedoids.h"
#include "cluster/ksc.h"
#include "cluster/spectral.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "distance/dtw.h"
#include "distance/elastic.h"
#include "distance/euclidean.h"
#include "eval/metrics.h"
#include "tseries/io.h"
#include "tseries/normalization.h"

namespace kshape {
namespace {

using tseries::Series;

struct GridCase {
  std::string algorithm;  // "kmeans", "pam", "hier", "spectral"
  std::string measure;    // "ed", "cdtw", "sbd", "erp", "edr", "msm", "cid"
};

std::string CaseName(const ::testing::TestParamInfo<GridCase>& info) {
  return info.param.algorithm + "_" + info.param.measure;
}

class CombinationGridTest : public ::testing::TestWithParam<GridCase> {
 protected:
  static std::unique_ptr<distance::DistanceMeasure> MakeMeasure(
      const std::string& name) {
    if (name == "ed") return std::make_unique<distance::EuclideanDistance>();
    if (name == "cdtw") {
      return std::make_unique<dtw::DtwMeasure>(
          dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5"));
    }
    if (name == "sbd") return std::make_unique<core::SbdDistance>();
    if (name == "erp") return std::make_unique<distance::ErpMeasure>();
    if (name == "edr") return std::make_unique<distance::EdrMeasure>();
    if (name == "msm") return std::make_unique<distance::MsmMeasure>();
    if (name == "cid") return std::make_unique<distance::CidMeasure>();
    return nullptr;
  }
};

TEST_P(CombinationGridTest, ProducesValidPartition) {
  const GridCase& grid_case = GetParam();

  // Small dataset separable under lock-step AND elastic measures: rising vs
  // falling control-chart trends (phase games would sink the ED-based
  // combinations by design, which Table 4 covers; this test checks the grid
  // mechanically).
  common::Rng data_rng(11);
  std::vector<Series> series;
  std::vector<int> labels;
  for (int klass = 0; klass < 2; ++klass) {
    for (int i = 0; i < 8; ++i) {
      series.push_back(tseries::ZNormalized(
          data::MakeSyntheticControl(klass + 2, 48, &data_rng)));
      labels.push_back(klass);
    }
  }

  const std::unique_ptr<distance::DistanceMeasure> measure =
      MakeMeasure(grid_case.measure);
  ASSERT_NE(measure, nullptr);

  const cluster::ArithmeticMeanAveraging mean_avg;
  std::unique_ptr<cluster::ClusteringAlgorithm> algorithm;
  if (grid_case.algorithm == "kmeans") {
    algorithm = std::make_unique<cluster::KMeans>(measure.get(), &mean_avg,
                                                  "k-AVG");
  } else if (grid_case.algorithm == "pam") {
    algorithm = std::make_unique<cluster::KMedoids>(measure.get(), "PAM");
  } else if (grid_case.algorithm == "hier") {
    algorithm = std::make_unique<cluster::HierarchicalClustering>(
        measure.get(), cluster::Linkage::kComplete, "H-C");
  } else if (grid_case.algorithm == "spectral") {
    algorithm = std::make_unique<cluster::SpectralClustering>(measure.get(),
                                                              "S");
  }
  ASSERT_NE(algorithm, nullptr);

  common::Rng rng(7);
  const cluster::ClusteringResult result =
      algorithm->Cluster(series, 2, &rng);

  // Validity of the partition, whatever the quality.
  ASSERT_EQ(result.assignments.size(), series.size());
  for (int a : result.assignments) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 2);
  }
  // Quality floor: well above random pairing — every combination in the
  // grid is a credible method on this trivially separable input.
  EXPECT_GT(eval::RandIndex(labels, result.assignments), 0.6)
      << grid_case.algorithm << "+" << grid_case.measure;
}

INSTANTIATE_TEST_SUITE_P(
    FullGrid, CombinationGridTest,
    ::testing::Values(GridCase{"kmeans", "ed"}, GridCase{"kmeans", "sbd"},
                      GridCase{"kmeans", "cdtw"}, GridCase{"pam", "ed"},
                      GridCase{"pam", "cdtw"}, GridCase{"pam", "sbd"},
                      GridCase{"pam", "erp"}, GridCase{"pam", "edr"},
                      GridCase{"pam", "msm"}, GridCase{"pam", "cid"},
                      GridCase{"hier", "ed"}, GridCase{"hier", "cdtw"},
                      GridCase{"hier", "sbd"}, GridCase{"spectral", "ed"},
                      GridCase{"spectral", "cdtw"},
                      GridCase{"spectral", "sbd"}),
    CaseName);

TEST(PipelineTest, GenerateWriteReadClusterEvaluate) {
  // End-to-end: generator -> UCR file -> reader -> k-Shape -> metrics.
  common::Rng rng(3);
  const tseries::Dataset generated = data::MakeLabeledDataset(
      "pipeline", 3, 8,
      [](int k, common::Rng* r) { return data::MakeCbf(k, 96, r); }, &rng);

  const std::string path = ::testing::TempDir() + "/kshape_pipeline.csv";
  ASSERT_TRUE(tseries::WriteUcrFile(generated, path).ok());
  auto loaded = tseries::ReadUcrFile(path, "pipeline");
  ASSERT_TRUE(loaded.ok());
  tseries::Dataset dataset = std::move(loaded).value();
  std::remove(path.c_str());

  ASSERT_EQ(dataset.size(), generated.size());
  tseries::ZNormalizeDataset(&dataset);

  const core::KShape kshape;
  common::Rng cluster_rng(5);
  const cluster::ClusteringResult result =
      kshape.Cluster(dataset.batch(), 3, &cluster_rng);

  const double rand_index =
      eval::RandIndex(dataset.labels(), result.assignments);
  const double ari =
      eval::AdjustedRandIndex(dataset.labels(), result.assignments);
  const double nmi = eval::NormalizedMutualInformation(dataset.labels(),
                                                       result.assignments);
  EXPECT_GT(rand_index, 0.6);
  EXPECT_GE(rand_index, ari);  // RI >= ARI always (ARI is chance-corrected).
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1.0);
}

TEST(PipelineTest, KShapeWithDbaCentroidsDiffersButBothValid) {
  // k-Shape and k-DBA side by side on warped data: both valid partitions,
  // exercising core and cluster against the same input.
  common::Rng rng(9);
  std::vector<Series> series;
  std::vector<int> labels;
  for (int klass = 0; klass < 2; ++klass) {
    for (int i = 0; i < 8; ++i) {
      series.push_back(tseries::ZNormalized(
          data::MakeWarpedPattern(klass, 64, &rng, 0.05)));
      labels.push_back(klass);
    }
  }
  const core::KShape kshape;
  const dtw::DtwMeasure dtw_full = dtw::DtwMeasure::Unconstrained();
  const cluster::DbaAveraging dba;
  const cluster::KMeans kdba(&dtw_full, &dba, "k-DBA");

  common::Rng rng_a(1);
  common::Rng rng_b(1);
  const auto kshape_result = kshape.Cluster(series, 2, &rng_a);
  const auto kdba_result = kdba.Cluster(series, 2, &rng_b);
  EXPECT_GT(eval::RandIndex(labels, kshape_result.assignments), 0.8);
  EXPECT_GT(eval::RandIndex(labels, kdba_result.assignments), 0.8);
}

}  // namespace
}  // namespace kshape
