// Property-based sweeps over the distance-measure roster: identity,
// symmetry, non-negativity for every measure; the triangle inequality for
// the true metrics (ED, ERP, MSM, Minkowski); and z-normalization-induced
// scale/translation invariance where the paper claims it (§2.2).

#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "cluster/kmedoids.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/sbd.h"
#include "distance/dtw.h"
#include "distance/elastic.h"
#include "distance/euclidean.h"
#include "tseries/normalization.h"

namespace kshape {
namespace {

using tseries::Series;

Series RandomSeries(std::size_t m, common::Rng* rng) {
  Series x(m);
  for (double& v : x) v = rng->Gaussian();
  return x;
}

struct MeasureCase {
  std::string name;
  bool is_metric;  // Satisfies the triangle inequality.
};

std::unique_ptr<distance::DistanceMeasure> MakeMeasure(
    const std::string& name) {
  if (name == "ED") return std::make_unique<distance::EuclideanDistance>();
  if (name == "DTW") {
    return std::make_unique<dtw::DtwMeasure>(dtw::DtwMeasure::Unconstrained());
  }
  if (name == "cDTW5") {
    return std::make_unique<dtw::DtwMeasure>(
        dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5"));
  }
  if (name == "SBD") return std::make_unique<core::SbdDistance>();
  if (name == "ERP") return std::make_unique<distance::ErpMeasure>();
  if (name == "EDR") return std::make_unique<distance::EdrMeasure>();
  if (name == "MSM") return std::make_unique<distance::MsmMeasure>();
  if (name == "CID") return std::make_unique<distance::CidMeasure>();
  return nullptr;
}

class MeasurePropertyTest : public ::testing::TestWithParam<MeasureCase> {};

TEST_P(MeasurePropertyTest, IdentityOfIndiscernibles) {
  const auto measure = MakeMeasure(GetParam().name);
  ASSERT_NE(measure, nullptr);
  common::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Series x = RandomSeries(20 + 3 * trial, &rng);
    EXPECT_NEAR(measure->Distance(x, x), 0.0, 1e-9) << GetParam().name;
  }
}

TEST_P(MeasurePropertyTest, NonNegativity) {
  const auto measure = MakeMeasure(GetParam().name);
  common::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Series x = RandomSeries(24, &rng);
    const Series y = RandomSeries(24, &rng);
    EXPECT_GE(measure->Distance(x, y), -1e-12) << GetParam().name;
  }
}

TEST_P(MeasurePropertyTest, Symmetry) {
  const auto measure = MakeMeasure(GetParam().name);
  common::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const Series x = RandomSeries(30, &rng);
    const Series y = RandomSeries(30, &rng);
    EXPECT_NEAR(measure->Distance(x, y), measure->Distance(y, x), 1e-9)
        << GetParam().name;
  }
}

TEST_P(MeasurePropertyTest, TriangleInequalityForMetrics) {
  if (!GetParam().is_metric) GTEST_SKIP() << "not claimed to be a metric";
  const auto measure = MakeMeasure(GetParam().name);
  common::Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const Series a = RandomSeries(16, &rng);
    const Series b = RandomSeries(16, &rng);
    const Series c = RandomSeries(16, &rng);
    EXPECT_LE(measure->Distance(a, c),
              measure->Distance(a, b) + measure->Distance(b, c) + 1e-9)
        << GetParam().name;
  }
}

TEST_P(MeasurePropertyTest, InvariantUnderZNormalizedAffineTransforms) {
  // §2.2: after z-normalization, a*x + b maps to the same sequence, so every
  // measure computed on z-normalized inputs is scale/translation invariant.
  const auto measure = MakeMeasure(GetParam().name);
  common::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Series x = RandomSeries(32, &rng);
    const Series y = RandomSeries(32, &rng);
    Series scaled = y;
    const double a = rng.Uniform(0.1, 5.0);
    const double b = rng.Uniform(-10.0, 10.0);
    for (double& v : scaled) v = a * v + b;
    const double base = measure->Distance(tseries::ZNormalized(x),
                                          tseries::ZNormalized(y));
    const double transformed = measure->Distance(tseries::ZNormalized(x),
                                                 tseries::ZNormalized(scaled));
    EXPECT_NEAR(base, transformed, 1e-7) << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, MeasurePropertyTest,
    ::testing::Values(MeasureCase{"ED", true}, MeasureCase{"DTW", false},
                      MeasureCase{"cDTW5", false}, MeasureCase{"SBD", false},
                      MeasureCase{"ERP", true}, MeasureCase{"EDR", false},
                      MeasureCase{"MSM", true}, MeasureCase{"CID", false}),
    [](const ::testing::TestParamInfo<MeasureCase>& info) {
      return info.param.name;
    });

TEST(SbdSpecificPropertyTest, BoundedByTwo) {
  common::Rng rng(6);
  const core::SbdDistance sbd;
  for (int trial = 0; trial < 50; ++trial) {
    const Series x = RandomSeries(40, &rng);
    const Series y = RandomSeries(40, &rng);
    EXPECT_LE(sbd.Distance(x, y), 2.0 + 1e-9);
  }
}

TEST(SbdSpecificPropertyTest, AntiCorrelatedSeriesApproachTwo) {
  Series x(32);
  for (std::size_t t = 0; t < 32; ++t) {
    x[t] = std::sin(2.0 * 3.14159265358979 * t / 32.0);
  }
  Series neg = x;
  for (double& v : neg) v = -v;
  // Shifting the negated sine by half a period re-correlates it, but the
  // zero-fill truncation caps the achievable NCCc at ~0.5 for one full
  // cycle over m = 32 — so the distance is ~0.5, far above self-distance.
  const core::SbdDistance sbd;
  EXPECT_GT(sbd.Distance(x, neg), 0.4);
  EXPECT_GT(sbd.Distance(x, neg), sbd.Distance(x, x) + 0.3);
}

// Randomized sweeps of SBD's metric-like properties as observed through the
// parallel PairwiseDistanceMatrix path (the entry point k-medoids,
// hierarchical, spectral, validity metrics, and EstimateK all share). Run at
// several thread counts so the properties are checked on the actual
// concurrent code path, not just the inline fallback.
class ParallelSbdMatrixPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { common::SetThreadCount(GetParam()); }
  void TearDown() override { common::SetThreadCount(1); }
};

TEST_P(ParallelSbdMatrixPropertyTest, SymmetryZeroDiagonalAndRange) {
  common::Rng rng(8);
  const core::SbdDistance sbd;
  for (int trial = 0; trial < 5; ++trial) {
    const std::size_t n = 17 + 4 * trial;  // Deliberately not grain-aligned.
    const std::size_t m = 24 + 7 * trial;
    std::vector<Series> series;
    for (std::size_t i = 0; i < n; ++i) {
      series.push_back(tseries::ZNormalized(RandomSeries(m, &rng)));
    }
    const linalg::Matrix d = cluster::PairwiseDistanceMatrix(series, sbd);
    ASSERT_EQ(d.rows(), n);
    ASSERT_EQ(d.cols(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(d(i, i), 0.0) << "diagonal at " << i;
      for (std::size_t j = 0; j < n; ++j) {
        // Bitwise symmetry: the matrix builder mirrors one computed value,
        // so this is exact, not approximate.
        EXPECT_EQ(d(i, j), d(j, i)) << i << "," << j;
        EXPECT_GE(d(i, j), 0.0);
        EXPECT_LE(d(i, j), 2.0 + 1e-12);
      }
    }
  }
}

TEST_P(ParallelSbdMatrixPropertyTest, DegenerateConstantSeriesHitDenZero) {
  // Constant series have zero norm after z-normalization, taking the
  // den == 0 branch of Sbd(): distance 1 to anything non-degenerate and to
  // each other, with no preferred shift. Mix constants among regular series
  // so both branch directions occur inside one parallel matrix build.
  common::Rng rng(9);
  const core::SbdDistance sbd;
  const std::size_t m = 32;
  std::vector<Series> series;
  std::vector<bool> is_constant;
  for (int i = 0; i < 12; ++i) {
    if (i % 3 == 0) {
      series.push_back(Series(m, static_cast<double>(i)));  // Constant.
      is_constant.push_back(true);
    } else {
      series.push_back(tseries::ZNormalized(RandomSeries(m, &rng)));
      is_constant.push_back(false);
    }
  }
  // ZNormalized maps constants to all-zero; apply it where the clustering
  // pipelines would.
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (is_constant[i]) series[i] = tseries::ZNormalized(series[i]);
  }
  const linalg::Matrix d = cluster::PairwiseDistanceMatrix(series, sbd);
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = 0; j < series.size(); ++j) {
      if (i == j) continue;
      if (is_constant[i] || is_constant[j]) {
        EXPECT_EQ(d(i, j), 1.0) << i << "," << j;
      } else {
        EXPECT_LT(d(i, j), 2.0 + 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelSbdMatrixPropertyTest,
                         ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(CrossCorrelationSymmetryTest, SequenceReversesBetweenArgumentOrders) {
  // R_k(x, y) == R_{-k}(y, x): the NCC sequence of (y, x) is the reverse of
  // the sequence of (x, y).
  common::Rng rng(7);
  const Series x = RandomSeries(25, &rng);
  const Series y = RandomSeries(25, &rng);
  const auto xy = core::NccSequence(x, y, core::NccNormalization::kCoefficient);
  const auto yx = core::NccSequence(y, x, core::NccNormalization::kCoefficient);
  ASSERT_EQ(xy.size(), yx.size());
  for (std::size_t i = 0; i < xy.size(); ++i) {
    EXPECT_NEAR(xy[i], yx[yx.size() - 1 - i], 1e-9);
  }
}

}  // namespace
}  // namespace kshape
