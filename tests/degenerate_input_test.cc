// Degenerate-input matrix: constant, length-1, all-NaN, ragged, empty and
// single-series datasets driven through every DistanceMeasure and every
// clustering algorithm. The contract under test (see cluster/algorithm.h and
// DESIGN.md "Robustness contract"): malformed data entering through
// TryCluster yields a clean common::Status error, well-formed-but-degenerate
// data (all-constant series, length-1 series, n = k) clusters to valid
// in-range labels with finite distances everywhere — never an abort, never a
// NaN, never an out-of-range label.
//
// CI additionally runs this binary under AddressSanitizer + UBSan (see
// ci/run_ci.sh), so every fallback path here is also exercised for memory
// and undefined-behavior bugs.

#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/averaging.h"
#include "cluster/dba.h"
#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "cluster/kmedoids.h"
#include "cluster/ksc.h"
#include "cluster/spectral.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/multivariate.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "distance/dtw.h"
#include "distance/elastic.h"
#include "distance/euclidean.h"
#include "tseries/normalization.h"

namespace kshape {
namespace {

using tseries::Series;

// ---------------------------------------------------------------------------
// Distance measures on degenerate series: every value must be finite.
// ---------------------------------------------------------------------------

struct NamedMeasure {
  std::string name;
  const distance::DistanceMeasure* measure;
};

class MeasureFixture {
 public:
  MeasureFixture() {
    Add(std::make_unique<distance::EuclideanDistance>());
    Add(std::make_unique<core::SbdDistance>());
    Add(std::make_unique<core::SbdDistance>(core::CrossCorrelationImpl::kNaive));
    Add(std::make_unique<core::NccDistance>(core::NccNormalization::kBiased));
    Add(std::make_unique<core::NccDistance>(core::NccNormalization::kUnbiased));
    Add(std::make_unique<dtw::DtwMeasure>(
        dtw::DtwMeasure::Unconstrained()));
    Add(std::make_unique<dtw::DtwMeasure>(
        dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5")));
    Add(std::make_unique<distance::ErpMeasure>());
    Add(std::make_unique<distance::EdrMeasure>());
    Add(std::make_unique<distance::MsmMeasure>());
    Add(std::make_unique<distance::CidMeasure>());
    Add(std::make_unique<cluster::KscDistance>());
  }

  const std::vector<NamedMeasure>& measures() const { return named_; }

 private:
  template <typename M>
  void Add(std::unique_ptr<M> m) {
    named_.push_back({m->Name(), m.get()});
    owned_.push_back(std::move(m));
  }

  std::vector<std::unique_ptr<distance::DistanceMeasure>> owned_;
  std::vector<NamedMeasure> named_;
};

TEST(DegenerateDistanceTest, ConstantSeriesGiveFiniteDistances) {
  const MeasureFixture fixture;
  const Series constant(24, 3.5);
  const Series zeros(24, 0.0);  // A constant series after z-normalization.
  common::Rng rng(3);
  const Series normal = tseries::ZNormalized(data::MakeCbf(0, 24, &rng));

  for (const NamedMeasure& m : fixture.measures()) {
    for (const auto& [x, y] : {std::pair<const Series&, const Series&>{
                                   constant, constant},
                               {zeros, zeros},
                               {constant, normal},
                               {zeros, normal},
                               {normal, zeros}}) {
      const double d = m.measure->Distance(x, y);
      EXPECT_TRUE(std::isfinite(d)) << m.name << " returned " << d;
    }
  }
}

TEST(DegenerateDistanceTest, LengthOneSeriesGiveFiniteDistances) {
  // DDTW is excluded by contract: the derivative transform documents a
  // KSHAPE_CHECK on length >= 2 (programmer error, not a data error).
  const MeasureFixture fixture;
  const Series a(1, 2.0);
  const Series b(1, -1.0);
  const Series z(1, 0.0);

  for (const NamedMeasure& m : fixture.measures()) {
    for (const auto& [x, y] : {std::pair<const Series&, const Series&>{a, b},
                               {a, a},
                               {z, z},
                               {z, a}}) {
      const double d = m.measure->Distance(x, y);
      EXPECT_TRUE(std::isfinite(d)) << m.name << " returned " << d;
    }
  }
}

TEST(DegenerateDistanceTest, SelfDistanceIsNonPositiveOrZeroForMetrics) {
  // Self-distance sanity on a degenerate input: for every measure,
  // d(x, x) must be finite; for the true metrics it must be ~0. (SBD on a
  // zero-norm series is the documented fallback 1, so it is only checked for
  // finiteness above.)
  const distance::EuclideanDistance ed;
  const dtw::DtwMeasure dtw = dtw::DtwMeasure::Unconstrained();
  const Series constant(16, 7.0);
  EXPECT_EQ(ed.Distance(constant, constant), 0.0);
  EXPECT_EQ(dtw.Distance(constant, constant), 0.0);
}

// ---------------------------------------------------------------------------
// Clustering algorithms: degenerate-but-valid datasets must produce in-range
// labels; malformed datasets must produce Status errors via TryCluster.
// ---------------------------------------------------------------------------

struct NamedAlgorithm {
  std::string name;
  const cluster::ClusteringAlgorithm* algorithm;
};

class AlgorithmFixture {
 public:
  AlgorithmFixture() {
    ed_ = std::make_unique<distance::EuclideanDistance>();
    sbd_ = std::make_unique<core::SbdDistance>();
    dtw_ = std::make_unique<dtw::DtwMeasure>(
        dtw::DtwMeasure::Unconstrained());
    mean_ = std::make_unique<cluster::ArithmeticMeanAveraging>();
    dba_ = std::make_unique<cluster::DbaAveraging>();

    Add("k-Shape", std::make_unique<core::KShape>());
    core::KShapeOptions uncached;
    uncached.use_spectrum_cache = false;
    Add("k-Shape (no cache)", std::make_unique<core::KShape>(uncached));
    Add("k-AVG+ED", std::make_unique<cluster::KMeans>(ed_.get(), mean_.get(),
                                                      "k-AVG+ED"));
    Add("k-DBA", std::make_unique<cluster::KMeans>(dtw_.get(), dba_.get(),
                                                   "k-DBA"));
    Add("PAM+SBD", std::make_unique<cluster::KMedoids>(sbd_.get(), "PAM+SBD"));
    Add("H-A+ED", std::make_unique<cluster::HierarchicalClustering>(
                      ed_.get(), cluster::Linkage::kAverage, "H-A+ED"));
    Add("Spectral+ED", std::make_unique<cluster::SpectralClustering>(
                           ed_.get(), "Spectral+ED"));
    Add("KSC", std::make_unique<cluster::Ksc>());
  }

  const std::vector<NamedAlgorithm>& algorithms() const { return named_; }

 private:
  void Add(std::string name,
           std::unique_ptr<cluster::ClusteringAlgorithm> algorithm) {
    named_.push_back({std::move(name), algorithm.get()});
    owned_.push_back(std::move(algorithm));
  }

  std::unique_ptr<distance::DistanceMeasure> ed_;
  std::unique_ptr<distance::DistanceMeasure> sbd_;
  std::unique_ptr<distance::DistanceMeasure> dtw_;
  std::unique_ptr<cluster::AveragingMethod> mean_;
  std::unique_ptr<cluster::AveragingMethod> dba_;
  std::vector<std::unique_ptr<cluster::ClusteringAlgorithm>> owned_;
  std::vector<NamedAlgorithm> named_;
};

void ExpectValidLabels(const cluster::ClusteringResult& result, std::size_t n,
                       int k, const std::string& what) {
  ASSERT_EQ(result.assignments.size(), n) << what;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(result.assignments[i], 0) << what << " series " << i;
    EXPECT_LT(result.assignments[i], k) << what << " series " << i;
  }
  for (const Series& centroid : result.centroids) {
    for (const double v : centroid) {
      EXPECT_TRUE(std::isfinite(v)) << what << " centroid value " << v;
    }
  }
}

TEST(DegenerateClusteringTest, AllConstantDataset) {
  const AlgorithmFixture fixture;
  const std::vector<Series> series(6, Series(20, 4.0));
  for (const NamedAlgorithm& a : fixture.algorithms()) {
    common::Rng rng(11);
    const auto result = a.algorithm->TryCluster(series, 2, &rng);
    ASSERT_TRUE(result.ok()) << a.name << ": " << result.status().ToString();
    ExpectValidLabels(result.value(), series.size(), 2, a.name);
  }
}

TEST(DegenerateClusteringTest, AllZeroDataset) {
  // The z-normalized image of a constant dataset: zero-norm everywhere, the
  // hardest case for the shape measures (every SBD/KSC distance hits the
  // documented fallback).
  const AlgorithmFixture fixture;
  const std::vector<Series> series(6, Series(20, 0.0));
  for (const NamedAlgorithm& a : fixture.algorithms()) {
    common::Rng rng(13);
    const auto result = a.algorithm->TryCluster(series, 2, &rng);
    ASSERT_TRUE(result.ok()) << a.name << ": " << result.status().ToString();
    ExpectValidLabels(result.value(), series.size(), 2, a.name);
  }
}

TEST(DegenerateClusteringTest, LengthOneDataset) {
  const AlgorithmFixture fixture;
  std::vector<Series> series;
  for (int i = 0; i < 6; ++i) {
    series.push_back(Series(1, static_cast<double>(i - 3)));
  }
  for (const NamedAlgorithm& a : fixture.algorithms()) {
    common::Rng rng(17);
    const auto result = a.algorithm->TryCluster(series, 2, &rng);
    ASSERT_TRUE(result.ok()) << a.name << ": " << result.status().ToString();
    ExpectValidLabels(result.value(), series.size(), 2, a.name);
  }
}

TEST(DegenerateClusteringTest, SingleSeriesSingleCluster) {
  const AlgorithmFixture fixture;
  common::Rng data_rng(19);
  const std::vector<Series> series = {
      tseries::ZNormalized(data::MakeCbf(1, 32, &data_rng))};
  for (const NamedAlgorithm& a : fixture.algorithms()) {
    common::Rng rng(19);
    const auto result = a.algorithm->TryCluster(series, 1, &rng);
    ASSERT_TRUE(result.ok()) << a.name << ": " << result.status().ToString();
    ExpectValidLabels(result.value(), series.size(), 1, a.name);
  }
}

TEST(DegenerateClusteringTest, KEqualsNDataset) {
  const AlgorithmFixture fixture;
  common::Rng data_rng(23);
  std::vector<Series> series;
  for (int i = 0; i < 4; ++i) {
    series.push_back(tseries::ZNormalized(data::MakeCbf(i % 3, 24, &data_rng)));
  }
  for (const NamedAlgorithm& a : fixture.algorithms()) {
    common::Rng rng(23);
    const auto result =
        a.algorithm->TryCluster(series, static_cast<int>(series.size()), &rng);
    ASSERT_TRUE(result.ok()) << a.name << ": " << result.status().ToString();
    ExpectValidLabels(result.value(), series.size(),
                      static_cast<int>(series.size()), a.name);
  }
}

TEST(DegenerateClusteringTest, MalformedInputsAreStatusErrorsNotAborts) {
  const AlgorithmFixture fixture;
  common::Rng data_rng(29);
  const Series good = tseries::ZNormalized(data::MakeCbf(0, 24, &data_rng));

  const std::vector<Series> empty_dataset;
  const std::vector<Series> with_empty_series = {good, Series{}};
  const std::vector<Series> ragged = {good, Series(12, 1.0)};
  std::vector<Series> with_nan = {good, good};
  with_nan[1][3] = std::numeric_limits<double>::quiet_NaN();
  std::vector<Series> with_inf = {good, good};
  with_inf[0][0] = std::numeric_limits<double>::infinity();
  const std::vector<Series> ok_pair = {good, good};

  for (const NamedAlgorithm& a : fixture.algorithms()) {
    common::Rng rng(29);
    EXPECT_FALSE(a.algorithm->TryCluster(empty_dataset, 1, &rng).ok())
        << a.name;
    EXPECT_FALSE(a.algorithm->TryCluster(with_empty_series, 1, &rng).ok())
        << a.name;
    EXPECT_FALSE(a.algorithm->TryCluster(ragged, 1, &rng).ok()) << a.name;
    EXPECT_FALSE(a.algorithm->TryCluster(with_nan, 1, &rng).ok()) << a.name;
    EXPECT_FALSE(a.algorithm->TryCluster(with_inf, 1, &rng).ok()) << a.name;
    EXPECT_FALSE(a.algorithm->TryCluster(ok_pair, 0, &rng).ok()) << a.name;
    EXPECT_FALSE(a.algorithm->TryCluster(ok_pair, 3, &rng).ok()) << a.name;
    EXPECT_FALSE(a.algorithm->TryCluster(ok_pair, -1, &rng).ok()) << a.name;
  }
}

TEST(DegenerateClusteringTest, DegenerateCentroidsAreFlaggedNotSilent) {
  // An all-constant dataset clusters into all-degenerate groups: k-Shape must
  // keep the documented zero centroid AND surface the repair signal, instead
  // of the old behavior (power iteration on the zero matrix returning a
  // z-normalized random vector as a silent garbage centroid).
  const core::KShape kshape;
  const std::vector<Series> series(5, Series(16, 2.0));
  common::Rng rng(31);
  const auto result = kshape.TryCluster(series, 2, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result.value().degenerate_centroids, 1);
  for (const Series& centroid : result.value().centroids) {
    for (const double v : centroid) EXPECT_EQ(v, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Multivariate k-Shape boundary.
// ---------------------------------------------------------------------------

core::MultivariateSeries MakeMv(std::initializer_list<Series> channels) {
  core::MultivariateSeries s;
  for (const Series& c : channels) s.channels.push_back(c);
  return s;
}

TEST(DegenerateMultivariateTest, MalformedInputsAreStatusErrors) {
  const core::MultivariateKShape algorithm;
  common::Rng data_rng(37);
  const Series good = tseries::ZNormalized(data::MakeCbf(0, 16, &data_rng));
  common::Rng rng(37);

  EXPECT_FALSE(algorithm.TryCluster({}, 1, &rng).ok());
  EXPECT_FALSE(
      algorithm.TryCluster({MakeMv({})}, 1, &rng).ok());  // No channels.
  EXPECT_FALSE(algorithm
                   .TryCluster({MakeMv({good, good}), MakeMv({good})}, 1, &rng)
                   .ok());  // Channel count mismatch.
  EXPECT_FALSE(algorithm
                   .TryCluster({MakeMv({good}), MakeMv({Series(8, 1.0)})}, 1,
                               &rng)
                   .ok());  // Ragged lengths.
  Series with_nan = good;
  with_nan[2] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(algorithm
                   .TryCluster({MakeMv({good}), MakeMv({with_nan})}, 1, &rng)
                   .ok());
  EXPECT_FALSE(algorithm.TryCluster({MakeMv({good})}, 2, &rng).ok());  // k > n.
}

TEST(DegenerateMultivariateTest, ConstantChannelsClusterCleanly) {
  const core::MultivariateKShape algorithm;
  std::vector<core::MultivariateSeries> series(
      4, MakeMv({Series(12, 1.0), Series(12, -2.0)}));
  common::Rng rng(41);
  const auto result = algorithm.TryCluster(series, 2, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().assignments.size(), series.size());
  for (const int label : result.value().assignments) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 2);
  }
  for (const auto& centroid : result.value().centroids) {
    for (const Series& channel : centroid.channels) {
      for (const double v : channel) EXPECT_TRUE(std::isfinite(v));
    }
  }
}

}  // namespace
}  // namespace kshape
