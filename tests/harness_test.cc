#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/kshape.h"
#include "data/generators.h"
#include "harness/experiments.h"
#include "harness/table.h"
#include "tseries/normalization.h"

namespace kshape::harness {
namespace {

TEST(FormatTest, DoubleAndRatio) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(FormatRatio(4.42), "4.4x");
  EXPECT_EQ(FormatRatio(1558.3), "1558x");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Name", "Value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "1000"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(PrintSectionTest, EmitsTitle) {
  std::ostringstream out;
  PrintSection(out, "Table 2");
  EXPECT_NE(out.str().find("Table 2"), std::string::npos);
}

TEST(ComparisonTableTest, MarksSignificantImprovement) {
  MethodScores baseline;
  baseline.name = "base";
  MethodScores better;
  better.name = "better";
  for (int i = 0; i < 20; ++i) {
    baseline.scores.push_back(0.5 + 0.001 * i);
    better.scores.push_back(0.7 + 0.001 * i);
  }
  baseline.total_seconds = 1.0;
  better.total_seconds = 4.4;

  std::ostringstream out;
  PrintComparisonTable(baseline, {better}, "Accuracy", 0.01, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("better"), std::string::npos);
  EXPECT_NE(text.find("yes"), std::string::npos);
  EXPECT_NE(text.find("4.4x"), std::string::npos);
}

TEST(ScatterPairsTest, CountsAboveDiagonal) {
  MethodScores x;
  x.name = "X";
  x.scores = {0.5, 0.6, 0.7};
  MethodScores y;
  y.name = "Y";
  y.scores = {0.6, 0.5, 0.8};
  std::ostringstream out;
  PrintScatterPairs(x, y, {"d1", "d2", "d3"}, out);
  EXPECT_NE(out.str().find("2/3"), std::string::npos);
}

TEST(AverageRanksTest, PrintsRanksAndCriticalDifference) {
  MethodScores a;
  a.name = "A";
  MethodScores b;
  b.name = "B";
  MethodScores c;
  c.name = "C";
  for (int i = 0; i < 10; ++i) {
    a.scores.push_back(0.9);
    b.scores.push_back(0.8);
    c.scores.push_back(0.7);
  }
  std::ostringstream out;
  PrintAverageRanks({a, b, c}, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Average rank"), std::string::npos);
  EXPECT_NE(text.find("Nemenyi CD"), std::string::npos);
  // A must be listed with rank 1.00.
  EXPECT_NE(text.find("1.00"), std::string::npos);
}

TEST(AverageRandIndexTest, DeterministicAndHighOnEasyData) {
  common::Rng rng(1);
  std::vector<tseries::Series> series;
  std::vector<int> labels;
  for (int k = 0; k < 2; ++k) {
    for (int i = 0; i < 10; ++i) {
      // Frequencies 1 and 3: well separated under SBD.
      series.push_back(tseries::ZNormalized(
          data::MakeShiftedSine(2 * k, 64, &rng, 0.05)));
      labels.push_back(k);
    }
  }
  const core::KShape kshape;
  const double a = AverageRandIndex(kshape, series, labels, 2, 3, 99);
  const double b = AverageRandIndex(kshape, series, labels, 2, 3, 99);
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.9);
}

}  // namespace
}  // namespace kshape::harness
