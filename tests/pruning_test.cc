// Contract tests for bound-driven assignment pruning (KShapeOptions::
// use_pruning + the KSHAPE_PRUNE gate) and the spectral early-abandon NCC
// bound underneath it (SbdEngine::{NccUpperBound, DistanceWithAbandon,
// Nearest}).
//
// The load-bearing claims, each pinned here:
//  - the spectral bound is a true upper bound on the NCC peak (lower bound
//    on SBD) on power-of-two and Bluestein transform lengths alike;
//  - abandoning never changes an argmin: Nearest() returns the identical
//    index/distance the exhaustive scan finds;
//  - pruned k-Shape produces the same labels as the exact scan at the
//    default margin, across seeds, thread counts, spectrum layouts, and
//    SIMD backends;
//  - prune_margin = +infinity is bit-identical to the exact path (the
//    movement-bound layer off, the exactness-preserving spectral layer on);
//  - the telemetry partition computed + pruned + abandoned == n*k holds for
//    every assignment iteration, and the exact path reports the full n*k as
//    computed;
//  - the KSHAPE_PRUNE gate and verify_pruning behave as documented.

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "core/sbd_engine.h"
#include "data/generators.h"
#include "fft/fft.h"
#include "model/assigner.h"
#include "simd/dispatch.h"
#include "tseries/normalization.h"

namespace kshape {
namespace {

using tseries::Series;

std::vector<Series> MakeSeries(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Series> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(tseries::ZNormalized(
        data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
  }
  return series;
}

cluster::ClusteringResult RunKShape(const core::KShapeOptions& options,
                                    const std::vector<Series>& series, int k,
                                    uint64_t seed) {
  const core::KShape kshape(options);
  common::Rng rng(seed);
  return kshape.Cluster(series, k, &rng);
}

void ExpectTelemetryPartition(const cluster::ClusteringResult& result,
                              std::size_t n, int k) {
  ASSERT_EQ(result.assignment_stats.size(),
            static_cast<std::size_t>(result.iterations));
  long long computed = 0, pruned = 0, abandoned = 0;
  for (const cluster::AssignmentIterationStats& s : result.assignment_stats) {
    EXPECT_EQ(s.computed + s.pruned_bounds + s.abandoned_partial,
              static_cast<long long>(n) * k);
    EXPECT_GE(s.computed, 0);
    EXPECT_GE(s.pruned_bounds, 0);
    EXPECT_GE(s.abandoned_partial, 0);
    computed += s.computed;
    pruned += s.pruned_bounds;
    abandoned += s.abandoned_partial;
  }
  EXPECT_EQ(result.distances_computed, computed);
  EXPECT_EQ(result.distances_pruned_bounds, pruned);
  EXPECT_EQ(result.distances_abandoned_partial, abandoned);
}

// ---------------------------------------------------------------------------
// Spectral bound validity (SbdEngine layer).
// ---------------------------------------------------------------------------

void ExpectSpectralBoundValid(std::size_t m, core::CrossCorrelationImpl impl,
                              bool half) {
  const std::vector<Series> series = MakeSeries(14, m, m + 31);
  const core::SbdEngine engine(series, impl, half,
                               /*build_bound_planes=*/true);
  ASSERT_TRUE(engine.has_bound_planes());
  common::Rng rng(m + 57);
  const Series query = tseries::ZNormalized(
      data::MakeCbf(1, m, &rng));
  const core::SbdEngine::Query q = engine.MakeQuery(query);
  ASSERT_FALSE(q.mag.empty());

  for (std::size_t i = 0; i < series.size(); ++i) {
    const double peak = engine.MaxNcc(q, i).value;
    const double bound = engine.NccUpperBound(q, i);
    // A theorem up to rounding; the engine's slack constant covers the ulps.
    EXPECT_GE(bound + core::SbdEngine::kDefaultBoundSlack, peak)
        << "m=" << m << " half=" << half << " i=" << i;

    const double exact = engine.Distance(q, i);
    // A cutoff below the true distance must abandon (or the partial sums
    // never certified it — also legal); when it abandons, the returned
    // value is a valid lower bound that clears the cutoff.
    for (double cutoff : {exact - 0.05, exact + 0.05,
                          std::numeric_limits<double>::infinity()}) {
      bool abandoned = false;
      const double v = engine.DistanceWithAbandon(q, i, cutoff, &abandoned);
      if (abandoned) {
        EXPECT_LE(v, exact + core::SbdEngine::kDefaultBoundSlack);
        EXPECT_GT(v, cutoff);
      } else {
        EXPECT_EQ(v, exact);  // Bitwise: the same cached-distance path.
      }
    }
    // +infinity can never abandon.
    bool abandoned = false;
    engine.DistanceWithAbandon(
        q, i, std::numeric_limits<double>::infinity(), &abandoned);
    EXPECT_FALSE(abandoned);
  }
}

TEST(PruningTest, SpectralBoundValidPowerOfTwoLengths) {
  for (std::size_t m : {16, 64, 128}) {
    ExpectSpectralBoundValid(m, core::CrossCorrelationImpl::kFft, true);
    ExpectSpectralBoundValid(m, core::CrossCorrelationImpl::kFft, false);
  }
}

TEST(PruningTest, SpectralBoundValidBluesteinLengths) {
  // kFftNoPow2 transforms at exactly 2m-1 (odd, Bluestein): the bound plane
  // has no Nyquist bin and the suffix checkpoints cover a ragged tail.
  for (std::size_t m : {24, 50, 80}) {
    ExpectSpectralBoundValid(m, core::CrossCorrelationImpl::kFftNoPow2, true);
    ExpectSpectralBoundValid(m, core::CrossCorrelationImpl::kFftNoPow2,
                             false);
  }
}

TEST(PruningTest, NearestMatchesExhaustiveScan) {
  for (std::size_t m : {48, 64}) {
    const std::vector<Series> series = MakeSeries(40, m, m + 3);
    const core::SbdEngine engine(series, core::CrossCorrelationImpl::kFft,
                                 fft::HalfSpectrumEnabled(),
                                 /*build_bound_planes=*/true);
    common::Rng rng(m + 5);
    for (int t = 0; t < 6; ++t) {
      const Series query = tseries::ZNormalized(
          data::MakeCbf(t % 3, m, &rng));
      const core::SbdEngine::Query q = engine.MakeQuery(query);
      const model::NearestResult r = model::Assigner::NearestSeries(engine, q);
      EXPECT_EQ(r.computed + r.abandoned,
                static_cast<long long>(engine.size()));

      std::vector<double> all;
      engine.DistanceToAll(q, &all);
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (all[i] < best_d) {
          best_d = all[i];
          best = i;
        }
      }
      EXPECT_EQ(r.index, best);
      EXPECT_EQ(r.distance, best_d);  // Bitwise.
    }
  }
}

TEST(PruningTest, BoundPlanesOffByDefault) {
  const std::vector<Series> series = MakeSeries(6, 32, 7);
  const core::SbdEngine engine(series);
  EXPECT_FALSE(engine.has_bound_planes());
  const core::SbdEngine::Query q = engine.MakeQuery(series[0]);
  EXPECT_TRUE(q.mag.empty());
  // NearestSeries degrades to the plain scan: exact result, zero abandoned.
  const model::NearestResult r = model::Assigner::NearestSeries(engine, q);
  EXPECT_EQ(r.abandoned, 0);
  EXPECT_EQ(r.computed, static_cast<long long>(engine.size()));
  EXPECT_EQ(r.index, 0u);
}

// ---------------------------------------------------------------------------
// k-Shape label equality and telemetry.
// ---------------------------------------------------------------------------

TEST(PruningTest, LabelsMatchExactAcrossSeedsThreadsLayoutsBackends) {
  const int saved_threads = common::ThreadCount();
  const simd::Backend saved_backend = simd::ActiveBackend();
  const std::vector<Series> series = MakeSeries(60, 64, 101);

  std::vector<simd::Backend> backends = {simd::Backend::kScalar};
  if (simd::Avx2Available()) backends.push_back(simd::Backend::kAvx2);

  for (uint64_t seed : {11u, 12u}) {
    for (bool half : {true, false}) {
      core::KShapeOptions pruned_options;
      pruned_options.use_half_spectrum = half;
      core::KShapeOptions exact_options = pruned_options;
      exact_options.use_pruning = false;

      for (simd::Backend backend : backends) {
        simd::SetBackendForTesting(backend);
        std::vector<int> reference_assignments;
        for (int threads : {1, 2, 8}) {
          common::SetThreadCount(threads);
          const cluster::ClusteringResult pruned =
              RunKShape(pruned_options, series, 3, seed);
          const cluster::ClusteringResult exact =
              RunKShape(exact_options, series, 3, seed);
          EXPECT_EQ(pruned.assignments, exact.assignments)
              << "seed=" << seed << " half=" << half
              << " threads=" << threads;
          EXPECT_EQ(pruned.iterations, exact.iterations);
          EXPECT_EQ(pruned.converged, exact.converged);
          ExpectTelemetryPartition(pruned, series.size(), 3);
          // The pruned path itself is thread-count-invariant.
          if (reference_assignments.empty()) {
            reference_assignments = pruned.assignments;
          } else {
            EXPECT_EQ(pruned.assignments, reference_assignments)
                << "thread-count variance at threads=" << threads;
          }
        }
      }
    }
  }
  common::SetThreadCount(saved_threads);
  simd::SetBackendForTesting(saved_backend);
}

TEST(PruningTest, PrunedPathBitIdenticalAcrossBackends) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 backend not available";
  const simd::Backend saved_backend = simd::ActiveBackend();
  const std::vector<Series> series = MakeSeries(50, 64, 202);
  core::KShapeOptions options;

  simd::SetBackendForTesting(simd::Backend::kScalar);
  const cluster::ClusteringResult scalar = RunKShape(options, series, 3, 7);
  simd::SetBackendForTesting(simd::Backend::kAvx2);
  const cluster::ClusteringResult avx2 = RunKShape(options, series, 3, 7);
  simd::SetBackendForTesting(saved_backend);

  EXPECT_EQ(scalar.assignments, avx2.assignments);
  EXPECT_EQ(scalar.iterations, avx2.iterations);
  // The abandon decisions come from the bit-identical partial-sums kernel,
  // so even the telemetry must agree counter for counter.
  ASSERT_EQ(scalar.assignment_stats.size(), avx2.assignment_stats.size());
  for (std::size_t it = 0; it < scalar.assignment_stats.size(); ++it) {
    EXPECT_EQ(scalar.assignment_stats[it].computed,
              avx2.assignment_stats[it].computed);
    EXPECT_EQ(scalar.assignment_stats[it].pruned_bounds,
              avx2.assignment_stats[it].pruned_bounds);
    EXPECT_EQ(scalar.assignment_stats[it].abandoned_partial,
              avx2.assignment_stats[it].abandoned_partial);
  }
}

TEST(PruningTest, InfiniteMarginBitIdenticalToExactPath) {
  const std::vector<Series> series = MakeSeries(45, 64, 303);
  core::KShapeOptions inf_options;
  inf_options.prune_margin = std::numeric_limits<double>::infinity();
  core::KShapeOptions exact_options;
  exact_options.use_pruning = false;

  const cluster::ClusteringResult a = RunKShape(inf_options, series, 3, 9);
  const cluster::ClusteringResult b = RunKShape(exact_options, series, 3, 9);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.empty_cluster_reseeds, b.empty_cluster_reseeds);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (std::size_t j = 0; j < a.centroids.size(); ++j) {
    ASSERT_EQ(a.centroids[j].size(), b.centroids[j].size());
    for (std::size_t t = 0; t < a.centroids[j].size(); ++t) {
      EXPECT_EQ(a.centroids[j][t], b.centroids[j][t]);  // Bitwise.
    }
  }
  // The movement-bound layer is off; only spectral abandons may remain, and
  // nothing is ever pruned by bounds.
  EXPECT_EQ(a.distances_pruned_bounds, 0);
  ExpectTelemetryPartition(a, series.size(), 3);
}

TEST(PruningTest, ExactPathReportsFullScanTelemetry) {
  const std::vector<Series> series = MakeSeries(30, 48, 404);
  core::KShapeOptions options;
  options.use_pruning = false;
  const cluster::ClusteringResult r = RunKShape(options, series, 3, 13);
  ASSERT_EQ(r.assignment_stats.size(),
            static_cast<std::size_t>(r.iterations));
  for (const cluster::AssignmentIterationStats& s : r.assignment_stats) {
    EXPECT_EQ(s.computed, static_cast<long long>(series.size()) * 3);
    EXPECT_EQ(s.pruned_bounds, 0);
    EXPECT_EQ(s.abandoned_partial, 0);
  }
  EXPECT_EQ(r.distances_computed,
            static_cast<long long>(r.iterations) * series.size() * 3);
}

TEST(PruningTest, PruneGateOffForcesExactScan) {
  const std::vector<Series> series = MakeSeries(30, 48, 505);
  core::KShapeOptions options;  // use_pruning defaults to true.
  core::SetPruningEnabledForTesting(false);
  const cluster::ClusteringResult gated = RunKShape(options, series, 3, 17);
  core::SetPruningEnabledForTesting(true);
  const cluster::ClusteringResult pruned = RunKShape(options, series, 3, 17);

  EXPECT_EQ(gated.distances_pruned_bounds, 0);
  EXPECT_EQ(gated.distances_abandoned_partial, 0);
  EXPECT_EQ(gated.distances_computed,
            static_cast<long long>(gated.iterations) * series.size() * 3);
  EXPECT_EQ(gated.assignments, pruned.assignments);
}

TEST(PruningTest, VerifyModeReportsNoMismatchesAtDefaultMargin) {
  for (uint64_t seed : {21u, 22u, 23u}) {
    const std::vector<Series> series = MakeSeries(60, 64, 600 + seed);
    core::KShapeOptions options;
    options.verify_pruning = true;
    const cluster::ClusteringResult r = RunKShape(options, series, 3, seed);
    EXPECT_EQ(r.pruned_label_mismatches, 0) << "seed=" << seed;
    ExpectTelemetryPartition(r, series.size(), 3);
  }
}

TEST(PruningTest, PruningActuallySkipsWorkOnceSettled) {
  // Not a hard performance bound — just a guard that the machinery engages:
  // on well-separated clusters some later iteration must skip a nonzero
  // share of the n*k candidate pairs.
  const std::vector<Series> series = MakeSeries(120, 128, 707);
  core::KShapeOptions options;
  const cluster::ClusteringResult r = RunKShape(options, series, 3, 29);
  ASSERT_GE(r.iterations, 2);
  long long skipped_after_first = 0;
  for (std::size_t it = 1; it < r.assignment_stats.size(); ++it) {
    skipped_after_first += r.assignment_stats[it].pruned_bounds +
                           r.assignment_stats[it].abandoned_partial;
  }
  EXPECT_GT(skipped_after_first, 0);
}

}  // namespace
}  // namespace kshape
