// Unit tests for the task-parallel runtime in common/parallel.h: chunk
// decomposition, index coverage, empty/degenerate ranges, exception
// propagation, nested-call safety, the single-thread inline fallback, and
// the KSHAPE_THREADS / SetThreadCount configuration surface.

#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace kshape {
namespace {

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  common::ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v = 0;
  pool.ParallelFor(0, n, 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++visits[i];
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  common::ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, GrainLargerThanRangeIsOneChunk) {
  common::ThreadPool pool(4);
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::mutex mu;
  pool.ParallelFor(2, 10, 100, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 2u);
  EXPECT_EQ(chunks[0].second, 10u);
}

TEST(ThreadPoolTest, GrainZeroTreatedAsOne) {
  common::ThreadPool pool(2);
  std::atomic<int> chunks{0};
  pool.ParallelFor(0, 5, 0, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(end, begin + 1);
    ++chunks;
  });
  EXPECT_EQ(chunks, 5);
}

TEST(ThreadPoolTest, ChunkDecompositionIndependentOfThreadCount) {
  // The determinism contract: the same (begin, end, grain) yields the same
  // chunk set at every thread count.
  auto collect = [](int threads) {
    common::ThreadPool pool(threads);
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    std::mutex mu;
    pool.ParallelFor(3, 50, 8, [&](std::size_t begin, std::size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(begin, end);
    });
    return chunks;
  };
  const auto at1 = collect(1);
  const auto at2 = collect(2);
  const auto at8 = collect(8);
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
  // 47 indices at grain 8 -> 6 chunks, last one short.
  EXPECT_EQ(at1.size(), 6u);
  EXPECT_TRUE(at1.count({3, 11}));
  EXPECT_TRUE(at1.count({43, 50}));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  common::ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](std::size_t begin, std::size_t) {
                         if (begin == 42) {
                           throw std::runtime_error("boom at 42");
                         }
                       }),
      std::runtime_error);
  // The pool survives a throwing region and runs later ones normally.
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 10, 1, [&](std::size_t begin, std::size_t) {
    sum += static_cast<int>(begin);
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPoolTest, ExceptionOnSingleThreadPoolPropagatesToo) {
  common::ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 3, 1,
                                [](std::size_t, std::size_t) {
                                  throw std::logic_error("inline boom");
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  common::ThreadPool pool(4);
  const std::size_t outer = 16;
  const std::size_t inner = 32;
  std::vector<std::atomic<int>> visits(outer * inner);
  for (auto& v : visits) v = 0;
  pool.ParallelFor(0, outer, 1, [&](std::size_t obegin, std::size_t oend) {
    for (std::size_t o = obegin; o < oend; ++o) {
      // A nested region on the same pool must not deadlock; it runs inline
      // on the worker that owns the outer chunk.
      pool.ParallelFor(0, inner, 4, [&](std::size_t ibegin,
                                        std::size_t iend) {
        for (std::size_t i = ibegin; i < iend; ++i) ++visits[o * inner + i];
      });
    }
  });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "cell " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolSpawnsNoWorkersAndRunsInline) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.ParallelFor(0, 20, 3, [&](std::size_t begin, std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(begin);  // Safe: everything runs on this thread.
  });
  // Inline execution visits chunks in ascending order.
  const std::vector<std::size_t> expected = {0, 3, 6, 9, 12, 15, 18};
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ManySmallRegionsBackToBack) {
  // Stresses region turnover (the seq-number handshake between caller and
  // workers) rather than throughput.
  common::ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(0, 8, 1,
                     [&](std::size_t, std::size_t) { ++count; });
    ASSERT_EQ(count, 8) << "round " << round;
  }
}

TEST(GlobalPoolConfigTest, SetThreadCountControlsGlobalPool) {
  common::SetThreadCount(3);
  EXPECT_EQ(common::ThreadCount(), 3);
  common::SetThreadCount(1);
  EXPECT_EQ(common::ThreadCount(), 1);
}

TEST(GlobalPoolConfigTest, KshapeThreadsEnvVarIsHonored) {
  ASSERT_EQ(setenv("KSHAPE_THREADS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(common::DefaultThreadCount(), 5);
  common::SetThreadCount(0);  // Re-read the environment.
  EXPECT_EQ(common::ThreadCount(), 5);

  // Garbage or non-positive values fall back to hardware concurrency.
  ASSERT_EQ(setenv("KSHAPE_THREADS", "0", 1), 0);
  EXPECT_GE(common::DefaultThreadCount(), 1);
  ASSERT_EQ(setenv("KSHAPE_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(common::DefaultThreadCount(), 1);

  ASSERT_EQ(unsetenv("KSHAPE_THREADS"), 0);
  common::SetThreadCount(1);  // Leave a known state for other tests.
}

TEST(GlobalPoolConfigTest, FreeParallelForUsesGlobalPool) {
  common::SetThreadCount(2);
  std::vector<int> out(100, 0);
  common::ParallelFor(0, out.size(), 10,
                      [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = static_cast<int>(i);
  });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 4950);
  common::SetThreadCount(1);
}

}  // namespace
}  // namespace kshape
