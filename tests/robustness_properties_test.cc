// Property-based robustness checks for the metric layer and the input
// conditioner, swept over random seeds and over series lengths that are not
// powers of two (so the no-pow2 FFT path exercises Bluestein's algorithm):
//
//   - SBD stays within its documented range [0, 2] and is symmetric;
//   - SBD(x, x) = 0 and z-normalized SBD ignores amplitude scale and offset
//     (the invariances of Section 3.1 of the paper);
//   - circularly shifting a compactly supported series is recovered by the
//     alignment search (near-zero distance);
//   - conditioning is idempotent: re-conditioning an already conditioned
//     series with the same options is an exact no-op;
//   - the fault injector is deterministic under a fixed seed, and its output
//     conditions into a clusterable dataset end-to-end.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/kshape.h"
#include "core/sbd.h"
#include "data/generators.h"
#include "harness/experiments.h"
#include "tseries/conditioning.h"
#include "tseries/io.h"
#include "tseries/normalization.h"

namespace kshape {
namespace {

using tseries::Series;

// 31, 37, 61 are prime (Bluestein under kFftNoPow2); 48 is even but not a
// power of two; 64 covers the fast path.
constexpr std::size_t kLengths[] = {31, 37, 48, 61, 64};
constexpr uint64_t kSeeds[] = {1, 2, 3};
constexpr core::CrossCorrelationImpl kImpls[] = {
    core::CrossCorrelationImpl::kFft,
    core::CrossCorrelationImpl::kFftNoPow2,
};

Series RandomSeries(std::size_t m, common::Rng* rng) {
  return tseries::ZNormalized(
      data::MakeCbf(rng->UniformInt(3), m, rng));
}

TEST(SbdPropertiesTest, RangeSymmetryAndIdentity) {
  for (const uint64_t seed : kSeeds) {
    for (const std::size_t m : kLengths) {
      common::Rng rng(seed);
      const Series x = RandomSeries(m, &rng);
      const Series y = RandomSeries(m, &rng);
      for (const auto impl : kImpls) {
        const double dxy = core::Sbd(x, y, impl).distance;
        const double dyx = core::Sbd(y, x, impl).distance;
        EXPECT_GE(dxy, -1e-9) << "m=" << m << " seed=" << seed;
        EXPECT_LE(dxy, 2.0 + 1e-9) << "m=" << m << " seed=" << seed;
        EXPECT_NEAR(dxy, dyx, 1e-9) << "m=" << m << " seed=" << seed;
        EXPECT_NEAR(core::Sbd(x, x, impl).distance, 0.0, 1e-9)
            << "m=" << m << " seed=" << seed;
      }
    }
  }
}

TEST(SbdPropertiesTest, ZNormalizedScaleAndOffsetInvariance) {
  for (const uint64_t seed : kSeeds) {
    for (const std::size_t m : kLengths) {
      common::Rng rng(seed);
      const Series x = data::MakeShiftedSine(1, m, &rng, 0.05);
      Series transformed = x;
      const double scale = rng.Uniform(0.5, 10.0);
      const double offset = rng.Uniform(-5.0, 5.0);
      for (double& v : transformed) v = scale * v + offset;
      for (const auto impl : kImpls) {
        const double d = core::Sbd(tseries::ZNormalized(x),
                                   tseries::ZNormalized(transformed), impl)
                             .distance;
        EXPECT_NEAR(d, 0.0, 1e-8)
            << "m=" << m << " seed=" << seed << " scale=" << scale;
      }
    }
  }
}

TEST(SbdPropertiesTest, CircularShiftOfCompactSupportIsRecovered) {
  // A noiseless bump supported strictly inside the window: circularly
  // shifting it by less than the margin only rotates zeros around the ends,
  // so the SBD alignment search must recover the shift exactly and report a
  // near-zero distance (Figure 1's global-alignment regime).
  for (const std::size_t m : kLengths) {
    Series bump(m, 0.0);
    const double center = 0.5 * static_cast<double>(m);
    const double width = 0.05 * static_cast<double>(m);
    for (std::size_t t = 0; t < m; ++t) {
      const double z = (static_cast<double>(t) - center) / width;
      bump[t] = std::exp(-0.5 * z * z);
    }
    const int margin = static_cast<int>(m) / 8;
    for (const int shift : {-margin, margin}) {
      Series rotated = bump;
      if (shift >= 0) {
        std::rotate(rotated.begin(), rotated.end() - shift, rotated.end());
      } else {
        std::rotate(rotated.begin(), rotated.begin() - shift, rotated.end());
      }
      for (const auto impl : kImpls) {
        const core::SbdResult result = core::Sbd(bump, rotated, impl);
        EXPECT_NEAR(result.distance, 0.0, 1e-7)
            << "m=" << m << " shift=" << shift;
        EXPECT_EQ(result.shift, -shift) << "m=" << m;
      }
    }
  }
}

TEST(ConditioningPropertiesTest, ConditioningIsIdempotent) {
  // Every policy combination: conditioning an already conditioned series a
  // second time with the same options must be an exact (bitwise) no-op.
  const tseries::LengthPolicy length_policies[] = {
      tseries::LengthPolicy::kPadZeros, tseries::LengthPolicy::kTruncate,
      tseries::LengthPolicy::kResample};
  const tseries::MissingPolicy missing_policies[] = {
      tseries::MissingPolicy::kInterpolate, tseries::MissingPolicy::kMeanFill};

  for (const uint64_t seed : kSeeds) {
    for (const std::size_t m : kLengths) {
      for (const auto lp : length_policies) {
        for (const auto mp : missing_policies) {
          common::Rng rng(seed);
          Series corrupted = data::MakeCbf(0, m, &rng);
          data::FaultInjectionOptions faults;
          faults.nan_probability = 1.0;
          faults.truncate_probability = 0.5;
          data::InjectFaults(&corrupted, faults, &rng);

          tseries::ConditioningOptions options;
          options.length_policy = lp;
          options.missing_policy = mp;
          // Pad targets the full length (a truncated tail is refilled);
          // truncate/resample target half of it (every fault-injected length
          // stays >= m/2, so truncation never sees a too-short series).
          options.target_length =
              lp == tseries::LengthPolicy::kPadZeros ? m : m / 2;

          const auto once =
              tseries::ConditionSeries(corrupted, options.target_length,
                                       options);
          ASSERT_TRUE(once.ok()) << once.status().ToString();
          const auto twice =
              tseries::ConditionSeries(once.value(), options.target_length,
                                       options);
          ASSERT_TRUE(twice.ok()) << twice.status().ToString();
          EXPECT_EQ(once.value(), twice.value())
              << "policies " << tseries::LengthPolicyName(lp) << "/"
              << tseries::MissingPolicyName(mp) << " m=" << m;
        }
      }
    }
  }
}

TEST(ConditioningPropertiesTest, PoliciesProduceEqualLengthFiniteOutput) {
  for (const uint64_t seed : kSeeds) {
    common::Rng rng(seed);
    data::FaultInjectionOptions faults;
    faults.nan_probability = 0.6;
    faults.truncate_probability = 0.6;
    faults.constant_probability = 0.3;
    faults.spike_probability = 0.3;
    const data::CorruptedData corpus = data::MakeCorruptedData(
        "corrupted", 3, 6, [](int klass, common::Rng* r) {
          return data::MakeCbf(klass, 60, r);
        }, faults, &rng);

    for (const auto lp : {tseries::LengthPolicy::kPadZeros,
                          tseries::LengthPolicy::kTruncate,
                          tseries::LengthPolicy::kResample}) {
      tseries::ConditioningOptions options;
      options.length_policy = lp;
      options.missing_policy = tseries::MissingPolicy::kInterpolate;
      const auto dataset = tseries::ConditionToDataset(
          corpus.series, corpus.labels, corpus.name, options);
      ASSERT_TRUE(dataset.ok())
          << tseries::LengthPolicyName(lp) << ": "
          << dataset.status().ToString();
      EXPECT_EQ(dataset.value().size(), corpus.series.size());
      for (std::size_t i = 0; i < dataset.value().size(); ++i) {
        EXPECT_EQ(dataset.value().series(i).size(), dataset.value().length());
        for (const double v : dataset.value().series(i)) {
          EXPECT_TRUE(std::isfinite(v))
              << "series " << i << " under " << tseries::LengthPolicyName(lp);
        }
      }
    }
  }
}

TEST(FaultInjectionTest, DeterministicUnderFixedSeed) {
  data::FaultInjectionOptions faults;
  faults.nan_probability = 0.5;
  faults.truncate_probability = 0.5;
  faults.constant_probability = 0.5;
  faults.spike_probability = 0.5;
  const auto generate = [&] {
    common::Rng rng(99);
    return data::MakeCorruptedData("repro", 2, 8, [](int klass,
                                                     common::Rng* r) {
      return data::MakeCbf(klass, 50, r);
    }, faults, &rng);
  };
  const data::CorruptedData a = generate();
  const data::CorruptedData b = generate();
  ASSERT_EQ(a.series.size(), b.series.size());
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    ASSERT_EQ(a.series[i].size(), b.series[i].size()) << "series " << i;
    for (std::size_t t = 0; t < a.series[i].size(); ++t) {
      // NaN != NaN, so compare bit patterns via the isnan split.
      if (std::isnan(a.series[i][t])) {
        EXPECT_TRUE(std::isnan(b.series[i][t])) << i << "," << t;
      } else {
        EXPECT_EQ(a.series[i][t], b.series[i][t]) << i << "," << t;
      }
    }
  }
}

TEST(FaultInjectionTest, CorruptedCorpusClustersEndToEndThroughHarness) {
  // The acceptance path of the robustness layer: a ragged, NaN-bearing corpus
  // goes through TryAverageRandIndex (conditioning + validation + k-Shape)
  // and comes out as a finite score, with no aborts anywhere.
  common::Rng rng(7);
  data::FaultInjectionOptions faults;
  faults.nan_probability = 0.4;
  faults.truncate_probability = 0.4;
  faults.constant_probability = 0.2;
  const data::CorruptedData corpus = data::MakeCorruptedData(
      "end-to-end", 3, 8, [](int klass, common::Rng* r) {
        return data::MakeCbf(klass, 64, r);
      }, faults, &rng);

  tseries::ConditioningOptions conditioning;
  conditioning.length_policy = tseries::LengthPolicy::kResample;
  conditioning.missing_policy = tseries::MissingPolicy::kInterpolate;

  const core::KShape algorithm;
  const auto score = harness::TryAverageRandIndex(
      algorithm, corpus.series, corpus.labels, 3, 3, 42, conditioning);
  ASSERT_TRUE(score.ok()) << score.status().ToString();
  EXPECT_TRUE(std::isfinite(score.value()));
  EXPECT_GE(score.value(), 0.0);
  EXPECT_LE(score.value(), 1.0);

  // Without conditioning the same corpus is rejected with a Status error,
  // never an abort.
  const auto rejected = harness::TryAverageRandIndex(
      algorithm, corpus.series, corpus.labels, 3, 3, 42, {});
  EXPECT_FALSE(rejected.ok());
}

TEST(ConditioningPropertiesTest, LenientUcrReaderConditionsHostileText) {
  // Ragged rows with "?", "nan" and "inf" markers: the lenient overload
  // repairs them under the given policies; the strict-equivalent options
  // (both kReject) refuse the same text with a Status error.
  const std::string text =
      "0,1.0,2.0,?,4.0,5.0\n"
      "1,2.0,nan,6.0\n"
      "0,3.0,1.0,4.0,inf,2.0,7.0\n";

  tseries::ConditioningOptions lenient;
  lenient.length_policy = tseries::LengthPolicy::kPadZeros;
  lenient.missing_policy = tseries::MissingPolicy::kInterpolate;
  const auto dataset = tseries::ParseUcrText(text, "hostile", lenient);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset.value().size(), 3u);
  EXPECT_EQ(dataset.value().length(), 6u);  // Padded to the longest row.
  EXPECT_EQ(dataset.value().labels(), (std::vector<int>{0, 1, 0}));
  for (std::size_t i = 0; i < dataset.value().size(); ++i) {
    for (const double v : dataset.value().series(i)) {
      EXPECT_TRUE(std::isfinite(v)) << "series " << i;
    }
  }
  // Missing markers were interpolated, not zeroed: row 0's "?" sits between
  // 2.0 and 4.0, so it must come back as 3.0.
  EXPECT_DOUBLE_EQ(dataset.value().series(0)[2], 3.0);

  const auto rejected = tseries::ParseUcrText(text, "hostile", {});
  EXPECT_FALSE(rejected.ok());
}

TEST(TrySbdTest, RejectsMalformedAndAcceptsDegenerate) {
  const Series x(32, 1.0);
  Series with_nan = x;
  with_nan[5] = std::numeric_limits<double>::quiet_NaN();

  EXPECT_FALSE(core::TrySbd(Series{}, x).ok());
  EXPECT_FALSE(core::TrySbd(x, Series(16, 1.0)).ok());
  EXPECT_FALSE(core::TrySbd(with_nan, x).ok());
  EXPECT_FALSE(core::TrySbd(x, with_nan).ok());

  // Constant (zero-norm after z-normalization) input is NOT an error: the
  // documented fallback distance 1 applies.
  const auto degenerate =
      core::TrySbd(tseries::ZNormalized(x), tseries::ZNormalized(x));
  ASSERT_TRUE(degenerate.ok());
  EXPECT_EQ(degenerate.value().distance, 1.0);

  common::Rng rng(5);
  const Series a = RandomSeries(48, &rng);
  const Series b = RandomSeries(48, &rng);
  const auto ok = core::TrySbd(a, b);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().distance, core::Sbd(a, b).distance);
}

}  // namespace
}  // namespace kshape
