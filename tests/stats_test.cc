#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "stats/special_functions.h"
#include "stats/tests.h"

namespace kshape::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
  EXPECT_NEAR(NormalCdf(3.0), 0.99865, 1e-5);
}

TEST(TwoSidedNormalPValueTest, KnownValues) {
  EXPECT_NEAR(TwoSidedNormalPValue(0.0), 1.0, 1e-12);
  EXPECT_NEAR(TwoSidedNormalPValue(1.959963985), 0.05, 1e-6);
  EXPECT_NEAR(TwoSidedNormalPValue(2.575829), 0.01, 1e-5);
}

TEST(GammaTest, RegularizedGammaIdentities) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
    EXPECT_NEAR(RegularizedGammaP(1.0, x) + RegularizedGammaQ(1.0, x), 1.0,
                1e-10);
  }
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.5, 0.0), 1.0);
}

TEST(ChiSquareTest, KnownCriticalValues) {
  // P(X > 3.841) = 0.05 for df = 1; P(X > 5.991) = 0.05 for df = 2.
  EXPECT_NEAR(ChiSquareSurvival(3.841459, 1), 0.05, 1e-4);
  EXPECT_NEAR(ChiSquareSurvival(5.991465, 2), 0.05, 1e-4);
  EXPECT_NEAR(ChiSquareSurvival(9.487729, 4), 0.05, 1e-4);
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(0.0, 3), 1.0);
}

TEST(RankDescendingTest, SimpleAndTiedRanks) {
  const std::vector<double> scores = {0.9, 0.7, 0.8};
  const std::vector<double> ranks = RankDescending(scores);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 3.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);

  const std::vector<double> tied = {0.5, 0.9, 0.5};
  const std::vector<double> tied_ranks = RankDescending(tied);
  EXPECT_DOUBLE_EQ(tied_ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(tied_ranks[0], 2.5);
  EXPECT_DOUBLE_EQ(tied_ranks[2], 2.5);
}

TEST(WilcoxonTest, AllZeroDifferencesGiveNeutralResult) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const WilcoxonResult r = WilcoxonSignedRank(a, a);
  EXPECT_EQ(r.n_effective, 0);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WilcoxonTest, HandComputedSmallExample) {
  // Differences: +1, +2, +3, -4 -> |d| ranks 1,2,3,4; W+ = 1+2+3 = 6.
  const std::vector<double> a = {2.0, 4.0, 6.0, 1.0};
  const std::vector<double> b = {1.0, 2.0, 3.0, 5.0};
  const WilcoxonResult r = WilcoxonSignedRank(a, b);
  EXPECT_EQ(r.n_effective, 4);
  EXPECT_DOUBLE_EQ(r.w_plus, 6.0);
  // mean = 5, var = 4*5*9/24 = 7.5; z = (6-5-0.5)/sqrt(7.5).
  EXPECT_NEAR(r.z, 0.5 / std::sqrt(7.5), 1e-10);
}

TEST(WilcoxonTest, ClearlyShiftedSamplesAreSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(static_cast<double>(i) + 10.0 + 0.01 * i);
    b.push_back(static_cast<double>(i));
  }
  const WilcoxonResult r = WilcoxonSignedRank(a, b);
  EXPECT_GT(r.z, 0.0);
  EXPECT_LT(r.p_value, 0.001);
}

TEST(WilcoxonTest, SymmetricInSign) {
  const std::vector<double> a = {5.0, 1.0, 7.0, 2.0, 9.0};
  const std::vector<double> b = {1.0, 2.0, 3.0, 4.0, 5.0};
  const WilcoxonResult ab = WilcoxonSignedRank(a, b);
  const WilcoxonResult ba = WilcoxonSignedRank(b, a);
  EXPECT_NEAR(ab.z, -ba.z, 1e-12);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
}

TEST(FriedmanTest, HandComputedExample) {
  // 3 methods, 4 datasets; method 0 always best, method 2 always worst.
  linalg::Matrix scores(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    scores(i, 0) = 0.9;
    scores(i, 1) = 0.8;
    scores(i, 2) = 0.7;
  }
  const FriedmanResult r = FriedmanTest(scores);
  EXPECT_DOUBLE_EQ(r.average_ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(r.average_ranks[1], 2.0);
  EXPECT_DOUBLE_EQ(r.average_ranks[2], 3.0);
  // chi2 = 12*4/(3*4) * (14 - 3*16/4) = 4 * 2 = 8.
  EXPECT_NEAR(r.chi_square, 8.0, 1e-10);
  EXPECT_LT(r.p_value, 0.05);
}

TEST(FriedmanTest, IndistinguishableMethodsAreNotSignificant) {
  linalg::Matrix scores(6, 3);
  // Rotate which method "wins" so ranks even out.
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      scores(i, j) = ((i + j) % 3 == 0) ? 0.9 : ((i + j) % 3 == 1 ? 0.8 : 0.7);
    }
  }
  const FriedmanResult r = FriedmanTest(scores);
  EXPECT_NEAR(r.average_ranks[0], 2.0, 1e-9);
  EXPECT_NEAR(r.chi_square, 0.0, 1e-9);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(NemenyiTest, MatchesDemsarFormula) {
  // k=4, n=48: CD = 2.569 * sqrt(4*5 / (6*48)).
  const double cd = NemenyiCriticalDifference(4, 48, 0.05);
  EXPECT_NEAR(cd, 2.569 * std::sqrt(20.0 / 288.0), 1e-9);
  // CD shrinks with more datasets.
  EXPECT_LT(NemenyiCriticalDifference(4, 100, 0.05), cd);
  // Stricter alpha widens it.
  EXPECT_GT(NemenyiCriticalDifference(4, 48, 0.01), cd);
}

TEST(CompareScoresTest, TalliesWithTolerance) {
  const std::vector<double> a = {0.9, 0.5, 0.7, 0.6};
  const std::vector<double> b = {0.8, 0.5, 0.9, 0.6};
  const WinTieLoss wtl = CompareScores(a, b);
  EXPECT_EQ(wtl.wins, 1);
  EXPECT_EQ(wtl.ties, 2);
  EXPECT_EQ(wtl.losses, 1);
}

}  // namespace
}  // namespace kshape::stats
