#include "tseries/paa.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "distance/euclidean.h"

namespace kshape::tseries {
namespace {

TEST(PaaTest, EvenDivisionAveragesFrames) {
  const Series x = {1.0, 3.0, 5.0, 7.0, 2.0, 4.0};
  const Series sketch = Paa(x, 3);
  ASSERT_EQ(sketch.size(), 3u);
  EXPECT_DOUBLE_EQ(sketch[0], 2.0);
  EXPECT_DOUBLE_EQ(sketch[1], 6.0);
  EXPECT_DOUBLE_EQ(sketch[2], 3.0);
}

TEST(PaaTest, FullLengthIsIdentity) {
  const Series x = {1.0, -2.0, 3.0};
  EXPECT_EQ(Paa(x, 3), x);
}

TEST(PaaTest, SingleSegmentIsTheMean) {
  const Series x = {2.0, 4.0, 6.0, 8.0};
  const Series sketch = Paa(x, 1);
  ASSERT_EQ(sketch.size(), 1u);
  EXPECT_DOUBLE_EQ(sketch[0], 5.0);
}

TEST(PaaTest, UnevenDivisionSplitsBoundarySamples) {
  // m = 3 into 2 segments: frame = 1.5.
  // Segment 0 covers [0, 1.5): all of x0, half of x1.
  // Segment 1 covers [1.5, 3): half of x1, all of x2.
  const Series x = {0.0, 6.0, 12.0};
  const Series sketch = Paa(x, 2);
  EXPECT_DOUBLE_EQ(sketch[0], (0.0 * 1.0 + 6.0 * 0.5) / 1.5);
  EXPECT_DOUBLE_EQ(sketch[1], (6.0 * 0.5 + 12.0 * 1.0) / 1.5);
}

TEST(PaaTest, PreservesTheGlobalMean) {
  common::Rng rng(1);
  Series x(100);
  for (double& v : x) v = rng.Gaussian(3.0, 2.0);
  for (std::size_t segments : {2, 5, 10, 25, 50}) {
    const Series sketch = Paa(x, segments);
    double original_mean = 0.0;
    for (double v : x) original_mean += v;
    original_mean /= static_cast<double>(x.size());
    double sketch_mean = 0.0;
    for (double v : sketch) sketch_mean += v;
    sketch_mean /= static_cast<double>(sketch.size());
    EXPECT_NEAR(sketch_mean, original_mean, 1e-9) << segments;
  }
}

TEST(PaaTest, ReconstructionIsPiecewiseConstant) {
  const Series sketch = {1.0, -1.0};
  const Series back = PaaReconstruct(sketch, 6);
  ASSERT_EQ(back.size(), 6u);
  for (int t = 0; t < 3; ++t) EXPECT_DOUBLE_EQ(back[t], 1.0);
  for (int t = 3; t < 6; ++t) EXPECT_DOUBLE_EQ(back[t], -1.0);
}

TEST(PaaTest, ReconstructionErrorShrinksWithMoreSegments) {
  common::Rng rng(2);
  Series x(128);
  double value = 0.0;
  for (double& v : x) {
    value += rng.Gaussian();
    v = value;  // Smooth-ish random walk.
  }
  double previous_error = 1e18;
  for (std::size_t segments : {4, 8, 16, 32, 64, 128}) {
    const Series back = PaaReconstruct(Paa(x, segments), x.size());
    const double error = distance::EuclideanDistanceValue(x, back);
    EXPECT_LE(error, previous_error + 1e-9) << segments;
    previous_error = error;
  }
  EXPECT_NEAR(previous_error, 0.0, 1e-9);  // segments == m is lossless.
}

TEST(PaaDatasetTest, PreservesLabelsAndRenames) {
  Dataset d("toy");
  d.Add({1.0, 2.0, 3.0, 4.0}, 7);
  d.Add({4.0, 3.0, 2.0, 1.0}, 9);
  const Dataset reduced = PaaDataset(d, 2);
  EXPECT_EQ(reduced.name(), "toy-PAA2");
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced.length(), 2u);
  EXPECT_EQ(reduced.label(0), 7);
  EXPECT_EQ(reduced.label(1), 9);
  EXPECT_DOUBLE_EQ(reduced.series(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(reduced.series(1)[1], 1.5);
}

}  // namespace
}  // namespace kshape::tseries
