// Equivalence contract of the spectrum-cached SBD path: every cached
// evaluation (SbdEngine, the batched pairwise hook, the 1-NN batch scanner,
// cached k-Shape, cached multivariate k-Shape) must agree with the direct
// per-pair path to a tight epsilon. Epsilon, not bitwise, by design: the
// direct path packs x + i*y into one complex transform while the cached path
// transforms each series separately, and the two round differently in the
// last ulps. Exact-value conventions (zero diagonal, distance exactly 1 for
// zero-norm inputs, bitwise matrix symmetry) ARE bitwise and are asserted
// with operator==.

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "classify/nearest_neighbor.h"
#include "cluster/kmedoids.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/multivariate.h"
#include "core/sbd.h"
#include "core/sbd_engine.h"
#include "data/generators.h"
#include "distance/measure.h"
#include "fft/fft.h"
#include "fft/rfft.h"
#include "tseries/normalization.h"

namespace kshape {
namespace {

using tseries::Series;

// Power-of-two-transform tolerance; the Bluestein chain is longer, so the
// non-power-of-two lengths get an extra order of magnitude.
constexpr double kEpsPow2 = 1e-9;
constexpr double kEpsBluestein = 1e-8;

std::vector<Series> MakeSeries(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Series> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(tseries::ZNormalized(
        data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
  }
  return series;
}

tseries::Dataset MakeDataset(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  tseries::Dataset dataset("sbd-cache-test");
  for (std::size_t i = 0; i < n; ++i) {
    const int klass = static_cast<int>(i % 3);
    dataset.Add(tseries::ZNormalized(data::MakeCbf(klass, m, &rng)), klass);
  }
  return dataset;
}

void ExpectEngineMatchesDirect(std::size_t m, core::CrossCorrelationImpl impl,
                               double eps) {
  const std::vector<Series> series = MakeSeries(12, m, m);
  const core::SbdEngine engine(series, impl);
  EXPECT_EQ(engine.size(), series.size());
  EXPECT_EQ(engine.series_length(), m);
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = 0; j < series.size(); ++j) {
      const double direct = core::Sbd(series[i], series[j], impl).distance;
      EXPECT_NEAR(engine.Distance(i, j), direct, eps)
          << "m=" << m << " pair (" << i << "," << j << ")";
    }
  }
}

TEST(SbdCacheTest, EngineMatchesDirectSbdPowerOfTwoLengths) {
  // 2m-1 already a power of two is impossible for m > 1, so these all pad;
  // m=64 and m=128 give fft_len 128 and 256.
  for (std::size_t m : {16, 64, 128}) {
    ExpectEngineMatchesDirect(m, core::CrossCorrelationImpl::kFft, kEpsPow2);
  }
}

TEST(SbdCacheTest, EngineMatchesDirectSbdBluesteinLengths) {
  // kFftNoPow2 transforms at exactly 2m-1: m=24 -> 47 (prime), m=50 -> 99,
  // m=80 -> 159 — all through the cached Bluestein chirp plans.
  for (std::size_t m : {24, 50, 80}) {
    ExpectEngineMatchesDirect(m, core::CrossCorrelationImpl::kFftNoPow2,
                              kEpsBluestein);
  }
}

TEST(SbdCacheTest, QueryPathMatchesDirectSbd) {
  const std::vector<Series> series = MakeSeries(10, 96, 1);
  common::Rng rng(2);
  const Series query = tseries::ZNormalized(data::MakeCbf(2, 96, &rng));
  const core::SbdEngine engine(series);
  const core::SbdEngine::Query q = engine.MakeQuery(query);
  std::vector<double> batched;
  engine.DistanceToAll(q, &batched);
  ASSERT_EQ(batched.size(), series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double direct = core::Sbd(query, series[i]).distance;
    EXPECT_NEAR(engine.Distance(q, i), direct, kEpsPow2);
    EXPECT_EQ(batched[i], engine.Distance(q, i));  // Same arithmetic path.
  }
}

TEST(SbdCacheTest, MaxNccMatchesDirectShiftAndValue) {
  const std::vector<Series> series = MakeSeries(8, 70, 3);
  common::Rng rng(4);
  const Series query = tseries::ZNormalized(data::MakeCbf(0, 70, &rng));
  const core::SbdEngine engine(series);
  const core::SbdEngine::Query q = engine.MakeQuery(query);
  for (std::size_t i = 0; i < series.size(); ++i) {
    const core::NccPeak direct = core::MaxNcc(
        query, series[i], core::NccNormalization::kCoefficient);
    const core::NccPeak cached = engine.MaxNcc(q, i);
    EXPECT_NEAR(cached.value, direct.value, kEpsPow2);
    EXPECT_EQ(cached.shift, direct.shift);
  }
}

TEST(SbdCacheTest, PairwiseMatrixConventions) {
  std::vector<Series> series = MakeSeries(9, 32, 5);
  series.push_back(Series(32, 0.0));  // Zero-norm member.
  const core::SbdEngine engine(series);
  const linalg::Matrix d = engine.PairwiseMatrix();
  const std::size_t n = series.size();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(d(i, i), 0.0);  // Exact zero diagonal.
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(d(i, j), d(j, i));  // Bitwise symmetry.
    }
    // Zero-norm convention: exactly 1 against every other series.
    if (i + 1 < n) {
      EXPECT_EQ(d(i, n - 1), 1.0);
    }
  }
}

TEST(SbdCacheTest, BatchedPairwiseHookMatchesGenericLoop) {
  // The routed path consumers actually take: PairwiseDistanceMatrix with an
  // SbdDistance goes through DistanceMeasure::BatchedPairwise.
  const std::vector<Series> series = MakeSeries(14, 60, 6);
  const core::SbdDistance sbd;
  std::vector<double> flat;
  ASSERT_TRUE(sbd.BatchedPairwise(series, &flat));
  ASSERT_EQ(flat.size(), series.size() * series.size());
  const linalg::Matrix routed = cluster::PairwiseDistanceMatrix(series, sbd);
  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = 0; j < series.size(); ++j) {
      EXPECT_EQ(routed(i, j), flat[i * series.size() + j]);
      EXPECT_NEAR(routed(i, j), sbd.Distance(series[i], series[j]), kEpsPow2);
    }
  }
  // The naive implementation has no spectra; the hook must decline so the
  // generic loop handles it.
  const core::SbdDistance naive(core::CrossCorrelationImpl::kNaive);
  std::vector<double> unused;
  EXPECT_FALSE(naive.BatchedPairwise(series, &unused));
  EXPECT_EQ(naive.NewBatchScanner(series), nullptr);
}

TEST(SbdCacheTest, BatchScannerMatchesDirectDistances) {
  const std::vector<Series> series = MakeSeries(11, 44, 7);
  common::Rng rng(8);
  const Series query = tseries::ZNormalized(data::MakeCbf(1, 44, &rng));
  const core::SbdDistance sbd;
  const std::unique_ptr<distance::BatchScanner> scanner =
      sbd.NewBatchScanner(series);
  ASSERT_NE(scanner, nullptr);
  std::vector<double> dists;
  scanner->DistancesToAll(query, &dists);
  ASSERT_EQ(dists.size(), series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_NEAR(dists[i], sbd.Distance(query, series[i]), kEpsPow2);
  }
}

TEST(SbdCacheTest, CachedKShapeMatchesUncachedAssignments) {
  // Same seed, same data: the cached and per-pair runs see distances that
  // differ only in the last ulps, which on this data never flips an argmin —
  // so assignments, iteration count, and convergence all match.
  const std::vector<Series> series = MakeSeries(45, 64, 9);
  core::KShapeOptions cached_options;
  cached_options.init = core::KShapeInit::kPlusPlusSeeding;
  core::KShapeOptions uncached_options = cached_options;
  uncached_options.use_spectrum_cache = false;
  const core::KShape cached(cached_options);
  const core::KShape uncached(uncached_options);

  common::Rng rng_a(10);
  common::Rng rng_b(10);
  const cluster::ClusteringResult a = cached.Cluster(series, 3, &rng_a);
  const cluster::ClusteringResult b = uncached.Cluster(series, 3, &rng_b);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (std::size_t j = 0; j < a.centroids.size(); ++j) {
    ASSERT_EQ(a.centroids[j].size(), b.centroids[j].size());
    for (std::size_t t = 0; t < a.centroids[j].size(); ++t) {
      EXPECT_NEAR(a.centroids[j][t], b.centroids[j][t], kEpsPow2);
    }
  }
}

TEST(SbdCacheTest, CachedOneNnMatchesUncachedMeasure) {
  // A measure without the batch hooks forces the per-pair classify path;
  // SbdDistance routes through the scanner. Predictions must agree.
  class PlainSbd : public distance::DistanceMeasure {
   public:
    double Distance(tseries::SeriesView x,
                    tseries::SeriesView y) const override {
      return core::Sbd(x, y).distance;
    }
    std::string Name() const override { return "SBD_plain"; }
  };
  const tseries::Dataset train = MakeDataset(24, 52, 11);
  const tseries::Dataset test = MakeDataset(18, 52, 12);
  const core::SbdDistance cached;
  const PlainSbd plain;
  EXPECT_EQ(classify::OneNnAccuracy(train, test, cached),
            classify::OneNnAccuracy(train, test, plain));
  EXPECT_EQ(classify::KnnAccuracy(train, test, cached, 3),
            classify::KnnAccuracy(train, test, plain, 3));
}

TEST(SbdCacheTest, CachedMultivariateMatchesUncached) {
  std::vector<core::MultivariateSeries> series;
  common::Rng rng(13);
  for (int i = 0; i < 21; ++i) {
    core::MultivariateSeries s;
    s.channels.push_back(tseries::ZNormalized(data::MakeCbf(i % 3, 48, &rng)));
    s.channels.push_back(
        tseries::ZNormalized(data::MakeCbf((i + 2) % 3, 48, &rng)));
    series.push_back(std::move(s));
  }
  core::MultivariateKShapeOptions cached_options;
  core::MultivariateKShapeOptions uncached_options;
  uncached_options.use_spectrum_cache = false;
  const core::MultivariateKShape cached(cached_options);
  const core::MultivariateKShape uncached(uncached_options);
  common::Rng rng_a(14);
  common::Rng rng_b(14);
  const core::MultivariateClusteringResult a = cached.Cluster(series, 3,
                                                              &rng_a);
  const core::MultivariateClusteringResult b = uncached.Cluster(series, 3,
                                                                &rng_b);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

// ---------------------------------------------------------------------------
// Half-spectrum vs full-complex cache equivalence (fft/rfft.h).
// ---------------------------------------------------------------------------

void ExpectHalfMatchesFull(std::size_t m, core::CrossCorrelationImpl impl,
                           double eps) {
  const std::vector<Series> series = MakeSeries(12, m, m + 1000);
  const core::SbdEngine full(series, impl, /*use_half_spectrum=*/false);
  const core::SbdEngine half(series, impl, /*use_half_spectrum=*/true);
  EXPECT_FALSE(full.half_spectrum());
  EXPECT_TRUE(half.half_spectrum());

  // Both layouts share one padded-length convention (see fft/fft.h): kFft
  // transforms at the next power of two >= 2m-1, kFftNoPow2 at exactly 2m-1.
  const std::size_t expected_len = impl == core::CrossCorrelationImpl::kFft
                                       ? fft::NextPowerOfTwo(2 * m - 1)
                                       : 2 * m - 1;
  EXPECT_EQ(full.fft_length(), expected_len);
  EXPECT_EQ(half.fft_length(), expected_len);

  for (std::size_t i = 0; i < series.size(); ++i) {
    for (std::size_t j = 0; j < series.size(); ++j) {
      EXPECT_NEAR(half.Distance(i, j), full.Distance(i, j), eps)
          << "m=" << m << " pair (" << i << "," << j << ")";
    }
  }

  // Query path: peak value to epsilon, integer shift exactly.
  common::Rng rng(m + 2000);
  const Series query = tseries::ZNormalized(data::MakeCbf(1, m, &rng));
  const core::SbdEngine::Query fq = full.MakeQuery(query);
  const core::SbdEngine::Query hq = half.MakeQuery(query);
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_NEAR(half.Distance(hq, i), full.Distance(fq, i), eps);
    const core::NccPeak fp = full.MaxNcc(fq, i);
    const core::NccPeak hp = half.MaxNcc(hq, i);
    EXPECT_NEAR(hp.value, fp.value, eps);
    EXPECT_EQ(hp.shift, fp.shift);
  }
}

TEST(SbdCacheTest, HalfSpectrumMatchesFullPowerOfTwoLengths) {
  for (std::size_t m : {16, 64, 128}) {
    ExpectHalfMatchesFull(m, core::CrossCorrelationImpl::kFft, kEpsPow2);
  }
}

TEST(SbdCacheTest, HalfSpectrumMatchesFullBluesteinLengths) {
  // 2m-1 is odd for every m >= 2, so the half engine takes the generic
  // (non-packed) RFFT path here — the conjugate-symmetry fold, not the
  // half-size transform.
  for (std::size_t m : {24, 50, 80}) {
    ExpectHalfMatchesFull(m, core::CrossCorrelationImpl::kFftNoPow2,
                          kEpsBluestein);
  }
}

TEST(SbdCacheDeathTest, QueryFromOtherLayoutIsRejected) {
  // A Query carries the spectrum layout of the engine that minted it; using
  // it against an engine with the other layout must abort loudly instead of
  // reading the wrong member.
  const std::vector<Series> series = MakeSeries(6, 32, 17);
  const core::SbdEngine full(series, core::CrossCorrelationImpl::kFft,
                             /*use_half_spectrum=*/false);
  const core::SbdEngine half(series, core::CrossCorrelationImpl::kFft,
                             /*use_half_spectrum=*/true);
  common::Rng rng(18);
  const Series query = tseries::ZNormalized(data::MakeCbf(0, 32, &rng));
  const core::SbdEngine::Query fq = full.MakeQuery(query);
  const core::SbdEngine::Query hq = half.MakeQuery(query);
  EXPECT_DEATH(half.Distance(fq, 0), "different engine configuration");
  EXPECT_DEATH(full.Distance(hq, 0), "different engine configuration");
}

TEST(SbdCacheTest, DirectSbdGateMatchesFullComplexPath) {
  // The direct (uncached) kFft path also routes through the half-spectrum
  // gate; flipping it changes results only at rounding level.
  const std::vector<Series> series = MakeSeries(8, 48, 19);
  const bool saved = fft::HalfSpectrumEnabled();
  fft::SetHalfSpectrumEnabledForTesting(true);
  std::vector<double> on;
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    on.push_back(core::Sbd(series[i], series[i + 1]).distance);
  }
  fft::SetHalfSpectrumEnabledForTesting(false);
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    EXPECT_NEAR(core::Sbd(series[i], series[i + 1]).distance, on[i], kEpsPow2);
  }
  fft::SetHalfSpectrumEnabledForTesting(saved);
}

TEST(SbdCacheTest, KShapeHalfSpectrumOptionMatchesFull) {
  // Same seed, two cache layouts: epsilon-level distance differences never
  // flip an argmin or alignment shift on this data, so labels, centroids,
  // and telemetry all match exactly.
  const std::vector<Series> series = MakeSeries(45, 64, 20);
  core::KShapeOptions half_options;
  half_options.init = core::KShapeInit::kPlusPlusSeeding;
  core::KShapeOptions full_options = half_options;
  full_options.use_half_spectrum = false;
  ASSERT_TRUE(half_options.use_half_spectrum);  // Documented default.
  const core::KShape half(half_options);
  const core::KShape full(full_options);

  common::Rng rng_a(21);
  common::Rng rng_b(21);
  const cluster::ClusteringResult a = half.Cluster(series, 3, &rng_a);
  const cluster::ClusteringResult b = full.Cluster(series, 3, &rng_b);
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.empty_cluster_reseeds, b.empty_cluster_reseeds);
  EXPECT_EQ(a.degenerate_centroids, b.degenerate_centroids);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (std::size_t j = 0; j < a.centroids.size(); ++j) {
    ASSERT_EQ(a.centroids[j].size(), b.centroids[j].size());
    for (std::size_t t = 0; t < a.centroids[j].size(); ++t) {
      EXPECT_NEAR(a.centroids[j][t], b.centroids[j][t], kEpsPow2);
    }
  }
}

TEST(SbdCacheTest, EngineRepeatedEvaluationIsBitStable) {
  // Within the cached pipeline the arithmetic is fixed: the same pair asked
  // twice (or via the flat carrier) gives bitwise-identical doubles.
  const std::vector<Series> series = MakeSeries(7, 36, 15);
  const std::size_t n = series.size();
  const core::SbdEngine engine(series);
  std::vector<double> flat;
  engine.PairwiseFlat(&flat);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double once = engine.Distance(i, j);
      const double twice = engine.Distance(i, j);
      EXPECT_EQ(once, twice);
      // The flat carrier computes each pair once with i < j in the x role
      // and mirrors that value; Distance(j, i) swaps the roles and may round
      // differently in the last ulp, so only the computed orientation is
      // compared bitwise.
      if (i < j) {
        EXPECT_EQ(flat[i * n + j], once);
        EXPECT_EQ(flat[j * n + i], flat[i * n + j]);
      }
    }
  }
}

}  // namespace
}  // namespace kshape
