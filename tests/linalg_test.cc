#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace kshape::linalg {
namespace {

Matrix RandomSymmetric(std::size_t n, common::Rng* rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng->Gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

Matrix RandomPsd(std::size_t n, common::Rng* rng) {
  // B^T B is positive semi-definite for any B.
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng->Gaussian();
  }
  return b.Transposed().Multiply(b);
}

TEST(MatrixTest, IdentityAndBasicAccess) {
  const Matrix id = Matrix::Identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, FromRowsAndTranspose) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(0, 0), 1.0);
}

TEST(MatrixTest, MultiplyMatchesHandComputedProduct) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyVector) {
  const Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const std::vector<double> v = {1, 0, -1};
  const std::vector<double> out = a.MultiplyVector(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(MatrixTest, AddOuterProductBuildsGramMatrix) {
  Matrix s(2, 2);
  const std::vector<double> v1 = {1.0, 2.0};
  const std::vector<double> v2 = {3.0, -1.0};
  s.AddOuterProduct(v1);
  s.AddOuterProduct(v2, 0.5);
  EXPECT_DOUBLE_EQ(s(0, 0), 1.0 + 0.5 * 9.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 2.0 + 0.5 * -3.0);
  EXPECT_DOUBLE_EQ(s(1, 0), s(0, 1));
  EXPECT_DOUBLE_EQ(s(1, 1), 4.0 + 0.5 * 1.0);
  EXPECT_TRUE(s.IsSymmetric());
}

TEST(MatrixTest, SymmetricOuterProductMatchesFullAccumulation) {
  common::Rng rng(7);
  const std::size_t n = 37;  // Odd size exercises the axpy tail lanes.
  Matrix full(n, n);
  Matrix half(n, n);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.Gaussian();
    full.AddOuterProduct(v);
    half.AddSymmetricOuterProduct(v);
  }
  half.MirrorUpperToLower();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(half(i, j), full(i, j)) << "entry (" << i << "," << j << ")";
    }
  }
}

TEST(MatrixTest, VectorKernels) {
  const std::vector<double> a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Norm(a), 5.0);
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  std::vector<double> b = a;
  Axpy(2.0, a, &b);  // b = 3a
  EXPECT_DOUBLE_EQ(b[0], 9.0);
  NormalizeInPlace(&b);
  EXPECT_NEAR(Norm(b), 1.0, 1e-12);
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(NormalizeInPlace(&zero), 0.0);
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -1.0;
  a(2, 2) = 2.0;
  const EigenDecomposition d = JacobiEigen(a);
  ASSERT_EQ(d.eigenvalues.size(), 3u);
  EXPECT_NEAR(d.eigenvalues[0], -1.0, 1e-10);
  EXPECT_NEAR(d.eigenvalues[1], 2.0, 1e-10);
  EXPECT_NEAR(d.eigenvalues[2], 3.0, 1e-10);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  const Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  const EigenDecomposition d = JacobiEigen(a);
  EXPECT_NEAR(d.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(d.eigenvalues[1], 3.0, 1e-10);
  // Eigenvector for 3 is (1, 1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(d.eigenvectors(0, 1)), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(std::fabs(d.eigenvectors(1, 1)), 1.0 / std::sqrt(2.0), 1e-9);
}

class EigenSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenSizeTest, JacobiSatisfiesEigenEquation) {
  common::Rng rng(GetParam() * 31 + 11);
  const Matrix a = RandomSymmetric(GetParam(), &rng);
  const EigenDecomposition d = JacobiEigen(a);
  for (std::size_t j = 0; j < GetParam(); ++j) {
    const std::vector<double> v = d.eigenvectors.ColVector(j);
    const std::vector<double> av = a.MultiplyVector(v);
    for (std::size_t i = 0; i < GetParam(); ++i) {
      EXPECT_NEAR(av[i], d.eigenvalues[j] * v[i], 1e-7);
    }
  }
}

TEST_P(EigenSizeTest, SymmetricEigenSatisfiesEigenEquation) {
  common::Rng rng(GetParam() * 37 + 13);
  const Matrix a = RandomSymmetric(GetParam(), &rng);
  const EigenDecomposition d = SymmetricEigen(a);
  for (std::size_t j = 0; j < GetParam(); ++j) {
    const std::vector<double> v = d.eigenvectors.ColVector(j);
    EXPECT_NEAR(Norm(v), 1.0, 1e-8);
    const std::vector<double> av = a.MultiplyVector(v);
    for (std::size_t i = 0; i < GetParam(); ++i) {
      EXPECT_NEAR(av[i], d.eigenvalues[j] * v[i], 1e-7);
    }
  }
}

TEST_P(EigenSizeTest, SymmetricEigenMatchesJacobiEigenvalues) {
  common::Rng rng(GetParam() * 41 + 17);
  const Matrix a = RandomSymmetric(GetParam(), &rng);
  const EigenDecomposition jac = JacobiEigen(a);
  const EigenDecomposition tql = SymmetricEigen(a);
  for (std::size_t j = 0; j < GetParam(); ++j) {
    EXPECT_NEAR(jac.eigenvalues[j], tql.eigenvalues[j], 1e-7);
  }
}

TEST_P(EigenSizeTest, EigenvectorsAreOrthonormal) {
  common::Rng rng(GetParam() * 43 + 19);
  const Matrix a = RandomSymmetric(GetParam(), &rng);
  const EigenDecomposition d = SymmetricEigen(a);
  for (std::size_t i = 0; i < GetParam(); ++i) {
    for (std::size_t j = i; j < GetParam(); ++j) {
      const double dot =
          Dot(d.eigenvectors.ColVector(i), d.eigenvectors.ColVector(j));
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST_P(EigenSizeTest, TraceEqualsEigenvalueSum) {
  common::Rng rng(GetParam() * 47 + 23);
  const Matrix a = RandomSymmetric(GetParam(), &rng);
  const EigenDecomposition d = SymmetricEigen(a);
  double trace = 0.0;
  for (std::size_t i = 0; i < GetParam(); ++i) trace += a(i, i);
  double sum = 0.0;
  for (double v : d.eigenvalues) sum += v;
  EXPECT_NEAR(trace, sum, 1e-7 * (1.0 + std::fabs(trace)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenSizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40));

TEST(DominantEigenvectorTest, MatchesFullDecompositionOnPsdMatrix) {
  common::Rng rng(99);
  const Matrix a = RandomPsd(20, &rng);
  double eigenvalue = 0.0;
  const std::vector<double> v =
      DominantEigenvector(a, &rng, 500, 1e-12, &eigenvalue);
  const EigenDecomposition d = SymmetricEigen(a);
  const double largest = d.eigenvalues.back();
  EXPECT_NEAR(eigenvalue, largest, 1e-6 * (1.0 + largest));
  // Compare directions up to sign.
  const std::vector<double> ref = d.eigenvectors.ColVector(19);
  const double alignment = std::fabs(Dot(v, ref));
  EXPECT_NEAR(alignment, 1.0, 1e-5);
}

TEST(DominantEigenvectorTest, HandlesZeroMatrix) {
  common::Rng rng(3);
  const Matrix zero(5, 5);
  double eigenvalue = -1.0;
  const std::vector<double> v =
      DominantEigenvector(zero, &rng, 50, 1e-10, &eigenvalue);
  EXPECT_NEAR(eigenvalue, 0.0, 1e-12);
  EXPECT_NEAR(Norm(v), 1.0, 1e-9);
}

TEST(DominantEigenvectorTest, FallsBackWhenTopEigenvaluesTie) {
  // Identity has a fully degenerate spectrum: power iteration "converges"
  // instantly to its start vector; any unit vector is valid.
  common::Rng rng(4);
  const Matrix id = Matrix::Identity(6);
  double eigenvalue = 0.0;
  const std::vector<double> v =
      DominantEigenvector(id, &rng, 100, 1e-12, &eigenvalue);
  EXPECT_NEAR(eigenvalue, 1.0, 1e-9);
  EXPECT_NEAR(Norm(v), 1.0, 1e-9);
}

TEST(RayleighQuotientTest, BoundsAndExactValueOnEigenvector) {
  const Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  const std::vector<double> v = {1.0, 1.0};
  EXPECT_NEAR(RayleighQuotient(a, v), 3.0, 1e-12);
  const std::vector<double> w = {1.0, -1.0};
  EXPECT_NEAR(RayleighQuotient(a, w), 1.0, 1e-12);
}

}  // namespace
}  // namespace kshape::linalg
