// Tests for the contiguous row-major storage layer: SeriesStore invariants
// (length lock, row count), view aliasing and invalidation rules, SeriesBatch
// over both layouts, Dataset Subset/Append on flat storage, and the
// flat-vs-nested equivalence contract — k-Shape and k-means must produce
// bit-identical labels and telemetry whether the corpus reaches them as a
// contiguous SeriesStore batch or a nested vector-of-vectors batch, at every
// thread count.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/averaging.h"
#include "cluster/kmeans.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/kshape.h"
#include "data/generators.h"
#include "distance/euclidean.h"
#include "tseries/normalization.h"
#include "tseries/time_series.h"

namespace kshape {
namespace {

using tseries::Dataset;
using tseries::MutableSeriesView;
using tseries::Series;
using tseries::SeriesBatch;
using tseries::SeriesStore;
using tseries::SeriesView;

TEST(SeriesStoreTest, StartsEmptyWithZeroLength) {
  SeriesStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.length(), 0u);
}

TEST(SeriesStoreTest, FirstAppendLocksLength) {
  SeriesStore store;
  store.Append(Series{1.0, 2.0, 3.0});
  EXPECT_EQ(store.length(), 3u);
  EXPECT_EQ(store.size(), 1u);
  store.Append(Series{4.0, 5.0, 6.0});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.length(), 3u);
}

TEST(SeriesStoreDeathTest, MismatchedRowLengthAborts) {
  SeriesStore store;
  store.Append(Series{1.0, 2.0, 3.0});
  EXPECT_DEATH(store.Append(Series{1.0, 2.0}), "");
}

TEST(SeriesStoreDeathTest, EmptyRowAborts) {
  SeriesStore store;
  EXPECT_DEATH(store.Append(Series{}), "");
}

TEST(SeriesStoreTest, ReserveLocksLengthBeforeFirstAppend) {
  SeriesStore store;
  store.Reserve(10, 4);
  EXPECT_EQ(store.length(), 4u);
  EXPECT_EQ(store.size(), 0u);
  store.Append(Series{1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(store.size(), 1u);
}

TEST(SeriesStoreDeathTest, ReserveConflictingLengthAborts) {
  SeriesStore store;
  store.Append(Series{1.0, 2.0, 3.0});
  EXPECT_DEATH(store.Reserve(5, 4), "");
}

TEST(SeriesStoreTest, RowsAreContiguousInOneBuffer) {
  SeriesStore store;
  store.Append(Series{1.0, 2.0});
  store.Append(Series{3.0, 4.0});
  store.Append(Series{5.0, 6.0});
  const double* base = store.data();
  for (std::size_t i = 0; i < store.size(); ++i) {
    const SeriesView row = store.view(i);
    EXPECT_EQ(row.data(), base + i * store.length());
    EXPECT_EQ(row.size(), store.length());
  }
  EXPECT_DOUBLE_EQ(base[0], 1.0);
  EXPECT_DOUBLE_EQ(base[3], 4.0);
  EXPECT_DOUBLE_EQ(base[5], 6.0);
}

TEST(SeriesStoreTest, MutableViewAliasesReadView) {
  SeriesStore store;
  store.Append(Series{1.0, 2.0, 3.0});
  MutableSeriesView mut = store.MutableView(0);
  mut[1] = 42.0;
  const SeriesView row = store.view(0);
  EXPECT_DOUBLE_EQ(row[1], 42.0);
  // Same storage, not a copy.
  EXPECT_EQ(row.data(), mut.data());
}

TEST(SeriesStoreTest, ReservedStoreDoesNotReallocateAcrossAppends) {
  // Views are documented as invalidated by Append because the pool may
  // reallocate; after an up-front Reserve for the full row count the buffer
  // must stay put, so a fused dataset is built with exactly one allocation.
  SeriesStore store;
  store.Reserve(8, 16);
  store.Append(Series(16, 1.0));
  const double* base = store.data();
  for (int i = 1; i < 8; ++i) store.Append(Series(16, 1.0 + i));
  EXPECT_EQ(store.data(), base);
}

TEST(SeriesBatchTest, ContiguousBatchViewsStoreRows) {
  SeriesStore store;
  store.Append(Series{1.0, 2.0});
  store.Append(Series{3.0, 4.0});
  const SeriesBatch batch(store);
  EXPECT_TRUE(batch.contiguous());
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.length(), 2u);
  EXPECT_EQ(batch.data(), store.data());
  EXPECT_EQ(batch[1].data(), store.view(1).data());
  EXPECT_DOUBLE_EQ(batch[1][0], 3.0);
}

TEST(SeriesBatchTest, NestedBatchViewsVectorRows) {
  const std::vector<Series> rows = {{1.0, 2.0}, {3.0, 4.0}};
  const SeriesBatch batch(rows);
  EXPECT_FALSE(batch.contiguous());
  EXPECT_EQ(batch.data(), nullptr);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.length(), 2u);
  EXPECT_EQ(batch[0].data(), rows[0].data());
  EXPECT_DOUBLE_EQ(batch[1][1], 4.0);
}

TEST(SeriesBatchTest, EmptyNestedVectorGivesEmptyBatch) {
  const std::vector<Series> rows;
  const SeriesBatch batch(rows);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.length(), 0u);
}

TEST(SeriesBatchDeathTest, RaggedNestedVectorAborts) {
  const std::vector<Series> ragged = {{1.0, 2.0}, {3.0}};
  EXPECT_DEATH(SeriesBatch batch(ragged), "");
}

TEST(DatasetFlatStorageTest, AddCopiesIntoContiguousStore) {
  Dataset dataset("flat");
  dataset.Add({1.0, 2.0, 3.0}, 0);
  dataset.Add({4.0, 5.0, 6.0}, 1);
  EXPECT_EQ(dataset.store().size(), 2u);
  EXPECT_EQ(dataset.view(1).data(), dataset.store().data() + 3);
  EXPECT_EQ(dataset.label(1), 1);
  // The by-value shim copies; mutating the copy leaves the store untouched.
  Series copy = dataset.series(0);
  copy[0] = 99.0;
  EXPECT_DOUBLE_EQ(dataset.view(0)[0], 1.0);
}

TEST(DatasetFlatStorageTest, SubsetCopiesSelectedRowsIntoFreshStore) {
  Dataset dataset("parent");
  for (int i = 0; i < 5; ++i) {
    dataset.Add(Series(4, static_cast<double>(i)), i % 2);
  }
  const Dataset subset = dataset.Subset({4, 1, 3}, "child");
  ASSERT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.length(), 4u);
  EXPECT_DOUBLE_EQ(subset.view(0)[0], 4.0);
  EXPECT_DOUBLE_EQ(subset.view(1)[0], 1.0);
  EXPECT_DOUBLE_EQ(subset.view(2)[0], 3.0);
  EXPECT_EQ(subset.labels(), (std::vector<int>{0, 1, 1}));
  // Fresh storage: the subset's buffer is not the parent's.
  EXPECT_NE(subset.store().data(), dataset.store().data());
}

TEST(DatasetFlatStorageTest, AppendConcatenatesStores) {
  Dataset a("a");
  a.Add({1.0, 2.0}, 0);
  Dataset b("b");
  b.Add({3.0, 4.0}, 1);
  b.Add({5.0, 6.0}, 2);
  a.Append(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a.view(2)[1], 6.0);
  EXPECT_EQ(a.labels(), (std::vector<int>{0, 1, 2}));
}

TEST(DatasetFlatStorageTest, FusedReservesOnceForBothParts) {
  tseries::SplitDataset split;
  split.train = Dataset("t");
  split.test = Dataset("t");
  for (int i = 0; i < 3; ++i) split.train.Add(Series(8, 1.0 + i), i);
  for (int i = 0; i < 2; ++i) split.test.Add(Series(8, 10.0 + i), i);
  const Dataset fused = split.Fused();
  ASSERT_EQ(fused.size(), 5u);
  EXPECT_EQ(fused.length(), 8u);
  EXPECT_DOUBLE_EQ(fused.view(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(fused.view(3)[0], 10.0);
  // All five rows live in one buffer.
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused.view(i).data(), fused.store().data() + i * 8);
  }
}

TEST(DatasetFlatStorageTest, ApplyInPlaceVisitsEveryRowInOrder) {
  Dataset dataset("apply");
  for (int i = 0; i < 4; ++i) dataset.Add(Series(3, 1.0), 0);
  std::size_t visited = 0;
  dataset.ApplyInPlace([&](MutableSeriesView row) {
    for (double& v : row) v += static_cast<double>(visited);
    ++visited;
  });
  EXPECT_EQ(visited, 4u);
  EXPECT_DOUBLE_EQ(dataset.view(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(dataset.view(3)[0], 4.0);
}

// --- Flat-vs-nested equivalence -------------------------------------------
//
// The refactor's core contract: a clustering algorithm fed the same samples
// through a contiguous SeriesStore batch and through a nested
// vector-of-vectors batch must produce bit-identical results — labels,
// centroids, and every telemetry counter — at every thread count.

Dataset MakeCorpus(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  Dataset dataset("equivalence");
  for (std::size_t i = 0; i < n; ++i) {
    const int klass = static_cast<int>(i % 3);
    dataset.Add(tseries::ZNormalized(data::MakeCbf(klass, m, &rng)), klass);
  }
  return dataset;
}

std::vector<Series> NestedCopy(const Dataset& dataset) {
  std::vector<Series> rows;
  rows.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    rows.push_back(dataset.series(i));
  }
  return rows;
}

void ExpectBitIdentical(const cluster::ClusteringResult& a,
                        const cluster::ClusteringResult& b) {
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.empty_cluster_reseeds, b.empty_cluster_reseeds);
  EXPECT_EQ(a.degenerate_centroids, b.degenerate_centroids);
  ASSERT_EQ(a.centroids.size(), b.centroids.size());
  for (std::size_t j = 0; j < a.centroids.size(); ++j) {
    EXPECT_EQ(a.centroids[j], b.centroids[j]);  // Bitwise, not approximate.
  }
}

TEST(FlatVsNestedEquivalenceTest, KShapeBitIdenticalAcrossLayoutsAndThreads) {
  const Dataset dataset = MakeCorpus(24, 64, 101);
  const std::vector<Series> nested = NestedCopy(dataset);
  const core::KShape algorithm;
  for (const int threads : {1, 2, 8}) {
    common::SetThreadCount(threads);
    common::Rng flat_rng(7);
    common::Rng nested_rng(7);
    const cluster::ClusteringResult flat =
        algorithm.Cluster(dataset.batch(), 3, &flat_rng);
    const cluster::ClusteringResult from_nested =
        algorithm.Cluster(nested, 3, &nested_rng);
    ExpectBitIdentical(flat, from_nested);
  }
  common::SetThreadCount(1);
}

TEST(FlatVsNestedEquivalenceTest, KMeansBitIdenticalAcrossLayoutsAndThreads) {
  const Dataset dataset = MakeCorpus(30, 48, 202);
  const std::vector<Series> nested = NestedCopy(dataset);
  const distance::EuclideanDistance ed;
  const cluster::ArithmeticMeanAveraging mean;
  const cluster::KMeans algorithm(&ed, &mean, "k-means-ED");
  for (const int threads : {1, 2, 8}) {
    common::SetThreadCount(threads);
    common::Rng flat_rng(11);
    common::Rng nested_rng(11);
    const cluster::ClusteringResult flat =
        algorithm.Cluster(dataset.batch(), 3, &flat_rng);
    const cluster::ClusteringResult from_nested =
        algorithm.Cluster(nested, 3, &nested_rng);
    ExpectBitIdentical(flat, from_nested);
  }
  common::SetThreadCount(1);
}

}  // namespace
}  // namespace kshape
