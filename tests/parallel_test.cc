// Thread-count invariance of every parallelized hot path: the same inputs
// (and, where stochastic, the same RNG seed) must produce bit-for-bit
// identical results with KSHAPE_THREADS = 1, 2, and 8. Each check runs the
// computation once per thread count via SetThreadCount and compares the raw
// doubles with operator== — no tolerances, by design: the parallel layer
// only redistributes identical per-index computations across threads.
//
// This binary is also the one CI runs under ThreadSanitizer, so the bodies
// double as race detectors for the pool and the FFT scratch caches.

#include <cstddef>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "classify/nearest_neighbor.h"
#include "cluster/kmedoids.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/kshape.h"
#include "core/multivariate.h"
#include "core/sbd.h"
#include "core/sbd_engine.h"
#include "core/shape_extraction.h"
#include "data/generators.h"
#include "distance/dtw.h"
#include "tseries/conditioning.h"
#include "tseries/normalization.h"

namespace kshape {
namespace {

using tseries::Series;

constexpr int kThreadCounts[] = {1, 2, 8};

std::vector<Series> MakeSeries(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Series> series;
  series.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    series.push_back(tseries::ZNormalized(
        data::MakeCbf(static_cast<int>(i % 3), m, &rng)));
  }
  return series;
}

tseries::Dataset MakeDataset(std::size_t n, std::size_t m, uint64_t seed) {
  common::Rng rng(seed);
  tseries::Dataset dataset("parallel-test");
  for (std::size_t i = 0; i < n; ++i) {
    const int klass = static_cast<int>(i % 3);
    dataset.Add(tseries::ZNormalized(data::MakeCbf(klass, m, &rng)), klass);
  }
  return dataset;
}

// Runs `compute` once per thread count and asserts all results compare equal
// under `equal` (exact equality — the invariance guarantee is bitwise).
template <typename T>
void ExpectInvariant(const std::function<T()>& compute,
                     const std::function<bool(const T&, const T&)>& equal,
                     const char* what) {
  common::SetThreadCount(kThreadCounts[0]);
  const T reference = compute();
  for (std::size_t t = 1; t < std::size(kThreadCounts); ++t) {
    common::SetThreadCount(kThreadCounts[t]);
    const T other = compute();
    EXPECT_TRUE(equal(reference, other))
        << what << " differs between " << kThreadCounts[0] << " and "
        << kThreadCounts[t] << " threads";
  }
  common::SetThreadCount(1);
}

bool MatricesBitIdentical(const linalg::Matrix& a, const linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) != b(i, j)) return false;
    }
  }
  return true;
}

bool ResultsBitIdentical(const cluster::ClusteringResult& a,
                         const cluster::ClusteringResult& b) {
  if (a.assignments != b.assignments) return false;
  if (a.iterations != b.iterations || a.converged != b.converged) return false;
  if (a.empty_cluster_reseeds != b.empty_cluster_reseeds) return false;
  if (a.degenerate_centroids != b.degenerate_centroids) return false;
  if (a.centroids.size() != b.centroids.size()) return false;
  for (std::size_t j = 0; j < a.centroids.size(); ++j) {
    if (a.centroids[j] != b.centroids[j]) return false;
  }
  return true;
}

TEST(ParallelInvarianceTest, PairwiseSbdDistanceMatrix) {
  const std::vector<Series> series = MakeSeries(40, 64, 1);
  const core::SbdDistance sbd;
  ExpectInvariant<linalg::Matrix>(
      [&] { return cluster::PairwiseDistanceMatrix(series, sbd); },
      MatricesBitIdentical, "pairwise SBD matrix");
}

TEST(ParallelInvarianceTest, PairwiseCdtwDistanceMatrix) {
  const std::vector<Series> series = MakeSeries(24, 48, 2);
  const dtw::DtwMeasure cdtw5 = dtw::DtwMeasure::SakoeChiba(0.05, "cDTW5");
  ExpectInvariant<linalg::Matrix>(
      [&] { return cluster::PairwiseDistanceMatrix(series, cdtw5); },
      MatricesBitIdentical, "pairwise cDTW matrix");
}

TEST(ParallelInvarianceTest, KShapeFullRunRandomInit) {
  const std::vector<Series> series = MakeSeries(36, 64, 3);
  const core::KShape algorithm;
  ExpectInvariant<cluster::ClusteringResult>(
      [&] {
        common::Rng rng(7);  // Fresh identical seed per thread count.
        return algorithm.Cluster(series, 3, &rng);
      },
      ResultsBitIdentical, "k-Shape (random init)");
}

TEST(ParallelInvarianceTest, KShapeFullRunPlusPlusInit) {
  // ++ seeding exercises the parallel D^2 scans *and* the RNG-driven
  // sequential sampling between them; invariance proves the scans do not
  // perturb the random stream.
  const std::vector<Series> series = MakeSeries(36, 64, 4);
  core::KShapeOptions options;
  options.init = core::KShapeInit::kPlusPlusSeeding;
  const core::KShape algorithm(options);
  ExpectInvariant<cluster::ClusteringResult>(
      [&] {
        common::Rng rng(11);
        return algorithm.Cluster(series, 3, &rng);
      },
      ResultsBitIdentical, "k-Shape (++ init)");
}

TEST(ParallelInvarianceTest, KShapeFullRunWithoutSpectrumCache) {
  // The per-pair ablation path must stay invariant too — it is the reference
  // the cached pipeline is tolerance-tested against.
  const std::vector<Series> series = MakeSeries(36, 64, 3);
  core::KShapeOptions options;
  options.use_spectrum_cache = false;
  const core::KShape algorithm(options);
  ExpectInvariant<cluster::ClusteringResult>(
      [&] {
        common::Rng rng(7);
        return algorithm.Cluster(series, 3, &rng);
      },
      ResultsBitIdentical, "k-Shape (no spectrum cache)");
}

TEST(ParallelInvarianceTest, MatrixFreeShapeExtraction) {
  // The matrix-free extraction matvec fans out over fixed row blocks
  // (linalg::RowPoolMatVec) with a sequential fixed-order reduction; the
  // chunk boundaries are a pure function of the row count, never the thread
  // count, so the centroid must be bit-identical at every parallelism level.
  // This binary runs under TSan in CI, so the disjoint-write claim of the
  // block partials is race-checked here too.
  const std::vector<Series> members = MakeSeries(48, 96, 17);
  const Series reference = tseries::ZNormalized(members[0]);
  // Force the path under test even on the CI leg that exports
  // KSHAPE_MATFREE=off for the rest of the suite.
  const bool saved_gate = core::MatrixFreeEnabled();
  core::SetMatrixFreeEnabledForTesting(true);
  {
    const core::ShapeAccumulator probe(reference);
    ASSERT_TRUE(probe.matrix_free_active());
  }
  for (const bool warm : {false, true}) {
    core::ShapeExtractionOptions options;
    options.warm_start = warm;
    ExpectInvariant<Series>(
        [&] {
          common::Rng rng(19);
          return core::ExtractShape(members, warm ? reference : Series(96, 0.0),
                                    &rng, options);
        },
        [](const Series& a, const Series& b) { return a == b; },
        warm ? "matrix-free extraction (warm)"
             : "matrix-free extraction (cold)");
  }
  core::SetMatrixFreeEnabledForTesting(saved_gate);
}

TEST(ParallelInvarianceTest, SbdEnginePairwiseMatrix) {
  // The cached pipeline itself: the construction pre-pass (parallel forward
  // transforms with disjoint writes) and the row-parallel matrix fill must
  // both be bit-identical at every thread count. Rebuilding the engine inside
  // the lambda puts the pre-pass under test as well.
  const std::vector<Series> series = MakeSeries(30, 48, 13);
  ExpectInvariant<linalg::Matrix>(
      [&] {
        const core::SbdEngine engine(series);
        return engine.PairwiseMatrix();
      },
      MatricesBitIdentical, "SbdEngine pairwise matrix");
}

TEST(ParallelInvarianceTest, SbdEngineDistanceToAll) {
  const std::vector<Series> series = MakeSeries(30, 48, 14);
  common::Rng rng(15);
  const Series query = tseries::ZNormalized(data::MakeCbf(1, 48, &rng));
  ExpectInvariant<std::vector<double>>(
      [&] {
        const core::SbdEngine engine(series);
        return engine.DistanceToAll(query);
      },
      std::equal_to<std::vector<double>>(), "SbdEngine DistanceToAll");
}

TEST(ParallelInvarianceTest, MultivariateKShapeFullRun) {
  // Covers the cached mSBD assignment scans and the per-series channel
  // spectrum pre-pass.
  std::vector<core::MultivariateSeries> series;
  common::Rng rng(16);
  for (int i = 0; i < 24; ++i) {
    core::MultivariateSeries s;
    s.channels.push_back(
        tseries::ZNormalized(data::MakeCbf(i % 3, 40, &rng)));
    s.channels.push_back(
        tseries::ZNormalized(data::MakeCbf((i + 1) % 3, 40, &rng)));
    series.push_back(std::move(s));
  }
  const core::MultivariateKShape algorithm;
  auto equal = [](const core::MultivariateClusteringResult& a,
                  const core::MultivariateClusteringResult& b) {
    if (a.assignments != b.assignments) return false;
    if (a.iterations != b.iterations || a.converged != b.converged) {
      return false;
    }
    if (a.centroids.size() != b.centroids.size()) return false;
    for (std::size_t j = 0; j < a.centroids.size(); ++j) {
      if (a.centroids[j].channels != b.centroids[j].channels) return false;
    }
    return true;
  };
  ExpectInvariant<core::MultivariateClusteringResult>(
      [&] {
        common::Rng run_rng(21);
        return algorithm.Cluster(series, 3, &run_rng);
      },
      equal, "multivariate k-Shape");
}

// Determinism regression for the robustness layer: a fault-injected corpus
// (NaN runs, dropped tails, stuck segments) conditioned through the official
// repair path, then clustered with empty-cluster repair and degenerate
// flagging active, must stay bit-identical across thread counts — including
// the repair telemetry itself.
tseries::Dataset MakeConditionedCorruptedDataset(uint64_t seed) {
  common::Rng rng(seed);
  data::FaultInjectionOptions faults;
  faults.nan_probability = 0.4;
  faults.truncate_probability = 0.4;
  faults.constant_probability = 0.2;
  const data::CorruptedData corpus = data::MakeCorruptedData(
      "parallel-corrupted", 3, 10, [](int klass, common::Rng* r) {
        return data::MakeCbf(klass, 64, r);
      }, faults, &rng);
  tseries::ConditioningOptions options;
  options.length_policy = tseries::LengthPolicy::kResample;
  options.missing_policy = tseries::MissingPolicy::kInterpolate;
  auto dataset = tseries::ConditionToDataset(corpus.series, corpus.labels,
                                             corpus.name, options);
  EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
  tseries::Dataset out = std::move(dataset).value();
  out.ApplyInPlace(
      [](tseries::MutableSeriesView row) { tseries::ZNormalizeInPlace(row); });
  return out;
}

TEST(ParallelInvarianceTest, KShapeOnConditionedCorruptedCorpus) {
  const tseries::Dataset dataset = MakeConditionedCorruptedDataset(31);
  const core::KShape algorithm;
  ExpectInvariant<cluster::ClusteringResult>(
      [&] {
        common::Rng rng(9);
        auto result = algorithm.TryCluster(dataset.batch(), 3, &rng);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        return std::move(result).value();
      },
      ResultsBitIdentical, "k-Shape on conditioned corrupted corpus");
}

TEST(ParallelInvarianceTest, CachedAndUncachedSbdAgreeOnConditionedLabels) {
  // Identical seeds must give identical labels whether the SBD spectrum
  // cache is on or off, at every thread count. Centroids are not compared:
  // the cached distances agree within a tolerance, not bitwise, so only the
  // discrete outputs (assignments, iteration count, telemetry) are required
  // to coincide.
  const tseries::Dataset dataset = MakeConditionedCorruptedDataset(33);
  core::KShapeOptions uncached_options;
  uncached_options.use_spectrum_cache = false;
  const core::KShape cached;
  const core::KShape uncached(uncached_options);

  common::SetThreadCount(1);
  common::Rng reference_rng(17);
  const cluster::ClusteringResult reference =
      uncached.Cluster(dataset.batch(), 3, &reference_rng);

  for (const int threads : kThreadCounts) {
    common::SetThreadCount(threads);
    for (const core::KShape* algorithm : {&cached, &uncached}) {
      common::Rng rng(17);
      const cluster::ClusteringResult result =
          algorithm->Cluster(dataset.batch(), 3, &rng);
      EXPECT_EQ(result.assignments, reference.assignments)
          << "threads=" << threads;
      EXPECT_EQ(result.iterations, reference.iterations)
          << "threads=" << threads;
      EXPECT_EQ(result.empty_cluster_reseeds, reference.empty_cluster_reseeds)
          << "threads=" << threads;
      EXPECT_EQ(result.degenerate_centroids, reference.degenerate_centroids)
          << "threads=" << threads;
    }
  }
  common::SetThreadCount(1);
}

TEST(ParallelInvarianceTest, OneNnAccuracySbd) {
  const tseries::Dataset train = MakeDataset(30, 64, 5);
  const tseries::Dataset test = MakeDataset(20, 64, 6);
  const core::SbdDistance sbd;
  ExpectInvariant<double>(
      [&] { return classify::OneNnAccuracy(train, test, sbd); },
      std::equal_to<double>(), "1-NN SBD accuracy");
}

TEST(ParallelInvarianceTest, LeaveOneOutCdtwAccuracy) {
  const tseries::Dataset data = MakeDataset(26, 48, 8);
  ExpectInvariant<double>(
      [&] { return classify::LeaveOneOutCdtwAccuracy(data, 3); },
      std::equal_to<double>(), "LOO cDTW accuracy");
}

TEST(ParallelInvarianceTest, TunedCdtwWindow) {
  // Window tuning stacks LOO runs; the chosen window is an integer, so any
  // scheduling sensitivity in the underlying accuracies would surface here.
  const tseries::Dataset train = MakeDataset(20, 40, 9);
  ExpectInvariant<int>(
      [&] {
        return classify::TuneCdtwWindowLoo(train, {0.0, 0.02, 0.05, 0.1});
      },
      std::equal_to<int>(), "tuned cDTW window");
}

TEST(ParallelInvarianceTest, KnnAndEarlyAbandonAccuracies) {
  const tseries::Dataset train = MakeDataset(24, 48, 10);
  const tseries::Dataset test = MakeDataset(15, 48, 12);
  const core::SbdDistance sbd;
  ExpectInvariant<double>(
      [&] { return classify::KnnAccuracy(train, test, sbd, 3); },
      std::equal_to<double>(), "3-NN SBD accuracy");
  ExpectInvariant<double>(
      [&] { return classify::OneNnAccuracyEdEarlyAbandon(train, test); },
      std::equal_to<double>(), "1-NN ED early-abandon accuracy");
}

}  // namespace
}  // namespace kshape
